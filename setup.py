"""Legacy setup shim.

The canonical metadata lives in ``pyproject.toml``; this file exists so
``pip install -e .`` works on offline machines without the ``wheel``
package (pip falls back to ``setup.py develop``).
"""

from setuptools import setup

setup()
