"""ABL1 — ablation: lattice closures vs topological closures.

The paper's structural claim: the decomposition machinery never uses
``cl(A ∪ B) = cl.A ∪ cl.B`` (the topology axiom), and that is not
vacuous — ``ncl`` genuinely violates it while ``lcl``/``fcl`` satisfy
it.  The ablation measures how often random lattice closures are
topological, and re-verifies Theorem 2 on the non-topological ones.
"""

import random

from repro.analysis import decompose
from repro.lattice.random_lattices import random_closure, random_modular_complemented

from .conftest import emit


def _ablation(n_samples: int) -> dict:
    rng = random.Random(808)
    topological = 0
    non_topological = 0
    decomposed_on_non_topological = 0
    for _ in range(n_samples):
        lat = random_modular_complemented(rng, max_factors=2, max_diamond=3)
        cl = random_closure(rng, lat)
        if cl.is_topological():
            topological += 1
            continue
        non_topological += 1
        for a in lat.elements:
            d = decompose(a, closure=cl, check_hypotheses=False)
            assert d.verify()
            decomposed_on_non_topological += 1
    return {
        "topological": topological,
        "non_topological": non_topological,
        "decompositions_verified": decomposed_on_non_topological,
    }


def test_nontopological_closures_still_decompose(benchmark):
    result = benchmark.pedantic(_ablation, args=(30,), rounds=1, iterations=1)
    assert result["non_topological"] > 0
    assert result["decompositions_verified"] > 0
    emit(
        "ABL1 — topological vs lattice closures",
        f"random closures: {result['topological']} topological, "
        f"{result['non_topological']} not; Theorem 2 verified on "
        f"{result['decompositions_verified']} elements under "
        f"non-topological closures (the paper's extra generality)",
    )


def test_ncl_violates_join_preservation(benchmark):
    """The concrete witness: the sampled ncl closure on tree sets does
    not distribute over unions, exactly as the paper states
    ('ncl.(p ∪ q) ⊆ ncl.p ∪ ncl.q is not a theorem')."""
    from repro.ctl import sample_trees
    from repro.trees import PartialRegularPrefix, closure_on_samples

    def build():
        trees = sample_trees()
        universe = [
            trees["all_a"], trees["all_b"], trees["split"], trees["alternating"]
        ]
        witnesses = {
            2: [PartialRegularPrefix.cut_except_branch(trees["split"], (0,), 1)]
        }
        _, fcl = closure_on_samples(universe, depth_bound=2, name="fcl")
        _, ncl = closure_on_samples(
            universe, depth_bound=2, partial_witnesses=witnesses, name="ncl"
        )
        return fcl.join_preservation_violation(), ncl.join_preservation_violation()

    fcl_violation, ncl_violation = benchmark.pedantic(build, rounds=1, iterations=1)
    emit(
        "ABL1 — join preservation",
        f"fcl violates cl(a∨b)=cl.a∨cl.b at: {fcl_violation}\n"
        f"ncl violates cl(a∨b)=cl.a∨cl.b at: {ncl_violation}",
    )
    # fcl is topological on this fragment; ncl need not be — but on a
    # 4-sample universe both may coincide; the assertion is on validity,
    # not on the violation being non-None (recorded in EXPERIMENTS.md)
