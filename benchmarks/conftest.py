"""Benchmark-suite configuration.

Each benchmark regenerates one of the paper's artifacts (figure, table
or theorem) — asserting the paper's claim while timing the machinery —
and prints the rows it produced, so a ``pytest benchmarks/
--benchmark-only -s`` run doubles as the reproduction report recorded in
EXPERIMENTS.md.

At session end every pytest-benchmark measurement is additionally
persisted to ``BENCH_<area>.json`` at the repo root (one file per
benchmark module, ``area`` = the module stem minus its ``test_bench_``
prefix) via :func:`repro.obs.export.dump_bench_json`, so CI can archive
the numbers and successive runs diff cleanly (stable JSON, sorted keys).
"""

from pathlib import Path

import pytest


def emit(title: str, body: str = "") -> None:
    """Print a labeled reproduction block (visible with -s; harmless
    when captured)."""
    print(f"\n── {title} " + "─" * max(0, 60 - len(title)))
    if body:
        print(body)


def _area(fullname: str) -> str:
    """``benchmarks/test_bench_rv_throughput.py::test_x[1]`` → ``rv_throughput``."""
    stem = Path(fullname.split("::", 1)[0]).stem
    return stem.removeprefix("test_bench_") or stem


def pytest_sessionfinish(session, exitstatus):
    """Persist every successful benchmark measurement to BENCH_<area>.json."""
    bench_session = getattr(session.config, "_benchmarksession", None)
    if bench_session is None or not bench_session.benchmarks:
        return
    try:
        from repro.obs.export import dump_bench_json
    except ImportError:  # repro not importable (e.g. PYTHONPATH unset)
        return
    by_area: dict[str, list[dict]] = {}
    for bench in bench_session.benchmarks:
        if bench.has_error:
            continue
        stats = bench.stats
        record = {
            "fullname": bench.fullname,
            "name": bench.name,
            "group": bench.group,
            "params": bench.params,
            "rounds": stats.rounds,
            "iterations": bench.iterations,
            "mean_s": stats.mean,
            "median_s": stats.median,
            "min_s": stats.min,
            "max_s": stats.max,
            "stddev_s": stats.stddev,
            "ops": stats.ops,
        }
        # benchmarks annotate non-timing observations (payload sizes,
        # counts) via benchmark.extra_info; persist them alongside
        if bench.extra_info:
            record["extra_info"] = dict(bench.extra_info)
        by_area.setdefault(_area(bench.fullname), []).append(record)
    root = Path(__file__).resolve().parent.parent
    for area, records in sorted(by_area.items()):
        dump_bench_json(root / f"BENCH_{area}.json", records, meta={"area": area})
