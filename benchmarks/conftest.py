"""Benchmark-suite configuration.

Each benchmark regenerates one of the paper's artifacts (figure, table
or theorem) — asserting the paper's claim while timing the machinery —
and prints the rows it produced, so a ``pytest benchmarks/
--benchmark-only -s`` run doubles as the reproduction report recorded in
EXPERIMENTS.md.
"""

import pytest


def emit(title: str, body: str = "") -> None:
    """Print a labeled reproduction block (visible with -s; harmless
    when captured)."""
    print(f"\n── {title} " + "─" * max(0, 60 - len(title)))
    if body:
        print(body)
