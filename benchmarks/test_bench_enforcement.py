"""APP2 — Schneider enforcement (§1): monitors enforce exactly the
safety part.

For each policy: decide enforceability (= safety), build the best
truncation monitor, and for liveness policies exhibit the gap execution
no monitor can reject.  Also times monitor throughput (events/second)
— the operational cost of enforcement is one subset-automaton step per
event.
"""

import random

from repro.analysis import enforcement_table
from repro.enforcement import (
    SecurityMonitor,
    all_policies,
    enforcement_gap_formula,
    no_send_after_read,
)

from .conftest import emit


def _classify_policies() -> dict:
    facts = {}
    for policy in all_policies():
        gap = enforcement_gap_formula(policy.formula, policy.alphabet)
        enforceable = gap is None
        assert enforceable == policy.enforceable, policy.name
        if gap is not None:
            monitor = SecurityMonitor.for_property(policy.automaton())
            assert monitor.admits_lasso(gap), policy.name
        facts[policy.name] = enforceable
    return facts


def test_enforceability_classification(benchmark):
    facts = benchmark.pedantic(_classify_policies, rounds=1, iterations=1)
    emit("APP2 — policies", enforcement_table())
    assert facts["no-send-after-read"] and facts["resource-bracketing"]
    assert not facts["eventual-audit"] and not facts["fair-service"]


def _monitor_throughput(n_events: int) -> int:
    policy = no_send_after_read()
    monitor = SecurityMonitor.for_property(policy.automaton())
    rng = random.Random(99)
    events = [rng.choice(["other", "send"]) for _ in range(n_events)]
    accepted = 0
    for e in events:
        if monitor.observe(e).accepted:
            accepted += 1
    return accepted


def test_monitor_throughput(benchmark):
    accepted = benchmark(_monitor_throughput, 10_000)
    assert accepted == 10_000  # no read ever happens in this stream
    emit(
        "APP2 — monitor throughput",
        "10k events observed per round; see the benchmark timing column "
        "for events/second",
    )
