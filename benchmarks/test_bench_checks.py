"""Checker economics — what the flow-sensitive analysis pass costs and
what the incremental cache buys back (DESIGN.md §12).

Three timings over one deterministic synthetic project (lock-heavy
modules chained by imports, so the CFG, lock-set fixpoint, and call
graph all do real work):

* *cold* — a full ``run_checks`` with every rule and no cache;
* *warm* — the same run replayed entirely from the incremental cache
  (only the merge + finalize phases execute).  The measured speedup is
  asserted ≥ 3× and recorded in ``extra_info.speedup_vs_cold``;
* *parallel* — the cold run fanned out over worker processes
  (``--jobs``), recording what the process-pool overhead costs at this
  project size.
"""

import time

import pytest

from repro.checks import IncrementalCache, all_rules, run_checks

from .conftest import emit

MODULE_COUNT = 36

_TEMPLATE = '''\
"""Generated benchmark module {i}."""

import threading
{import_line}

class Helper{i}:
    def __init__(self):
        self._lock = threading.Lock()
        self._items = []

    def add(self, item):
        with self._lock:
            self._items.append(item)

    def snapshot(self):
        with self._lock:
            return list(self._items)

    def risky_update(self, item):
        self._lock.acquire()
        try:
            self._items.append(item)
        finally:
            self._lock.release()


def process_{i}(helper: Helper{i}, items):
    total = 0
    for item in items:
        if item:
            helper.add(item)
        else:
            helper.risky_update(item)
        total += 1
    return helper.snapshot(), total
'''


@pytest.fixture(scope="module")
def project(tmp_path_factory):
    """A deterministic synthetic src tree; sanity-checked clean once."""
    root = tmp_path_factory.mktemp("checks-bench")
    package = root / "src" / "repro" / "gen"
    package.mkdir(parents=True)
    (package / "__init__.py").write_text(
        '"""Generated package."""\n\n__all__ = []\n'
    )
    for i in range(MODULE_COUNT):
        import_line = (
            f"\nfrom repro.gen.mod{i - 1} import Helper{i - 1}\n" if i else ""
        )
        (package / f"mod{i}.py").write_text(
            _TEMPLATE.format(i=i, import_line=import_line)
        )
    paths = [root / "src"]
    report = run_checks(paths, all_rules())
    assert report.findings == [], [f.render() for f in report.findings]
    return paths


def test_cold_full_analysis(benchmark, project):
    report = benchmark.pedantic(
        lambda: run_checks(project, all_rules()), rounds=3, iterations=1
    )
    assert report.files_scanned == MODULE_COUNT + 1
    benchmark.extra_info["files"] = report.files_scanned
    emit(
        "checks — cold full analysis",
        f"files={report.files_scanned} findings={len(report.findings)}",
    )


def test_warm_incremental_analysis(benchmark, project, tmp_path):
    cache_path = tmp_path / "checks-cache"
    t0 = time.perf_counter()
    run_checks(project, all_rules(), cache=IncrementalCache(cache_path))
    cold_s = time.perf_counter() - t0

    def warm():
        return run_checks(
            project, all_rules(), cache=IncrementalCache(cache_path)
        )

    t0 = time.perf_counter()
    report = warm()
    warm_s = time.perf_counter() - t0
    assert report.files_cached == report.files_scanned
    speedup = cold_s / warm_s
    # the acceptance bar: replaying unchanged files must be ≥ 3× faster
    # than re-analyzing them (in practice it is ~10×; 3 leaves headroom
    # for noisy shared runners)
    assert speedup >= 3.0, f"warm run only {speedup:.1f}x faster than cold"
    benchmark.pedantic(warm, rounds=3, iterations=1)
    benchmark.extra_info["files"] = report.files_scanned
    benchmark.extra_info["speedup_vs_cold"] = round(speedup, 2)
    emit(
        "checks — warm incremental analysis",
        f"cold={cold_s * 1e3:.1f}ms warm={warm_s * 1e3:.1f}ms "
        f"speedup={speedup:.1f}x",
    )


def test_parallel_jobs_analysis(benchmark, project):
    report = benchmark.pedantic(
        lambda: run_checks(project, all_rules(), jobs=2), rounds=3, iterations=1
    )
    assert report.files_scanned == MODULE_COUNT + 1
    benchmark.extra_info["jobs"] = 2
    emit("checks — parallel (--jobs 2)", f"files={report.files_scanned}")
