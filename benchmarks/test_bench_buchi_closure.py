"""SEC24b — correctness and cost of the closure operator itself.

``L(cl B) = lcl(L(B))``: the automaton construction must agree with the
paper's semantic definition (every prefix extends) on every lasso.  The
benchmark validates the identity on random automata and times the two
sides — the construction is one SCC pass, the semantic check is per
word; crossing them is the strongest internal consistency check the
linear-time layer has.
"""

import random

from repro.buchi import closure, random_automaton, semantic_lcl_member
from repro.omega import all_lassos

from .conftest import emit

LASSOS = list(all_lassos("ab", 2, 3))


def _cross_validate(n_automata: int, n_states: int) -> int:
    rng = random.Random(31)
    agreements = 0
    for _ in range(n_automata):
        m = random_automaton(rng, n_states)
        cl = closure(m)
        for w in LASSOS:
            assert cl.accepts(w) == semantic_lcl_member(m, w)
            agreements += 1
    return agreements


def test_closure_vs_semantic_lcl(benchmark):
    agreements = benchmark.pedantic(
        _cross_validate, args=(10, 8), rounds=1, iterations=1
    )
    emit(
        "SEC24b — cl(B) vs semantic lcl",
        f"{agreements} (automaton, lasso) agreements; zero disagreements",
    )
    assert agreements == 10 * len(LASSOS)


def _closure_cost_series(sizes):
    import time

    rng = random.Random(13)
    rows = []
    for n in sizes:
        t0 = time.time()
        reps = 20
        for _ in range(reps):
            closure(random_automaton(rng, n))
        rows.append((n, (time.time() - t0) / reps))
    return rows


def test_closure_cost_scaling(benchmark):
    rows = benchmark.pedantic(
        _closure_cost_series, args=([5, 10, 20, 40, 80],), rounds=1, iterations=1
    )
    body = ["  n    sec/closure"]
    for n, t in rows:
        body.append(f"{n:4d}   {t:.5f}")
    emit("SEC24b — closure cost (graph-polynomial)", "\n".join(body))
    # near-linear growth: 16x states should cost far less than 1000x time
    assert rows[-1][1] < max(rows[0][1], 1e-4) * 1000
