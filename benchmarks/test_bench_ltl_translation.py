"""TRANS — LTL → Büchi translation sizes and cost (supporting the TAB1
machinery; the on-the-fly tableau's practical footprint).

Also the simulation-quotient ablation: automaton sizes with and without
the reduction — the design choice DESIGN.md §6 calls out for keeping
exact complementation-based checks feasible.
"""

import time

from repro.ltl import parse, satisfies, translate
from repro.omega import all_lassos

from .conftest import emit

FORMULAS = [
    "a",
    "G a",
    "F a",
    "GF a",
    "FG a",
    "a U b",
    "a & F !a",
    "G (a -> F b)",
    "G (a -> X b)",
    "(GF a) & (GF b)",
    "(GF a) -> (GF b)",
    "G (a -> X (b U a))",
]


def _translate_all():
    rows = []
    for text in FORMULAS:
        f = parse(text)
        t0 = time.time()
        fast = translate(f, "ab", simplify=True)
        t_fast = time.time() - t0
        slow = translate(f, "ab", simplify=False)
        rows.append((text, len(slow.states), len(fast.states), t_fast))
    return rows


def test_translation_sizes(benchmark):
    rows = benchmark.pedantic(_translate_all, rounds=1, iterations=1)
    body = [f"{'formula':22s} raw  quotiented   sec"]
    for text, raw, small, t in rows:
        body.append(f"{text:22s} {raw:3d}  {small:9d}   {t:.4f}")
    emit("TRANS — tableau sizes (raw vs simulation-quotiented)", "\n".join(body))
    assert all(small <= raw for _t, raw, small, _s in rows)


def test_translation_correctness_sweep(benchmark):
    """Exhaustive semantic agreement for the full formula list."""

    def sweep():
        count = 0
        lassos = list(all_lassos("ab", 2, 3))
        for text in FORMULAS:
            f = parse(text)
            automaton = translate(f, "ab")
            for w in lassos:
                assert automaton.accepts(w) == satisfies(w, f), (text, w)
                count += 1
        return count

    count = benchmark.pedantic(sweep, rounds=1, iterations=1)
    emit(
        "TRANS — correctness sweep",
        f"{count} (formula, lasso) agreements between tableau and the "
        f"semantic evaluator",
    )
