"""TAB1 — the §2.3 table: Rem's p0–p6 classified in the linear-time
framework.

Every row's computed class must equal the paper's (with p6 refined to
"both": Σ^ω is the unique property that is both safe and live), and the
closure identities the paper states (lcl p3 = p1; lcl p4 = lcl p5 =
Σ^ω) are proved by exact language equivalence.
"""

from repro.analysis import rem_table
from repro.buchi import are_equivalent, universal_automaton
from repro.ltl import classify_rem_examples, parse, translate

from .conftest import emit


def _classify_all():
    return classify_rem_examples()


def test_rem_rows(benchmark):
    rows = benchmark(_classify_all)
    for example, result in rows:
        assert result.kind == example.expected, example.identifier
    emit("TAB1 — §2.3 Rem table", rem_table())


def _closure_identities() -> dict:
    table = {ex.identifier: c for ex, c in classify_rem_examples()}
    univ = universal_automaton("ab")
    return {
        "lcl_p3_eq_p1": are_equivalent(
            table["p3"].closure_automaton, translate(parse("a"), "ab")
        ),
        "lcl_p4_universal": are_equivalent(table["p4"].closure_automaton, univ),
        "lcl_p5_universal": are_equivalent(table["p5"].closure_automaton, univ),
    }


def test_rem_closure_identities(benchmark):
    facts = benchmark(_closure_identities)
    assert all(facts.values())
    emit(
        "TAB1 — closure identities",
        "\n".join(f"{k}: {v}" for k, v in facts.items()),
    )
