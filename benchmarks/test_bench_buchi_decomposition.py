"""SEC24 — the Alpern–Schneider Büchi decomposition, and ABL2 — the
Gumm ⋁-completeness gap.

* Scaling series: decompose random NBAs of n = 2..40 states; verify the
  identity on bounded lassos; report sizes (|B_S|, |B_L|) and time per
  size — the "who wins, by what factor" shape is that decomposition is
  linear-time (graph algorithms) while exact complementation-based
  verification is exponential, so exact checks run only at tiny sizes.
* ABL2: the increasing chain L_k = "some a in the first k letters" has
  join ``F a`` *outside* any ⋁-completion argument available to finite
  unions (every finite union is a proper subset) — yet each member
  decomposes fine.  This is why Gumm's ⋁-complete framework misses the
  Büchi lattice and the paper's framework does not.
"""

import random

from repro.analysis import decompose
from repro.buchi import (
    finite_prefix_automaton,
    inclusion_counterexample,
    random_automaton,
)

from .conftest import emit


def _series(sizes, seeds_per_size=3):
    rng = random.Random(2024)
    rows = []
    lassos = None
    from repro.omega import all_lassos

    lassos = list(all_lassos("ab", 2, 2))
    for n in sizes:
        import time

        t0 = time.time()
        safety_states = liveness_states = 0
        for _ in range(seeds_per_size):
            m = random_automaton(rng, n)
            d = decompose(m)
            assert all(d.verify_on_word(w) for w in lassos)
            safety_states += len(d.safety.states)
            liveness_states += len(d.liveness.states)
        elapsed = (time.time() - t0) / seeds_per_size
        rows.append(
            (
                n,
                safety_states / seeds_per_size,
                liveness_states / seeds_per_size,
                elapsed,
            )
        )
    return rows


def test_decomposition_scaling(benchmark):
    rows = benchmark.pedantic(
        _series, args=([2, 5, 10, 20, 40],), rounds=1, iterations=1
    )
    body = ["  n   |B_S|   |B_L|   sec/instance"]
    for n, s, l, t in rows:
        body.append(f"{n:4d}  {s:6.1f}  {l:6.1f}  {t:8.4f}")
    emit("SEC24 — decomposition scaling (verified on 2/2-bounded lassos)", "\n".join(body))
    # the construction is graph-polynomial: B_L has at most 2|B| + 2^|B|
    # states only through the safety complement of cl(B); in practice the
    # subset automaton stays near-linear on random instances
    assert rows[-1][3] < 5.0


def _exact_small(n_instances=6):
    rng = random.Random(11)
    for _ in range(n_instances):
        m = random_automaton(rng, rng.randint(1, 3))
        d = decompose(m)
        assert d.verify_parts()
        assert d.verify_exact()
    return n_instances


def test_decomposition_exact_small(benchmark):
    n = benchmark.pedantic(_exact_small, rounds=1, iterations=1)
    emit(
        "SEC24 — exact verification (small sizes)",
        f"{n} random automata: parts typed (safety/liveness) and identity "
        f"L(B) = L(B_S) ∩ L(B_L) proved via complementation",
    )


def test_gumm_gap(benchmark):
    """ABL2 — a strictly increasing ω-chain of Büchi languages whose
    union is not reached by any finite join: witnesses that the Boolean
    algebra of ω-regular languages is not ⋁-complete in the pointwise
    sense Gumm's framework consumes (the chain's limit exists as an
    ω-regular language, but no finite join equals it — the lattice has
    no suprema for arbitrary families *of its own elements indexed
    beyond finite support*, so Gumm's hypotheses cannot be
    instantiated; the paper's Theorem 2 applies regardless)."""

    def build_chain(k_max=6):
        from repro.ltl import parse, translate

        chain = [
            finite_prefix_automaton(
                "ab", [tuple(p) for p in _words_with_a_within(k)], name=f"L{k}"
            )
            for k in range(1, k_max + 1)
        ]
        limit = translate(parse("F a"), "ab")
        strict = all(
            inclusion_counterexample(chain[i], chain[i + 1]) is None
            and inclusion_counterexample(chain[i + 1], chain[i]) is not None
            for i in range(len(chain) - 1)
        )
        below_limit = all(
            inclusion_counterexample(m, limit) is None for m in chain
        )
        proper = all(
            inclusion_counterexample(limit, m) is not None for m in chain
        )
        decomposable = all(decompose(m).verify_parts() for m in chain[:3])
        return strict, below_limit, proper, decomposable

    strict, below, proper, decomposable = benchmark.pedantic(
        build_chain, rounds=1, iterations=1
    )
    assert strict and below and proper and decomposable
    emit(
        "ABL2 — Gumm's ⋁-completeness gap",
        "chain L_1 ⊂ L_2 ⊂ … (a within the first k letters):\n"
        f"  strictly increasing: {strict}\n"
        f"  every member ⊂ F a : {below and proper}\n"
        f"  every member still decomposes by Theorem 2: {decomposable}",
    )


def _words_with_a_within(k):
    """All minimal prefixes over {a,b} that contain an 'a' within the
    first k letters: b^i a for i < k."""
    return [("b",) * i + ("a",) for i in range(k)]
