"""FIG2 — Figure 2: distributivity is necessary for Theorem 7.

Paper claim: on the (modular, non-distributive) diamond M3 with
cl(a) = s, we have ``s`` safe, ``a = s ∧ z`` and ``b ∈ cmp(cl.a)``, yet
``z ≤ a ∨ b`` fails — the weakest-liveness bound of Theorem 7 needs
distributivity.

Regenerated: the exact M3 instance, plus the positive control — on
every random *Boolean* (hence distributive) instance the bound holds.
"""

import random

from repro.lattice import (
    boolean_lattice,
    check_weakest_liveness,
    figure2,
    find_diamond,
    is_distributive,
    is_modular,
)
from repro.lattice.random_lattices import random_comparable_closure_pair

from .conftest import emit


def _figure2_instance() -> dict:
    fig = figure2()
    lat, cl = fig.lattice, fig.closure
    facts = {
        "modular": is_modular(lat),
        "distributive": is_distributive(lat),
        "diamond": find_diamond(lat),
        "s_is_safety": cl.is_safety("s"),
        "a_eq_s_meet_z": lat.meet("s", "z") == "a",
        "b_in_cmp": "b" in lat.complements(cl("a")),
        "bound_holds": lat.leq("z", lat.join("a", "b")),
        "theorem7_check": check_weakest_liveness(
            lat, cl, cl, "a", require_distributive=False
        ),
    }
    return facts


def test_fig2_paper_instance(benchmark):
    facts = benchmark(_figure2_instance)
    assert facts["modular"] and not facts["distributive"]
    assert facts["s_is_safety"] and facts["a_eq_s_meet_z"] and facts["b_in_cmp"]
    assert not facts["bound_holds"]  # the caption's failure
    assert not facts["theorem7_check"]
    emit(
        "FIG2 — M3 diamond (Theorem 7 needs distributivity)",
        "\n".join(f"{k}: {v}" for k, v in facts.items()),
    )


def _distributive_control(n_lattices: int = 12) -> int:
    rng = random.Random(7)
    checked = 0
    for _ in range(n_lattices):
        lat = boolean_lattice(rng.randint(1, 3))
        cl1, cl2 = random_comparable_closure_pair(rng, lat)
        for a in lat.elements:
            assert check_weakest_liveness(lat, cl1, cl2, a)
            checked += 1
    return checked


def test_fig2_distributive_control(benchmark):
    checked = benchmark.pedantic(_distributive_control, rounds=1, iterations=1)
    emit(
        "FIG2 — distributive control",
        f"Theorem 7 bound verified on {checked} Boolean-algebra instances "
        f"(paper: holds in every distributive lattice)",
    )
    assert checked > 50
