"""What the ops plane costs — the observability-overhead price list.

The same warm 100-request workload as ``test_bench_service`` is served
under four instrumentation configurations:

* **off** — ``journal=None, track_inflight=False``: no request
  contexts, no journal (the PR-4 baseline);
* **journal+context** — the default production posture: every request
  carries a :class:`RequestContext` (in-flight table, phase attribution,
  slow-log) and the journal records lifecycle edges and anomalies; a
  *healthy* request journals zero events — that design choice **is** the
  overhead budget's mechanism;
* **debug posture** — ``min_level="debug"``: the fully-correlated
  per-request stream (admitted, cache outcome, completion — three
  recorded events per request), priced honestly as what flipping the
  knob costs;
* **journal+context+sampler** — production posture while a 50 Hz
  :class:`~repro.ops.sampler.SamplingProfiler` samples every thread
  (the ``/debug/profile`` steady-state cost).

All measurements land in ``BENCH_obs_overhead.json``.  Because the
per-request delta (a few µs) is far below the run-to-run allocator and
frequency noise of whole-pass timings, the headline ratios come from
*paired interleaved* A/B passes: off and instrumented alternate within
one measurement loop (order swapping each round to cancel drift), each
round contributes one b/a ratio, and the headline is the median of
those per-round ratios — across repeated trials this estimator was
stable to ~±1% where sequential A/B swung ±10%.  The fastest-quartile
ratio (noise-robust floor) is reported alongside, and so is a **null
ratio** — the same estimator applied to two *identical* off-config
services — which calibrates the measurement floor itself (two equal
configs read as +1–2% on a shared box purely from heap layout and
interference; overhead claims below that line are not resolvable by
wall timing).  The isolated per-request instrumentation sequence is
additionally timed tightly and reported as
``instrumentation_us_per_request`` — the component-level truth.  The
acceptance budget is journal+context ≤ 5% of warm throughput on an
idle machine; the *enforced* bars are looser (see
``test_overhead_budget``) so a loaded CI runner cannot flake a correct
build, while the honest measured ratios are printed and persisted.
"""

import statistics
import time
import timeit

from repro.obs.context import RequestContext, use_context
from repro.ops.journal import DEBUG, EventJournal
from repro.ops.sampler import SamplingProfiler
from repro.service import AnalysisService, ResultCache

from .conftest import emit
from .test_bench_service import _serve, _workload


def _warm_service(**ops_kwargs) -> AnalysisService:
    service = AnalysisService(
        workers=0, cache=ResultCache(maxsize=1024), **ops_kwargs
    )
    _serve(service, _workload())  # populate the cache
    return service


def _off_kwargs():
    return {"journal": None, "track_inflight": False}


def _production_kwargs():
    # the default posture: min_level=info → anomalies only
    return {"journal": EventJournal(maxlen=65536), "track_inflight": True}


def _debug_kwargs():
    return {
        "journal": EventJournal(maxlen=262144, min_level="debug"),
        "track_inflight": True,
    }


def _fastest_quartile(samples: list[float]) -> float:
    """Mean of the fastest quartile — the standard noise-robust
    estimator for 'what does this code cost absent interference'."""
    ordered = sorted(samples)
    keep = max(1, len(ordered) // 4)
    return sum(ordered[:keep]) / keep


def _interleaved_ratios(service_a, service_b, rounds: int = 48) -> dict:
    """Paired pass-time ratios b/a: the services run back-to-back
    within each round (order swapping every round), each round yields
    one tb/ta ratio, and the headline is the median of those paired
    ratios — by far the most drift-resistant estimator we trialled.
    The fastest-quartile ratio is reported alongside as the low-noise
    floor."""
    workloads = [_workload() for _ in range(4)]

    def one_pass(service, workload):
        start = time.perf_counter()
        _serve(service, workload)
        return time.perf_counter() - start

    times_a, times_b, paired = [], [], []
    for round_index in range(rounds):
        workload = workloads[round_index % len(workloads)]
        if round_index % 2 == 0:
            time_a = one_pass(service_a, workload)
            time_b = one_pass(service_b, workload)
        else:
            time_b = one_pass(service_b, workload)
            time_a = one_pass(service_a, workload)
        times_a.append(time_a)
        times_b.append(time_b)
        paired.append(time_b / time_a)
    return {
        "median": statistics.median(paired),
        "fastest_quartile": _fastest_quartile(times_b) / _fastest_quartile(times_a),
    }


def _instrumentation_us_per_request() -> float:
    """The isolated per-request production-posture instrumentation
    sequence (context create + phase notes + activation + the journal
    level checks), timed tightly."""
    journal = EventJournal(maxlen=65536)
    number = 50_000
    seconds = timeit.timeit(
        stmt=(
            'ctx = RequestContext(kind="decompose", deadline=None)\n'
            'ctx.note_phase("queue", 1e-5)\n'
            "active = use_context(ctx)\n"
            "active.__enter__()\n"
            'ctx.note_phase("compute", 5e-5)\n'
            "rid = ctx.request_id\n"
            "if journal.min_level <= DEBUG:\n"
            '    journal.emit("service.request_done", DEBUG, request_id=rid)\n'
            "active.__exit__()\n"
        ),
        globals={
            "RequestContext": RequestContext,
            "use_context": use_context,
            "journal": journal,
            "DEBUG": DEBUG,
        },
        number=number,
    )
    return seconds / number * 1e6


def test_warm_instrumentation_off(benchmark):
    service = _warm_service(**_off_kwargs())
    benchmark(_serve, service, _workload())
    assert service.cache.info().hits >= 100


def test_warm_journal_and_context(benchmark):
    service = _warm_service(**_production_kwargs())
    benchmark(_serve, service, _workload())
    # the production posture's contract: contexts flowed (the slow-log
    # machinery and in-flight table were live) but healthy traffic
    # journaled nothing — the ring holds zero per-request events
    assert service.journal.stats()["dropped"] == 0
    assert len(service.journal) == 0
    # the honest headline numbers, measured the low-noise way; the null
    # ratio (off vs an identical second off instance) calibrates the
    # floor of the measurement itself
    ratios = _interleaved_ratios(
        _warm_service(**_off_kwargs()), _warm_service(**_production_kwargs()),
    )
    null = _interleaved_ratios(
        _warm_service(**_off_kwargs()), _warm_service(**_off_kwargs()),
    )
    benchmark.extra_info["interleaved_overhead_ratio"] = round(
        ratios["median"], 4
    )
    benchmark.extra_info["interleaved_overhead_ratio_quartile"] = round(
        ratios["fastest_quartile"], 4
    )
    benchmark.extra_info["interleaved_null_ratio"] = round(null["median"], 4)
    benchmark.extra_info["instrumentation_us_per_request"] = round(
        _instrumentation_us_per_request(), 3
    )


def test_warm_journal_debug_posture(benchmark):
    service = _warm_service(**_debug_kwargs())
    benchmark(_serve, service, _workload())
    # every request journaled its full correlated stream
    done = service.journal.events(name="service.request_done")
    assert len(done) >= 100
    assert service.journal.stats()["dropped"] == 0
    ratios = _interleaved_ratios(
        _warm_service(**_off_kwargs()), _warm_service(**_debug_kwargs()),
    )
    benchmark.extra_info["interleaved_overhead_ratio"] = round(
        ratios["median"], 4
    )
    benchmark.extra_info["interleaved_overhead_ratio_quartile"] = round(
        ratios["fastest_quartile"], 4
    )
    benchmark.extra_info["events_per_request"] = 3


def test_warm_journal_context_and_sampler_50hz(benchmark):
    service = _warm_service(**_production_kwargs())
    profiler = SamplingProfiler(hz=50, journal=None)
    profiler.start()
    try:
        benchmark(_serve, service, _workload())
    finally:
        profiler.stop()
    assert profiler.samples > 0
    benchmark.extra_info["sampler_hz"] = 50
    benchmark.extra_info["sampler_samples"] = profiler.samples
    benchmark.extra_info["sampler_overhead_ratio"] = round(
        profiler.overhead_ratio(), 6
    )


def test_overhead_budget():
    """The budget check, measured interleaved.  Reported honestly;
    enforced leniently (see module docstring)."""
    off = _warm_service(**_off_kwargs())
    production = _warm_service(**_production_kwargs())
    debug = _warm_service(**_debug_kwargs())

    ratio_null = _interleaved_ratios(off, _warm_service(**_off_kwargs()))
    ratio_production = _interleaved_ratios(off, production)
    ratio_debug = _interleaved_ratios(off, debug)

    sampled = _warm_service(**_production_kwargs())
    with SamplingProfiler(hz=50, journal=None) as profiler:
        ratio_sampled = _interleaved_ratios(off, sampled, rounds=24)

    instr_us = _instrumentation_us_per_request()
    emit(
        "ops — observability overhead (warm 100-request workload, paired)",
        f"journal+context {(ratio_production['median'] - 1) * 100:+.1f}%   "
        f"debug posture {(ratio_debug['median'] - 1) * 100:+.1f}%   "
        f"+sampler@50Hz {(ratio_sampled['median'] - 1) * 100:+.1f}%   "
        f"null (off vs off) {(ratio_null['median'] - 1) * 100:+.1f}%   "
        f"instrumentation {instr_us:.2f}us/request   "
        f"sampler self-measured duty {profiler.overhead_ratio():.4%}",
    )
    # the 5% acceptance budget is read off the committed JSON from an
    # idle machine; the CI-proof bars below only catch order-of-
    # magnitude regressions (e.g. an accidental O(n) scan per request)
    assert ratio_production["median"] <= 1.15, ratio_production
    assert ratio_debug["median"] <= 1.50, ratio_debug
    assert ratio_sampled["median"] <= 1.60, ratio_sampled
    # the instrumentation sequence itself must stay in the few-µs class
    assert instr_us <= 15.0, instr_us
