"""RV engine throughput — the serving-scale payoff of compiled monitors.

Times (a) monitor compilation, cold vs LRU-cached — the translate →
closure → live-states pipeline the cache amortizes across sessions —
and (b) end-to-end engine throughput (events/second) at batch sizes
1, 64 and 1024 over 100 concurrent sessions, checked verdict-for-
verdict against the one-shot ``RvMonitor`` reference.
"""

import random

import pytest

from repro.ltl import RvMonitor, parse
from repro.rv import CompileCache, RvEngine

from .conftest import emit

SPECS = ["G a", "F b", "G (a -> X b)", "GF a", "a & F !a"]


def _compile_all(cache: CompileCache) -> CompileCache:
    for spec in SPECS:
        cache.get(parse(spec), "ab")
    return cache


def test_compile_uncached(benchmark):
    cache = benchmark.pedantic(
        _compile_all, setup=lambda: ((CompileCache(),), {}), rounds=10, iterations=1
    )
    assert cache.info().misses == len(SPECS)


def test_compile_cached(benchmark):
    cache = _compile_all(CompileCache())  # warm
    benchmark(_compile_all, cache)
    info = cache.info()
    assert info.misses == len(SPECS) and info.hits >= len(SPECS)
    emit(
        "RV — compile cache",
        f"cold misses={info.misses}  warm hits={info.hits}  "
        f"resident tables={info.size}",
    )


def _workload(n_sessions: int, trace_len: int):
    rng = random.Random(7)
    traces = {i: [rng.choice("ab") for _ in range(trace_len)] for i in range(n_sessions)}
    stream = [(i, traces[i][j]) for j in range(trace_len) for i in range(n_sessions)]
    return traces, stream


def _run_batches(engine: RvEngine, stream, batch_size: int) -> None:
    for k in range(0, len(stream), batch_size):
        engine.ingest(stream[k : k + batch_size])


@pytest.mark.parametrize("batch_size", [1, 64, 1024])
def test_engine_throughput(benchmark, batch_size):
    n_sessions, trace_len = 100, 100
    traces, stream = _workload(n_sessions, trace_len)
    cache = _compile_all(CompileCache())

    def setup():
        engine = RvEngine(cache=cache)
        for i in range(n_sessions):
            engine.open_session(i, parse(SPECS[i % len(SPECS)]), "ab")
        return (engine,), {}

    def ingest_all(engine):
        _run_batches(engine, stream, batch_size)
        return engine

    engine = benchmark.pedantic(ingest_all, setup=setup, rounds=3, iterations=1)
    for i in range(n_sessions):
        expected = RvMonitor(parse(SPECS[i % len(SPECS)]), "ab").run(traces[i])
        assert engine.sessions.get(i).verdict is expected
    events = len(stream)
    seconds = benchmark.stats.stats.mean
    emit(
        f"RV — engine throughput, batch={batch_size}",
        f"{events:,} events over {n_sessions} sessions: "
        f"{events / seconds:,.0f} events/s "
        f"(mean batch-stream time {seconds * 1e3:.1f} ms)",
    )
