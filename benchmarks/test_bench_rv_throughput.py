"""RV engine throughput — the serving-scale payoff of compiled monitors.

Times (a) monitor compilation, cold vs LRU-cached — the decompose →
closure → subset-table pipeline the cache amortizes across sessions —
(b) end-to-end engine throughput (events/second) at batch sizes 1, 64
and 1024 over 100 concurrent sessions, checked verdict-for-verdict
against the one-shot ``RvMonitor`` reference, and (c) the same stream
under a finitary horizon (PR 10): four-valued verdict tracking with
per-verdict latency percentiles recorded in ``extra_info`` (and hence
in ``BENCH_rv_throughput.json``).
"""

import random
from collections import Counter

import pytest

from repro.ltl import RvMonitor, parse
from repro.rv import CompileCache, RvEngine

from .conftest import emit

SPECS = ["G a", "F b", "G (a -> X b)", "GF a", "a & F !a"]


def _compile_all(cache: CompileCache) -> CompileCache:
    for spec in SPECS:
        cache.get(parse(spec), "ab")
    return cache


def test_compile_uncached(benchmark):
    cache = benchmark.pedantic(
        _compile_all, setup=lambda: ((CompileCache(),), {}), rounds=10, iterations=1
    )
    assert cache.info().misses == len(SPECS)


def test_compile_cached(benchmark):
    cache = _compile_all(CompileCache())  # warm
    benchmark(_compile_all, cache)
    info = cache.info()
    assert info.misses == len(SPECS) and info.hits >= len(SPECS)
    emit(
        "RV — compile cache",
        f"cold misses={info.misses}  warm hits={info.hits}  "
        f"resident tables={info.size}",
    )


def _workload(n_sessions: int, trace_len: int):
    rng = random.Random(7)
    traces = {i: [rng.choice("ab") for _ in range(trace_len)] for i in range(n_sessions)}
    stream = [(i, traces[i][j]) for j in range(trace_len) for i in range(n_sessions)]
    return traces, stream


def _run_batches(engine: RvEngine, stream, batch_size: int) -> None:
    for k in range(0, len(stream), batch_size):
        engine.ingest(stream[k : k + batch_size])


@pytest.mark.parametrize("batch_size", [1, 64, 1024])
def test_engine_throughput(benchmark, batch_size):
    n_sessions, trace_len = 100, 100
    traces, stream = _workload(n_sessions, trace_len)
    cache = _compile_all(CompileCache())

    def setup():
        engine = RvEngine(cache=cache)
        for i in range(n_sessions):
            engine.open_session(i, parse(SPECS[i % len(SPECS)]), "ab")
        return (engine,), {}

    def ingest_all(engine):
        _run_batches(engine, stream, batch_size)
        return engine

    engine = benchmark.pedantic(ingest_all, setup=setup, rounds=3, iterations=1)
    for i in range(n_sessions):
        expected = RvMonitor(parse(SPECS[i % len(SPECS)]), "ab").run(traces[i])
        assert engine.sessions.get(i).verdict is expected
    events = len(stream)
    seconds = benchmark.stats.stats.mean
    emit(
        f"RV — engine throughput, batch={batch_size}",
        f"{events:,} events over {n_sessions} sessions: "
        f"{events / seconds:,.0f} events/s "
        f"(mean batch-stream time {seconds * 1e3:.1f} ms)",
    )


def test_engine_throughput_finitary(benchmark):
    """The PR-10 stream: the batch-1024 workload with the liveness bound
    tracker live (horizon 6), so every drain also maintains waits and
    four-valued transitions.  Records per-verdict latency percentiles —
    session open → verdict transition — alongside the timing."""
    n_sessions, trace_len, horizon = 100, 100, 6
    traces, stream = _workload(n_sessions, trace_len)
    cache = _compile_all(CompileCache())

    def setup():
        engine = RvEngine(cache=cache, horizon=horizon)
        for i in range(n_sessions):
            engine.open_session(i, parse(SPECS[i % len(SPECS)]), "ab")
        return (engine,), {}

    def ingest_all(engine):
        _run_batches(engine, stream, 1024)
        return engine

    engine = benchmark.pedantic(ingest_all, setup=setup, rounds=3, iterations=1)
    tally = Counter(v.value for v in engine.verdicts4().values())
    assert len(tally) == 4, tally  # the whole lattice shows up
    snap = engine.stats.snapshot()
    events = len(stream)
    seconds = benchmark.stats.stats.mean
    benchmark.extra_info["horizon"] = horizon
    benchmark.extra_info["events_per_s"] = round(events / seconds)
    benchmark.extra_info["verdicts4"] = dict(tally)
    benchmark.extra_info["verdict_latency_us"] = snap["verdict_latency_us"]
    latency_cells = "  ".join(
        f"{verdict}: p50 {row['p50']:,.0f}µs p99 {row['p99']:,.0f}µs"
        for verdict, row in snap["verdict_latency_us"].items()
    )
    emit(
        "RV — finitary throughput, batch=1024, horizon=6",
        f"{events:,} events: {events / seconds:,.0f} events/s; "
        f"verdicts {dict(tally)}; latency {latency_cells}",
    )
