"""Certificate economics — what issuing and independently replaying a
decomposition certificate costs (DESIGN.md §10).

Two timings per domain: *issue* (serialize a finished decomposition,
gather witnesses, seal the digest) and *verify* (the stdlib-only
replay).  The certificate's JSON wire size — what a ``certify=True``
cache line carries on top of the bare answer — rides along in
``extra_info.payload_bytes``, so ``BENCH_certs.json`` records both the
latency and the storage price of trust.
"""

import random

import pytest

from repro.analysis import decompose
from repro.buchi.random_automata import random_automaton
from repro.certs import certificate_for, verify_certificate
from repro.lattice.random_lattices import (
    random_comparable_closure_pair,
    random_modular_complemented,
)

from .conftest import emit


def _buchi_decomposition():
    automaton = random_automaton(random.Random(42), 6, name="bench")
    return decompose(automaton)


def _lattice_decomposition():
    rng = random.Random(42)
    lattice = random_modular_complemented(rng, max_factors=2, max_diamond=4)
    cl1, cl2 = random_comparable_closure_pair(rng, lattice)
    return decompose(rng.choice(lattice.elements), closure=(cl1, cl2))


_SUBJECTS = {
    "buchi": _buchi_decomposition,
    "lattice": _lattice_decomposition,
}


@pytest.mark.parametrize("domain", sorted(_SUBJECTS))
def test_issue_certificate(benchmark, domain):
    decomposition = _SUBJECTS[domain]()
    certificate = benchmark(certificate_for, decomposition)
    payload_bytes = len(certificate.to_json().encode("utf-8"))
    benchmark.extra_info["domain"] = domain
    benchmark.extra_info["payload_bytes"] = payload_bytes
    emit(
        f"certs — issue ({domain})",
        f"payload={payload_bytes} bytes  "
        f"obligations={len(certificate.obligations)}",
    )


@pytest.mark.parametrize("domain", sorted(_SUBJECTS))
def test_verify_certificate(benchmark, domain):
    certificate = certificate_for(_SUBJECTS[domain]())
    result = benchmark(verify_certificate, certificate)
    assert result.ok, result.reason
    benchmark.extra_info["domain"] = domain
    benchmark.extra_info["payload_bytes"] = len(
        certificate.to_json().encode("utf-8")
    )
