"""THM2-3 — Theorems 2 and 3 at scale.

Sweep families of modular complemented lattices (Boolean algebras,
diamond products, the GF(2) subspace lattice) with random (comparable
pairs of) closures and verify the decomposition identity on every
element; report instances/second.
"""

import random

from repro.analysis import decompose
from repro.lattice import (
    LatticeClosure,
    boolean_lattice,
    subspace_lattice_gf2,
)
from repro.lattice.random_lattices import (
    random_closure,
    random_comparable_closure_pair,
    random_modular_complemented,
)

from .conftest import emit


def _theorem2_boolean_sweep(n_atoms: int, n_closures: int) -> int:
    rng = random.Random(42)
    lat = boolean_lattice(n_atoms)
    verified = 0
    for _ in range(n_closures):
        cl = random_closure(rng, lat)
        for a in lat.elements:
            d = decompose(a, closure=cl, check_hypotheses=False)
            assert d.verify()
            verified += 1
    return verified


def test_theorem2_on_boolean_algebras(benchmark):
    verified = benchmark.pedantic(
        _theorem2_boolean_sweep, args=(5, 8), rounds=1, iterations=1
    )
    emit(
        "THM2 — Boolean algebra sweep",
        f"2^5 lattice × 8 random closures: {verified} decompositions verified",
    )
    assert verified == 8 * 32


def _theorem3_modular_sweep(n_lattices: int) -> int:
    rng = random.Random(1234)
    verified = 0
    for _ in range(n_lattices):
        lat = random_modular_complemented(rng, max_factors=2, max_diamond=4)
        cl1, cl2 = random_comparable_closure_pair(rng, lat)
        assert cl2.dominates(cl1)
        for a in lat.elements:
            d = decompose(a, closure=(cl1, cl2), check_hypotheses=False)
            assert d.verify()
            verified += 1
    return verified


def test_theorem3_on_modular_nondistributive(benchmark):
    verified = benchmark.pedantic(
        _theorem3_modular_sweep, args=(15,), rounds=1, iterations=1
    )
    emit(
        "THM3 — modular complemented sweep (beyond Boolean algebras)",
        f"15 random diamond-product lattices, two-closure decompositions "
        f"verified: {verified}",
    )
    assert verified > 100


def _subspace_lattice_instance() -> int:
    """The flagship non-Boolean case: subspaces of GF(2)^3 — modular,
    complemented, non-distributive; prior frameworks do not apply."""
    lat = subspace_lattice_gf2(3)
    rng = random.Random(9)
    verified = 0
    for _ in range(3):
        cl = random_closure(rng, lat, density=0.3)
        for a in lat.elements:
            d = decompose(a, closure=cl, check_hypotheses=False)
            assert d.verify()
            verified += 1
    return verified


def test_theorem2_on_subspace_lattice(benchmark):
    verified = benchmark.pedantic(_subspace_lattice_instance, rounds=1, iterations=1)
    emit(
        "THM2 — GF(2)^3 subspace lattice",
        f"modular complemented non-distributive, {verified} decompositions "
        f"verified (16 subspaces × 3 closures)",
    )
    assert verified == 48
