"""APP1 — decomposed verification of reactive systems (§1 motivation).

For every model × spec: check the safety conjunct by reachability (bad
prefix), the liveness conjunct by fair-cycle search, and confirm the
conjunction of verdicts equals the monolithic model checker.  The table
printed is the reproduction artifact; the timing compares the
decomposed pipeline with the monolithic one.
"""

import time

from repro.analysis import systems_table
from repro.systems import (
    alternating_bit,
    alternating_bit_specs,
    bakery,
    bakery_specs,
    check,
    check_decomposed,
    dining_philosophers,
    msi_cache,
    msi_specs,
    peterson,
    peterson_specs,
    philosophers_specs,
    token_ring,
    token_ring_specs,
    traffic_light,
    traffic_specs,
)

from .conftest import emit

MODELS = [
    (peterson, peterson_specs),
    (bakery, bakery_specs),
    (alternating_bit, alternating_bit_specs),
    (dining_philosophers, philosophers_specs),
    (msi_cache, msi_specs),
    (token_ring, token_ring_specs),
    (traffic_light, traffic_specs),
]


def _verify_everything() -> dict:
    stats = {"specs": 0, "agreements": 0, "mono_s": 0.0, "split_s": 0.0}
    for build, specs_fn in MODELS:
        kripke = build()
        for spec in specs_fn(kripke):
            stats["specs"] += 1
            t0 = time.time()
            mono = check(kripke, spec.formula)
            stats["mono_s"] += time.time() - t0
            t0 = time.time()
            split = check_decomposed(kripke, spec.formula)
            stats["split_s"] += time.time() - t0
            assert mono.holds == spec.should_hold, spec.name
            if split.holds == mono.holds:
                stats["agreements"] += 1
    return stats


def test_decomposed_verification(benchmark):
    stats = benchmark.pedantic(_verify_everything, rounds=1, iterations=1)
    assert stats["agreements"] == stats["specs"]
    emit("APP1 — systems × specs", systems_table())
    emit(
        "APP1 — timing",
        f"{stats['specs']} specs; monolithic {stats['mono_s']:.2f}s, "
        f"decomposed {stats['split_s']:.2f}s "
        f"(decomposed does two products; the win is the *artifact* — "
        f"finite bad prefixes for safety, fair cycles for liveness)",
    )
