"""TAB2 — the §4.3 table: q0–q6 in the branching-time framework.

Regenerates, over the sample-tree zoo: the membership matrix, the
bounded-fcl facts (fcl q3a = q1; fcl q4* = fcl q5* = A_tot on samples;
q0/q1/q2/q6 closed), and the paper's ncl refutation witness (the frozen
all-a path).
"""

from repro.analysis import q_table
from repro.ctl import (
    bounded_fcl_member,
    holds_on_tree,
    q_examples,
    sample_trees,
    two_path_witness,
)
from repro.ltl import parse, satisfies
from repro.trees import partial_prefix_of_regular

from .conftest import emit

TREES = sample_trees()
Q = {e.identifier: e for e in q_examples()}


def _fcl_facts() -> dict:
    facts = {}
    # safety rows: closure adds nothing
    for qid in ("q1", "q2", "q6"):
        facts[f"fcl_{qid}_fixed"] = all(
            holds_on_tree(t, Q[qid].formula) == bounded_fcl_member(t, qid, 3)
            for t in TREES.values()
        )
    # fcl q3a = q1
    facts["fcl_q3a_eq_q1"] = all(
        holds_on_tree(t, Q["q1"].formula) == bounded_fcl_member(t, "q3a", 3)
        for t in TREES.values()
    )
    # liveness rows: closure is everything
    for qid in ("q4a", "q4b", "q5a", "q5b"):
        facts[f"fcl_{qid}_universal"] = all(
            bounded_fcl_member(t, qid, 3) for t in TREES.values()
        )
    return facts


def test_q_table_fcl_rows(benchmark):
    facts = benchmark.pedantic(_fcl_facts, rounds=1, iterations=1)
    assert all(facts.values()), facts
    emit("TAB2 — §4.3 q table", q_table())
    emit(
        "TAB2 — fcl facts",
        "\n".join(f"{k}: {v}" for k, v in facts.items()),
    )


def _ncl_witness_facts() -> dict:
    witness, frozen = two_path_witness()
    return {
        "witness_prefixes_split": partial_prefix_of_regular(
            witness, TREES["split"]
        ),
        "frozen_path_all_a": satisfies(frozen, parse("G a")),
        "violates_AF_not_a": not satisfies(frozen, parse("F b")),
        "violates_AFG_not_a": not satisfies(frozen, parse("FG b")),
        "split_in_q1": holds_on_tree(TREES["split"], Q["q1"].formula),
        "split_not_in_q3a": not holds_on_tree(TREES["split"], Q["q3a"].formula),
    }


def test_q_table_ncl_witness(benchmark):
    facts = benchmark(_ncl_witness_facts)
    assert all(facts.values()), facts
    emit(
        "TAB2 — ncl refutation (paper's two-path witness)",
        "\n".join(f"{k}: {v}" for k, v in facts.items())
        + "\n=> split ∈ q1 but split ∉ ncl.q3a: ncl.q3a ≠ q1 (paper §4.3)",
    )
