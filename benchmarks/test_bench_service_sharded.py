"""Sharded tier vs one process: 16 concurrent clients over a working
set bigger than any single cache (DESIGN.md §13).

The container CI runs on has **one core**, so this benchmark does not —
and honestly cannot — claim a parallel-compute win.  What it measures is
the tentpole's actual mechanism: *shard-affine cache capacity*.  Both
tiers get the same per-process cache budget (``CACHE_LINES`` lines).
The 160-subject working set, cycled by 16 client threads, overflows one
process's LRU — the single tier recomputes nearly every answer on every
pass — while the consistent-hash router splits the same set into
per-shard partitions that each fit their shard's cache, so the sharded
tier answers steady-state passes almost entirely from cache *despite*
paying wire-protocol overhead (frames, JSON, pipes) on every request
that the in-process baseline never pays.

CI enforces a conservative ≥ 2× wall-clock floor (measured ≈ 4× on an
idle machine) plus timing-robust mechanism checks: the single tier's
hit ratio must stay low (it really thrashes), the sharded tier's must
stay high (partitions really fit), and no shard's partition may exceed
its cache budget.  p99 latency and per-shard occupancy are recorded in
``BENCH_service_sharded.json`` via ``extra_info``.
"""

import math
import os
import statistics
import time
import types
from concurrent.futures import ThreadPoolExecutor

from repro.ltl import parse
from repro.service import (
    CheckRequest,
    ClassifyRequest,
    Client,
    DecomposeRequest,
    ResultCache,
)

from .conftest import emit

N_CLIENTS = 16
N_SHARDS = 4
#: Per-process result-cache budget (lines) — identical for both tiers:
#: the sharded win must come from partitioning, not a bigger allowance.
CACHE_LINES = 96
PASSES = 5
SPEEDUP_FLOOR = 2.0

ALPHABET = frozenset({"a", "b"})
_LITERALS = ("a", "b", "(a & b)", "(a | b)", "!a")

#: Cross-test stash: the single-process tier's measured pass median,
#: read by the sharded test to compute (and enforce) the speedup.
_measured = types.SimpleNamespace(single_median_s=None)


def _formula_text(shape: int, nesting: int, variant: int) -> str:
    """One of 8 shapes × 4 nesting depths × 5 literal pairs = 160
    syntactically distinct formulas (a handful coincide up to automaton
    isomorphism; the effective key set stays well above any one cache)."""
    nxt = "X " * nesting
    p = _LITERALS[variant]
    q = _LITERALS[(variant + 1 + shape) % len(_LITERALS)]
    shapes = (
        f"G ({p} -> {nxt}{q})",
        f"F ({nxt}({p} & {q}))",
        f"({p} U {nxt}{q})",
        f"G F ({p} & {nxt}{q})",
        f"({p} W {nxt}{q})",
        f"F G ({p} | {nxt}{q})",
        f"G ({p} | {nxt}{q})",
        f"({nxt}{p} U {q})",
    )
    return shapes[shape]


#: The check() slice of the workload — deliberately simple formulas:
#: CheckRequest costs are wildly subject-dependent (a complement blows
#: up exponentially on deep X-nesting), and a benchmark about *cache
#: capacity* must not be dominated by one pathological subject.
_CHECK_FORMULAS = (
    "G a", "F b", "a U b", "G F a", "F G b", "a W b",
    "G (a -> b)", "F (a & b)", "G (a | b)", "a U (a & b)",
    "b U a", "F !a", "G !b", "G F (a | b)", "F G (a & b)",
    "(a -> b) U b",
)


def _working_set():
    """160 distinct mixed requests — the kind is part of the cache key —
    totalling > CACHE_LINES, so one process must thrash while each of
    ``N_SHARDS`` partitions fits: 120 decomposes over the deep formula
    family (the dense-kernel-bound bulk), 24 shallow classifies, 16
    simple checks."""
    decomposes = [
        DecomposeRequest(parse(_formula_text(shape, nesting, variant)),
                         alphabet=ALPHABET)
        for shape in range(8)
        for nesting in range(2, 5)
        for variant in range(5)
    ]
    classifies = [
        ClassifyRequest(parse(_formula_text(shape, 1, variant)),
                        alphabet=ALPHABET)
        for shape in range(8)
        for variant in range(3)
    ]
    checks = [CheckRequest(parse(text), alphabet=ALPHABET)
              for text in _CHECK_FORMULAS]
    return decomposes + classifies + checks


def _drive(client, requests):
    """One pass: ``N_CLIENTS`` threads split the working set round-robin
    and submit synchronously.  Returns (wall seconds, per-request
    latencies)."""
    def one_client(chunk):
        latencies = []
        for request in chunk:
            started = time.perf_counter()
            client.submit(request, timeout=120).result()
            latencies.append(time.perf_counter() - started)
        return latencies

    chunks = [requests[index::N_CLIENTS] for index in range(N_CLIENTS)]
    with ThreadPoolExecutor(N_CLIENTS) as pool:
        started = time.perf_counter()
        futures = [pool.submit(one_client, chunk) for chunk in chunks]
        latencies = [sample for future in futures for sample in future.result()]
    return time.perf_counter() - started, latencies


def _p99_ms(latencies) -> float:
    ordered = sorted(latencies)
    return ordered[max(0, math.ceil(len(ordered) * 0.99) - 1)] * 1e3


def _single_process_passes(rounds=3):
    """Baseline helper: measured pass durations for the one-process tier
    (used directly if the benchmark test below was deselected)."""
    client = Client.in_process(workers=4, max_pending=64,
                               cache=ResultCache(maxsize=CACHE_LINES))
    requests = _working_set()
    try:
        _drive(client, requests)  # steady state is thrash from pass one
        return [_drive(client, requests)[0] for _ in range(rounds)]
    finally:
        client.close()


def test_single_process_tier_16_clients(benchmark):
    """The baseline: today's in-process service, no wire overhead at
    all, but one LRU that the working set overflows every pass."""
    client = Client.in_process(workers=4, max_pending=64,
                               cache=ResultCache(maxsize=CACHE_LINES))
    requests = _working_set()
    _drive(client, requests)  # entry pass; steady state thrashes anyway

    durations, latencies = [], []

    def one_pass():
        duration, samples = _drive(client, requests)
        durations.append(duration)
        latencies.extend(samples)

    benchmark.pedantic(one_pass, rounds=PASSES, iterations=1)
    info = client.transport.service.cache.info()
    client.close()

    hit_ratio = info.hits / max(1, info.hits + info.misses)
    median = statistics.median(durations)
    _measured.single_median_s = median
    benchmark.extra_info.update({
        "clients": N_CLIENTS,
        "requests_per_pass": len(requests),
        "requests_per_second": round(len(requests) / median, 1),
        "p99_ms": round(_p99_ms(latencies), 2),
        "hit_ratio": round(hit_ratio, 4),
        "cache_lines": CACHE_LINES,
        "cpu_count": os.cpu_count(),
    })
    emit(
        "sharded — single-process baseline (16 clients, 160 subjects)",
        f"pass median={median * 1e3:.0f}ms  p99={_p99_ms(latencies):.1f}ms  "
        f"hit_ratio={hit_ratio:.2%} (cache {CACHE_LINES} < working set)",
    )
    # The working set must genuinely overflow one process's cache —
    # otherwise the comparison below would measure nothing.
    assert hit_ratio < 0.25, hit_ratio


def test_sharded_tier_16_clients(benchmark):
    """The tentpole: same per-process cache budget, same clients, same
    working set — partitioned across 4 shards behind the router."""
    client = Client.sharded(shards=N_SHARDS, workers_per_shard=2,
                            cache_size=CACHE_LINES,
                            max_pending_per_shard=64)
    requests = _working_set()
    _drive(client, requests)  # cold pass: each shard faults in its partition

    durations, latencies = [], []

    def one_pass():
        duration, samples = _drive(client, requests)
        durations.append(duration)
        latencies.extend(samples)

    benchmark.pedantic(one_pass, rounds=PASSES, iterations=1)
    aggregate = client.transport.service.cache.stats()
    by_shard = client.transport.service.cache.stats_by_shard()
    client.close()

    hit_ratio = aggregate.hits / max(1, aggregate.hits + aggregate.misses)
    occupancy = {str(index): stats.entries
                 for index, stats in sorted(by_shard.items())}
    median = statistics.median(durations)
    single_median = _measured.single_median_s
    if single_median is None:  # deselected baseline: measure it here
        single_median = statistics.median(_single_process_passes())
    speedup = single_median / median

    benchmark.extra_info.update({
        "clients": N_CLIENTS,
        "shards": N_SHARDS,
        "requests_per_pass": len(requests),
        "requests_per_second": round(len(requests) / median, 1),
        "p99_ms": round(_p99_ms(latencies), 2),
        "hit_ratio": round(hit_ratio, 4),
        "cache_lines": CACHE_LINES,
        "entries_by_shard": occupancy,
        "speedup_vs_single_process": round(speedup, 2),
        "cpu_count": os.cpu_count(),
    })
    emit(
        "sharded — 4-shard tier (16 clients, 160 subjects)",
        f"pass median={median * 1e3:.0f}ms  p99={_p99_ms(latencies):.1f}ms  "
        f"hit_ratio={hit_ratio:.2%}  entries_by_shard={occupancy}  "
        f"speedup={speedup:.2f}x vs single process",
    )
    # Mechanism checks — timing-robust, so a loaded runner cannot turn a
    # correct build into a flake:
    # every shard's partition fits its cache (nothing thrashes) ...
    assert max(stats.entries for stats in by_shard.values()) <= CACHE_LINES
    # ... so steady-state passes are served from cache ...
    assert hit_ratio > 0.70, hit_ratio
    # ... and the wall-clock floor holds with ~2× cushion (≈4× measured).
    assert speedup >= SPEEDUP_FLOOR, (single_median, median)
