"""FIG1 — Figure 1: modularity is necessary for the decomposition.

Paper claim (Lemma 6): on the pentagon N5 with cl(a) = b, the element
``a`` admits *no* factorization into a cl-safety and a cl-liveness
element — so Theorem 2's modularity hypothesis cannot be dropped.

Regenerated here: (i) the exact N5 instance, by exhaustive search over
all (safety, liveness) pairs and over *every* closure with cl(a) = b;
(ii) a sweep over random non-modular lattices, counting how often
non-modularity actually manifests as a decomposition failure.
"""

import random

from repro.lattice import (
    all_closures,
    all_decompositions,
    boolean_lattice,
    figure1,
    find_pentagon,
    is_modular,
    n5,
)
from repro.lattice.random_lattices import random_closure

from .conftest import emit


def _figure1_exhaustive() -> dict:
    fig = figure1()
    lat, cl = fig.lattice, fig.closure
    base = all_decompositions(lat, cl, cl, "a")
    failures = 0
    total = 0
    for other in all_closures(lat):
        if other("a") != "b":
            continue
        total += 1
        if not all_decompositions(lat, other, other, "a"):
            failures += 1
    return {"paper_instance": base, "closures_with_cl_a_b": total, "undecomposable": failures}


def test_fig1_paper_instance(benchmark):
    result = benchmark(_figure1_exhaustive)
    assert result["paper_instance"] == []  # Lemma 6, verbatim
    assert result["undecomposable"] >= 1
    emit(
        "FIG1 — N5 pentagon (Lemma 6)",
        f"decompositions of 'a' under the caption's closure: "
        f"{result['paper_instance']!r} (paper: none)\n"
        f"closures with cl(a)=b: {result['closures_with_cl_a_b']}, "
        f"of which leave 'a' undecomposable: {result['undecomposable']}",
    )


def _random_nonmodular_sweep(n_samples: int = 40) -> dict:
    """Sample sublattices of Boolean algebras augmented with N5 flaws by
    randomly deleting elements; count decomposition failures on
    non-modular samples."""
    rng = random.Random(2003)
    nonmodular = 0
    failures = 0
    inspected = 0
    while inspected < n_samples:
        base = boolean_lattice(3)
        keep = [x for x in base.elements if rng.random() < 0.7]
        keep.extend([base.bottom, base.top])
        try:
            lat = base.poset.restrict(set(keep))
            from repro.lattice import FiniteLattice

            lat = FiniteLattice(lat)
        except Exception:
            continue
        inspected += 1
        if is_modular(lat):
            continue
        nonmodular += 1
        assert find_pentagon(lat) is not None  # Dedekind, as a cross-check
        cl = random_closure(rng, lat, density=0.4)
        for a in lat.elements:
            if not all_decompositions(lat, cl, cl, a):
                failures += 1
                break
    return {"inspected": inspected, "nonmodular": nonmodular, "failures": failures}


def test_fig1_random_nonmodular_lattices(benchmark):
    result = benchmark.pedantic(_random_nonmodular_sweep, rounds=1, iterations=1)
    emit(
        "FIG1 — random non-modular sweep",
        f"samples: {result['inspected']}, non-modular: {result['nonmodular']}, "
        f"with an undecomposable element: {result['failures']}",
    )
    # non-modularity alone does not force failure for every closure;
    # the paper's point is that it *can* — N5 above is the certificate.
    assert result["nonmodular"] >= 1
