"""Analysis-service throughput — the cold vs warm payoff of canonical
cache keys (DESIGN.md §8), driven through the :class:`Client` facade.

A repeated 100-request workload (decompose/classify/check over a small
formula family, *with every subject freshly re-parsed and automata
freshly re-translated and renumbered* — so nothing is cached by object
identity, only up to isomorphism) is served twice: cold on an empty
cache, then warm.  The acceptance number for the PR — warm beats cold by
≥ 10× — is *reported* here into ``BENCH_service.json``; the CI-enforced
bar is deliberately lower (≥ 3× plus an exact all-hits cache check), so
a loaded shared runner cannot flake a correct build on wall-clock noise.
"""

import pytest

from repro.ltl import parse, translate
from repro.service import (
    CheckRequest,
    ClassifyRequest,
    Client,
    DecomposeRequest,
    ResultCache,
)

from .conftest import emit

FORMULAS = ["G a", "F b", "a U b", "GF a", "G (a -> X b)",
            "FG a", "a W b", "F (a & b)", "a & F !a", "G (a | b)"]
ALPHABET = frozenset({"a", "b"})


def _workload():
    """100 requests: 10 formulas × (decompose + classify + check) plus a
    renumbered-automaton decompose per formula — every subject is a
    fresh object, so hits prove canonical keys, not object identity."""
    requests = []
    for index, text in enumerate(FORMULAS):
        formula = parse(text)
        automaton = translate(formula, "ab").renumbered(f"w{index}")
        requests.extend([
            DecomposeRequest(formula, alphabet=ALPHABET),
            ClassifyRequest(formula, alphabet=ALPHABET),
            CheckRequest(formula, alphabet=ALPHABET),
            DecomposeRequest(automaton),
        ])
        # a second, differently-renumbered copy: isomorphic, must hit
        requests.append(
            DecomposeRequest(translate(formula, "ab").renumbered(f"v{index}"))
        )
    requests.extend(requests[:100 - len(requests)] if len(requests) < 100 else [])
    return requests[:100]


def _serve(client, requests):
    for request in requests:
        client.submit(request).result()


def test_cold_service(benchmark):
    def setup():
        return (Client.in_process(workers=0, cache=ResultCache()),
                _workload()), {}

    benchmark.pedantic(_serve, setup=setup, rounds=5, iterations=1)


def test_warm_service(benchmark):
    client = Client.in_process(workers=0, cache=ResultCache(maxsize=1024))
    requests = _workload()
    _serve(client, requests)  # populate
    benchmark(_serve, client, _workload())  # fresh objects, warm cache
    info = client.transport.service.cache.info()
    assert info.hits > info.misses


def test_certified_decompose_warm(benchmark):
    """A ``certify=True`` decompose served warm, with the certificate
    payload priced: ``extra_info.cert_payload_bytes`` records what the
    ``decompose+cert:`` cache line carries beyond the bare answer."""
    client = Client.in_process(workers=0, cache=ResultCache(maxsize=1024))
    formula = parse("G (a -> X b)")
    first = client.decompose(formula, alphabet=ALPHABET, certify=True)
    certificate = first.certificate
    assert certificate is not None

    reply = benchmark(client.decompose, formula, alphabet=ALPHABET,
                      certify=True)
    assert reply.cached is True
    payload_bytes = len(certificate.to_json().encode("utf-8"))
    benchmark.extra_info["cert_payload_bytes"] = payload_bytes
    emit(
        "service — certified decompose (warm)",
        f"key={first.key.split(':', 1)[0]}  "
        f"certificate payload={payload_bytes} bytes",
    )


def test_warm_beats_cold():
    """One workload served cold, then the same shape of workload —
    all-new subject objects — served warm.  The measured multiple is the
    reported benchmark metric (≥ 10× on an idle machine); what CI
    *enforces* is timing-robust: the warm pass must be answered entirely
    from cache, plus a conservative 3× wall-clock floor."""
    import time

    client = Client.in_process(workers=0, cache=ResultCache(maxsize=1024))
    cache = client.transport.service.cache
    cold_requests = _workload()
    t0 = time.perf_counter()
    _serve(client, cold_requests)
    cold = time.perf_counter() - t0

    before = cache.info()
    warm_requests = _workload()
    t0 = time.perf_counter()
    _serve(client, warm_requests)
    warm = time.perf_counter() - t0

    info = cache.info()
    speedup = cold / warm if warm > 0 else float("inf")
    emit(
        "service — cold vs warm (100-request workload)",
        f"cold={cold * 1e3:.1f}ms  warm={warm * 1e3:.1f}ms  "
        f"speedup={speedup:.1f}x  hits={info.hits}  misses={info.misses}",
    )
    # Every warm request is a fresh object, so these hits prove the
    # canonical keys, not object identity.
    assert info.hits - before.hits == len(warm_requests)
    assert info.misses == before.misses
    assert speedup >= 3.0, (cold, warm)
