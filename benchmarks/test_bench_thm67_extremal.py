"""THM5-7 — the extremal and impossibility theorems.

* Theorem 5: whenever cl2.a = 1 and cl1.a < 1, no (cl2-safety,
  cl1-liveness) factorization exists — verified by exhaustive search on
  random instances (including the paper's AF p-style branching-time
  shape via the sampled tree lattice).
* Theorem 6: cl1.a is the *strongest* safety conjunct.
* Theorem 7: a ∨ b is the *weakest* second conjunct (distributive case).
"""

import random

from repro.lattice import (
    boolean_lattice,
    check_strongest_safety,
    check_weakest_liveness,
    no_decomposition_witness,
    theorem5_applies,
)
from repro.lattice.random_lattices import (
    random_comparable_closure_pair,
    random_modular_complemented,
)

from .conftest import emit


def _theorem5_sweep(n_lattices: int) -> dict:
    rng = random.Random(55)
    applicable = 0
    refuted = 0
    for _ in range(n_lattices):
        lat = random_modular_complemented(rng, max_factors=2, max_diamond=3)
        cl1, cl2 = random_comparable_closure_pair(rng, lat)
        for a in lat.elements:
            if theorem5_applies(lat, cl1, cl2, a):
                applicable += 1
                if no_decomposition_witness(lat, cl1, cl2, a) is not None:
                    refuted += 1
    return {"applicable": applicable, "refuted": refuted}


def test_theorem5_impossibility(benchmark):
    result = benchmark.pedantic(_theorem5_sweep, args=(20,), rounds=1, iterations=1)
    assert result["refuted"] == 0
    assert result["applicable"] > 0
    emit(
        "THM5 — impossibility of the fourth decomposition",
        f"applicable (cl2.a=1, cl1.a<1) instances: {result['applicable']}, "
        f"counterexamples to the theorem: {result['refuted']}",
    )


def test_theorem5_branching_instance(benchmark):
    """The paper's own instance: AF p (here AF b) is fcl-live but not
    ncl-live, so no (universally-safe, existentially-live) decomposition
    exists — Theorem 5, run on the sampled tree lattice.

    Universe: the all-a tree plus the trees t_k = "a down to depth < k,
    then b forever".  Every finite truncation of all_a is a prefix of a
    deep-enough t_k (fcl-dense), but all_a's frozen all-a branch is a
    non-total prefix no AF-b tree extends (ncl-deficient).
    """
    from repro.ctl import AF, CNot, csym, holds_on_tree
    from repro.trees import (
        PartialRegularPrefix,
        RegularTree,
        closure_on_samples,
    )

    def a_then_b_tree(k: int) -> RegularTree:
        labels = {i: "a" for i in range(k)}
        labels[k] = "b"
        successors = {i: (i + 1, i + 1) for i in range(k)}
        successors[k] = (k, k)
        return RegularTree(labels, successors, 0)

    def build_and_check():
        all_a = RegularTree.constant("a", 2)
        universe = [all_a] + [a_then_b_tree(k) for k in (1, 2, 3)]
        depth = 2
        lattice, fcl = closure_on_samples(universe, depth_bound=depth, name="fcl")
        witnesses = {
            0: [PartialRegularPrefix.cut_except_branch(all_a, (0,), 1)]
        }
        _, ncl = closure_on_samples(
            universe, depth_bound=depth, partial_witnesses=witnesses, name="ncl"
        )
        afb = AF(csym("b"))
        a = frozenset(
            i for i, t in enumerate(universe) if holds_on_tree(t, afb)
        )
        applies = theorem5_applies(lattice, ncl, fcl, a)
        witness_pair = no_decomposition_witness(lattice, ncl, fcl, a)
        return a, applies, witness_pair

    a, applies, witness_pair = benchmark.pedantic(
        build_and_check, rounds=1, iterations=1
    )
    emit(
        "THM5 — branching-time instance (AF b on samples)",
        f"AF b on samples = {sorted(a)}; "
        f"precondition fcl.a=1 ∧ ncl.a<1: {applies}; "
        f"(fcl-safe, ncl-live) factorization found: {witness_pair}",
    )
    assert applies  # the paper's AF-p shape really triggers Theorem 5
    assert witness_pair is None


def _theorem6_sweep(n_lattices: int) -> int:
    rng = random.Random(66)
    checked = 0
    for _ in range(n_lattices):
        lat = random_modular_complemented(rng, max_factors=2, max_diamond=3)
        cl1, cl2 = random_comparable_closure_pair(rng, lat)
        for a in lat.elements:
            assert check_strongest_safety(lat, cl1, cl2, a)
            checked += 1
    return checked


def test_theorem6_strongest_safety(benchmark):
    checked = benchmark.pedantic(_theorem6_sweep, args=(12,), rounds=1, iterations=1)
    emit(
        "THM6 — extremal safety (machine closure)",
        f"cl1.a is below every safety conjunct in {checked} factorizations",
    )
    assert checked > 50


def _theorem7_sweep(n_lattices: int) -> int:
    rng = random.Random(77)
    checked = 0
    for _ in range(n_lattices):
        lat = boolean_lattice(rng.randint(2, 4))
        cl1, cl2 = random_comparable_closure_pair(rng, lat)
        for a in lat.elements:
            assert check_weakest_liveness(lat, cl1, cl2, a)
            checked += 1
    return checked


def test_theorem7_weakest_liveness(benchmark):
    checked = benchmark.pedantic(_theorem7_sweep, args=(8,), rounds=1, iterations=1)
    emit(
        "THM7 — extremal liveness (distributive lattices)",
        f"a ∨ b dominates the second conjunct in {checked} factorizations",
    )
    assert checked > 30
