"""THM9 — the Rabin tree automata pipeline.

Emptiness and membership run through LAR → parity → Zielonka; the
Theorem 9 decomposition produces a genuine Rabin safety automaton plus
a semantically represented liveness language, verified extensionally on
the regular-tree zoo (see DESIGN.md for the complementation
substitution).
"""

from repro.ctl import sample_trees
from repro.analysis import decompose
from repro.rabin import (
    RabinTreeAutomaton,
    accepts_tree,
    emptiness_witness,
    is_closure_automaton,
    nonempty_states,
    rfcl,
)

from .conftest import emit


def _tracking(name, pairs):
    return RabinTreeAutomaton.build(
        alphabet="ab",
        states=["q0", "qa", "qb"],
        initial="q0",
        transitions={
            ("q0", "a"): [("qa", "qa")],
            ("q0", "b"): [("qb", "qb")],
            ("qa", "a"): [("qa", "qa")],
            ("qa", "b"): [("qb", "qb")],
            ("qb", "a"): [("qa", "qa")],
            ("qb", "b"): [("qb", "qb")],
        },
        pairs=pairs,
        branching=2,
        name=name,
    )


AUTOMATA = [
    _tracking("A(GF a)", [(["qa"], [])]),
    _tracking("A(FG b)", [(["qb"], ["qa"])]),
    _tracking("two-pair", [(["qa"], ["qb"]), (["qb"], ["qa"])]),
]


def _pipeline() -> dict:
    trees = sample_trees()
    facts = {}
    for automaton in AUTOMATA:
        witness = emptiness_witness(automaton)
        facts[f"{automaton.name}: witness accepted"] = (
            witness is not None and accepts_tree(automaton, witness)
        )
        facts[f"{automaton.name}: all states live"] = nonempty_states(
            automaton
        ) == automaton.states
        d = decompose(automaton)
        facts[f"{automaton.name}: safety is closure automaton"] = (
            is_closure_automaton(d.safety)
        )
        facts[f"{automaton.name}: identity on samples"] = d.verify_on_samples(
            trees.values()
        )
        facts[f"{automaton.name}: safety part closed"] = (
            d.safety_part_is_closed_on(trees.values())
        )
    return facts


def test_theorem9_pipeline(benchmark):
    facts = benchmark.pedantic(_pipeline, rounds=1, iterations=1)
    assert all(facts.values()), {k: v for k, v in facts.items() if not v}
    emit(
        "THM9 — Rabin decomposition pipeline",
        "\n".join(f"{k}: {v}" for k, v in facts.items()),
    )


def _membership_cost() -> int:
    trees = sample_trees()
    checks = 0
    for automaton in AUTOMATA:
        for tree in trees.values():
            accepts_tree(automaton, tree)
            checks += 1
    return checks


def test_membership_game_cost(benchmark):
    checks = benchmark(_membership_cost)
    emit(
        "THM9 — membership-game cost",
        f"{checks} membership games solved per round (LAR→parity→Zielonka)",
    )


def _pair_scaling():
    """Emptiness cost as the number of Rabin pairs grows — the LAR
    record space grows with the number of distinct pair signatures, the
    structural cost driver of the reduction."""
    import time

    from repro.rabin import is_empty

    rows = []
    for n_pairs in (1, 2, 3, 4):
        pairs = []
        for i in range(n_pairs):
            green = ["qa"] if i % 2 == 0 else ["qb"]
            red = [] if i < 2 else (["qb"] if i % 2 == 0 else ["qa"])
            pairs.append((green, red))
        automaton = _tracking(f"pairs{n_pairs}", pairs)
        t0 = time.time()
        reps = 5
        for _ in range(reps):
            empty = is_empty(automaton)
        rows.append((n_pairs, (time.time() - t0) / reps, empty))
    return rows


def test_emptiness_pair_scaling(benchmark):
    rows = benchmark.pedantic(_pair_scaling, rounds=1, iterations=1)
    body = ["pairs   sec/emptiness   empty?"]
    for n_pairs, t, empty in rows:
        body.append(f"{n_pairs:5d}   {t:.5f}        {empty}")
    emit("THM9 — emptiness cost vs pair count (LAR growth)", "\n".join(body))
    assert not rows[0][2]  # one-pair GF-style condition is satisfiable
