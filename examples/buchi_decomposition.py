"""Decompose a realistic request/grant specification into its safety
and liveness automata (paper §2.4).

The spec for an arbiter over events {req, grant, idle}:

    φ  =  G(grant → ¬X grant)  ∧  G(req → F grant)

(no two grants in a row — safety; every request is eventually granted —
liveness).  The decomposition separates exactly those two concerns even
though φ itself mixes them.

Run:  python examples/buchi_decomposition.py
"""

from repro.analysis import decompose
from repro.buchi import inclusion_counterexample
from repro.ltl import classify, parse, translate
from repro.omega import LassoWord

ALPHABET = ("req", "grant", "idle")

phi = parse("G (grant -> X !grant) & G (req -> F grant)")
automaton = translate(phi, ALPHABET)
print(f"spec automaton: {automaton}")
print(f"  classification: {classify(phi, ALPHABET).kind.value}")

d = decompose(automaton)
print(f"\nB_S = {d.safety}")
print(f"B_L = {d.liveness}")
print(f"parts typed correctly : {d.verify_parts()}")
# exact equivalence would complement the 11-state original (exponential);
# check the identity extensionally on every lasso with |u| <= 2, |v| <= 3
from repro.omega import all_lassos

lassos = list(all_lassos(ALPHABET, 2, 3))
print(
    f"identity on {len(lassos)} bounded lassos: "
    f"{all(d.verify_on_word(w) for w in lassos)}"
)

# The safety part should coincide with the no-double-grant half: compare
# against the directly written safety automaton.
safety_only = translate(parse("G (grant -> X !grant)"), ALPHABET)
gap = inclusion_counterexample(d.safety, safety_only)
print(f"\nlcl(φ) ⊆ no-double-grant : {gap is None}")
gap_rev = inclusion_counterexample(safety_only, d.safety)
print(f"no-double-grant ⊆ lcl(φ) : {gap_rev is None}")

# Example executions:
runs = {
    "req then grants forever": LassoWord(("req",), ("grant", "idle")),
    "double grant (bad prefix)": LassoWord(("grant", "grant"), ("idle",)),
    "request never granted": LassoWord(("req",), ("idle",)),
}
print("\nexecution                     ∈φ     ∈B_S   ∈B_L")
for name, word in runs.items():
    print(
        f"{name:28s}  {str(automaton.accepts(word)):5s}  "
        f"{str(d.safety.accepts(word)):5s}  {str(d.liveness.accepts(word)):5s}"
    )
