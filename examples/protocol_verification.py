"""Decomposed verification of reactive systems (paper §1 motivation).

"The proof methods employed to check safety properties differ from
those used to check liveness properties" — here, literally: the safety
conjunct of each spec is checked by reachability (finite bad prefix),
the liveness conjunct by fair-cycle search, and the two verdicts
together equal the monolithic model checker's answer.

Run:  python examples/protocol_verification.py
"""

from repro.ctl.kripke import prop
from repro.ltl import And, F, G, implies
from repro.systems import (
    check,
    check_decomposed,
    dining_philosophers,
    peterson,
    peterson_specs,
    philosophers_specs,
)

# ── Peterson's mutual exclusion ────────────────────────────────────────
kripke = peterson()
print(f"Peterson's algorithm: {kripke}")
for spec in peterson_specs(kripke):
    split = check_decomposed(kripke, spec.formula)
    safety = "ok" if split.safety.holds else f"BAD PREFIX {split.safety.bad_prefix}"
    liveness = "ok" if split.liveness.holds else (
        f"FAIR CYCLE {split.liveness.counterexample!r}"
    )
    verdict = "HOLDS" if split.holds else "FAILS"
    print(f"\n  [{verdict}] {spec.name}  ({spec.comment})")
    print(f"     safety part   : {safety}")
    print(f"     liveness part : {liveness}")
    assert split.holds == check(kripke, spec.formula).holds

# ── the fairness crossover, explicitly ─────────────────────────────────
alphabet = kripke.alphabet()
want0, crit0 = prop("want0", alphabet), prop("crit0", alphabet)
sched0, sched1 = prop("sched0", alphabet), prop("sched1", alphabet)
progress = G(implies(want0, F(crit0)))
fair = And(G(F(sched0)), G(F(sched1)))
print("\nStarvation freedom:")
print(f"  arbitrary scheduling : {check(kripke, progress).holds}")
print(f"  fair scheduling      : {check(kripke, implies(fair, progress)).holds}")

# ── Dining philosophers: a safety failure with a finite refutation ─────
table = dining_philosophers(3)
print(f"\nDining philosophers (3): {table}")
deadlock_spec = [
    s for s in philosophers_specs(table) if s.name == "deadlock-freedom"
][0]
split = check_decomposed(table, deadlock_spec.formula)
print(f"  deadlock-freedom holds: {split.holds}")
print(f"  finite bad prefix      : {split.safety.bad_prefix}")
print("  (each event is the label set of one step on the way into the "
      "all-left-forks deadlock)")
