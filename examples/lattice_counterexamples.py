"""Walk through the paper's two counterexample figures.

Figure 1 (the pentagon N5): without *modularity*, Theorem 2 fails —
the element `a` has no safety∧liveness factorization at all.

Figure 2 (the diamond M3): without *distributivity*, Theorem 7 fails —
the canonical liveness conjunct is no longer the weakest one.

Run:  python examples/lattice_counterexamples.py
"""

from repro.lattice import (
    all_decompositions,
    check_weakest_liveness,
    figure1,
    figure2,
    find_diamond,
    find_pentagon,
    is_distributive,
    is_modular,
)

# ── Figure 1 ───────────────────────────────────────────────────────────
fig1 = figure1()
lat, cl = fig1.lattice, fig1.closure
print("Figure 1 — the pentagon N5, cl(a) = b:")
print(f"  Hasse edges : {sorted(lat.poset.hasse_edges())}")
print(f"  modular?    : {is_modular(lat)}")
print(f"  pentagon    : {find_pentagon(lat)}")
print(f"  the caption's failing instance: b ∧ (c ∨ a) = "
      f"{lat.meet('b', lat.join('c', 'a'))!r} but (b∧c) ∨ (b∧a) = "
      f"{lat.join(lat.meet('b', 'c'), lat.meet('b', 'a'))!r}")
print(f"  safety elements   : {cl.closed_elements()}")
print(f"  liveness elements : {cl.dense_elements()}")
decomps = all_decompositions(lat, cl, cl, "a")
print(f"  decompositions of 'a' (Lemma 6 says none): {decomps}")

# ── Figure 2 ───────────────────────────────────────────────────────────
fig2 = figure2()
lat, cl = fig2.lattice, fig2.closure
print("\nFigure 2 — the diamond M3, cl(a) = s:")
print(f"  modular?      : {is_modular(lat)}")
print(f"  distributive? : {is_distributive(lat)}")
print(f"  diamond       : {find_diamond(lat)}")
print(f"  caption facts : s safety = {cl.is_safety('s')},  "
      f"a = s∧z = {lat.meet('s', 'z') == 'a'},  "
      f"b ∈ cmp(cl.a) = {'b' in lat.complements(cl('a'))}")
print(f"  z ≤ a∨b ?     : {lat.leq('z', lat.join('a', 'b'))}   "
      f"(Theorem 7's conclusion — fails here)")
print(f"  full Theorem 7 check (forced through): "
      f"{check_weakest_liveness(lat, cl, cl, 'a', require_distributive=False)}")
