"""Runtime verification at serving scale — 1,000 concurrent sessions,
four-valued verdicts.

Five LTL policies, one thousand live traces, one compiled monitor per
*distinct* policy (the LRU cache proves it), events ingested in
interleaved batches through the worker-pool engine.  Since PR 10 every
monitor is compiled through ``repro.analysis.decompose()`` — safety
closure onto the subset-table falsifier, liveness conjunct onto the
finitary bound tracker — so sessions report the four-valued verdict
lattice instead of "inconclusive forever" on live policies:

* ``falsified_safety`` — the prefix left the safety closure, no
  extension recovers;
* ``liveness_bound_exceeded`` — some wait for the liveness conjunct's
  good event exceeded the horizon (here: 8 events);
* ``satisfied_so_far`` — nothing outstanding right now;
* ``inconclusive`` — a wait is open but within the bound.

The three-valued verdicts stay bit-identical to feeding each trace to
the one-shot ``repro.ltl.RvMonitor`` — the decomposition changes what
the engine can *say*, never what it decides.

The run is fully observed: a :class:`repro.obs.Tracer` records one
``rv.ingest`` span per batch with ``rv.drain_group`` children (written
to ``trace.json`` — load it in https://ui.perfetto.dev), verdict
transitions land in the ops journal (``rv.verdict_transition``), and
the shared metric registry's Prometheus exposition — including the
per-verdict transition counters and verdict-latency histograms — is
printed at the end.

Run:  python examples/streaming_monitoring.py
"""

import random
import time
from collections import Counter

from repro.ltl import parse
from repro.obs import REGISTRY, Tracer, to_prometheus
from repro.ops.journal import EventJournal, WARN
from repro.rv import RvEngine

POLICIES = {
    "no-b-ever": "G a",             # safety — falsifiable
    "eventually-b": "F b",          # co-safety — verifiable
    "b-after-a": "G (a -> X b)",    # safety with a window
    "infinitely-a": "GF a",         # liveness — bound-trackable
    "a-then-drop": "a & F !a",      # neither safe nor live
}

N_SESSIONS = 1_000
TRACE_LEN = 200
BATCH = 8_192
HORIZON = 8

rng = random.Random(42)
tracer = Tracer()
journal = EventJournal(maxlen=65_536, min_level=WARN)
engine = RvEngine(workers=4, horizon=HORIZON, tracer=tracer, journal=journal)

specs = list(POLICIES.values())
print(f"opening {N_SESSIONS} sessions over {len(specs)} policies "
      f"(horizon {HORIZON}) ...")
traces = {}
for i in range(N_SESSIONS):
    engine.open_session(i, parse(specs[i % len(specs)]), "ab")
    traces[i] = [rng.choice("ab") for _ in range(TRACE_LEN)]

stream = [(i, traces[i][j]) for j in range(TRACE_LEN) for i in range(N_SESSIONS)]
print(f"ingesting {len(stream):,} interleaved events in batches of {BATCH:,} ...")
start = time.perf_counter()
for k in range(0, len(stream), BATCH):
    engine.ingest(stream[k : k + BATCH])
elapsed = time.perf_counter() - start

snap = engine.snapshot()
final4 = Counter(v.value for v in engine.verdicts4().values())
print(f"\n{snap['events']:,} events in {elapsed:.2f}s "
      f"({snap['events'] / elapsed:,.0f} events/s)")
print(f"table steps            {snap['steps']:,} "
      f"(truncation saved {snap['truncation_savings']:,} steps)")
print(f"verdicts (3-valued)    {snap['verdicts']}")
print(f"verdicts (4-valued)    {dict(final4)}")
print(f"transitions into       {snap['verdicts4']}")
print(f"compile cache          {snap['cache']['misses']} misses "
      f"(one per policy), {snap['cache']['hits']} hits")
print(f"step latency           p50 {snap['step_latency_p50_us']:.3f}µs   "
      f"p99 {snap['step_latency_p99_us']:.3f}µs")

assert snap["cache"]["misses"] == len(specs)
assert snap["cache"]["hits"] == N_SESSIONS - len(specs)
# every one of the four verdicts occurs in this workload: random traces
# falsify the safety policies, discharge the co-safety one, and blow /
# respect the GF-a horizon depending on run luck — seeded, so stable.
assert set(final4) == {
    "falsified_safety", "liveness_bound_exceeded",
    "satisfied_so_far", "inconclusive",
}, final4
severe = journal.events(level=WARN, name="rv.verdict_transition")
print(f"journal                {len(severe)} WARN-level verdict "
      f"transitions (falsified / bound exceeded)")
engine.shutdown()

ingest_spans = [s for s in tracer.finished() if s.name == "rv.ingest"]
tracer.export_chrome("trace.json")
print(f"\nwrote trace.json — {len(tracer.finished())} spans "
      f"({len(ingest_spans)} ingest batches); open in ui.perfetto.dev")

exposition = to_prometheus(REGISTRY)
print("\nPrometheus exposition (rv families):")
for line in exposition.splitlines():
    if line.startswith(("# HELP repro_rv", "# TYPE repro_rv")) or (
        line.startswith("repro_rv") and "_bucket" not in line
    ):
        print(f"  {line}")

print("\nPer-verdict summary (from the registry):")
for line in exposition.splitlines():
    if line.startswith("repro_rv_verdict_transitions_total"):
        print(f"  {line}")
