"""Runtime verification at serving scale — 1,000 concurrent sessions.

Five LTL policies, one thousand live traces, one compiled monitor per
*distinct* policy (the LRU cache proves it), events ingested in
interleaved batches through the worker-pool engine.  Verdicts are
bit-identical to feeding each trace to the one-shot
``repro.ltl.RvMonitor`` — the engine only changes the throughput, never
the theory.

The run is fully observed: a :class:`repro.obs.Tracer` records one
``rv.ingest`` span per batch with ``rv.drain_group`` children (written
to ``trace.json`` — load it in https://ui.perfetto.dev), and the shared
metric registry's Prometheus exposition is printed at the end.

Run:  python examples/streaming_monitoring.py
"""

import random
import time

from repro.ltl import parse
from repro.obs import REGISTRY, Tracer, to_prometheus
from repro.rv import RvEngine

POLICIES = {
    "no-b-ever": "G a",             # safety — falsifiable
    "eventually-b": "F b",          # co-safety — verifiable
    "b-after-a": "G (a -> X b)",    # safety with a window
    "infinitely-a": "GF a",         # liveness — never concludes
    "a-then-drop": "a & F !a",      # neither safe nor live
}

N_SESSIONS = 1_000
TRACE_LEN = 200
BATCH = 8_192

rng = random.Random(42)
tracer = Tracer()
engine = RvEngine(workers=4, tracer=tracer)

specs = list(POLICIES.values())
print(f"opening {N_SESSIONS} sessions over {len(specs)} policies ...")
traces = {}
for i in range(N_SESSIONS):
    engine.open_session(i, parse(specs[i % len(specs)]), "ab")
    traces[i] = [rng.choice("ab") for _ in range(TRACE_LEN)]

stream = [(i, traces[i][j]) for j in range(TRACE_LEN) for i in range(N_SESSIONS)]
print(f"ingesting {len(stream):,} interleaved events in batches of {BATCH:,} ...")
start = time.perf_counter()
for k in range(0, len(stream), BATCH):
    engine.ingest(stream[k : k + BATCH])
elapsed = time.perf_counter() - start

snap = engine.snapshot()
print(f"\n{snap['events']:,} events in {elapsed:.2f}s "
      f"({snap['events'] / elapsed:,.0f} events/s)")
print(f"table steps            {snap['steps']:,} "
      f"(truncation saved {snap['truncation_savings']:,} steps)")
print(f"verdicts               {snap['verdicts']}")
print(f"compile cache          {snap['cache']['misses']} misses "
      f"(one per policy), {snap['cache']['hits']} hits")
print(f"step latency           p50 {snap['step_latency_p50_us']:.3f}µs   "
      f"p99 {snap['step_latency_p99_us']:.3f}µs")

assert snap["cache"]["misses"] == len(specs)
assert snap["cache"]["hits"] == N_SESSIONS - len(specs)
engine.shutdown()

ingest_spans = [s for s in tracer.finished() if s.name == "rv.ingest"]
tracer.export_chrome("trace.json")
print(f"\nwrote trace.json — {len(tracer.finished())} spans "
      f"({len(ingest_spans)} ingest batches); open in ui.perfetto.dev")

exposition = to_prometheus(REGISTRY)
print("\nPrometheus exposition (rv families):")
for line in exposition.splitlines():
    if line.startswith(("# HELP repro_rv", "# TYPE repro_rv")) or (
        line.startswith("repro_rv") and "_bucket" not in line
    ):
        print(f"  {line}")
