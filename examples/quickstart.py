"""Quickstart: the lattice-theoretic safety/liveness decomposition in
three frameworks in under a minute.

Run:  python examples/quickstart.py
"""

from repro.analysis import classify_formula, decompose
from repro.lattice import LatticeClosure, boolean_lattice
from repro.ltl import parse, translate
from repro.omega import LassoWord

# ── 1. The abstract theorem (Section 3) ────────────────────────────────
# Take any modular complemented lattice (here: the Boolean algebra 2^3),
# any lattice closure, any element — Theorem 2 factors it into a
# safety element and a liveness element.
lattice = boolean_lattice(3)
cl = LatticeClosure.from_closed_elements(
    lattice, [frozenset({0, 1}), frozenset({2})], name="demo-cl"
)
element = frozenset({0})
d = decompose(element, closure=cl)
print("Theorem 2 on 2^3:")
print(f"  element   = {set(element)}")
print(f"  safety    = {set(d.safety)}   (= cl(element))")
print(f"  liveness  = {set(d.liveness)}")
print(f"  meet back = {set(lattice.meet(d.safety, d.liveness))}")
assert lattice.meet(d.safety, d.liveness) == element

# ── 2. The linear-time instance (Section 2) ─────────────────────────────
# Rem's p3 = "first symbol is a, and some later symbol differs" is the
# paper's running example of a property that is NEITHER safe NOR live.
p3 = parse("a & F !a")
print("\nClassifying p3 = a ∧ F¬a over Σ={a,b}:")
print(f"  class: {classify_formula(p3, 'ab').value}")

# ── 3. The Büchi instance (Section 2.4) ────────────────────────────────
# Decompose p3's automaton: B = B_S ∩ B_L, with B_S the closure (= p1,
# "first symbol is a") and B_L live.
automaton = translate(p3, "ab")
decomposition = decompose(automaton)
print("\nAlpern–Schneider decomposition of p3's Büchi automaton:")
print(f"  B   : {automaton}")
print(f"  B_S : {decomposition.safety}")
print(f"  B_L : {decomposition.liveness}")
print(f"  parts typed correctly: {decomposition.verify_parts()}")
print(f"  identity L(B) = L(B_S) ∩ L(B_L) proved: {decomposition.verify_exact()}")

# Spot-check on a word: a·b^ω satisfies p3; a^ω satisfies only the
# safety half (nothing bad ever happens, the good thing never does).
good = LassoWord("a", "b")
stuck = LassoWord((), "a")
print(f"\n  a·b^ω  ∈ B: {automaton.accepts(good)}  "
      f"∈ B_S: {decomposition.safety.accepts(good)}  "
      f"∈ B_L: {decomposition.liveness.accepts(good)}")
print(f"  a^ω    ∈ B: {automaton.accepts(stuck)}  "
      f"∈ B_S: {decomposition.safety.accepts(stuck)}  "
      f"∈ B_L: {decomposition.liveness.accepts(stuck)}")
