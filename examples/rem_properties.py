"""Reproduce the paper's §2.3 example table (Martin Rem's properties).

For each of p0–p6: parse the LTL encoding, translate to a Büchi
automaton, compute the Alpern–Schneider closure, classify, and compare
with the paper's stated classification.

Run:  python examples/rem_properties.py
"""

from repro.analysis import rem_table
from repro.buchi import are_equivalent, universal_automaton
from repro.ltl import classify_rem_examples, parse, translate

print(rem_table())

print("\nThe paper's closure facts, machine-checked:")
table = {ex.identifier: (ex, c) for ex, c in classify_rem_examples()}

# "The closure of p3 is p1"
_, c3 = table["p3"]
p1 = translate(parse("a"), "ab")
print(f"  lcl(p3) = p1 : {are_equivalent(c3.closure_automaton, p1)}")

# "The closures of p4 and p5 are both Σ^ω"
univ = universal_automaton("ab")
for pid in ("p4", "p5"):
    _, c = table[pid]
    print(
        f"  lcl({pid}) = Σ^ω : "
        f"{are_equivalent(c.closure_automaton, univ)}"
    )
