"""Security-policy enforcement (paper §1, citing Schneider):
enforceable policies are exactly the safety properties.

Run:  python examples/security_monitoring.py
"""

from repro.analysis import enforcement_table
from repro.enforcement import (
    SecurityMonitor,
    all_policies,
    enforcement_gap,
    no_send_after_read,
)

print(enforcement_table())

# ── live monitoring session ────────────────────────────────────────────
policy = no_send_after_read()
monitor = SecurityMonitor.for_property(policy.automaton())
print(f"\nMonitoring {policy.name!r} on an event stream:")
for event in ["other", "send", "read", "other", "send", "other"]:
    verdict = monitor.observe(event)
    flag = "ALLOW" if verdict.accepted else "TRUNCATE"
    print(f"  step {verdict.position}: {event:6s} -> {flag}")
    if not verdict.accepted:
        break

# ── the policy's minimal violation witnesses ───────────────────────────
from repro.buchi import minimal_bad_prefixes

print("\nMinimal bad prefixes of the policy (length ≤ 3):")
for prefix in minimal_bad_prefixes(policy.automaton(), max_length=3):
    print(f"  {' · '.join(prefix)}")

# ── why liveness cannot be enforced ────────────────────────────────────
print("\nFor each non-enforceable policy, an execution no truncation "
      "monitor can reject:")
for policy in all_policies():
    if policy.enforceable:
        continue
    gap = enforcement_gap(policy.automaton())
    monitor = SecurityMonitor.for_property(policy.automaton())
    print(f"  {policy.name}: {gap!r}  "
          f"(admitted by its own best monitor: {monitor.admits_lasso(gap)})")
