"""The branching-time framework (paper §4): q-examples, the two
closures, and the paper's counterexample witness.

Run:  python examples/branching_time.py
"""

from repro.analysis import q_table
from repro.ctl import holds_on_tree, q_examples, sample_trees, two_path_witness
from repro.analysis import decompose
from repro.ltl import parse, satisfies
from repro.trees import PartialRegularPrefix, closure_on_samples

print("§4.3 example table over the sample-tree zoo:")
print(q_table())

# ── the paper's ncl witness ────────────────────────────────────────────
# "consider a tree that has at least two paths such that along one of
#  the paths a always holds; this tree is not in ncl.q3a"
witness, frozen = two_path_witness()
print(f"\nncl witness: freeze the all-a branch of `split`.")
print(f"  frozen path word: {frozen!r}")
print(f"  violates F¬a (so no extension can satisfy AF¬a): "
      f"{not satisfies(frozen, parse('F b'))}")

# ── Theorem 4 on the sampled lattice ───────────────────────────────────
# Build the powerset lattice over sample trees with sampled fcl and ncl
# closures (ncl gets the witness above), then run the mixed ES∧UL
# decomposition of Theorem 3.
trees = sample_trees()
universe = [trees["all_a"], trees["all_b"], trees["split"], trees["alternating"]]
lattice, fcl = closure_on_samples(universe, depth_bound=2, name="fcl")
witness_for_split = PartialRegularPrefix.cut_except_branch(trees["split"], (0,), 1)
_, ncl = closure_on_samples(
    universe, depth_bound=2, partial_witnesses={2: [witness_for_split]}, name="ncl"
)
print(f"\nSampled closures on the 2^4 lattice of tree sets:")
print(f"  ncl ⊑ fcl pointwise (Theorem 3's hypothesis): {fcl.dominates(ncl)}")

q3a = frozenset(
    i for i, t in enumerate(universe)
    if holds_on_tree(t, [e for e in q_examples() if e.identifier == 'q3a'][0].formula)
)
d = decompose(q3a, closure=(ncl, fcl), check_hypotheses=False)
print(f"  q3a on samples      = {sorted(q3a)}")
print(f"  ES safety conjunct  = {sorted(d.safety)}")
print(f"  UL liveness conjunct= {sorted(d.liveness)}")
print(f"  decomposition valid : {d.verify()}")
