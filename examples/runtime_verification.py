"""Three-valued runtime verification — the RV face of safety/liveness.

A monitor watching a finite trace can conclude FALSE only by seeing a
*bad prefix* (safety content) and TRUE only by seeing a bad prefix of
the negation (co-safety content); pure liveness like GF a never leaves
UNKNOWN.  The verdict machinery is exactly the Alpern–Schneider closure
of the formula automaton and of its negation.

Run:  python examples/runtime_verification.py
"""

from repro.ltl import RvMonitor, Verdict3, parse, syntactic_class

SPECS = [
    "G a",            # safety: falsifiable, never verifiable
    "F b",            # co-safety: verifiable, never falsifiable
    "a",              # present-only: both
    "GF a",           # liveness: never either — unmonitorable
    "G (a -> X b)",   # safety with a one-step window
]

TRACES = ["", "a", "ab", "abab", "ba", "bb", "aaab"]

print(f"{'formula':16s} {'syntactic':10s} " + "".join(f"{t or 'ε':>7s}" for t in TRACES))
for text in SPECS:
    formula = parse(text)
    monitor = RvMonitor(formula, "ab")
    cells = []
    for trace in TRACES:
        verdict = monitor.run(trace)
        cells.append({"true": "T", "false": "F", "unknown": "?"}[verdict.value])
    print(
        f"{text:16s} {syntactic_class(formula, 'ab'):10s} "
        + "".join(f"{c:>7s}" for c in cells)
    )

print("\nmonitorability from the initial state:")
for text in SPECS:
    monitor = RvMonitor(parse(text), "ab")
    monitor.reset()
    print(f"  {text:16s} -> {monitor.is_monitorable_now()}")

print("\nincremental session on G (a -> X b):")
monitor = RvMonitor(parse("G (a -> X b)"), "ab")
for event in "abaab":
    verdict = monitor.observe(event)
    print(f"  after {event!r} (step {monitor.position}): {verdict.value}")
