"""Run the complete reproduction end to end and print a one-page
summary — every figure, table and theorem of the paper in one script.

Run:  python examples/full_reproduction.py        (~1 minute)
"""

import random
import time

t_start = time.time()


def section(title: str):
    print(f"\n{'=' * 72}\n{title}\n{'=' * 72}")


# ── Section 3: the lattice theorems ─────────────────────────────────────
section("Section 3 — lattice theorems")
from repro.analysis import decompose
from repro.lattice import (
    all_decompositions,
    check_strongest_safety,
    check_weakest_liveness,
    figure1,
    figure2,
    no_decomposition_witness,
    theorem5_applies,
    theorem8_holds,
)
from repro.lattice.random_lattices import (
    random_comparable_closure_pair,
    random_modular_complemented,
)

rng = random.Random(2003)
counts = {"thm3": 0, "thm5": 0, "thm6": 0, "thm8": 0}
for _ in range(10):
    lat = random_modular_complemented(rng, max_factors=2, max_diamond=3)
    cl1, cl2 = random_comparable_closure_pair(rng, lat)
    for a in lat.elements:
        d = decompose(a, closure=(cl1, cl2), check_hypotheses=False)
        assert d.verify()
        counts["thm3"] += 1
        if theorem5_applies(lat, cl1, cl2, a):
            assert no_decomposition_witness(lat, cl1, cl2, a) is None
            counts["thm5"] += 1
        assert check_strongest_safety(lat, cl1, cl2, a)
        counts["thm6"] += 1
        assert theorem8_holds(lat, cl1, cl2, a, check_weakest=False)
        counts["thm8"] += 1
print(f"Theorem 3 decompositions verified : {counts['thm3']}")
print(f"Theorem 5 impossibilities checked : {counts['thm5']}")
print(f"Theorem 6 extremal-safety checks  : {counts['thm6']}")
print(f"Theorem 8 branching corollaries   : {counts['thm8']}")

fig1 = figure1()
assert all_decompositions(fig1.lattice, fig1.closure, fig1.closure, "a") == []
print("Figure 1 (N5): 'a' undecomposable — Lemma 6 reproduced")
fig2 = figure2()
assert not check_weakest_liveness(
    fig2.lattice, fig2.closure, fig2.closure, "a", require_distributive=False
)
print("Figure 2 (M3): Theorem 7 bound fails without distributivity")

# ── Section 2: linear time ───────────────────────────────────────────────
section("Section 2 — linear time (Rem's table + Büchi decomposition)")
from repro.analysis import rem_table
from repro.buchi import random_automaton
from repro.omega import all_lassos

print(rem_table())
rng = random.Random(7)
lassos = list(all_lassos("ab", 2, 2))
checked = 0
for _ in range(10):
    m = random_automaton(rng, rng.randint(1, 10))
    d = decompose(m)
    assert all(d.verify_on_word(w) for w in lassos)
    checked += 1
print(f"\nBüchi decomposition identity verified on {checked} random automata")

# ── Section 4: branching time ────────────────────────────────────────────
section("Section 4 — branching time (q table + Rabin pipeline)")
from repro.analysis import q_table
from repro.ctl import sample_trees
from repro.rabin import RabinTreeAutomaton, accepts_tree

print(q_table())
agfa = RabinTreeAutomaton.build(
    alphabet="ab",
    states=["q0", "qa", "qb"],
    initial="q0",
    transitions={
        ("q0", "a"): [("qa", "qa")], ("q0", "b"): [("qb", "qb")],
        ("qa", "a"): [("qa", "qa")], ("qa", "b"): [("qb", "qb")],
        ("qb", "a"): [("qa", "qa")], ("qb", "b"): [("qb", "qb")],
    },
    pairs=[(["qa"], [])],
    branching=2,
    name="A(GF a)",
)
d9 = decompose(agfa)
assert d9.verify_on_samples(sample_trees().values())
print("\nTheorem 9 decomposition verified on the regular-tree zoo")

# ── Section 1: applications ──────────────────────────────────────────────
section("Section 1 — applications (systems + enforcement)")
from repro.analysis import enforcement_table, systems_table

print(systems_table())
print()
print(enforcement_table())

print(f"\nTotal wall time: {time.time() - t_start:.1f}s — every check passed.")
