"""The analysis service: one unified decompose() API, served concurrent
and cache-backed (DESIGN.md §8).

Run:  python examples/analysis_service.py
"""

import json
import tempfile

from repro.ltl import parse, translate
from repro.service import (
    AnalysisService,
    ClassifyRequest,
    DecomposeRequest,
    ServiceTimeout,
    warm_start,
)

ALPHABET = frozenset({"a", "b"})

# ── 1. One API, typed requests ─────────────────────────────────────────
with AnalysisService(workers=4) as service:
    result = service.request(DecomposeRequest(parse("a U b"), alphabet=ALPHABET))
    d = result.value
    print("decompose(a U b):")
    print(f"  safety   : {d.safety}")
    print(f"  liveness : {d.liveness}")
    print(f"  verified : {d.verify()}")
    print(f"  cached   : {result.cached}   key: {result.key[:40]}…")

    # ── 2. The cache answers repeats — up to state renaming ────────────
    automaton = translate(parse("G (a -> X b)"), "ab")
    service.request(DecomposeRequest(automaton))
    renamed = service.request(DecomposeRequest(automaton.renumbered("copy")))
    print("\nisomorphic resubmission (all states renamed):")
    print(f"  cached: {renamed.cached}  — canonical keys see through names")

    verdict = service.request(ClassifyRequest(parse("G a"), alphabet=ALPHABET))
    print(f"\nclassify(G a) = {verdict.value.value}")

    # ── 3. Deadlines degrade gracefully ────────────────────────────────
    try:
        service.request(
            DecomposeRequest(parse("GF a"), alphabet=ALPHABET), timeout=0.0
        )
    except ServiceTimeout as exc:
        print(f"\nzero deadline: ServiceTimeout — {exc}")

    print(f"\nsnapshot: {service.snapshot()}")

# ── 4. Warm start from a recorded workload ─────────────────────────────
workload = {
    "version": 1,
    "requests": [
        {"kind": "decompose", "formula": "G a", "alphabet": ["a", "b"]},
        {"kind": "classify", "formula": "F b", "alphabet": ["a", "b"]},
    ],
}
with tempfile.NamedTemporaryFile("w", suffix=".json", delete=False) as handle:
    json.dump(workload, handle)
    path = handle.name

with AnalysisService(workers=2) as service:
    count = warm_start(service, path)
    reply = service.request(DecomposeRequest(parse("G a"), alphabet=ALPHABET))
    print(f"\nwarm start replayed {count} requests; first live request "
          f"cached: {reply.cached}")

# ── 5. Certificates: why trust a cached result? ────────────────────────
# certify=True attaches a machine-checkable proof object; verify_on_hit
# replays it through the independent repro.certs verifier before any
# cached answer is served (DESIGN.md §10).
import pathlib
import random

from repro.certs import tla_skeleton, verify_certificate
from repro.lattice.random_lattices import (
    random_comparable_closure_pair,
    random_modular_complemented,
)

with AnalysisService(workers=2, verify_on_hit=True) as service:
    certified = service.request(
        DecomposeRequest(parse("G (a -> X b)"), alphabet=ALPHABET, certify=True)
    )
    certificate = certified.value.certificate
    print("\ncertified decompose(G (a -> X b)):")
    print(certificate.summary())
    print(f"  replayed  : {verify_certificate(certificate).ok} "
          "(independent, stdlib-only verifier)")

    rng = random.Random(0)
    lattice = random_modular_complemented(rng, max_factors=2, max_diamond=3)
    cl1, cl2 = random_comparable_closure_pair(rng, lattice)
    bound = service.request(
        DecomposeRequest(lattice.elements[1], closure=(cl1, cl2), certify=True)
    )
    print("\ncertified lattice decomposition (Theorem 3):")
    print(bound.value.certificate.summary())

    # the hit path replays the certificate before serving it
    again = service.request(
        DecomposeRequest(parse("G (a -> X b)"), alphabet=ALPHABET, certify=True)
    )
    print(f"\nresubmission: cached={again.cached} — the hit was re-verified "
          "before being served")

    tla_path = pathlib.Path(tempfile.gettempdir()) / "decomposition_cert.tla"
    tla_path.write_text(tla_skeleton(certificate))
    print(f"\nTLA+ skeleton written to {tla_path}:")
    print("\n".join(tla_skeleton(certificate).splitlines()[:6]))

# ── 6. The ops plane: watch the service from the outside ───────────────
# An OpsServer mounts beside the service (ephemeral port, daemon
# thread): /metrics for scrapers, /healthz + /readyz for routers,
# /debug/* for humans.  The journal at "debug" level records the full
# correlated per-request stream; the default "info" posture journals
# only lifecycle edges and anomalies (DESIGN.md §11).
from urllib.request import urlopen

from repro.ops import EventJournal, start_ops_server

journal = EventJournal(min_level="debug")
with AnalysisService(workers=2, journal=journal, slow_threshold=5.0) as service:
    with start_ops_server(service, journal=journal) as ops:
        print(f"\nops endpoint live at {ops.url}")
        for spec in ("G a", "F b", "a U b", "G a"):
            service.request(DecomposeRequest(parse(spec), alphabet=ALPHABET))

        health = json.load(urlopen(ops.url + "/healthz"))
        ready = json.load(urlopen(ops.url + "/readyz"))
        print(f"  /healthz: {health['status']}   /readyz: ready={ready['ready']} "
              f"pending={ready['pending']}")

        cache_view = json.load(urlopen(ops.url + "/debug/cache"))
        stats = cache_view["stats"]
        print(f"  /debug/cache: {stats['entries']} entries, "
              f"{stats['hits']} hits / {stats['misses']} misses")

        profile = urlopen(ops.url + "/debug/profile?seconds=1&hz=50")
        lines = profile.read().decode("utf-8").splitlines()
        print(f"  /debug/profile (1s @ 50Hz): {lines[0].lstrip('# ')}")

        done = journal.events(name="service.request_done")
        print(f"  journal: {len(done)} requests completed, "
              f"last request_id {done[-1].request_id}")
