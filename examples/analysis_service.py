"""The analysis service: one unified decompose() API, served concurrent
and cache-backed (DESIGN.md §8).

Run:  python examples/analysis_service.py
"""

import json
import tempfile

from repro.ltl import parse, translate
from repro.service import (
    AnalysisService,
    ClassifyRequest,
    DecomposeRequest,
    ServiceTimeout,
    warm_start,
)

ALPHABET = frozenset({"a", "b"})

# ── 1. One API, typed requests ─────────────────────────────────────────
with AnalysisService(workers=4) as service:
    result = service.request(DecomposeRequest(parse("a U b"), alphabet=ALPHABET))
    d = result.value
    print("decompose(a U b):")
    print(f"  safety   : {d.safety}")
    print(f"  liveness : {d.liveness}")
    print(f"  verified : {d.verify()}")
    print(f"  cached   : {result.cached}   key: {result.key[:40]}…")

    # ── 2. The cache answers repeats — up to state renaming ────────────
    automaton = translate(parse("G (a -> X b)"), "ab")
    service.request(DecomposeRequest(automaton))
    renamed = service.request(DecomposeRequest(automaton.renumbered("copy")))
    print("\nisomorphic resubmission (all states renamed):")
    print(f"  cached: {renamed.cached}  — canonical keys see through names")

    verdict = service.request(ClassifyRequest(parse("G a"), alphabet=ALPHABET))
    print(f"\nclassify(G a) = {verdict.value.value}")

    # ── 3. Deadlines degrade gracefully ────────────────────────────────
    try:
        service.request(
            DecomposeRequest(parse("GF a"), alphabet=ALPHABET), timeout=0.0
        )
    except ServiceTimeout as exc:
        print(f"\nzero deadline: ServiceTimeout — {exc}")

    print(f"\nsnapshot: {service.snapshot()}")

# ── 4. Warm start from a recorded workload ─────────────────────────────
workload = {
    "version": 1,
    "requests": [
        {"kind": "decompose", "formula": "G a", "alphabet": ["a", "b"]},
        {"kind": "classify", "formula": "F b", "alphabet": ["a", "b"]},
    ],
}
with tempfile.NamedTemporaryFile("w", suffix=".json", delete=False) as handle:
    json.dump(workload, handle)
    path = handle.name

with AnalysisService(workers=2) as service:
    count = warm_start(service, path)
    reply = service.request(DecomposeRequest(parse("G a"), alphabet=ALPHABET))
    print(f"\nwarm start replayed {count} requests; first live request "
          f"cached: {reply.cached}")
