"""The analysis service behind the one client API: typed verbs, served
concurrent and cache-backed, in-process or sharded (DESIGN.md §8, §13).

Run:  python examples/analysis_service.py
"""

import json
import tempfile

from repro.ltl import parse, translate
from repro.service import Client, DecomposeRequest, ServiceTimeout

ALPHABET = frozenset({"a", "b"})

# ── 1. One API, typed verbs and typed replies ──────────────────────────
# Client.in_process() embeds an AnalysisService; every verb returns a
# typed reply (DecomposeReply / ClassifyReply / CheckReply) instead of a
# bare result envelope.
with Client.in_process(workers=4) as client:
    reply = client.decompose(parse("a U b"), alphabet=ALPHABET)
    print("decompose(a U b):")
    print(f"  safety   : {reply.safety}")
    print(f"  liveness : {reply.liveness}")
    print(f"  verified : {reply.value.verify()}")
    print(f"  cached   : {reply.cached}   key: {reply.key[:40]}…")

    # ── 2. The cache answers repeats — up to state renaming ────────────
    automaton = translate(parse("G (a -> X b)"), "ab")
    client.decompose(automaton)
    renamed = client.decompose(automaton.renumbered("copy"))
    print("\nisomorphic resubmission (all states renamed):")
    print(f"  cached: {renamed.cached}  — canonical keys see through names")

    verdict = client.classify(parse("G a"), alphabet=ALPHABET)
    print(f"\nclassify(G a) = {verdict.property_class.value}"
          f"   is_safety={verdict.is_safety}")

    # ── 3. Deadlines degrade gracefully ────────────────────────────────
    try:
        client.decompose(parse("GF a"), alphabet=ALPHABET, timeout=0.0)
    except ServiceTimeout as exc:
        print(f"\nzero deadline: ServiceTimeout — {exc}")

    print(f"\nsnapshot: {client.snapshot()}")

# ── 4. Warm start from a recorded workload ─────────────────────────────
workload = {
    "version": 1,
    "requests": [
        {"kind": "decompose", "formula": "G a", "alphabet": ["a", "b"]},
        {"kind": "classify", "formula": "F b", "alphabet": ["a", "b"]},
    ],
}
with tempfile.NamedTemporaryFile("w", suffix=".json", delete=False) as handle:
    json.dump(workload, handle)
    path = handle.name

with Client.in_process(workers=2) as client:
    count = client.warm_start(path)
    reply = client.decompose(parse("G a"), alphabet=ALPHABET)
    print(f"\nwarm start replayed {count} requests; first live request "
          f"cached: {reply.cached}")

# ── 5. Certificates: why trust a cached result? ────────────────────────
# certify=True attaches a machine-checkable proof object; verify_on_hit
# replays it through the independent repro.certs verifier before any
# cached answer is served (DESIGN.md §10).
import pathlib
import random

from repro.certs import tla_skeleton, verify_certificate
from repro.lattice.random_lattices import (
    random_comparable_closure_pair,
    random_modular_complemented,
)

with Client.in_process(workers=2, verify_on_hit=True) as client:
    certified = client.decompose(parse("G (a -> X b)"), alphabet=ALPHABET,
                                 certify=True)
    certificate = certified.certificate
    print("\ncertified decompose(G (a -> X b)):")
    print(certificate.summary())
    print(f"  replayed  : {verify_certificate(certificate).ok} "
          "(independent, stdlib-only verifier)")

    rng = random.Random(0)
    lattice = random_modular_complemented(rng, max_factors=2, max_diamond=3)
    cl1, cl2 = random_comparable_closure_pair(rng, lattice)
    bound = client.decompose(lattice.elements[1], closure=(cl1, cl2),
                             certify=True)
    print("\ncertified lattice decomposition (Theorem 3):")
    print(bound.certificate.summary())

    # the hit path replays the certificate before serving it
    again = client.decompose(parse("G (a -> X b)"), alphabet=ALPHABET,
                             certify=True)
    print(f"\nresubmission: cached={again.cached} — the hit was re-verified "
          "before being served")

    tla_path = pathlib.Path(tempfile.gettempdir()) / "decomposition_cert.tla"
    tla_path.write_text(tla_skeleton(certificate))
    print(f"\nTLA+ skeleton written to {tla_path}:")
    print("\n".join(tla_skeleton(certificate).splitlines()[:6]))

# ── 6. The ops plane: watch the service from the outside ───────────────
# An OpsServer mounts beside the service (ephemeral port, daemon
# thread): /metrics for scrapers, /healthz + /readyz for routers,
# /debug/* for humans.  The journal at "debug" level records the full
# correlated per-request stream; the default "info" posture journals
# only lifecycle edges and anomalies (DESIGN.md §11).  The client wraps
# a *borrowed* service here — the embedding keeps ownership.
from urllib.request import urlopen

from repro.ops import EventJournal, start_ops_server
from repro.service import AnalysisService, InProcessTransport

journal = EventJournal(min_level="debug")
with AnalysisService(workers=2, journal=journal, slow_threshold=5.0) as service:
    client = Client(InProcessTransport(service))
    with start_ops_server(service, journal=journal) as ops:
        print(f"\nops endpoint live at {ops.url}")
        for spec in ("G a", "F b", "a U b", "G a"):
            client.decompose(parse(spec), alphabet=ALPHABET)

        health = json.load(urlopen(ops.url + "/healthz"))
        ready = json.load(urlopen(ops.url + "/readyz"))
        print(f"  /healthz: {health['status']}   /readyz: ready={ready['ready']} "
              f"pending={ready['pending']}")

        cache_view = json.load(urlopen(ops.url + "/debug/cache"))
        stats = cache_view["stats"]
        print(f"  /debug/cache: {stats['entries']} entries, "
              f"{stats['hits']} hits / {stats['misses']} misses")

        profile = urlopen(ops.url + "/debug/profile?seconds=1&hz=50")
        lines = profile.read().decode("utf-8").splitlines()
        print(f"  /debug/profile (1s @ 50Hz): {lines[0].lstrip('# ')}")

        done = journal.events(name="service.request_done")
        print(f"  journal: {len(done)} requests completed, "
              f"last request_id {done[-1].request_id}")

# ── 7. Scale out: the same verbs over worker shards ────────────────────
# Client.sharded() spawns N worker processes behind a consistent-hash
# router: every isomorphism class routes to the same shard, so each
# shard's cache stays hot, and a dead shard is respawned (warm-started)
# with idempotent in-flight work redelivered (DESIGN.md §13).
with Client.sharded(shards=2, workers_per_shard=2) as client:
    first = client.decompose(parse("G (a -> F b)"), alphabet=ALPHABET,
                             timeout=60)
    again = client.decompose(parse("G (a -> F b)"), alphabet=ALPHABET,
                             timeout=60)
    state = client.readiness()
    print(f"\nsharded tier: {state['n_shards']} shards, "
          f"ready={state['ready']}")
    print(f"  same request twice: cached={first.cached} then {again.cached} "
          "(shard-affine cache)")
    per_shard = client.transport.service.cache.stats_by_shard()
    split = {shard: stats.entries for shard, stats in per_shard.items()}
    print(f"  cache entries by shard: {split}")
