"""Rabin tree automata and Theorem 9 (paper §4.4).

Build the Rabin encoding of A(GF a) ("on every path, a recurs"), decide
emptiness through the LAR→parity game pipeline, extract a regular
witness tree, and run the Theorem 9 decomposition.

Run:  python examples/rabin_trees.py
"""

from repro.analysis import decompose
from repro.ctl import sample_trees
from repro.rabin import (
    RabinTreeAutomaton,
    accepts_tree,
    emptiness_witness,
    nonempty_states,
    rfcl,
)

agfa = RabinTreeAutomaton.build(
    alphabet="ab",
    states=["q0", "qa", "qb"],
    initial="q0",
    transitions={
        ("q0", "a"): [("qa", "qa")],
        ("q0", "b"): [("qb", "qb")],
        ("qa", "a"): [("qa", "qa")],
        ("qa", "b"): [("qb", "qb")],
        ("qb", "a"): [("qa", "qa")],
        ("qb", "b"): [("qb", "qb")],
    },
    pairs=[(["qa"], [])],  # some pair: green {qa} recurs, nothing red
    branching=2,
    name="A(GF a)",
)
print(f"automaton: {agfa}")

# membership on the sample zoo
trees = sample_trees()
print("\nmembership (game-solved):")
for name, tree in sorted(trees.items()):
    print(f"  {name:12s} ∈ L: {accepts_tree(agfa, tree)}")

# emptiness + witness extraction
print(f"\nnon-empty states: {sorted(nonempty_states(agfa))}")
witness = emptiness_witness(agfa)
print(f"witness tree from the winning strategy: {witness}")
print(f"witness accepted: {accepts_tree(agfa, witness)}")

# the closure and Theorem 9
closure_automaton = rfcl(agfa)
print(f"\nrfcl(B): {closure_automaton} — acceptance trivialized")
d = decompose(agfa)
print(f"B_safe : {d.safety}")
print(f"B_live : {d.liveness}")
print(
    "identity L(B) = L(B_safe) ∩ B_live on all samples: "
    f"{d.verify_on_samples(trees.values())}"
)
print(
    "safety part fcl-closed on samples: "
    f"{d.safety_part_is_closed_on(trees.values())}"
)
