"""Phase profiling: attribute wall-time to named algorithm phases.

Two entry points:

* :func:`timed` — a decorator charging a whole function to one
  histogram::

      @timed("repro.buchi.decompose")
      def decompose(automaton): ...

  records each call's wall time into ``repro_buchi_decompose_seconds``
  in the shared registry (dots become underscores, ``_seconds`` is
  appended per the naming convention).

* :class:`PhaseTimer` — for algorithms with internal structure::

      _PHASES = PhaseTimer("repro.ltl.translate")

      with _PHASES.phase("tableau"): ...
      with _PHASES.phase("degeneralize"): ...

  Each phase lands in the ``phase`` label of one histogram family
  (``repro_ltl_translate_seconds{phase="tableau"}``), and
  :meth:`PhaseTimer.report` gives cumulative per-phase totals.  A tracer
  may be attached so phases double as spans.

Overhead per phase/call: two ``perf_counter`` reads and one locked
histogram record — fine for phases that do real work (milliseconds), by
design never placed on per-event paths.
"""

from __future__ import annotations

import functools
import threading
import time

from .context import current_context
from .metrics import REGISTRY, MetricRegistry
from .trace import NULL_TRACER


def metric_name(dotted: str, unit: str = "seconds") -> str:
    """``repro.buchi.decompose`` → ``repro_buchi_decompose_seconds``."""
    return dotted.replace(".", "_").replace("-", "_") + "_" + unit


def timed(name: str, *, registry: MetricRegistry | None = None):
    """Decorate a callable so every call records its wall time."""
    histogram = (registry or REGISTRY).histogram(
        metric_name(name), f"wall time of {name} calls"
    )

    def decorate(fn):
        @functools.wraps(fn)
        def wrapper(*args, **kwargs):
            started = time.perf_counter()
            try:
                return fn(*args, **kwargs)
            finally:
                histogram.record(time.perf_counter() - started)

        wrapper.__timed_metric__ = histogram
        return wrapper

    return decorate


class _Phase:
    """The context manager one ``timer.phase(...)`` call returns."""

    __slots__ = ("timer", "phase_name", "_span", "_started")

    def __init__(self, timer: "PhaseTimer", phase_name: str):
        self.timer = timer
        self.phase_name = phase_name

    def __enter__(self) -> "_Phase":
        self._span = self.timer.tracer.span(
            f"{self.timer.name}.{self.phase_name}"
        ).__enter__()
        self._started = time.perf_counter()
        return self

    def __exit__(self, *exc) -> bool:
        elapsed = time.perf_counter() - self._started
        self._span.__exit__(*exc)
        self.timer._record(self.phase_name, elapsed)
        return False


class PhaseTimer:
    """Per-phase wall-time attribution for one named algorithm.

    Histograms live in the shared registry under
    ``<name>_seconds{phase=...}``; local totals survive for
    :meth:`report` (handy in benchmarks, no registry scan needed).
    """

    def __init__(self, name: str, *, registry: MetricRegistry | None = None,
                 tracer=None):
        self.name = name
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self._family = (registry or REGISTRY).histogram(
            metric_name(name), f"per-phase wall time of {name}", ("phase",)
        )
        self._children: dict[str, object] = {}
        self._totals: dict[str, list] = {}
        self._lock = threading.Lock()

    def phase(self, phase_name: str) -> _Phase:
        return _Phase(self, phase_name)

    def _record(self, phase_name: str, elapsed: float) -> None:
        child = self._children.get(phase_name)
        if child is None:
            child = self._children[phase_name] = self._family.labels(phase=phase_name)
        child.record(elapsed)
        ctx = current_context()
        if ctx is not None:
            # attribute the sample to the request being served, so a
            # slow-log entry can say *which* kernel phases ate the time
            ctx.note_subphase(f"{self.name}.{phase_name}", elapsed)
        with self._lock:
            entry = self._totals.get(phase_name)
            if entry is None:
                self._totals[phase_name] = [elapsed, 1]
            else:
                entry[0] += elapsed
                entry[1] += 1

    def report(self) -> dict[str, dict]:
        """``{phase: {"seconds": total, "calls": n}}`` since creation/reset."""
        with self._lock:
            return {
                phase: {"seconds": total, "calls": calls}
                for phase, (total, calls) in sorted(self._totals.items())
            }

    def reset(self) -> None:
        """Zero the *local* totals (registry histograms are monotonic)."""
        with self._lock:
            self._totals.clear()

    def __repr__(self) -> str:
        with self._lock:
            phases = sorted(self._totals)
        return f"PhaseTimer({self.name!r}, phases={phases})"
