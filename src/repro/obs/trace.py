"""Span tracing with Chrome trace-event export.

A :class:`Tracer` hands out :class:`Span` context managers::

    tracer = Tracer()
    with tracer.span("rv.ingest", events=128) as ingest:
        with tracer.span("rv.drain_group"):       # child via thread-local
            ...

Parenthood propagates through a thread-local stack, so nested ``with``
blocks on one thread form a tree without any plumbing.  Across threads —
the :class:`~repro.rv.engine.RvEngine` worker pool dispatches group
drains onto pool threads — the parent is passed explicitly::

    with tracer.span("rv.drain_group", parent=ingest):
        ...

Finished spans land in a bounded ring (``max_spans``), so a long-running
engine never accumulates unbounded trace state; export either as JSONL
(one span per line) or as Chrome trace-event JSON that loads directly in
``about://tracing`` / ``ui.perfetto.dev``.

Tracing is **off the per-event hot path by design** (DESIGN.md records
the budget): instrumented code spans batches and phases, never single
events, and the engine defaults to :data:`NULL_TRACER` — a no-op whose
``span()`` costs one attribute check — so un-traced deployments pay
nothing.  Root spans can additionally be sampled (``sample_every=n``
keeps every n-th root span and drops the children of dropped roots).
"""

from __future__ import annotations

import itertools
import json
import os
import threading
import time


class _NullSpan:
    """The shared do-nothing span: usable as a context manager, never
    recorded, and its children are dropped too (``recording`` is False)."""

    __slots__ = ()
    recording = False
    span_id = 0
    parent_id = None
    name = ""
    start = end = 0.0

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc) -> bool:
        return False

    def set(self, **attrs) -> "_NullSpan":
        return self

    @property
    def attrs(self) -> dict:
        return {}

    def duration(self) -> float:
        return 0.0


NULL_SPAN = _NullSpan()


class _DroppedRoot(_NullSpan):
    """What a sampled-out root leaves on the thread-local stack: a
    non-recording placeholder, so every descendant opened while it is
    live is dropped too (subtree-consistent sampling).  The shared
    :data:`NULL_SPAN` cannot play this role — it never touches the
    stack, and a child opened under it would look like a fresh root."""

    __slots__ = ("_tracer",)

    def __init__(self, tracer: "Tracer"):
        self._tracer = tracer

    def __enter__(self) -> "_DroppedRoot":
        self._tracer._stack().append(self)
        return self

    def __exit__(self, *exc) -> bool:
        stack = self._tracer._stack()
        if stack and stack[-1] is self:
            stack.pop()
        return False


class NullTracer:
    """The disabled tracer: every span is :data:`NULL_SPAN`."""

    __slots__ = ()
    enabled = False

    def span(self, name: str, *, parent=None, **attrs) -> _NullSpan:
        return NULL_SPAN

    def current(self) -> None:
        return None

    def finished(self) -> list:
        return []

    def open_spans(self) -> list:
        return []

    def clear(self) -> None:
        pass


NULL_TRACER = NullTracer()


class Span:
    """One timed region: name, attributes, parent link, perf-counter
    bounds.  Created by :meth:`Tracer.span`; finished on ``__exit__``."""

    __slots__ = ("tracer", "name", "attrs", "span_id", "parent_id",
                 "start", "end", "thread_id")
    recording = True

    def __init__(self, tracer: "Tracer", name: str, attrs: dict, parent_id):
        self.tracer = tracer
        self.name = name
        self.attrs = attrs
        self.span_id = next(tracer._ids)
        self.parent_id = parent_id
        self.start = 0.0
        self.end = 0.0
        self.thread_id = 0

    def set(self, **attrs) -> "Span":
        """Attach attributes after entry (e.g. counts known only later)."""
        self.attrs.update(attrs)
        return self

    def duration(self) -> float:
        return self.end - self.start

    def __enter__(self) -> "Span":
        stack = self.tracer._stack()
        if self.parent_id is None and stack:
            self.parent_id = stack[-1].span_id
        stack.append(self)
        self.thread_id = threading.get_ident()
        with self.tracer._open_lock:
            self.tracer._open[self.span_id] = self
        self.start = time.perf_counter()
        return self

    def __exit__(self, *exc) -> bool:
        self.end = time.perf_counter()
        stack = self.tracer._stack()
        if stack and stack[-1] is self:
            stack.pop()
        with self.tracer._open_lock:
            self.tracer._open.pop(self.span_id, None)
        self.tracer._finished.append(self)
        return False

    def __repr__(self) -> str:
        return (f"Span({self.name!r}, id={self.span_id}, "
                f"parent={self.parent_id}, dur={self.duration() * 1e6:.1f}us)")


class Tracer:
    """Hands out spans, keeps the last ``max_spans`` finished ones."""

    enabled = True

    def __init__(self, max_spans: int = 65536, sample_every: int = 1):
        if max_spans < 1:
            raise ValueError("max_spans must be positive")
        if sample_every < 1:
            raise ValueError("sample_every must be positive")
        from collections import deque

        self.max_spans = max_spans
        self.sample_every = sample_every
        self._finished: "deque[Span]" = deque(maxlen=max_spans)
        self._open: dict[int, Span] = {}
        self._open_lock = threading.Lock()
        self._local = threading.local()
        self._ids = itertools.count(1)
        self._roots = itertools.count()
        self._epoch = time.perf_counter()

    def _stack(self) -> list:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def span(self, name: str, *, parent=None, **attrs):
        """Open a span.  ``parent`` may be a :class:`Span` from another
        thread (worker-pool propagation); omitted, the innermost span on
        *this* thread is the parent.  Children of a dropped (null) parent
        are dropped, which keeps sampling decisions subtree-consistent.
        """
        if parent is None:
            parent_id = None
            stack = self._stack()
            if stack:
                if not stack[-1].recording:
                    return NULL_SPAN  # descendant of a sampled-out root
            elif self.sample_every > 1 and next(self._roots) % self.sample_every:
                return _DroppedRoot(self)
        elif not parent.recording:
            return NULL_SPAN
        else:
            parent_id = parent.span_id
        return Span(self, name, attrs, parent_id)

    def current(self) -> Span | None:
        stack = self._stack()
        return stack[-1] if stack else None

    def finished(self) -> list[Span]:
        """Finished spans, oldest first (bounded by ``max_spans``)."""
        return list(self._finished)

    def open_spans(self) -> list[Span]:
        """Spans entered but not yet exited, oldest first.

        A trace dump taken *mid-request* (the ops ``/debug/profile``
        path, a slow-log snapshot) would silently lose exactly the spans
        one is looking for — the still-running ones — if export read
        only ``finished()``; exporters emit these as incomplete."""
        with self._open_lock:
            spans = list(self._open.values())
        return sorted(spans, key=lambda span: span.start)

    def clear(self) -> None:
        self._finished.clear()
        # forget still-open spans too: their late __exit__ pops a key
        # that is simply no longer there
        with self._open_lock:
            self._open.clear()

    # -- export -------------------------------------------------------------

    def chrome_events(self) -> list[dict]:
        """Chrome trace-event records, one per span; timestamps are µs
        since this tracer's epoch.  Finished spans are "complete"
        (``ph: X``) events; spans still open at dump time are emitted as
        "begin" (``ph: B``) events rather than dropped, so a trace taken
        mid-request shows the request being served."""
        pid = os.getpid()
        epoch = self._epoch
        events = []
        for span in self.finished():
            events.append({
                "name": span.name,
                "cat": "repro",
                "ph": "X",
                "ts": (span.start - epoch) * 1e6,
                "dur": span.duration() * 1e6,
                "pid": pid,
                "tid": span.thread_id,
                "args": {
                    "span_id": span.span_id,
                    "parent_id": span.parent_id,
                    **span.attrs,
                },
            })
        for span in self.open_spans():
            events.append({
                "name": span.name,
                "cat": "repro",
                "ph": "B",
                "ts": (span.start - epoch) * 1e6,
                "pid": pid,
                "tid": span.thread_id,
                "args": {
                    "span_id": span.span_id,
                    "parent_id": span.parent_id,
                    "open": True,
                    **span.attrs,
                },
            })
        return events

    def chrome_trace(self) -> dict:
        return {"traceEvents": self.chrome_events(), "displayTimeUnit": "ms"}

    def export_chrome(self, path) -> None:
        """Write Chrome trace JSON (open via ``about://tracing`` or
        https://ui.perfetto.dev)."""
        with open(path, "w") as handle:
            json.dump(self.chrome_trace(), handle)

    def export_jsonl(self, path) -> None:
        """One JSON span record per line (greppable, streamable).
        Still-open spans are written too, marked ``"open": true`` with a
        synthetic duration up to the dump instant."""
        now = time.perf_counter()
        with open(path, "w") as handle:
            for span in self.finished():
                handle.write(json.dumps({
                    "name": span.name,
                    "span_id": span.span_id,
                    "parent_id": span.parent_id,
                    "start": span.start - self._epoch,
                    "duration": span.duration(),
                    "thread_id": span.thread_id,
                    "attrs": span.attrs,
                }, sort_keys=True) + "\n")
            for span in self.open_spans():
                handle.write(json.dumps({
                    "name": span.name,
                    "span_id": span.span_id,
                    "parent_id": span.parent_id,
                    "start": span.start - self._epoch,
                    "duration": now - span.start,
                    "open": True,
                    "thread_id": span.thread_id,
                    "attrs": span.attrs,
                }, sort_keys=True) + "\n")

    def span_tree(self) -> dict[int | None, list[Span]]:
        """Finished spans grouped by ``parent_id`` (test/debug helper)."""
        tree: dict[int | None, list[Span]] = {}
        for span in self.finished():
            tree.setdefault(span.parent_id, []).append(span)
        return tree
