"""A labeled-metric registry: counters, gauges, log-bucketed histograms.

One registry serves the whole codebase (the module-level :data:`REGISTRY`)
so that the RV engine, the compile cache and the decomposition pipelines
all report through the same exposition surface.  Three metric kinds:

* :class:`Counter` — monotonic; ``add`` rejects negative increments.
* :class:`Gauge` — a settable level (queue depths, resident table count).
* :class:`Histogram` — HDR-style *log-bucketed*: a value lands in the
  bucket ``[g**i, g**(i+1))`` for growth factor ``g`` (default 20 buckets
  per decade, ~12% relative width), so percentile queries are exact up to
  one bucket width with O(buckets) memory and O(1) recording — no
  reservoir, no sampling loss, no unbounded retention.

Metric families are *named* and optionally *labeled*: registering the
same name twice returns the same family (get-or-create), and
``family.labels(engine="3")`` returns the per-label-set child, so every
``RvEngine`` instance gets its own series under one family name.

Thread safety: every read and write acquires the metric's lock — the PR 1
``rv.stats`` bundle read ``Counter.value`` unlocked and relied on CPython
atomicity; the registry versions do not.

Naming convention (see DESIGN.md): ``repro_<pkg>_<name>_<unit>``, e.g.
``repro_rv_events_total``, ``repro_buchi_decompose_seconds``.
"""

from __future__ import annotations

import math
import re
import threading
from types import MappingProxyType

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")

# Bound at module level: Histogram.record sits on the RV engine's
# per-drain hot path, and global loads beat attribute loads there.
_floor = math.floor
_log = math.log
_INF = math.inf


class MetricError(ValueError):
    """Invalid metric name, label set, or recorded value."""


class Counter:
    """A thread-safe monotonic counter (reads are locked too)."""

    __slots__ = ("_value", "_lock")

    def __init__(self):
        self._value = 0
        self._lock = threading.Lock()

    def add(self, n: int | float = 1) -> None:
        if n < 0:
            raise MetricError(f"counters are monotonic; cannot add {n!r}")
        with self._lock:
            self._value += n

    def inc(self) -> None:
        self.add(1)

    @property
    def value(self) -> int | float:
        with self._lock:
            return self._value

    def collect(self) -> dict:
        return {"value": self.value}

    def __repr__(self) -> str:
        return f"Counter({self.value})"


class Gauge:
    """A thread-safe level that can move both ways."""

    __slots__ = ("_value", "_lock")

    def __init__(self):
        self._value = 0.0
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        with self._lock:
            self._value = value

    def add(self, n: float = 1) -> None:
        with self._lock:
            self._value += n

    def sub(self, n: float = 1) -> None:
        self.add(-n)

    @property
    def value(self) -> float:
        with self._lock:
            return self._value

    def collect(self) -> dict:
        return {"value": self.value}

    def __repr__(self) -> str:
        return f"Gauge({self.value})"


#: 20 buckets per decade — ~12.2% relative bucket width.
DEFAULT_GROWTH = 10 ** 0.05


class Histogram:
    """A log-bucketed histogram with percentile queries.

    A positive value ``v`` lands in bucket ``i = floor(log_g v)``, i.e.
    ``g**i <= v < g**(i+1)``; zero has its own bucket.  ``percentile(p)``
    walks the cumulative bucket counts to the nearest-rank position and
    returns the geometric midpoint of that bucket clamped to the observed
    ``[min, max]`` — guaranteed within one bucket width of the exact
    nearest-rank percentile (the property test pins this).
    """

    __slots__ = ("growth", "_inv_log_growth", "_powers", "_bounds", "_buckets",
                 "_zero", "_count", "_sum", "_min", "_max", "_lock")

    def __init__(self, *, growth: float = DEFAULT_GROWTH):
        if not growth > 1.0:
            raise MetricError("growth factor must exceed 1")
        self.growth = growth
        self._inv_log_growth = 1.0 / math.log(growth)
        self._powers: dict[int, float] = {}
        # (lo, hi) per bucket, filled lazily — same benign race as _powers.
        self._bounds: dict[int, tuple[float, float]] = {}
        self._buckets: dict[int, int] = {}
        self._zero = 0
        self._count = 0
        self._sum = 0.0
        self._min = math.inf
        self._max = -math.inf
        self._lock = threading.Lock()

    def record(self, value: float) -> None:
        if not value >= 0:  # also rejects NaN
            raise MetricError(f"histogram values must be finite and >= 0, got {value!r}")
        if value:
            # Fast path: trust floor(log v / log g) and verify against the
            # memoized bucket bounds; fall back to _index (which corrects
            # float rounding and fills the memo) only when the bounds are
            # missing or the value sits on a boundary the log misrounded.
            bounds = self._bounds
            i = _floor(_log(value) * self._inv_log_growth)
            pair = bounds.get(i)
            if pair is None or pair[0] > value or pair[1] <= value:
                i = self._index(value)
                bounds[i] = (self._power(i), self._power(i + 1))
            with self._lock:
                self._count += 1
                self._sum += value
                if value < self._min:
                    self._min = value
                if value > self._max:
                    self._max = value
                buckets = self._buckets
                buckets[i] = buckets.get(i, 0) + 1
        else:
            with self._lock:
                self._count += 1
                self._zero += 1
                if self._min > 0.0:
                    self._min = 0.0
                if self._max < 0.0:
                    self._max = 0.0

    def _power(self, i: int) -> float:
        # Memoized g**i: bucket-boundary lookups dominate record() cost.
        # Written outside the lock — a benign race: concurrent writers
        # store the identical value, and CPython dict ops are GIL-atomic.
        power = self._powers.get(i)
        if power is None:
            power = self._powers[i] = self.growth ** i
        return power

    def _index(self, value: float) -> int:
        i = math.floor(math.log(value) * self._inv_log_growth)
        # guard the float rounding at bucket boundaries
        while self._power(i) > value:
            i -= 1
        while self._power(i + 1) <= value:
            i += 1
        return i

    def bucket_bounds(self, value: float) -> tuple[float, float]:
        """The ``[lo, hi)`` bucket a value falls in (``(0, 0)`` for zero)."""
        if value == 0:
            return (0.0, 0.0)
        i = self._index(value)
        return (self.growth ** i, self.growth ** (i + 1))

    @property
    def count(self) -> int:
        with self._lock:
            return self._count

    @property
    def sum(self) -> float:
        with self._lock:
            return self._sum

    @property
    def mean(self) -> float:
        with self._lock:
            return self._sum / self._count if self._count else 0.0

    @property
    def min(self) -> float:
        with self._lock:
            return self._min if self._count else 0.0

    @property
    def max(self) -> float:
        with self._lock:
            return self._max if self._count else 0.0

    def percentile(self, p: float) -> float:
        """Nearest-rank percentile, exact to one bucket width."""
        if not 0 <= p <= 100:
            raise MetricError("percentile must be in [0, 100]")
        with self._lock:
            n = self._count
            if n == 0:
                return 0.0
            zero = self._zero
            items = sorted(self._buckets.items())
            lo_seen, hi_seen = self._min, self._max
        rank = max(1, math.ceil(p / 100 * n))
        cumulative = zero
        if cumulative >= rank:
            return 0.0
        g = self.growth
        for i, bucket_count in items:
            cumulative += bucket_count
            if cumulative >= rank:
                midpoint = math.sqrt((g ** i) * (g ** (i + 1)))
                return min(max(midpoint, lo_seen), hi_seen)
        return hi_seen

    def p50(self) -> float:
        return self.percentile(50)

    def p95(self) -> float:
        return self.percentile(95)

    def p99(self) -> float:
        return self.percentile(99)

    def cumulative_buckets(self) -> list[tuple[float, int]]:
        """``(upper_bound, cumulative_count)`` pairs for exposition
        (Prometheus ``le`` semantics; the final implicit bound is +Inf)."""
        with self._lock:
            items = sorted(self._buckets.items())
            zero = self._zero
        out: list[tuple[float, int]] = []
        cumulative = zero
        if zero:
            out.append((0.0, zero))
        g = self.growth
        for i, bucket_count in items:
            cumulative += bucket_count
            out.append((g ** (i + 1), cumulative))
        return out

    def collect(self) -> dict:
        with self._lock:
            count, total = self._count, self._sum
        return {
            "count": count,
            "sum": total,
            "min": self.min,
            "max": self.max,
            "p50": self.p50(),
            "p95": self.p95(),
            "p99": self.p99(),
            "buckets": self.cumulative_buckets(),
        }

    def __repr__(self) -> str:
        return f"Histogram(count={self.count}, p50={self.p50():.3g})"


def share_lock(*metrics) -> threading.Lock:
    """Guard several metrics with one shared lock and return it.

    For hot paths that always update a fixed group of metrics together
    (the RV drain loop bumps three counters per drain), taking one lock
    per metric dominates the cost.  Coarsening to a single lock is
    strictly safe — every operation still runs under *a* lock, the group
    is merely serialized — and lets the owner batch the updates under a
    single acquire by writing the ``_value`` fields directly inside
    ``with lock:`` (the lock returned here *is* each metric's ``_lock``,
    so ordinary ``add``/``value`` calls from other threads still
    synchronize with the batch).  Do not nest such a batch inside
    another metric call on the same group: the lock is not reentrant.
    """
    lock = threading.Lock()
    for metric in metrics:
        metric._lock = lock
    return lock


_KINDS = MappingProxyType(
    {"counter": Counter, "gauge": Gauge, "histogram": Histogram}
)


class MetricFamily:
    """A named metric with zero or more labeled children.

    With an empty ``labelnames`` the family has exactly one child (label
    set ``()``); :meth:`MetricRegistry.counter` and friends return that
    child directly so unlabeled metrics read like plain objects.
    """

    __slots__ = ("name", "help", "labelnames", "kind", "_make", "_children", "_lock")

    def __init__(self, name: str, help: str, labelnames: tuple, kind: str, make):
        self.name = name
        self.help = help
        self.labelnames = labelnames
        self.kind = kind
        self._make = make
        self._children: dict[tuple, object] = {}
        self._lock = threading.Lock()

    def labels(self, **labels):
        if set(labels) != set(self.labelnames):
            raise MetricError(
                f"{self.name}: expected labels {self.labelnames}, got {tuple(labels)}"
            )
        key = tuple(str(labels[name]) for name in self.labelnames)
        with self._lock:
            child = self._children.get(key)
            if child is None:
                child = self._children[key] = self._make()
        return child

    def children(self) -> dict[tuple, object]:
        with self._lock:
            return dict(self._children)

    def collect(self) -> dict:
        """A plain-dict snapshot: one sample per labeled child."""
        samples = []
        for key, child in sorted(self.children().items()):
            sample = {"labels": dict(zip(self.labelnames, key))}
            sample.update(child.collect())
            samples.append(sample)
        return {
            "name": self.name,
            "kind": self.kind,
            "help": self.help,
            "labelnames": list(self.labelnames),
            "samples": samples,
        }


class MetricRegistry:
    """Named families, get-or-create, one process-wide default below."""

    def __init__(self):
        self._families: dict[str, MetricFamily] = {}
        self._lock = threading.Lock()

    def _register(self, name: str, help: str, labelnames, kind: str, make) -> MetricFamily:
        if not _NAME_RE.match(name):
            raise MetricError(f"invalid metric name {name!r}")
        labelnames = tuple(labelnames)
        for label in labelnames:
            if not _LABEL_RE.match(label):
                raise MetricError(f"invalid label name {label!r}")
        with self._lock:
            family = self._families.get(name)
            if family is not None:
                if family.kind != kind or family.labelnames != labelnames:
                    raise MetricError(
                        f"metric {name!r} already registered as "
                        f"{family.kind}{family.labelnames}, not {kind}{labelnames}"
                    )
                return family
            family = MetricFamily(name, help, labelnames, kind, make)
            self._families[name] = family
            return family

    def counter(self, name: str, help: str = "", labelnames=()):
        family = self._register(name, help, labelnames, "counter", Counter)
        return family if labelnames else family.labels()

    def gauge(self, name: str, help: str = "", labelnames=()):
        family = self._register(name, help, labelnames, "gauge", Gauge)
        return family if labelnames else family.labels()

    def histogram(self, name: str, help: str = "", labelnames=(),
                  *, growth: float = DEFAULT_GROWTH):
        family = self._register(
            name, help, labelnames, "histogram", lambda: Histogram(growth=growth)
        )
        return family if labelnames else family.labels()

    def families(self) -> list[MetricFamily]:
        with self._lock:
            return list(self._families.values())

    def collect(self) -> list[dict]:
        """Every family's snapshot, in registration order."""
        return [family.collect() for family in self.families()]

    def to_dict(self) -> dict:
        """Stable-JSON-friendly view: ``{name: family snapshot}``."""
        return {family["name"]: family for family in self.collect()}

    def to_prometheus(self) -> str:
        from .export import to_prometheus

        return to_prometheus(self)


#: The process-wide default registry every instrumented module reports to.
REGISTRY = MetricRegistry()
