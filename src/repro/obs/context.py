"""Request-scoped attribution: the context every span, phase sample and
journal event can hang off.

A :class:`RequestContext` names one unit of served work — trace id,
kind, origin, optional deadline — and accumulates *where its wall time
went*: top-level **phases** (``queue`` → ``compute`` → ``verify``,
recorded by the service) and fine-grained **subphases** (kernel
:class:`~repro.obs.profile.PhaseTimer` samples taken while the context
was active).  The phases partition the request's lifetime, so a slow-log
entry's phase sum reconstructs its wall time; the subphases attribute
that time to named algorithm internals.

Propagation is a :mod:`contextvars` variable: :func:`use_context` makes
a context current for a ``with`` block, :func:`current_context` reads it
back anywhere downstream — including inside
:class:`~repro.obs.profile.PhaseTimer`, which is how a
``repro.buchi.decomposition`` phase sample becomes attributable to the
request that triggered it.  Contextvars do **not** cross thread
boundaries by themselves; :class:`repro.rv.pool.WorkerPool` captures the
submitter's context and re-activates it on the pool thread, and the
analysis service activates each request's context explicitly in its
worker (``_process``).

Everything here is stdlib-only and intra-package, keeping
:mod:`repro.obs` the dependency leaf (RC003).
"""

from __future__ import annotations

import contextvars
import itertools
import os
import time

_CURRENT: contextvars.ContextVar["RequestContext | None"] = contextvars.ContextVar(
    "repro_request_context", default=None
)

#: Monotonic per-process id source; the pid prefix keeps ids unique
#: across the future sharded (multi-process) tier.
_IDS = itertools.count(1)
_ID_PREFIX = f"r{os.getpid():x}"


class _CtxPhase:
    """The context manager one ``ctx.phase(...)`` call returns."""

    __slots__ = ("_ctx", "_name", "_started")

    def __init__(self, ctx: "RequestContext", name: str):
        self._ctx = ctx
        self._name = name

    def __enter__(self) -> "_CtxPhase":
        self._started = time.perf_counter()
        return self

    def __exit__(self, *exc) -> bool:
        self._ctx.note_phase(self._name, time.perf_counter() - self._started)
        return False


class RequestContext:
    """One request's identity plus its wall-time attribution ledger.

    ``request_id`` is process-unique (pid-prefixed counter) unless the
    caller supplies one; ``deadline`` is a ``perf_counter`` instant (the
    same clock the service uses) or ``None``; ``origin`` names where the
    request came from (``"local"``, a peer shard, an HTTP client, ...).
    """

    __slots__ = ("request_id", "kind", "origin", "deadline", "created_at",
                 "_phases", "_subphases")

    def __init__(self, *, kind: str = "", origin: str = "local",
                 deadline: float | None = None, request_id: str | None = None):
        if request_id is None:
            request_id = _ID_PREFIX + "-%06x" % next(_IDS)
        self.request_id = request_id
        self.kind = kind
        self.origin = origin
        self.deadline = deadline
        self.created_at = time.perf_counter()
        # Single-writer by construction: phases and subphases are only
        # recorded by the thread currently *serving* this request (the
        # context travels with the work, never shared between writers).
        # Readers (/debug/inflight, the slow-log) take GIL-atomic dict
        # copies, so no lock is needed — this is a per-request hot path,
        # and the dicts themselves are allocated on first use.
        self._phases: dict[str, float] | None = None
        self._subphases: dict[str, float] | None = None

    # -- attribution --------------------------------------------------------

    def phase(self, name: str) -> _CtxPhase:
        """Time a top-level phase: ``with ctx.phase("compute"): ...``.

        Top-level phases are meant to *partition* the request's
        lifetime (queue/compute/verify in the service), so their sum
        reconstructs its wall time."""
        return _CtxPhase(self, name)

    def note_phase(self, name: str, seconds: float) -> None:
        phases = self._phases
        if phases is None:
            phases = self._phases = {}
        phases[name] = phases.get(name, 0.0) + seconds

    def note_subphase(self, name: str, seconds: float) -> None:
        """Record a nested sample (kernel phase timers report here);
        subphases overlap the top-level phases and each other freely."""
        subphases = self._subphases
        if subphases is None:
            subphases = self._subphases = {}
        subphases[name] = subphases.get(name, 0.0) + seconds

    def phases(self) -> dict[str, float]:
        return dict(self._phases) if self._phases else {}

    def subphases(self) -> dict[str, float]:
        return dict(self._subphases) if self._subphases else {}

    # -- clocks -------------------------------------------------------------

    def age(self) -> float:
        """Seconds since the context was created."""
        return time.perf_counter() - self.created_at

    def remaining(self) -> float | None:
        """Seconds until the deadline (negative = expired), or ``None``."""
        if self.deadline is None:
            return None
        return self.deadline - time.perf_counter()

    def to_dict(self) -> dict:
        """A JSON-friendly snapshot (the ``/debug/inflight`` row)."""
        return {
            "request_id": self.request_id,
            "kind": self.kind,
            "origin": self.origin,
            "age_seconds": self.age(),
            "deadline_remaining": self.remaining(),
            "phases": self.phases(),
            "subphases": self.subphases(),
        }

    def __repr__(self) -> str:
        return (f"RequestContext({self.request_id}, kind={self.kind!r}, "
                f"age={self.age() * 1e3:.1f}ms)")


def current_context() -> RequestContext | None:
    """The active request context of this thread of execution, if any."""
    return _CURRENT.get()


class use_context:
    """Make ``ctx`` the current context for the ``with`` block (restores
    the previous one on exit; ``None`` deactivates).

    A hand-rolled context manager rather than ``@contextmanager``: this
    wraps every served request, and the generator protocol costs about
    a microsecond more per entry/exit pair than plain slots."""

    __slots__ = ("_ctx", "_token")

    def __init__(self, ctx: RequestContext | None):
        self._ctx = ctx

    def __enter__(self) -> RequestContext | None:
        self._token = _CURRENT.set(self._ctx)
        return self._ctx

    def __exit__(self, *exc) -> bool:
        _CURRENT.reset(self._token)
        return False
