"""repro.obs — unified observability: metrics, spans, phase profiling.

Dependency-free and shared by every package in the repo.  Five modules:

* :mod:`repro.obs.context` — request-scoped attribution
  (:class:`RequestContext`, :func:`current_context`,
  :func:`use_context`): the contextvar-propagated identity the ops
  plane (:mod:`repro.ops`) hangs slow-logs, journal events and
  per-request phase breakdowns on;

* :mod:`repro.obs.metrics` — the labeled-metric registry (monotonic
  counters, gauges, log-bucketed histograms with p50/p95/p99), all
  thread-safe, all reporting through one process-wide :data:`REGISTRY`;
* :mod:`repro.obs.trace` — span tracing (``with tracer.span(...):``)
  with thread-local parent propagation, explicit cross-thread parents
  for the RV worker pool, and Chrome trace-event export;
* :mod:`repro.obs.profile` — the :func:`timed` decorator and
  :class:`PhaseTimer` for attributing wall time to algorithm phases;
* :mod:`repro.obs.export` — Prometheus text / stable JSON / JSONL
  exposition plus :func:`dump_bench_json`, the benchmark suite's
  persistence hook.

Conventions (DESIGN.md, "Observability"): metric names follow
``repro_<pkg>_<name>_<unit>``; metrics may sit on per-batch hot paths
(budget: one lock acquire + one add per event), spans never sit on
per-event paths (the engine's tracer defaults to :data:`NULL_TRACER`).
"""

from .context import RequestContext, current_context, use_context
from .export import (
    dump_bench_json,
    parse_prometheus_text,
    registry_to_dict,
    stable_json,
    to_prometheus,
    write_jsonl,
)
from .metrics import (
    Counter,
    DEFAULT_GROWTH,
    Gauge,
    Histogram,
    MetricError,
    MetricFamily,
    MetricRegistry,
    REGISTRY,
)
from .profile import PhaseTimer, metric_name, timed
from .trace import NULL_SPAN, NULL_TRACER, NullTracer, Span, Tracer

__all__ = [
    "REGISTRY",
    "MetricRegistry",
    "MetricFamily",
    "MetricError",
    "Counter",
    "Gauge",
    "Histogram",
    "DEFAULT_GROWTH",
    "Tracer",
    "NullTracer",
    "Span",
    "NULL_SPAN",
    "NULL_TRACER",
    "PhaseTimer",
    "timed",
    "metric_name",
    "RequestContext",
    "current_context",
    "use_context",
    "to_prometheus",
    "parse_prometheus_text",
    "registry_to_dict",
    "stable_json",
    "write_jsonl",
    "dump_bench_json",
]
