"""Exposition and persistence: Prometheus text, stable JSON, JSONL.

* :func:`to_prometheus` — the registry in Prometheus text exposition
  format (HELP/TYPE headers, labeled samples, cumulative ``le`` buckets
  for histograms), round-trippable through :func:`parse_prometheus_text`
  (CI uses the round trip as a validity gate).
* :func:`registry_to_dict` / :func:`stable_json` — deterministic JSON
  (sorted keys) so diffs of persisted snapshots are meaningful.
* :func:`write_jsonl` — one JSON record per line.
* :func:`dump_bench_json` — the benchmark suite's persistence hook:
  writes the per-benchmark records for one area into ``BENCH_<area>.json``
  (the repo's perf trajectory across PRs).
"""

from __future__ import annotations

import json
import re

from .metrics import MetricRegistry, REGISTRY

_SAMPLE_RE = re.compile(
    r"^([a-zA-Z_:][a-zA-Z0-9_:]*)"      # metric name
    r"(?:\{(.*)\})?"                     # optional label block
    r" (-?(?:[0-9.eE+-]+|[Ii]nf|NaN))$"  # value
)
_LABEL_PAIR_RE = re.compile(r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"')


def _escape(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _format_value(value) -> str:
    if value != value:  # NaN
        return "NaN"
    if value in (float("inf"), float("-inf")):
        return "+Inf" if value > 0 else "-Inf"
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return repr(value)


def _label_block(labels: dict, extra: dict | None = None) -> str:
    merged = dict(labels)
    if extra:
        merged.update(extra)
    if not merged:
        return ""
    body = ",".join(f'{k}="{_escape(str(v))}"' for k, v in merged.items())
    return "{" + body + "}"


def to_prometheus(registry: MetricRegistry | None = None) -> str:
    """The whole registry in Prometheus text exposition format."""
    registry = registry or REGISTRY
    lines: list[str] = []
    for family in registry.collect():
        name, kind = family["name"], family["kind"]
        if family["help"]:
            lines.append(f"# HELP {name} {_escape(family['help'])}")
        lines.append(f"# TYPE {name} {kind}")
        for sample in family["samples"]:
            labels = sample["labels"]
            if kind in ("counter", "gauge"):
                lines.append(f"{name}{_label_block(labels)} "
                             f"{_format_value(sample['value'])}")
            else:  # histogram
                for upper, cumulative in sample["buckets"]:
                    lines.append(
                        f"{name}_bucket{_label_block(labels, {'le': _format_value(upper)})} "
                        f"{cumulative}"
                    )
                lines.append(
                    f"{name}_bucket{_label_block(labels, {'le': '+Inf'})} "
                    f"{sample['count']}"
                )
                lines.append(f"{name}_sum{_label_block(labels)} "
                             f"{_format_value(sample['sum'])}")
                lines.append(f"{name}_count{_label_block(labels)} "
                             f"{sample['count']}")
    return "\n".join(lines) + ("\n" if lines else "")


def parse_prometheus_text(text: str) -> dict:
    """Parse exposition text back into ``{(name, labels): value}``.

    ``labels`` is a frozenset of ``(label, value)`` pairs.  Raises
    :class:`ValueError` on any malformed line — this is the CI gate that
    the exposition endpoint emits valid Prometheus text.
    """
    samples: dict = {}
    typed: set[str] = set()
    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.strip()
        if not line:
            continue
        if line.startswith("#"):
            parts = line.split(None, 3)
            if len(parts) < 3 or parts[1] not in ("HELP", "TYPE"):
                raise ValueError(f"line {lineno}: malformed comment {raw!r}")
            if parts[1] == "TYPE":
                if parts[2] in typed:
                    raise ValueError(f"line {lineno}: duplicate TYPE for {parts[2]}")
                if len(parts) < 4 or parts[3] not in ("counter", "gauge", "histogram", "summary", "untyped"):
                    raise ValueError(f"line {lineno}: bad metric type in {raw!r}")
                typed.add(parts[2])
            continue
        match = _SAMPLE_RE.match(line)
        if not match:
            raise ValueError(f"line {lineno}: malformed sample {raw!r}")
        name, label_block, value = match.groups()
        labels = {}
        if label_block:
            consumed = _LABEL_PAIR_RE.findall(label_block)
            rebuilt = ",".join(f'{k}="{v}"' for k, v in consumed)
            if rebuilt != label_block:
                raise ValueError(f"line {lineno}: malformed labels {label_block!r}")
            labels = dict(consumed)
        key = (name, frozenset(labels.items()))
        if key in samples:
            raise ValueError(f"line {lineno}: duplicate sample {key!r}")
        samples[key] = float(value.replace("Inf", "inf"))
    return samples


def registry_to_dict(registry: MetricRegistry | None = None) -> dict:
    """Deterministic plain-dict snapshot of the registry."""
    return (registry or REGISTRY).to_dict()


def stable_json(obj) -> str:
    """JSON with sorted keys and fixed separators — diffable output."""
    return json.dumps(obj, sort_keys=True, indent=2) + "\n"


def write_jsonl(path, records) -> None:
    """One JSON object per line."""
    with open(path, "w") as handle:
        for record in records:
            handle.write(json.dumps(record, sort_keys=True) + "\n")


def dump_bench_json(path, records, *, meta: dict | None = None):
    """Persist one benchmark area's measurements as stable JSON.

    ``records`` is a list of plain dicts (one per benchmark); ``meta``
    (pytest version, commit, …) rides along under ``"meta"`` when given.
    Returns the path written, for logging.
    """
    payload: dict = {"benchmarks": sorted(records, key=lambda r: r.get("fullname", ""))}
    if meta:
        payload["meta"] = meta
    with open(path, "w") as handle:
        handle.write(stable_json(payload))
    return path
