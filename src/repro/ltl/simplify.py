"""Semantics-preserving LTL simplification rewrites.

Bottom-up application of the standard identities (Boolean absorption and
units, temporal idempotence ``F F φ = F φ`` / ``G G φ = G φ``, the
``X``-distribution-free basics, and letter-set fusion).  Used to keep
tableau inputs small; every rewrite is validated in the tests by
exhaustive lasso agreement.
"""

from __future__ import annotations

from .syntax import (
    FALSE,
    TRUE,
    And,
    FalseFormula,
    Formula,
    Letter,
    Next,
    Not,
    Or,
    Release,
    TrueFormula,
    Until,
)


def simplify(formula: Formula) -> Formula:
    """Apply the rewrite rules to a fixpoint, bottom-up."""
    current = formula
    while True:
        simplified = _simplify_once(current)
        if simplified == current:
            return current
        current = simplified


def _simplify_once(f: Formula) -> Formula:
    if isinstance(f, (TrueFormula, FalseFormula, Letter)):
        return f
    if isinstance(f, Not):
        inner = _simplify_once(f.operand)
        if isinstance(inner, TrueFormula):
            return FALSE
        if isinstance(inner, FalseFormula):
            return TRUE
        if isinstance(inner, Not):
            return inner.operand
        return Not(inner)
    if isinstance(f, And):
        left, right = _simplify_once(f.left), _simplify_once(f.right)
        if isinstance(left, FalseFormula) or isinstance(right, FalseFormula):
            return FALSE
        if isinstance(left, TrueFormula):
            return right
        if isinstance(right, TrueFormula):
            return left
        if left == right:
            return left
        if isinstance(left, Letter) and isinstance(right, Letter):
            merged = left.letters & right.letters
            return Letter(merged) if merged else FALSE
        return And(left, right)
    if isinstance(f, Or):
        left, right = _simplify_once(f.left), _simplify_once(f.right)
        if isinstance(left, TrueFormula) or isinstance(right, TrueFormula):
            return TRUE
        if isinstance(left, FalseFormula):
            return right
        if isinstance(right, FalseFormula):
            return left
        if left == right:
            return left
        if isinstance(left, Letter) and isinstance(right, Letter):
            return Letter(left.letters | right.letters)
        return Or(left, right)
    if isinstance(f, Next):
        inner = _simplify_once(f.operand)
        if isinstance(inner, (TrueFormula, FalseFormula)):
            return inner  # X true = true, X false = false
        return Next(inner)
    if isinstance(f, Until):
        left, right = _simplify_once(f.left), _simplify_once(f.right)
        if isinstance(right, TrueFormula):
            return TRUE  # φ U true = true
        if isinstance(right, FalseFormula):
            return FALSE  # φ U false = false
        if isinstance(left, FalseFormula):
            return right  # false U ψ = ψ
        if left == right:
            return right
        # F-idempotence: true U (true U ψ) = true U ψ
        if (
            isinstance(left, TrueFormula)
            and isinstance(right, Until)
            and isinstance(right.left, TrueFormula)
        ):
            return right
        return Until(left, right)
    if isinstance(f, Release):
        left, right = _simplify_once(f.left), _simplify_once(f.right)
        if isinstance(right, FalseFormula):
            return FALSE  # φ R false = false
        if isinstance(right, TrueFormula):
            return TRUE  # φ R true = true
        if isinstance(left, TrueFormula):
            return right  # true R ψ = ψ
        if left == right:
            return right
        # G-idempotence: false R (false R ψ) = false R ψ
        if (
            isinstance(left, FalseFormula)
            and isinstance(right, Release)
            and isinstance(right.left, FalseFormula)
        ):
            return right
        return Release(left, right)
    raise TypeError(f"unknown formula node {f!r}")
