"""Syntactic safety/co-safety fragments of LTL (Sistla's line of work,
cited by the paper as [21]).

Sistla characterized safety for temporal logic syntactically: formulas
whose negation normal form uses only ``X``, ``R`` (hence ``G``, ``W``)
as temporal operators denote safety properties; dually, NNF formulas
using only ``X``, ``U`` (hence ``F``) denote *co-safety* (their
complements are safety — these are "guarantee" properties, a subclass
of liveness unless degenerate).

The implications are one-directional: a semantically safe property may
be written with ``U`` (e.g. ``a U false`` ≡ ``false``).  The tests
machine-check the sound direction against the exact semantic classifier
and exhibit the converse failures.
"""

from __future__ import annotations

from .syntax import (
    And,
    FalseFormula,
    Formula,
    Letter,
    Next,
    Or,
    Release,
    TrueFormula,
    Until,
    nnf_over_alphabet,
)


def is_syntactically_safe(formula: Formula, alphabet) -> bool:
    """NNF contains no ``Until`` — a sufficient condition for the
    property to be safety (Sistla)."""
    return _temporal_profile(formula, alphabet)["until"] == 0


def is_syntactically_cosafe(formula: Formula, alphabet) -> bool:
    """NNF contains no ``Release`` — sufficient for co-safety: the
    complement is a safety property."""
    return _temporal_profile(formula, alphabet)["release"] == 0


def _temporal_profile(formula: Formula, alphabet) -> dict:
    positive = nnf_over_alphabet(formula, alphabet)
    counts = {"until": 0, "release": 0, "next": 0}

    def walk(f: Formula):
        if isinstance(f, Until):
            counts["until"] += 1
        elif isinstance(f, Release):
            counts["release"] += 1
        elif isinstance(f, Next):
            counts["next"] += 1
        elif not isinstance(f, (And, Or, Letter, TrueFormula, FalseFormula)):
            raise TypeError(f"unknown formula node {f!r}")
        for child in f.children():
            walk(child)

    walk(positive)
    return counts


def syntactic_class(formula: Formula, alphabet) -> str:
    """``"safety"``, ``"cosafety"``, ``"both"`` (pure past/present —
    no U and no R) or ``"none"`` (mixes U and R: no syntactic verdict)."""
    profile = _temporal_profile(formula, alphabet)
    safe = profile["until"] == 0
    cosafe = profile["release"] == 0
    if safe and cosafe:
        return "both"
    if safe:
        return "safety"
    if cosafe:
        return "cosafety"
    return "none"
