"""LTL semantics over ultimately periodic words.

``satisfies(word, formula)`` evaluates a formula on a lasso word exactly:
a lasso has ``spine = |u| + |v|`` distinguishable positions (position
``i >= |u|`` recurs with period ``|v|``), and each temporal operator is a
fixpoint over that finite position graph — least for U (initialize
false, iterate), greatest for R (initialize true, iterate).

This evaluator is the *semantic ground truth* the tableau translation in
:mod:`repro.ltl.translate` is validated against.
"""

from __future__ import annotations

from repro.omega.word import LassoWord

from .syntax import (
    And,
    FalseFormula,
    Formula,
    Letter,
    Next,
    Not,
    Or,
    Release,
    TrueFormula,
    Until,
)


def satisfies(word: LassoWord, formula: Formula) -> bool:
    """Whether ``word ⊨ formula``."""
    return evaluate_positions(word, formula)[0]


def evaluate_positions(word: LassoWord, formula: Formula) -> list[bool]:
    """The truth value of ``formula`` at every canonical position of the
    lasso (index ``i`` = the suffix ``word[i:]``)."""
    spine = word.spine_length
    loop_back = len(word.prefix)

    def nxt(i: int) -> int:
        return i + 1 if i + 1 < spine else loop_back

    cache: dict[Formula, list[bool]] = {}

    def eval_formula(f: Formula) -> list[bool]:
        if f in cache:
            return cache[f]
        if isinstance(f, TrueFormula):
            result = [True] * spine
        elif isinstance(f, FalseFormula):
            result = [False] * spine
        elif isinstance(f, Letter):
            result = [word[i] in f.letters for i in range(spine)]
        elif isinstance(f, Not):
            result = [not v for v in eval_formula(f.operand)]
        elif isinstance(f, And):
            left, right = eval_formula(f.left), eval_formula(f.right)
            result = [a and b for a, b in zip(left, right)]
        elif isinstance(f, Or):
            left, right = eval_formula(f.left), eval_formula(f.right)
            result = [a or b for a, b in zip(left, right)]
        elif isinstance(f, Next):
            inner = eval_formula(f.operand)
            result = [inner[nxt(i)] for i in range(spine)]
        elif isinstance(f, Until):
            left, right = eval_formula(f.left), eval_formula(f.right)
            result = _fixpoint(
                spine,
                nxt,
                start=False,
                step=lambda i, val: right[i] or (left[i] and val[nxt(i)]),
            )
        elif isinstance(f, Release):
            left, right = eval_formula(f.left), eval_formula(f.right)
            result = _fixpoint(
                spine,
                nxt,
                start=True,
                step=lambda i, val: right[i] and (left[i] or val[nxt(i)]),
            )
        else:
            raise TypeError(f"unknown formula node {f!r}")
        cache[f] = result
        return result

    return eval_formula(formula)


def _fixpoint(spine: int, nxt, start: bool, step) -> list[bool]:
    """Iterate ``val[i] = step(i, val)`` to the fixpoint.

    With monotone ``step``, starting from all-``start`` converges within
    ``spine`` rounds (least fixpoint from False, greatest from True).
    """
    val = [start] * spine
    for _ in range(spine + 1):
        new = [step(i, val) for i in range(spine)]
        if new == val:
            break
        val = new
    return val


def language_of(formula: Formula, alphabet):
    """The models of ``formula`` as a semantic
    :class:`~repro.omega.language.OmegaLanguage`."""
    from repro.omega.language import OmegaLanguage

    return OmegaLanguage(
        alphabet, lambda w: satisfies(w, formula), name=str(formula)
    )


def models_within(formula: Formula, alphabet, max_prefix: int = 2, max_cycle: int = 3):
    """All bounded lasso models — handy in tests."""
    from repro.omega.word import all_lassos

    return [
        w
        for w in all_lassos(alphabet, max_prefix, max_cycle)
        if satisfies(w, formula)
    ]
