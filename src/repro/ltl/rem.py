"""Martin Rem's example properties (paper §2.3).

Over an alphabet containing the symbol ``a`` (default ``{a, b}``):

========  ===============================================  =============
id        informal                                          LTL
========  ===============================================  =============
p0        false                                             ``false``
p1        first symbol is a                                 ``a``
p2        first symbol differs from a                       ``¬a``
p3        first is a and some symbol differs from a         ``a ∧ F ¬a``
p4        finitely many a's                                  ``FG ¬a``
p5        infinitely many a's                                ``GF a``
p6        true                                              ``true``
========  ===============================================  =============

The paper's classification: p0, p1, p2, p6 are safety; p3 is neither
(its closure is p1); p4 and p5 are liveness (closure Σ^ω).  p6 is also a
liveness property (the only property that is both).
"""

from __future__ import annotations

from dataclasses import dataclass

from .classify import Classification, PropertyClass, classify
from .syntax import FALSE, TRUE, F, Formula, G, Not, sym


@dataclass(frozen=True)
class RemExample:
    """One row of the paper's §2.3 example table."""

    identifier: str
    informal: str
    formula: Formula
    expected: PropertyClass


def rem_examples(a_symbol: str = "a") -> list[RemExample]:
    """The seven properties, with the paper's expected classification."""
    a = sym(a_symbol)
    return [
        RemExample("p0", "false", FALSE, PropertyClass.SAFETY),
        RemExample("p1", f"first symbol is {a_symbol}", a, PropertyClass.SAFETY),
        RemExample(
            "p2", f"first symbol differs from {a_symbol}", Not(a), PropertyClass.SAFETY
        ),
        RemExample(
            "p3",
            f"first is {a_symbol} and some symbol differs",
            a & F(Not(a)),
            PropertyClass.NEITHER,
        ),
        RemExample(
            "p4", f"finitely many {a_symbol}'s", F(G(Not(a))), PropertyClass.LIVENESS
        ),
        RemExample(
            "p5", f"infinitely many {a_symbol}'s", G(F(a)), PropertyClass.LIVENESS
        ),
        RemExample("p6", "true", TRUE, PropertyClass.BOTH),
    ]


def classify_rem_examples(alphabet=("a", "b")) -> list[tuple[RemExample, Classification]]:
    """Classify all seven examples — the reproduction of the §2.3 table.

    Note on p6: the paper's table lists it under safety; it is of course
    also live (``lcl.Σ^ω = Σ^ω``), which our classifier reports as BOTH.
    """
    return [(ex, classify(ex.formula, alphabet)) for ex in rem_examples()]
