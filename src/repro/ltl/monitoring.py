"""Three-valued runtime verification of LTL, built on the closures.

RV semantics on a finite prefix ``u``:

* ``FALSE``    — no infinite extension of ``u`` satisfies φ
                 (``u`` is a *bad prefix*: it already left ``lcl(L_φ)``);
* ``TRUE``     — every extension satisfies φ
                 (``u`` is a bad prefix of ¬φ);
* ``UNKNOWN``  — some extensions satisfy φ, some don't.

Both verdicts are exactly the Alpern–Schneider closure machinery: "some
extension satisfies" = the subset run over ``cl``-live states of the
formula automaton is still alive.  Safety formulas can reach FALSE,
co-safety formulas can reach TRUE, and properties whose both closures
are universal (e.g. ``GF a``) stay UNKNOWN forever — the RV-theoretic
face of the safety/liveness distinction.
"""

from __future__ import annotations

from enum import Enum

from repro.buchi.emptiness import live_states

from .syntax import Formula, Not
from .translate import translate


class Verdict3(Enum):
    TRUE = "true"
    FALSE = "false"
    UNKNOWN = "unknown"


class RvMonitor:
    """An incremental three-valued monitor for one LTL formula."""

    def __init__(self, formula: Formula, alphabet):
        self.formula = formula
        self.alphabet = frozenset(alphabet)
        self._pos = translate(formula, self.alphabet)
        self._neg = translate(Not(formula), self.alphabet)
        self._pos_live = live_states(self._pos)
        self._neg_live = live_states(self._neg)
        self.reset()

    def reset(self) -> None:
        self._pos_set = frozenset({self._pos.initial}) & self._pos_live
        self._neg_set = frozenset({self._neg.initial}) & self._neg_live
        self._events = 0
        self._verdict = self._compute()

    def _compute(self) -> Verdict3:
        can_satisfy = bool(self._pos_set)
        can_violate = bool(self._neg_set)
        if can_satisfy and can_violate:
            return Verdict3.UNKNOWN
        if can_satisfy:
            return Verdict3.TRUE
        return Verdict3.FALSE

    @property
    def verdict(self) -> Verdict3:
        return self._verdict

    @property
    def position(self) -> int:
        return self._events

    def observe(self, event) -> Verdict3:
        """Feed one event; verdicts are *final* once non-UNKNOWN."""
        if event not in self.alphabet:
            raise ValueError(f"event {event!r} outside the alphabet")
        self._events += 1
        if self._verdict is not Verdict3.UNKNOWN:
            return self._verdict
        self._pos_set = self._pos.post(self._pos_set, event) & self._pos_live
        self._neg_set = self._neg.post(self._neg_set, event) & self._neg_live
        self._verdict = self._compute()
        return self._verdict

    def run(self, events) -> Verdict3:
        """Observe a whole finite trace from a fresh start."""
        self.reset()
        for e in events:
            self.observe(e)
        return self._verdict

    def is_monitorable_now(self) -> bool:
        """Whether a definite verdict is still reachable from the current
        state: some extension is a bad prefix of φ or of ¬φ.

        (A conservative state-local check: the monitor can still leave
        UNKNOWN iff one of the two subset runs can be killed, i.e. the
        corresponding subset can reach the empty set.)
        """
        if self._verdict is not Verdict3.UNKNOWN:
            return True
        return _can_die(self._pos, self._pos_live, self._pos_set) or _can_die(
            self._neg, self._neg_live, self._neg_set
        )


def monitor_verdict(formula: Formula, alphabet, events) -> Verdict3:
    """One-shot trace evaluation."""
    return RvMonitor(formula, alphabet).run(events)


def _can_die(automaton, live, start: frozenset) -> bool:
    """Whether the live-restricted subset run from ``start`` can reach
    the empty set."""
    seen = {start}
    frontier = [start]
    while frontier:
        current = frontier.pop()
        for a in automaton.alphabet:
            nxt = automaton.post(current, a) & live
            if not nxt:
                return True
            if nxt not in seen:
                seen.add(nxt)
                frontier.append(nxt)
    return False
