"""Linear Temporal Logic: syntax, lasso semantics, Büchi translation,
and the safety/liveness classifier (paper §2.2–2.3)."""

from .classify import Classification, PropertyClass, classify, decompose_formula
from .fragments import (
    is_syntactically_cosafe,
    is_syntactically_safe,
    syntactic_class,
)
from .monitoring import RvMonitor, Verdict3, monitor_verdict
from .parser import ParseError, parse
from .rem import RemExample, classify_rem_examples, rem_examples
from .semantics import evaluate_positions, language_of, models_within, satisfies
from .simplify import simplify
from .syntax import (
    FALSE,
    TRUE,
    And,
    F,
    FalseFormula,
    Formula,
    G,
    Letter,
    Next,
    Not,
    Or,
    Release,
    TrueFormula,
    Until,
    W,
    X,
    iff,
    implies,
    nnf_over_alphabet,
    sym,
)
from .translate import translate

__all__ = [
    "Formula",
    "TrueFormula",
    "FalseFormula",
    "TRUE",
    "FALSE",
    "Letter",
    "sym",
    "Not",
    "And",
    "Or",
    "Next",
    "Until",
    "Release",
    "X",
    "F",
    "G",
    "W",
    "implies",
    "iff",
    "nnf_over_alphabet",
    "parse",
    "ParseError",
    "satisfies",
    "evaluate_positions",
    "language_of",
    "models_within",
    "translate",
    "classify",
    "Classification",
    "PropertyClass",
    "rem_examples",
    "classify_rem_examples",
    "RemExample",
    "is_syntactically_safe",
    "is_syntactically_cosafe",
    "syntactic_class",
    "RvMonitor",
    "Verdict3",
    "monitor_verdict",
    "simplify",
]
