"""A small recursive-descent parser for LTL.

Grammar (precedence from loose to tight)::

    formula  ::=  iff
    iff      ::=  implies ( "<->" implies )*
    implies  ::=  or ( "->" or )*          (right associative)
    or       ::=  and ( ("|" | "∨") and )*
    and      ::=  binary ( ("&" | "∧") binary )*
    binary   ::=  unary ( ("U" | "R" | "W") unary )*   (right associative)
    unary    ::=  ("!" | "¬" | "X" | "F" | "G")* atom
    atom     ::=  "true" | "false" | "(" formula ")" | symbol | "{" sym ("," sym)* "}"

Symbols are single identifiers (letters/digits/underscore); the atomic
formula ``a`` means "the current symbol is ``a``", and ``{a,b}`` means
"the current symbol is one of a, b" — matching Rem's examples:
``"a & F !a"`` is the paper's p3.
"""

from __future__ import annotations

import re

from .syntax import (
    FALSE,
    TRUE,
    And,
    F,
    Formula,
    G,
    Letter,
    Next,
    Not,
    Or,
    Release,
    Until,
    W,
    iff,
    implies,
)

_TOKEN = re.compile(
    r"\s*(?:(?P<arrow2><->)|(?P<arrow>->)|(?P<op>[!¬&∧|∨(){},])|(?P<word>\w+))"
)


class ParseError(ValueError):
    """Raised on malformed LTL input."""


def tokenize(text: str) -> list[str]:
    tokens = []
    pos = 0
    while pos < len(text):
        m = _TOKEN.match(text, pos)
        if not m or m.end() == pos:
            remainder = text[pos:].strip()
            if not remainder:
                break
            raise ParseError(f"cannot tokenize at: {remainder[:20]!r}")
        token = m.group(m.lastgroup)
        if re.fullmatch(r"[XFG]{2,}", token):
            # allow stacked temporal prefixes written without spaces: GF a
            tokens.extend(token)
        else:
            tokens.append(token)
        pos = m.end()
    return tokens


_RESERVED = frozenset({"U", "R", "W", "X", "F", "G", "true", "false"})


class _Parser:
    def __init__(self, tokens: list[str]):
        self.tokens = tokens
        self.pos = 0

    def peek(self) -> str | None:
        return self.tokens[self.pos] if self.pos < len(self.tokens) else None

    def take(self) -> str:
        tok = self.peek()
        if tok is None:
            raise ParseError("unexpected end of input")
        self.pos += 1
        return tok

    def expect(self, token: str) -> None:
        got = self.take()
        if got != token:
            raise ParseError(f"expected {token!r}, got {got!r}")

    # precedence climbing -----------------------------------------------------

    def formula(self) -> Formula:
        return self.iff_level()

    def iff_level(self) -> Formula:
        left = self.implies_level()
        while self.peek() == "<->":
            self.take()
            left = iff(left, self.implies_level())
        return left

    def implies_level(self) -> Formula:
        left = self.or_level()
        if self.peek() == "->":
            self.take()
            return implies(left, self.implies_level())
        return left

    def or_level(self) -> Formula:
        left = self.and_level()
        while self.peek() in ("|", "∨"):
            self.take()
            left = Or(left, self.and_level())
        return left

    def and_level(self) -> Formula:
        left = self.binary_level()
        while self.peek() in ("&", "∧"):
            self.take()
            left = And(left, self.binary_level())
        return left

    def binary_level(self) -> Formula:
        left = self.unary_level()
        tok = self.peek()
        if tok in ("U", "R", "W"):
            self.take()
            right = self.binary_level()  # right associative
            if tok == "U":
                return Until(left, right)
            if tok == "R":
                return Release(left, right)
            return W(left, right)
        return left

    def unary_level(self) -> Formula:
        tok = self.peek()
        if tok in ("!", "¬"):
            self.take()
            return Not(self.unary_level())
        if tok == "X":
            self.take()
            return Next(self.unary_level())
        if tok == "F":
            self.take()
            return F(self.unary_level())
        if tok == "G":
            self.take()
            return G(self.unary_level())
        return self.atom()

    def atom(self) -> Formula:
        tok = self.take()
        if tok == "true":
            return TRUE
        if tok == "false":
            return FALSE
        if tok == "(":
            inner = self.formula()
            self.expect(")")
            return inner
        if tok == "{":
            letters = [self._symbol()]
            while self.peek() == ",":
                self.take()
                letters.append(self._symbol())
            self.expect("}")
            return Letter(letters)
        if tok in _RESERVED or not re.fullmatch(r"\w+", tok):
            raise ParseError(f"unexpected token {tok!r}")
        return Letter([tok])

    def _symbol(self) -> str:
        tok = self.take()
        if not re.fullmatch(r"\w+", tok) or tok in _RESERVED:
            raise ParseError(f"expected a symbol, got {tok!r}")
        return tok


def parse(text: str) -> Formula:
    """Parse an LTL formula from text."""
    parser = _Parser(tokenize(text))
    result = parser.formula()
    if parser.peek() is not None:
        raise ParseError(f"trailing input from {parser.peek()!r}")
    return result
