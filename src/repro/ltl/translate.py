"""LTL → Büchi translation (on-the-fly tableau construction).

Pipeline::

    formula --nnf--> positive formula --tableau--> generalized Büchi
            --degeneralize--> Büchi --trim + simulation-quotient--> result

The tableau is built on the fly (GPVW-style): a state is a *saturated*
obligation set — a locally consistent set of subformulas closed under
the expansion laws (∧ adds both conjuncts, ∨ branches, U/R branch
between fulfilling now and delaying) — and only states reachable from
the root formula's saturations are ever constructed, so the automaton is
exponential only in the worst case, not always.

Acceptance is generalized — one set per Until subformula (visit states
where the Until is absent or already fulfilled) — then degeneralized
with the usual counter.

Correctness is established in the test suite by exhaustive agreement
with the semantic evaluator on bounded lassos — for the ω-regular
fragment that agreement is equality.
"""

from __future__ import annotations

from collections.abc import Iterable

from repro.buchi.automaton import BuchiAutomaton
from repro.buchi.emptiness import trim
from repro.buchi.simulation import quotient_by_simulation
from repro.obs.metrics import REGISTRY
from repro.obs.profile import PhaseTimer

from .syntax import (
    And,
    FalseFormula,
    Formula,
    Letter,
    Next,
    Or,
    Release,
    TrueFormula,
    Until,
    nnf_over_alphabet,
)


#: Per-phase wall time of the translate pipeline (tableau construction,
#: degeneralization, trimming, simulation quotient).
_PHASES = PhaseTimer("repro.ltl.translate")
_TRANSLATIONS = REGISTRY.counter(
    "repro_ltl_translations_total", "translate() calls"
)
_TABLEAU_STATES = REGISTRY.counter(
    "repro_ltl_tableau_states_total",
    "saturated tableau states constructed (pre-degeneralization)",
)


def translate(formula: Formula, alphabet: Iterable, simplify: bool = True) -> BuchiAutomaton:
    """A Büchi automaton with ``L(A) = models(formula)`` over ``alphabet``."""
    alphabet = frozenset(alphabet)
    if not alphabet:
        raise ValueError("alphabet must be non-empty")
    positive = nnf_over_alphabet(formula, alphabet)

    with _PHASES.phase("tableau"):
        initial_candidates = _saturate(frozenset({positive}))
        states: set[frozenset] = set(initial_candidates)
        transitions: dict = {}
        untils_seen: set = set()
        frontier = list(initial_candidates)
        successors_cache: dict[frozenset, tuple] = {}

        while frontier:
            s = frontier.pop()
            untils_seen |= {f for f in s if isinstance(f, Until)}
            if s in successors_cache:
                continue
            need = _required_next(s)
            succ = _saturate(need)
            successors_cache[s] = tuple(succ)
            for t in succ:
                if t not in states:
                    states.add(t)
                    frontier.append(t)

        for s in states:
            succ = frozenset(successors_cache[s])
            if not succ:
                continue
            for a in alphabet:
                if _letter_ok(s, a):
                    transitions[s, a] = succ

        untils = sorted(untils_seen, key=str)
        acceptance_sets = [
            frozenset(s for s in states if u not in s or u.right in s)
            for u in untils
        ]
    with _PHASES.phase("degeneralize"):
        nba = _degeneralize(
            alphabet=alphabet,
            states=sorted(states, key=sorted_key),
            initial_candidates=sorted(initial_candidates, key=sorted_key),
            transitions=transitions,
            acceptance_sets=acceptance_sets,
            name=str(formula),
        )
    with _PHASES.phase("trim"):
        result = trim(nba)
    if simplify:
        with _PHASES.phase("quotient"):
            result = quotient_by_simulation(result)
    _TRANSLATIONS.add()
    _TABLEAU_STATES.add(len(states))
    return result.renumbered(name=str(formula))


def sorted_key(state: frozenset) -> str:
    return ",".join(sorted(str(f) for f in state))


def _letter_ok(state: frozenset, a) -> bool:
    return all(a in f.letters for f in state if isinstance(f, Letter))


def _required_next(state: frozenset) -> frozenset:
    """The obligations carried to the next position."""
    need: set = set()
    for f in state:
        if isinstance(f, Next):
            need.add(f.operand)
        elif isinstance(f, Until) and f.right not in state:
            need.add(f)
        elif isinstance(f, Release) and f.left not in state:
            need.add(f)
    return frozenset(need)


def _saturate(obligations: frozenset) -> list[frozenset]:
    """All saturated, locally consistent extensions of ``obligations``.

    Saturation: every formula in the set is *witnessed now* —
    conjunctions by both conjuncts, disjunctions by a chosen disjunct,
    Until by its right side or by its left side (delaying), Release by
    its right side plus optionally its left (closing it out).  The
    returned sets keep the originals, so acceptance and next-obligation
    extraction can inspect them.
    """
    results: list[frozenset] = []
    seen: set[frozenset] = set()

    def expand(done: frozenset, todo: tuple):
        if not todo:
            if done not in seen:
                seen.add(done)
                if _consistent(done):
                    results.append(done)
            return
        f, rest = todo[0], todo[1:]
        if f in done:
            expand(done, rest)
            return
        done = done | {f}
        if isinstance(f, FalseFormula):
            return  # inconsistent branch
        if isinstance(f, (TrueFormula, Letter, Next)):
            expand(done, rest)
        elif isinstance(f, And):
            expand(done, (f.left, f.right) + rest)
        elif isinstance(f, Or):
            expand(done, (f.left,) + rest)
            expand(done, (f.right,) + rest)
        elif isinstance(f, Until):
            expand(done, (f.right,) + rest)  # fulfil now
            expand(done, (f.left,) + rest)  # delay (next-obligation kept)
        elif isinstance(f, Release):
            # right holds now; either left closes the release out, or it
            # is delayed to the next position
            expand(done, (f.right, f.left) + rest)
            expand(done, (f.right,) + rest)
        else:
            raise TypeError(f"unknown formula node {f!r}")

    expand(frozenset(), tuple(obligations))
    # deduplicate saturations that differ only in bookkeeping order
    unique = []
    seen_sets: set[frozenset] = set()
    for s in results:
        if s not in seen_sets:
            seen_sets.add(s)
            unique.append(s)
    return unique


def _consistent(state: frozenset) -> bool:
    letters = [f.letters for f in state if isinstance(f, Letter)]
    if letters and not frozenset.intersection(*letters):
        return False
    return not any(isinstance(f, FalseFormula) for f in state)


def _degeneralize(
    alphabet: frozenset,
    states: list,
    initial_candidates: list,
    transitions: dict,
    acceptance_sets: list,
    name: str,
) -> BuchiAutomaton:
    """Textbook counter construction GNBA → NBA.

    NBA states are ``(tableau_state, i)`` with ``i`` the index of the
    acceptance set currently awaited; the counter advances when the
    *source* lies in set ``i``, and the accepting states are ``(q, 0)``
    with ``q ∈ F_0`` — visited infinitely often iff every set is.  A
    fresh initial state simulates all tableau states asserting the root
    formula.
    """
    if not acceptance_sets:
        acceptance_sets = [frozenset(states)]
    k = len(acceptance_sets)

    def step_counter(source, i: int) -> int:
        return (i + 1) % k if source in acceptance_sets[i] else i

    init = "init"
    nba_states: set = {init}
    nba_transitions: dict = {}
    frontier: list = []

    def add(node):
        if node not in nba_states:
            nba_states.add(node)
            frontier.append(node)

    for a in alphabet:
        targets = set()
        for s0 in initial_candidates:
            i_next = step_counter(s0, 0)
            for t in transitions.get((s0, a), ()):
                targets.add((t, i_next))
        for node in targets:
            add(node)
        if targets:
            nba_transitions[init, a] = frozenset(targets)

    while frontier:
        node = frontier.pop()
        s, i = node
        i_next = step_counter(s, i)
        for a in alphabet:
            targets = {(t, i_next) for t in transitions.get((s, a), ())}
            for nxt in targets:
                add(nxt)
            if targets:
                nba_transitions[node, a] = frozenset(targets)

    accepting = frozenset(
        n
        for n in nba_states
        if n != init and n[1] == 0 and n[0] in acceptance_sets[0]
    )
    return BuchiAutomaton(
        alphabet=alphabet,
        states=frozenset(nba_states),
        initial=init,
        transitions=nba_transitions,
        accepting=accepting,
        name=name,
    )
