"""Linear Temporal Logic — syntax.

Formulas are interpreted over infinite words on an explicit finite
alphabet Σ (the paper's setting: Rem's properties talk about *symbols*,
e.g. "the first symbol of t is a").  The atomic formula is therefore
:class:`Letter` — "the current symbol lies in this set" — from which
propositional atoms can be encoded when needed.

Operators: the Boolean connectives, X (next), F (eventually), G (always),
U (until), R (release) and W (weak until).  All formula classes are
immutable and hashable; :func:`negation_normal_form` pushes negations to
the atoms (needed by the tableau translation).
"""

from __future__ import annotations

from collections.abc import Iterable
from dataclasses import dataclass


class Formula:
    """Base class for LTL formulas (immutable)."""

    # -- combinator sugar --------------------------------------------------

    def __and__(self, other: "Formula") -> "Formula":
        return And(self, other)

    def __or__(self, other: "Formula") -> "Formula":
        return Or(self, other)

    def __invert__(self) -> "Formula":
        return Not(self)

    def implies(self, other: "Formula") -> "Formula":
        return Or(Not(self), other)

    def until(self, other: "Formula") -> "Formula":
        return Until(self, other)

    def release(self, other: "Formula") -> "Formula":
        return Release(self, other)

    # -- structure ---------------------------------------------------------

    def subformulas(self) -> set["Formula"]:
        """All subformulas including self."""
        result = {self}
        for child in self.children():
            result |= child.subformulas()
        return result

    def children(self) -> tuple["Formula", ...]:
        return ()

    def letters_mentioned(self) -> frozenset:
        out: set = set()
        for f in self.subformulas():
            if isinstance(f, Letter):
                out |= set(f.letters)
        return frozenset(out)

    def size(self) -> int:
        """Node count."""
        return 1 + sum(c.size() for c in self.children())

    def canonical_key(self) -> str:
        """A structural cache key for memoization (DESIGN.md §8).

        Formulas have no states to rename, so the key is a digest of the
        AST itself; :class:`Letter` sets are serialized sorted so symbol
        insertion order never matters."""
        from repro.canonical import digest, stable_token

        def token(f: "Formula") -> str:
            if isinstance(f, Letter):
                letters = ",".join(
                    sorted(stable_token(x) for x in f.letters)
                )
                return "L{" + letters + "}"
            name = type(f).__name__
            children = f.children()
            if not children:
                return name
            return name + "(" + ",".join(token(c) for c in children) + ")"

        return "ltl:" + digest(token(self))


@dataclass(frozen=True)
class TrueFormula(Formula):
    def __str__(self) -> str:
        return "true"


@dataclass(frozen=True)
class FalseFormula(Formula):
    def __str__(self) -> str:
        return "false"


TRUE = TrueFormula()
FALSE = FalseFormula()


@dataclass(frozen=True)
class Letter(Formula):
    """"The current symbol is one of ``letters``."""

    letters: frozenset

    def __init__(self, letters: Iterable):
        object.__setattr__(self, "letters", frozenset(letters))

    def __str__(self) -> str:
        if len(self.letters) == 1:
            return str(next(iter(self.letters)))
        return "{" + ",".join(sorted(map(str, self.letters))) + "}"


def sym(letter) -> Letter:
    """The atomic formula "the current symbol equals ``letter``"."""
    return Letter([letter])


@dataclass(frozen=True)
class Not(Formula):
    operand: Formula

    def children(self):
        return (self.operand,)

    def __str__(self) -> str:
        return f"¬{_paren(self.operand)}"


@dataclass(frozen=True)
class And(Formula):
    left: Formula
    right: Formula

    def children(self):
        return (self.left, self.right)

    def __str__(self) -> str:
        return f"({self.left} ∧ {self.right})"


@dataclass(frozen=True)
class Or(Formula):
    left: Formula
    right: Formula

    def children(self):
        return (self.left, self.right)

    def __str__(self) -> str:
        return f"({self.left} ∨ {self.right})"


@dataclass(frozen=True)
class Next(Formula):
    operand: Formula

    def children(self):
        return (self.operand,)

    def __str__(self) -> str:
        return f"X {_paren(self.operand)}"


@dataclass(frozen=True)
class Until(Formula):
    left: Formula
    right: Formula

    def children(self):
        return (self.left, self.right)

    def __str__(self) -> str:
        return f"({self.left} U {self.right})"


@dataclass(frozen=True)
class Release(Formula):
    left: Formula
    right: Formula

    def children(self):
        return (self.left, self.right)

    def __str__(self) -> str:
        return f"({self.left} R {self.right})"


def F(operand: Formula) -> Formula:
    """Eventually: ``F φ = true U φ``."""
    return Until(TRUE, operand)


def G(operand: Formula) -> Formula:
    """Always: ``G φ = false R φ``."""
    return Release(FALSE, operand)


def X(operand: Formula) -> Formula:
    return Next(operand)


def W(left: Formula, right: Formula) -> Formula:
    """Weak until: ``φ W ψ = ψ R (φ ∨ ψ)``."""
    return Release(right, Or(left, right))


def implies(left: Formula, right: Formula) -> Formula:
    return Or(Not(left), right)


def iff(left: Formula, right: Formula) -> Formula:
    return And(implies(left, right), implies(right, left))


def nnf_over_alphabet(formula: Formula, alphabet: Iterable) -> Formula:
    """Negation normal form over an explicit alphabet: negated atoms
    become their complementary :class:`Letter`."""
    alphabet = frozenset(alphabet)

    def nnf(f: Formula, negated: bool) -> Formula:
        if isinstance(f, TrueFormula):
            return FALSE if negated else TRUE
        if isinstance(f, FalseFormula):
            return TRUE if negated else FALSE
        if isinstance(f, Letter):
            if not f.letters <= alphabet:
                raise ValueError(
                    f"atom {f} mentions symbols outside the alphabet"
                )
            return Letter(alphabet - f.letters) if negated else f
        if isinstance(f, Not):
            return nnf(f.operand, not negated)
        if isinstance(f, And):
            cls = Or if negated else And
            return cls(nnf(f.left, negated), nnf(f.right, negated))
        if isinstance(f, Or):
            cls = And if negated else Or
            return cls(nnf(f.left, negated), nnf(f.right, negated))
        if isinstance(f, Next):
            return Next(nnf(f.operand, negated))
        if isinstance(f, Until):
            cls = Release if negated else Until
            return cls(nnf(f.left, negated), nnf(f.right, negated))
        if isinstance(f, Release):
            cls = Until if negated else Release
            return cls(nnf(f.left, negated), nnf(f.right, negated))
        raise TypeError(f"unknown formula node {f!r}")

    return nnf(formula, False)


def _paren(f: Formula) -> str:
    text = str(f)
    return text if len(text) <= 2 or text.startswith("(") else f"({text})"
