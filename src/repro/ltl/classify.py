"""Safety/liveness classification of LTL formulas.

Sistla characterized safety and liveness syntactically for temporal
logic; the paper instead routes everything through the lattice framework.
We follow the paper: translate the formula to a Büchi automaton, apply
the closure operator, and test ``L = cl.L`` (safety) / ``cl.L = Σ^ω``
(liveness) with exact automata-theoretic checks.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass
from enum import Enum

from repro.buchi import BuchiAutomaton, closure
from repro.buchi.decomposition import _decompose as _buchi_decompose

from .syntax import Formula
from .translate import translate


class PropertyClass(Enum):
    """The paper's trichotomy (plus the degenerate overlap)."""

    SAFETY = "safety"
    LIVENESS = "liveness"
    BOTH = "both"  # only Σ^ω
    NEITHER = "neither"


@dataclass(frozen=True)
class Classification:
    """Everything the classifier learned about one formula."""

    formula: Formula
    automaton: BuchiAutomaton
    closure_automaton: BuchiAutomaton
    kind: PropertyClass

    @property
    def is_safety(self) -> bool:
        return self.kind in (PropertyClass.SAFETY, PropertyClass.BOTH)

    @property
    def is_liveness(self) -> bool:
        return self.kind in (PropertyClass.LIVENESS, PropertyClass.BOTH)


def classify(formula: Formula, alphabet) -> Classification:
    """Classify an LTL formula as safety / liveness / neither over the
    given alphabet.

    Exact, and cheap even for large automata: the complement of the
    formula's language is obtained by translating ``¬formula`` (never by
    automaton complementation), so safety reduces to the emptiness of
    ``cl(A_φ) ∩ A_¬φ`` and liveness to emptiness of ``¬cl(A_φ)`` (a
    safety-automaton complement).
    """
    from repro.buchi.complement import complement_safety
    from repro.buchi.emptiness import is_empty
    from repro.buchi.operations import intersection

    from .syntax import Not

    automaton = translate(formula, alphabet)
    closed = closure(automaton)
    negated = translate(Not(formula), alphabet)
    safe = is_empty(intersection(closed, negated))
    live = is_empty(complement_safety(closed))
    if safe and live:
        kind = PropertyClass.BOTH
    elif safe:
        kind = PropertyClass.SAFETY
    elif live:
        kind = PropertyClass.LIVENESS
    else:
        kind = PropertyClass.NEITHER
    return Classification(
        formula=formula,
        automaton=automaton,
        closure_automaton=closed,
        kind=kind,
    )


def _decompose_formula(formula: Formula, alphabet):
    """The Alpern–Schneider decomposition of a formula's language:
    returns the :class:`~repro.buchi.decomposition.BuchiDecomposition`
    of its automaton (safety automaton ∩ liveness automaton = models)."""
    return _buchi_decompose(translate(formula, alphabet))


def decompose_formula(formula: Formula, alphabet):
    """Deprecated spelling — use
    :func:`repro.analysis.decompose` with ``alphabet=``."""
    warnings.warn(
        "repro.ltl.classify.decompose_formula is deprecated; use "
        "repro.analysis.decompose(formula, alphabet=alphabet)",
        DeprecationWarning,
        stacklevel=2,
    )
    return _decompose_formula(formula, alphabet)
