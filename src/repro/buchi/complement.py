"""Büchi complementation.

Three constructions, from cheap to general:

* :func:`complement_safety` — for safety automata (all states accepting):
  determinize by subset construction; the complement accepts exactly the
  words that eventually kill every run (reach the empty subset).  This is
  the only complement the Theorem 2 decomposition itself needs (the
  liveness automaton is ``B ∪ ¬cl(B)`` and ``cl(B)`` is always a safety
  automaton).
* :func:`complement_deterministic` — for deterministic (completed)
  automata: the classical two-copy construction guessing the point after
  which no accepting state occurs (the complement of a deterministic
  Büchi language is Büchi-recognizable with 2n states).
* :func:`complement` — general nondeterministic automata via Kupferman–
  Vardi rank-based complementation (ranks bounded by ``2(n - |F|)``),
  used by the exact language-inclusion checker on small automata.
"""

from __future__ import annotations

from itertools import product

from repro.automata.dense import DenseBuchi, DenseForm
from repro.automata.kernel import iter_bits, subset_dfa
from repro.obs.metrics import REGISTRY
from repro.obs.profile import PhaseTimer

from .automaton import BuchiAutomaton
from .emptiness import trim, universal_automaton

#: Wall time per complementation phase — the dispatcher's trim/emptiness/
#: quotient preprocessing plus one phase per construction actually run
#: (``subset`` for safety, ``two_copy`` for deterministic, ``rank`` for
#: the Kupferman–Vardi fallback).
_PHASES = PhaseTimer("repro.buchi.complement")
_CONSTRUCTIONS = REGISTRY.counter(
    "repro_buchi_complements_total",
    "complement constructions run, by kind",
    ("kind",),
)


def complement_safety(automaton: BuchiAutomaton) -> BuchiAutomaton:
    """Complement of a *safety* automaton (every state accepting and
    useful, e.g. anything produced by :func:`repro.buchi.closure.closure`).

    For such automata, König's lemma gives ``w ∈ L`` iff every prefix of
    ``w`` keeps the subset construction non-empty; so ``¬L`` = "the subset
    run eventually dies", recognized by the subset automaton with an
    accepting sink for the empty set.
    """
    if automaton.accepting != automaton.states:
        from .emptiness import is_empty

        if is_empty(automaton):
            # e.g. the canonical ∅ automaton produced by closure/trim
            return universal_automaton(automaton.alphabet, name=f"¬{automaton.name}")
        raise ValueError(
            "complement_safety requires a safety automaton "
            "(all states accepting); use complement() instead"
        )
    _CONSTRUCTIONS.labels(kind="subset").add()
    with _PHASES.phase("subset"):
        form = automaton.to_dense()
        dfa = subset_dfa(form.core)
        n = len(dfa.subsets)
        # Renumber the DFA into the result automaton's own state-interner
        # order (BFS, symbols in repr order, the one possibly-unreachable
        # state — the dead sink — last), so the dense core assembled here
        # can seed the result's to_dense cache without being re-derived.
        order = [dfa.initial]
        new_index = {dfa.initial: 0}
        i = 0
        while i < len(order):
            for t in dfa.trans[order[i]]:
                if t not in new_index:
                    new_index[t] = len(order)
                    order.append(t)
            i += 1
        if len(order) < n:
            new_index[dfa.dead] = len(order)
            order.append(dfa.dead)
        names = form.states
        masks = dfa.subsets
        decoded = []
        for s in order:
            mask = masks[s]
            members = []
            while mask:
                low = mask & -mask
                members.append(names[low.bit_length() - 1])
                mask ^= low
            decoded.append(frozenset(members))
        subset_states = tuple(decoded)
        singletons = tuple(frozenset({q}) for q in subset_states)
        symbols = form.symbols
        transitions: dict = {}
        core_rows = [[0] * n for _ in symbols]
        for i, s in enumerate(order):
            source = subset_states[i]
            for a, t in enumerate(dfa.trans[s]):
                j = new_index[t]
                transitions[source, symbols[a]] = singletons[j]
                core_rows[a][i] = 1 << j
        core = DenseBuchi(
            n_states=n,
            n_symbols=len(symbols),
            initial=0,
            succ=tuple(tuple(row) for row in core_rows),
            accepting=1 << new_index[dfa.dead],
        )
        result = BuchiAutomaton(
            alphabet=automaton.alphabet,
            states=frozenset(subset_states),
            initial=subset_states[0],
            transitions=transitions,
            accepting=frozenset({frozenset()}),
            name=f"¬{automaton.name}",
        )
        result._seed_dense(DenseForm(core, subset_states, symbols))
        return result


def complement_deterministic(automaton: BuchiAutomaton) -> BuchiAutomaton:
    """Complement of a deterministic automaton (completed first).

    Copy 0 tracks the run; at any point the automaton may guess that no
    further accepting state occurs and jump to copy 1, which excludes
    accepting states.  Accepting = staying in copy 1 forever.
    """
    if not automaton.is_deterministic():
        raise ValueError("complement_deterministic requires a deterministic automaton")
    _CONSTRUCTIONS.labels(kind="two_copy").add()
    with _PHASES.phase("two_copy"):
        return _complement_deterministic(automaton)


def _complement_deterministic(automaton: BuchiAutomaton) -> BuchiAutomaton:
    m = automaton.completed()
    transitions: dict = {}
    states: set = set()
    for q in m.states:
        states.add((0, q))
        if q not in m.accepting:
            states.add((1, q))
    for (q, a), targets in m.transitions.items():
        (r,) = targets
        copy0 = {(0, r)}
        if r not in m.accepting:
            copy0.add((1, r))
        transitions[(0, q), a] = frozenset(copy0)
        if q not in m.accepting and r not in m.accepting:
            transitions[(1, q), a] = frozenset({(1, r)})
    return BuchiAutomaton(
        alphabet=m.alphabet,
        states=frozenset(states),
        initial=(0, m.initial),
        transitions=transitions,
        accepting=frozenset(s for s in states if s[0] == 1),
        name=f"¬{automaton.name}",
    )


def complement(automaton: BuchiAutomaton) -> BuchiAutomaton:
    """General complementation, dispatching to the cheapest sound
    construction: safety → subset, deterministic → two-copy, otherwise
    rank-based (exponential — trim the input first and keep it small).

    Memoized on the (immutable) instance: inclusion sweeps complement
    the same automaton once per comparison otherwise, and the rank-based
    fallback is far too expensive to rebuild."""
    cached = getattr(automaton, "_complement_cache", None)
    if cached is not None:
        return cached
    result = _complement_dispatch(automaton)
    object.__setattr__(automaton, "_complement_cache", result)
    return result


def _complement_dispatch(automaton: BuchiAutomaton) -> BuchiAutomaton:
    from .emptiness import is_empty
    from .simulation import quotient_by_simulation

    with _PHASES.phase("trim"):
        trimmed = trim(automaton)
    with _PHASES.phase("emptiness"):
        empty = is_empty(trimmed)
    if empty:
        return universal_automaton(automaton.alphabet, name=f"¬{automaton.name}")
    if trimmed.accepting == trimmed.states:
        return complement_safety(trimmed)
    if automaton.is_deterministic():
        return complement_deterministic(automaton)
    # shrink as much as possible before the exponential construction
    with _PHASES.phase("quotient"):
        small = quotient_by_simulation(trimmed)
    if small.is_deterministic():
        return complement_deterministic(small)
    return complement_rank_based(small)


def complement_rank_based(automaton: BuchiAutomaton) -> BuchiAutomaton:
    """Kupferman–Vardi rank-based complementation.

    States are pairs ``(f, O)`` where ``f`` is a *level ranking* — a map
    from automaton states to ranks in ``[0, 2(n - |F|)]`` with accepting
    states ranked even — and ``O`` is the set of states "owing" a visit to
    an odd rank.  A word is in the complement iff it admits an infinite
    ranked run whose O-set empties infinitely often.
    """
    _CONSTRUCTIONS.labels(kind="rank").add()
    with _PHASES.phase("rank"):
        return _complement_rank_based(automaton)


def _complement_rank_based(automaton: BuchiAutomaton) -> BuchiAutomaton:
    # The whole search runs on the dense core: a level ranking is a
    # length-n tuple of ranks (-1 = not in support), an O-set is a
    # bitmask.  Dense keys are decoded back to the hashable naming
    # ((state, rank) pairs repr-sorted, frozenset O) only at the end.
    m = automaton
    form = m.to_dense()
    core = form.core
    n = core.n_states
    acc = core.accepting
    succ = core.succ
    max_rank = 2 * max(1, n - acc.bit_count())

    evens = [tuple(r for r in range(top + 1) if r % 2 == 0)
             for top in range(max_rank + 1)]
    alls = [tuple(range(top + 1)) for top in range(max_rank + 1)]

    def successors_of(f: tuple, owing: int, a: int):
        row = succ[a]
        # a successor ranking g must satisfy g(q') <= f(q) whenever
        # q' ∈ δ(q, a); runs with no successor simply die (harmless)
        bound = [-1] * n
        for q in range(n):
            fq = f[q]
            if fq < 0:
                continue
            targets = row[q]
            while targets:
                low = targets & -targets
                r = low.bit_length() - 1
                targets ^= low
                if bound[r] < 0 or fq < bound[r]:
                    bound[r] = fq
        support = [r for r in range(n) if bound[r] >= 0]
        if not support:
            # every run died: the empty ranking (with nothing owed) is
            # its own accepting successor on all symbols
            yield ((-1,) * n, 0)
            return
        choices = [
            evens[bound[r]] if (acc >> r) & 1 else alls[bound[r]]
            for r in support
        ]
        owing_targets = 0
        if owing:
            for q in iter_bits(owing):
                owing_targets |= row[q]
        for combo in product(*choices):
            g = [-1] * n
            for r, rank_r in zip(support, combo):
                g[r] = rank_r
            new_owing = 0
            if owing:
                t = owing_targets
                while t:
                    low = t & -t
                    if g[low.bit_length() - 1] % 2 == 0:
                        new_owing |= low
                    t ^= low
            else:
                for r, rank_r in zip(support, combo):
                    if rank_r % 2 == 0:
                        new_owing |= 1 << r
            yield (tuple(g), new_owing)

    # One maximal initial ranking suffices: ranks only decrease along a
    # run, so any accepting ranked run from a lower initial rank is also
    # one from the maximal rank.
    top_rank = max_rank if not (acc >> core.initial) & 1 else max_rank - (max_rank % 2)
    f0 = [-1] * n
    f0[core.initial] = top_rank
    # single fresh initial state simulating all initial rankings
    init = ("init",)
    states: set = {init}
    transitions: dict = {}
    frontier: list = []

    def add_state(s):
        if s not in states:
            states.add(s)
            frontier.append(s)

    for a, symbol in enumerate(form.symbols):
        targets = set(successors_of(tuple(f0), 0, a))
        for nxt in targets:
            add_state(nxt)
        if targets:
            transitions[init, symbol] = frozenset(targets)

    while frontier:
        s = frontier.pop()
        f, owing = s
        for a, symbol in enumerate(form.symbols):
            targets = set(successors_of(f, owing, a))
            for nxt in targets:
                add_state(nxt)
            if targets:
                transitions[s, symbol] = frozenset(targets)

    order = sorted(range(n), key=lambda i: repr(form.states[i]))
    decoded: dict = {init: init}

    def decode(s):
        out = decoded.get(s)
        if out is None:
            g, owing = s
            out = (
                tuple((form.states[i], g[i]) for i in order if g[i] >= 0),
                frozenset(form.states[r] for r in iter_bits(owing)),
            )
            decoded[s] = out
        return out

    result = BuchiAutomaton(
        alphabet=m.alphabet,
        states=frozenset(decode(s) for s in states),
        initial=init,
        transitions={
            (decode(s), a): frozenset(decode(t) for t in targets)
            for (s, a), targets in transitions.items()
        },
        accepting=frozenset(
            decode(s) for s in states if s != init and not s[1]
        ),
        name=f"¬{automaton.name}",
    )
    return trim(result)
