"""Büchi complementation.

Three constructions, from cheap to general:

* :func:`complement_safety` — for safety automata (all states accepting):
  determinize by subset construction; the complement accepts exactly the
  words that eventually kill every run (reach the empty subset).  This is
  the only complement the Theorem 2 decomposition itself needs (the
  liveness automaton is ``B ∪ ¬cl(B)`` and ``cl(B)`` is always a safety
  automaton).
* :func:`complement_deterministic` — for deterministic (completed)
  automata: the classical two-copy construction guessing the point after
  which no accepting state occurs (the complement of a deterministic
  Büchi language is Büchi-recognizable with 2n states).
* :func:`complement` — general nondeterministic automata via Kupferman–
  Vardi rank-based complementation (ranks bounded by ``2(n - |F|)``),
  used by the exact language-inclusion checker on small automata.
"""

from __future__ import annotations

from itertools import product

from repro.obs.metrics import REGISTRY
from repro.obs.profile import PhaseTimer

from .automaton import BuchiAutomaton
from .emptiness import trim, universal_automaton

#: Wall time per complementation phase — the dispatcher's trim/emptiness/
#: quotient preprocessing plus one phase per construction actually run
#: (``subset`` for safety, ``two_copy`` for deterministic, ``rank`` for
#: the Kupferman–Vardi fallback).
_PHASES = PhaseTimer("repro.buchi.complement")
_CONSTRUCTIONS = REGISTRY.counter(
    "repro_buchi_complements_total",
    "complement constructions run, by kind",
    ("kind",),
)


def complement_safety(automaton: BuchiAutomaton) -> BuchiAutomaton:
    """Complement of a *safety* automaton (every state accepting and
    useful, e.g. anything produced by :func:`repro.buchi.closure.closure`).

    For such automata, König's lemma gives ``w ∈ L`` iff every prefix of
    ``w`` keeps the subset construction non-empty; so ``¬L`` = "the subset
    run eventually dies", recognized by the subset automaton with an
    accepting sink for the empty set.
    """
    if automaton.accepting != automaton.states:
        from .emptiness import is_empty

        if is_empty(automaton):
            # e.g. the canonical ∅ automaton produced by closure/trim
            return universal_automaton(automaton.alphabet, name=f"¬{automaton.name}")
        raise ValueError(
            "complement_safety requires a safety automaton "
            "(all states accepting); use complement() instead"
        )
    _CONSTRUCTIONS.labels(kind="subset").add()
    with _PHASES.phase("subset"):
        dead = frozenset()
        initial = frozenset({automaton.initial})
        states: set[frozenset] = {initial, dead}
        transitions: dict = {}
        frontier = [initial]
        while frontier:
            subset = frontier.pop()
            for a in automaton.alphabet:
                target = automaton.post(subset, a)
                transitions[subset, a] = frozenset({target})
                if target not in states:
                    states.add(target)
                    frontier.append(target)
        for a in automaton.alphabet:
            transitions[dead, a] = frozenset({dead})
        return BuchiAutomaton(
            alphabet=automaton.alphabet,
            states=frozenset(states),
            initial=initial,
            transitions=transitions,
            accepting=frozenset({dead}),
            name=f"¬{automaton.name}",
        )


def complement_deterministic(automaton: BuchiAutomaton) -> BuchiAutomaton:
    """Complement of a deterministic automaton (completed first).

    Copy 0 tracks the run; at any point the automaton may guess that no
    further accepting state occurs and jump to copy 1, which excludes
    accepting states.  Accepting = staying in copy 1 forever.
    """
    if not automaton.is_deterministic():
        raise ValueError("complement_deterministic requires a deterministic automaton")
    _CONSTRUCTIONS.labels(kind="two_copy").add()
    with _PHASES.phase("two_copy"):
        return _complement_deterministic(automaton)


def _complement_deterministic(automaton: BuchiAutomaton) -> BuchiAutomaton:
    m = automaton.completed()
    transitions: dict = {}
    states: set = set()
    for q in m.states:
        states.add((0, q))
        if q not in m.accepting:
            states.add((1, q))
    for (q, a), targets in m.transitions.items():
        (r,) = targets
        copy0 = {(0, r)}
        if r not in m.accepting:
            copy0.add((1, r))
        transitions[(0, q), a] = frozenset(copy0)
        if q not in m.accepting and r not in m.accepting:
            transitions[(1, q), a] = frozenset({(1, r)})
    return BuchiAutomaton(
        alphabet=m.alphabet,
        states=frozenset(states),
        initial=(0, m.initial),
        transitions=transitions,
        accepting=frozenset(s for s in states if s[0] == 1),
        name=f"¬{automaton.name}",
    )


def complement(automaton: BuchiAutomaton) -> BuchiAutomaton:
    """General complementation, dispatching to the cheapest sound
    construction: safety → subset, deterministic → two-copy, otherwise
    rank-based (exponential — trim the input first and keep it small).
    """
    from .emptiness import is_empty
    from .simulation import quotient_by_simulation

    with _PHASES.phase("trim"):
        trimmed = trim(automaton)
    with _PHASES.phase("emptiness"):
        empty = is_empty(trimmed)
    if empty:
        return universal_automaton(automaton.alphabet, name=f"¬{automaton.name}")
    if trimmed.accepting == trimmed.states:
        return complement_safety(trimmed)
    if automaton.is_deterministic():
        return complement_deterministic(automaton)
    # shrink as much as possible before the exponential construction
    with _PHASES.phase("quotient"):
        small = quotient_by_simulation(trimmed)
    if small.is_deterministic():
        return complement_deterministic(small)
    return complement_rank_based(small)


def complement_rank_based(automaton: BuchiAutomaton) -> BuchiAutomaton:
    """Kupferman–Vardi rank-based complementation.

    States are pairs ``(f, O)`` where ``f`` is a *level ranking* — a map
    from automaton states to ranks in ``[0, 2(n - |F|)]`` with accepting
    states ranked even — and ``O`` is the set of states "owing" a visit to
    an odd rank.  A word is in the complement iff it admits an infinite
    ranked run whose O-set empties infinitely often.
    """
    _CONSTRUCTIONS.labels(kind="rank").add()
    with _PHASES.phase("rank"):
        return _complement_rank_based(automaton)


def _complement_rank_based(automaton: BuchiAutomaton) -> BuchiAutomaton:
    m = automaton
    n = len(m.states)
    max_rank = 2 * max(1, n - len(m.accepting))

    def rankings_within(bound: dict):
        """All level rankings g with g(q) <= bound[q] (accepting states
        even) — enumerated directly inside the bounds, which shrink as
        ranks decrease along the run."""
        support = sorted(bound, key=repr)
        choices = []
        for q in support:
            top = bound[q]
            if q in m.accepting:
                choices.append([r for r in range(top + 1) if r % 2 == 0])
            else:
                choices.append(list(range(top + 1)))
        for combo in product(*choices):
            yield dict(zip(support, combo))

    def successors_of(f: dict, owing: frozenset, a):
        support = frozenset(f)
        # a successor ranking g must satisfy g(q') <= f(q) whenever
        # q' ∈ δ(q, a); runs with no successor simply die (harmless)
        bound: dict = {}
        for q in support:
            for r in m.successors(q, a):
                bound[r] = min(bound.get(r, max_rank), f[q])
        for g_combo in rankings_within(bound):
            if owing:
                new_owing = frozenset(
                    r
                    for q in owing
                    for r in m.successors(q, a)
                    if g_combo[r] % 2 == 0
                )
            else:
                new_owing = frozenset(r for r in g_combo if g_combo[r] % 2 == 0)
            yield (_freeze(g_combo), new_owing)

    # One maximal initial ranking suffices: ranks only decrease along a
    # run, so any accepting ranked run from a lower initial rank is also
    # one from the maximal rank.
    top_rank = max_rank if m.initial not in m.accepting else max_rank - (max_rank % 2)
    initial_states = [(_freeze({m.initial: top_rank}), frozenset())]
    # single fresh initial state simulating all initial rankings
    init = ("init",)
    states: set = {init}
    transitions: dict = {}
    frontier: list = []

    def add_state(s):
        if s not in states:
            states.add(s)
            frontier.append(s)

    for a in m.alphabet:
        targets = set()
        for f0, o0 in initial_states:
            for nxt in successors_of(dict(f0), o0, a):
                targets.add(nxt)
                add_state(nxt)
        if targets:
            transitions[init, a] = frozenset(targets)

    while frontier:
        s = frontier.pop()
        f, owing = s
        for a in m.alphabet:
            targets = set()
            for nxt in successors_of(dict(f), owing, a):
                targets.add(nxt)
            for nxt in targets:
                add_state(nxt)
            if targets:
                transitions[s, a] = frozenset(targets)

    accepting = frozenset(
        s for s in states if s != init and not s[1]
    )
    result = BuchiAutomaton(
        alphabet=m.alphabet,
        states=frozenset(states),
        initial=init,
        transitions=transitions,
        accepting=accepting,
        name=f"¬{automaton.name}",
    )
    return trim(result)


def _freeze(ranking: dict) -> tuple:
    return tuple(sorted(ranking.items(), key=lambda kv: repr(kv[0])))
