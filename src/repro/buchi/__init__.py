"""Büchi automata: the ω-regular instance of the paper's framework (§2.4).

The languages definable by Büchi automata form a Boolean algebra that is
*not* ⋁-complete — the case that motivated the paper's generalization.
This package provides the algebra's operations (union, intersection,
complement), the Alpern–Schneider closure operator, and the effective
safety/liveness decomposition ``B = B_S ∩ B_L``.
"""

from .automaton import AutomatonError, BuchiAutomaton, from_dense
from .closure import (
    closure,
    is_closure_automaton,
    is_liveness,
    is_safety,
    semantic_lcl_member,
)
from .complement import (
    complement,
    complement_deterministic,
    complement_rank_based,
    complement_safety,
)
from .decomposition import BuchiDecomposition, decompose
from .extremal import (
    canonical_is_extremal,
    strongest_safety_violation,
    weakest_liveness_violation,
)
from .generalized import GeneralizedBuchiAutomaton, fairness_intersection
from .emptiness import (
    empty_automaton,
    find_accepted_word,
    is_empty,
    live_states,
    trim,
    universal_automaton,
)
from .inclusion import (
    are_equivalent,
    equivalence_counterexample,
    inclusion_counterexample,
    is_subset,
    is_universal,
)
from .operations import (
    finite_prefix_automaton,
    intersect_many,
    intersection,
    single_word_automaton,
    suffix_language_automaton,
    union,
)
from .random_automata import random_automaton, random_dense_automaton, random_lasso
from .minimize import MinimalMonitorDfa, minimize_good_prefix_dfa
from .subset import SubsetTable
from .safety import (
    GoodPrefixDfa,
    good_prefix_dfa,
    is_bad_prefix,
    minimal_bad_prefixes,
    safety_automaton_has_no_bad_prefix,
    shortest_bad_prefix,
)
from .simulation import direct_simulation, quotient_by_simulation

__all__ = [
    "BuchiAutomaton",
    "AutomatonError",
    "from_dense",
    "closure",
    "is_closure_automaton",
    "is_safety",
    "is_liveness",
    "semantic_lcl_member",
    "complement",
    "complement_safety",
    "complement_deterministic",
    "complement_rank_based",
    "BuchiDecomposition",
    "is_empty",
    "find_accepted_word",
    "live_states",
    "trim",
    "empty_automaton",
    "universal_automaton",
    "is_subset",
    "are_equivalent",
    "is_universal",
    "inclusion_counterexample",
    "equivalence_counterexample",
    "union",
    "intersection",
    "intersect_many",
    "single_word_automaton",
    "suffix_language_automaton",
    "finite_prefix_automaton",
    "random_automaton",
    "random_dense_automaton",
    "random_lasso",
    "SubsetTable",
    "direct_simulation",
    "quotient_by_simulation",
    "canonical_is_extremal",
    "strongest_safety_violation",
    "weakest_liveness_violation",
    "GeneralizedBuchiAutomaton",
    "fairness_intersection",
    "GoodPrefixDfa",
    "good_prefix_dfa",
    "is_bad_prefix",
    "shortest_bad_prefix",
    "minimal_bad_prefixes",
    "safety_automaton_has_no_bad_prefix",
    "MinimalMonitorDfa",
    "minimize_good_prefix_dfa",
]
