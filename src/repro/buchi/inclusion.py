"""Language inclusion and equivalence for Büchi automata.

``L(A) ⊆ L(B)`` iff ``L(A) ∩ ¬L(B) = ∅``; the complement dispatches to
the cheapest sound construction (:mod:`repro.buchi.complement`).
Counterexamples come back as lasso words, so every "not included" verdict
is independently checkable against the semantic layer.
"""

from __future__ import annotations

from repro.omega.word import LassoWord

from .automaton import BuchiAutomaton
from .complement import complement
from .emptiness import find_accepted_word, is_empty, trim
from .operations import intersection
from .simulation import quotient_by_simulation


def _prepare(automaton: BuchiAutomaton) -> BuchiAutomaton:
    """Shrink before complementing: trim useless states, then quotient by
    direct simulation (language-preserving).

    Memoized on the (immutable) instance: inclusion sweeps repeatedly
    test the same automaton against many others, and the shrink — like
    the complement built from it — is a pure function of the input."""
    cached = getattr(automaton, "_prepared_cache", None)
    if cached is None:
        cached = quotient_by_simulation(trim(automaton))
        object.__setattr__(automaton, "_prepared_cache", cached)
    return cached


def inclusion_counterexample(
    a: BuchiAutomaton, b: BuchiAutomaton
) -> LassoWord | None:
    """A word in ``L(a) \\ L(b)``, or ``None`` when ``L(a) ⊆ L(b)``."""
    if is_empty(a):
        # dense emptiness is one SCC pass — skip the product entirely
        return None
    small_a = _prepare(a)
    small_b = _prepare(b)
    gap = intersection(small_a, complement(small_b))
    witness = find_accepted_word(gap)
    if witness is None:
        return None
    # cross-check the witness on the original automata (defense in depth:
    # a bug in complementation would surface here, not silently)
    assert a.accepts(witness) and not b.accepts(witness), (
        "inclusion counterexample failed semantic cross-check"
    )
    return witness


def is_subset(a: BuchiAutomaton, b: BuchiAutomaton) -> bool:
    """``L(a) ⊆ L(b)``, exactly."""
    return inclusion_counterexample(a, b) is None


def are_equivalent(a: BuchiAutomaton, b: BuchiAutomaton) -> bool:
    """``L(a) = L(b)``, exactly."""
    return is_subset(a, b) and is_subset(b, a)


def equivalence_counterexample(
    a: BuchiAutomaton, b: BuchiAutomaton
) -> LassoWord | None:
    """A word on which the two languages differ, or ``None``."""
    witness = inclusion_counterexample(a, b)
    if witness is not None:
        return witness
    return inclusion_counterexample(b, a)


def is_universal(automaton: BuchiAutomaton) -> bool:
    """``L(B) = Σ^ω``, exactly."""
    return is_empty(complement(_prepare(automaton)))
