"""Bad-prefix analysis for safety languages.

Alpern–Schneider's safety = "every violation has a finite witness": a
*bad prefix* is a finite word none of whose extensions lie in the
language.  This module makes bad prefixes first-class:

* :func:`good_prefix_dfa` — the deterministic finite-word automaton of
  *good* (extendable) prefixes, i.e. the subset construction over the
  closure's live states; its dead state marks exactly the bad prefixes;
* :func:`is_bad_prefix` / :func:`shortest_bad_prefix`;
* :func:`minimal_bad_prefixes` — enumerate the minimal violation
  witnesses up to a length bound (every bad prefix extends a minimal
  one), the artifacts safety model checking and enforcement both
  report.
"""

from __future__ import annotations

from collections.abc import Iterator, Sequence
from dataclasses import dataclass

from repro.automata.kernel import subset_dfa

from .automaton import BuchiAutomaton


@dataclass(frozen=True)
class GoodPrefixDfa:
    """A DFA over finite words: state = live subset; the empty subset is
    the (unique, absorbing) dead state recognizing bad prefixes."""

    alphabet: frozenset
    states: frozenset  # frozensets of automaton states
    initial: frozenset
    transitions: dict  # (subset, symbol) -> subset

    @property
    def dead(self) -> frozenset:
        return frozenset()

    def run(self, word: Sequence) -> frozenset:
        current = self.initial
        for symbol in word:
            current = self.transitions[current, symbol]
        return current

    def accepts_good(self, word: Sequence) -> bool:
        """True when ``word`` is a good (still extendable) prefix."""
        return bool(self.run(word))


def good_prefix_dfa(automaton: BuchiAutomaton) -> GoodPrefixDfa:
    """The prefix DFA of ``lcl(L(B))`` — good prefixes of ``L(B)``.

    The subset construction runs on the dense core restricted to the
    live states, then the subset bitmasks are uninterned back to
    frozensets of the original states.
    """
    form = automaton.to_dense()
    dfa = subset_dfa(form.core, restrict=form.live())
    subset_states = tuple(form.unintern_mask(m) for m in dfa.subsets)
    transitions: dict = {}
    for s, row in enumerate(dfa.trans):
        source = subset_states[s]
        for a, t in enumerate(row):
            transitions[source, form.symbols[a]] = subset_states[t]
    return GoodPrefixDfa(
        alphabet=automaton.alphabet,
        states=frozenset(subset_states),
        initial=subset_states[dfa.initial],
        transitions=transitions,
    )


def is_bad_prefix(automaton: BuchiAutomaton, word: Sequence) -> bool:
    """No extension of ``word`` lies in ``L(B)``."""
    return not good_prefix_dfa(automaton).accepts_good(word)


def shortest_bad_prefix(automaton: BuchiAutomaton) -> tuple | None:
    """A shortest bad prefix, or ``None`` when the language is live
    (liveness = no bad prefixes at all — the RV-side characterization)."""
    dfa = good_prefix_dfa(automaton)
    if not dfa.initial:
        return ()
    parent: dict = {dfa.initial: None}
    queue = [dfa.initial]
    symbols = sorted(dfa.alphabet, key=repr)
    while queue:
        subset = queue.pop(0)
        for a in symbols:
            target = dfa.transitions[subset, a]
            if not target:
                word = [a]
                node = subset
                while parent[node] is not None:
                    node, symbol = parent[node]
                    word.append(symbol)
                word.reverse()
                return tuple(word)
            if target not in parent:
                parent[target] = (subset, a)
                queue.append(target)
    return None


def minimal_bad_prefixes(
    automaton: BuchiAutomaton, max_length: int
) -> Iterator[tuple]:
    """All minimal bad prefixes up to ``max_length``: bad words whose
    every proper prefix is good.  In the DFA these are exactly the words
    whose run dies on the last symbol."""
    dfa = good_prefix_dfa(automaton)
    symbols = sorted(dfa.alphabet, key=repr)
    if not dfa.initial:
        yield ()
        return

    def explore(subset: frozenset, word: tuple):
        if len(word) >= max_length:
            return
        for a in symbols:
            target = dfa.transitions[subset, a]
            if not target:
                yield word + (a,)
            else:
                yield from explore(target, word + (a,))

    yield from explore(dfa.initial, ())


def safety_automaton_has_no_bad_prefix(automaton: BuchiAutomaton) -> bool:
    """``lcl(L(B)) = Σ^ω`` iff the prefix DFA never dies — the liveness
    test, restated over finite words."""
    return shortest_bad_prefix(automaton) is None
