"""Direct (strong) simulation on Büchi automata, and quotienting.

Direct simulation ``p ⊑ q`` requires: if ``p`` is accepting then so is
``q``, and every move of ``p`` can be matched by ``q`` into the
relation.  Quotienting by mutual direct simulation preserves the language
and shrinks automata before the exponential complementation step —
the standard engineering move that keeps exact inclusion checks feasible.
"""

from __future__ import annotations

from repro.automata.kernel import iter_bits, simulation_masks

from .automaton import BuchiAutomaton, State


def direct_simulation(automaton: BuchiAutomaton) -> set[tuple[State, State]]:
    """The largest direct-simulation relation, as a set of pairs
    ``(p, q)`` meaning ``q`` simulates ``p``.

    Computed as a greatest fixpoint on bitmask rows (one mask of
    simulators per state) — the relation is unique, so this agrees with
    pairwise refinement.
    """
    form = automaton.to_dense()
    sim = simulation_masks(form.core)
    states = form.states
    return {
        (states[p], states[q]) for p in range(len(states)) for q in iter_bits(sim[p])
    }


def quotient_by_simulation(automaton: BuchiAutomaton) -> BuchiAutomaton:
    """Merge states that mutually direct-simulate each other.

    Mutual direct simulation is a congruence for the Büchi language, so
    the quotient recognizes exactly ``L(B)``.
    """
    relation = direct_simulation(automaton)
    # union-find over mutually similar states
    representative: dict[State, State] = {}
    ordered = sorted(automaton.states, key=repr)
    for q in ordered:
        for p in ordered:
            if (p, q) in relation and (q, p) in relation:
                representative[q] = representative.get(p, p)
                break
        representative.setdefault(q, q)

    def rep(q: State) -> State:
        return representative[q]

    states = frozenset(rep(q) for q in automaton.states)
    transitions: dict = {}
    for (q, a), targets in automaton.transitions.items():
        key = (rep(q), a)
        merged = transitions.get(key, frozenset()) | frozenset(
            rep(r) for r in targets
        )
        transitions[key] = merged
    accepting = frozenset(rep(q) for q in automaton.accepting)
    return BuchiAutomaton(
        alphabet=automaton.alphabet,
        states=states,
        initial=rep(automaton.initial),
        transitions=transitions,
        accepting=accepting,
        name=automaton.name,
    )
