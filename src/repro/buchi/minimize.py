"""Minimization of good-prefix DFAs (Hopcroft-style partition refinement).

The enforcement monitors and bad-prefix analyses run a deterministic
subset automaton whose states are sets of Büchi states; minimizing it
gives the canonical (smallest) monitor for the safety property — and,
because minimal DFAs are unique up to isomorphism, a *canonical form*
for safety languages that the tests use to compare closures
structurally rather than just extensionally.
"""

from __future__ import annotations

from dataclasses import dataclass

from .safety import GoodPrefixDfa


@dataclass(frozen=True)
class MinimalMonitorDfa:
    """A minimized good-prefix DFA; states are opaque ints, state 0 is
    initial; ``dead`` is ``None`` when the language is live (no bad
    prefix at all)."""

    alphabet: frozenset
    n_states: int
    initial: int
    transitions: dict  # (int, symbol) -> int
    dead: int | None

    def run(self, word) -> int:
        current = self.initial
        for symbol in word:
            current = self.transitions[current, symbol]
        return current

    def accepts_good(self, word) -> bool:
        return self.run(word) != self.dead


def minimize_good_prefix_dfa(dfa: GoodPrefixDfa) -> MinimalMonitorDfa:
    """Partition-refinement minimization.

    Initial partition: {dead} vs the rest (acceptance = "still good");
    refine until transitions respect blocks.  Unreachable subsets are
    dropped first.
    """
    # reachable states only
    reachable = {dfa.initial}
    frontier = [dfa.initial]
    while frontier:
        s = frontier.pop()
        for a in dfa.alphabet:
            t = dfa.transitions[s, a]
            if t not in reachable:
                reachable.add(t)
                frontier.append(t)

    dead_states = {s for s in reachable if not s}
    good_states = reachable - dead_states
    blocks = [b for b in (good_states, dead_states) if b]

    symbols = sorted(dfa.alphabet, key=repr)
    changed = True
    while changed:
        changed = False
        block_of = {}
        for i, block in enumerate(blocks):
            for s in block:
                block_of[s] = i
        new_blocks = []
        for block in blocks:
            buckets: dict = {}
            for s in block:
                signature = tuple(
                    block_of[dfa.transitions[s, a]] for a in symbols
                )
                buckets.setdefault(signature, set()).add(s)
            if len(buckets) > 1:
                changed = True
            new_blocks.extend(buckets.values())
        blocks = new_blocks

    block_of = {}
    for i, block in enumerate(blocks):
        for s in block:
            block_of[s] = i
    # renumber with the initial block first for a canonical presentation
    order = [block_of[dfa.initial]]
    for i in range(len(blocks)):
        if i not in order:
            order.append(i)
    renumber = {old: new for new, old in enumerate(order)}

    transitions = {}
    for i, block in enumerate(blocks):
        representative = next(iter(block))
        for a in symbols:
            target = block_of[dfa.transitions[representative, a]]
            transitions[renumber[i], a] = renumber[target]
    dead = None
    if dead_states:
        dead = renumber[block_of[next(iter(dead_states))]]
    return MinimalMonitorDfa(
        alphabet=dfa.alphabet,
        n_states=len(blocks),
        initial=0,
        transitions=transitions,
        dead=dead,
    )
