"""Minimization of good-prefix DFAs (Hopcroft-style partition refinement).

The enforcement monitors and bad-prefix analyses run a deterministic
subset automaton whose states are sets of Büchi states; minimizing it
gives the canonical (smallest) monitor for the safety property — and,
because minimal DFAs are unique up to isomorphism, a *canonical form*
for safety languages that the tests use to compare closures
structurally rather than just extensionally.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.automata.interner import Interner

from .safety import GoodPrefixDfa


@dataclass(frozen=True)
class MinimalMonitorDfa:
    """A minimized good-prefix DFA; states are opaque ints, state 0 is
    initial; ``dead`` is ``None`` when the language is live (no bad
    prefix at all)."""

    alphabet: frozenset
    n_states: int
    initial: int
    transitions: dict  # (int, symbol) -> int
    dead: int | None

    def run(self, word) -> int:
        current = self.initial
        for symbol in word:
            current = self.transitions[current, symbol]
        return current

    def accepts_good(self, word) -> bool:
        return self.run(word) != self.dead


def minimize_good_prefix_dfa(dfa: GoodPrefixDfa) -> MinimalMonitorDfa:
    """Partition-refinement (Moore) minimization on an int-indexed table.

    Reachable subsets are interned to dense ints first; the initial
    partition is {dead} vs the rest (acceptance = "still good"); each
    round re-labels states by (block, successor-block signature) with
    block ids assigned in state order, so the result — and its numbering,
    initial block 0 first — is fully deterministic.
    """
    symbols = sorted(dfa.alphabet, key=repr)
    ids = Interner()
    ids.intern(dfa.initial)
    trans: list = []
    i = 0
    while i < len(ids):
        s = ids.value(i)
        trans.append([ids.intern(dfa.transitions[s, a]) for a in symbols])
        i += 1
    subsets = ids.values()
    n = len(subsets)

    block_of = [0 if subsets[s] else 1 for s in range(n)]
    n_blocks = len(set(block_of))
    while True:
        remap: dict = {}
        new = []
        for s in range(n):
            signature = (block_of[s], tuple(block_of[t] for t in trans[s]))
            if signature not in remap:
                remap[signature] = len(remap)
            new.append(remap[signature])
        block_of = new
        if len(remap) == n_blocks:
            break
        n_blocks = len(remap)

    # state 0 is dfa.initial and block ids are first-occurrence in state
    # order, so the initial block is 0 already
    representative: list = [-1] * n_blocks
    for s in range(n - 1, -1, -1):
        representative[block_of[s]] = s
    transitions = {}
    for b in range(n_blocks):
        row = trans[representative[b]]
        for a_i, a in enumerate(symbols):
            transitions[b, a] = block_of[row[a_i]]
    dead = None
    for s in range(n):
        if not subsets[s]:
            dead = block_of[s]
            break
    return MinimalMonitorDfa(
        alphabet=dfa.alphabet,
        n_states=n_blocks,
        initial=0,
        transitions=transitions,
        dead=dead,
    )
