"""The Alpern–Schneider decomposition ``B = B_S ∩ B_L`` (§2.4).

This is the Büchi-automata instance of the paper's Theorem 2: the lattice
is the Boolean algebra of ω-regular languages (not ⋁-complete — the case
that breaks both the topological and Gumm frameworks), the closure is the
automaton operator of :mod:`repro.buchi.closure`, and the construction is
exactly the proof term:

* ``B_S = cl(B)``                         — the safety part,
* ``B_L = B ∪ ¬cl(B)``                    — the liveness part,

with ``¬cl(B)`` computed by the cheap safety-automaton complement.

All three phases run on the dense kernel (:mod:`repro.automata`)
transitively: closure and complement intern the input once and share its
cached reachable/live masks, and the union is assembled from the dense
disjoint-sum core.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field

from repro.obs.metrics import REGISTRY
from repro.obs.profile import PhaseTimer, timed
from repro.omega.word import LassoWord

from .automaton import BuchiAutomaton
from .closure import closure, is_liveness, is_safety
from .complement import complement_safety
from .operations import intersection, union

#: Wall time attributed to the three proof-term phases of Theorem 2's
#: Büchi instance (plus verification, which is optional and expensive).
_PHASES = PhaseTimer("repro.buchi.decompose")
_DECOMPOSITIONS = REGISTRY.counter(
    "repro_buchi_decompositions_total", "Alpern–Schneider decompositions built"
)


@dataclass(frozen=True)
class BuchiDecomposition:
    """The result of decomposing ``B`` into safety and liveness automata."""

    original: BuchiAutomaton
    safety: BuchiAutomaton
    liveness: BuchiAutomaton
    #: Optional :class:`repro.certs.Certificate` attached by
    #: ``repro.analysis.decompose(..., certify=True)``; excluded from
    #: equality so certified and plain results compare as the same answer.
    certificate: object = field(default=None, compare=False, repr=False)

    def intersection_automaton(self) -> BuchiAutomaton:
        """``B_S ∩ B_L`` — provably language-equal to ``B``."""
        return intersection(self.safety, self.liveness)

    def verify(self, witness: LassoWord | None = None) -> bool:
        """The shared verifier spelling of the unified decomposition
        protocol (:func:`repro.analysis.decompose`): with a ``witness``
        lasso word, check the identity ``L(B) = L(B_S) ∩ L(B_L)`` on
        that word; with no witness, prove it exactly."""
        if witness is None:
            return self.verify_exact()
        return self.verify_on_word(witness)

    def verify_on_word(self, word: LassoWord) -> bool:
        """Check the identity ``L(B) = L(B_S) ∩ L(B_L)`` on one word.

        Alias kept for existing callers; :meth:`verify` is the unified
        spelling."""
        return self.original.accepts(word) == (
            self.safety.accepts(word) and self.liveness.accepts(word)
        )

    @timed("repro.buchi.decompose_verify")
    def verify_exact(self) -> bool:
        """Prove the identity ``L(B) = L(B_S) ∩ L(B_L)`` exactly.

        Checked as three inclusions chosen so that only *small or safety*
        automata ever get complemented:

        1. ``L(B_S ∩ B_L) ⊆ L(B)`` — needs ``¬B`` (the original input,
           the smallest automaton in play);
        2. ``L(B) ⊆ L(B_S)``       — needs ``¬B_S`` (a safety automaton,
           complemented by cheap subset construction);
        3. ``L(B) ⊆ L(B_L)``       — holds structurally (``B_L`` embeds
           ``B`` as one branch of the union) but is re-checked via the
           inclusion engine for defense in depth, with the cheap side
           complemented: ``B ⊆ B ∪ X`` reduces to emptiness of
           ``B ∩ ¬(B ∪ X)`` only if we complement the union, so instead
           we verify the contrapositive on the union structure itself.
        """
        from .inclusion import is_subset

        if not is_subset(self.intersection_automaton(), self.original):
            return False
        if not is_subset(self.original, self.safety):
            return False
        return self._original_included_in_liveness()

    def _original_included_in_liveness(self) -> bool:
        """``L(B) ⊆ L(B ∪ ¬cl B)`` — true by construction of the union
        automaton; verified structurally: every ``B``-transition appears
        (tagged 'l') in the union, with acceptance preserved."""
        tagged = {("l", q) for q in self.original.states}
        if not tagged <= set(self.liveness.states):
            return False
        for (q, a), targets in self.original.transitions.items():
            image = self.liveness.transitions.get((("l", q), a), frozenset())
            if not {("l", r) for r in targets} <= image:
                return False
        for a in self.original.alphabet:
            first = self.original.successors(self.original.initial, a)
            image = self.liveness.transitions.get(
                (self.liveness.initial, a), frozenset()
            )
            if not {("l", r) for r in first} <= image:
                return False
        return all(
            ("l", q) in self.liveness.accepting for q in self.original.accepting
        )

    def verify_parts(self) -> bool:
        """Prove that the parts really are a safety and a liveness
        property (the other two conclusions of the theorem)."""
        return is_safety(self.safety) and is_liveness(self.liveness)


def _decompose(automaton: BuchiAutomaton) -> BuchiDecomposition:
    """Decompose ``B`` into ``B_S`` (safety) and ``B_L`` (liveness) with
    ``L(B) = L(B_S) ∩ L(B_L)``."""
    with _PHASES.phase("closure"):
        safety = closure(automaton)
    with _PHASES.phase("complement"):
        negated_closure = complement_safety(safety)
    with _PHASES.phase("union"):
        liveness = union(automaton, negated_closure)
    renamed_liveness = BuchiAutomaton(
        alphabet=liveness.alphabet,
        states=liveness.states,
        initial=liveness.initial,
        transitions=dict(liveness.transitions),
        accepting=liveness.accepting,
        name=f"{automaton.name}_L",
    )
    renamed_safety = BuchiAutomaton(
        alphabet=safety.alphabet,
        states=safety.states,
        initial=safety.initial,
        transitions=dict(safety.transitions),
        accepting=safety.accepting,
        name=f"{automaton.name}_S",
    )
    # the renames are structurally identical (the dense form carries no
    # name), so the phases' cached dense analyses stay valid — hand them
    # over instead of letting accepts() re-derive them
    renamed_liveness._seed_dense(liveness.to_dense())
    renamed_safety._seed_dense(safety.to_dense())
    liveness, safety = renamed_liveness, renamed_safety
    _DECOMPOSITIONS.add()
    return BuchiDecomposition(original=automaton, safety=safety, liveness=liveness)


def decompose(automaton: BuchiAutomaton) -> BuchiDecomposition:
    """Deprecated spelling of the §2.4 decomposition — use
    :func:`repro.analysis.decompose`."""
    warnings.warn(
        "repro.buchi.decomposition.decompose is deprecated; use "
        "repro.analysis.decompose(automaton)",
        DeprecationWarning,
        stacklevel=2,
    )
    return _decompose(automaton)
