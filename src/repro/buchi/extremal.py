"""The extremal theorems (6 and 7) at the Büchi level — exact.

Theorem 6 instantiated on ω-regular languages: for any ω-regular S ⊇
L(B) with S safety, ``lcl(L(B)) ⊆ S`` — i.e. the closure automaton is
the *strongest safety consequence* of B.  Theorem 7 (the ω-regular
lattice is distributive): the canonical liveness automaton
``B ∪ ¬cl(B)`` is the *weakest* property usable as the second conjunct.

Both are decidable statements about concrete automata pairs, checked
with the exact inclusion engine.
"""

from __future__ import annotations

from repro.omega.word import all_lassos

from .automaton import BuchiAutomaton
from .closure import closure, is_safety
from .complement import complement, complement_safety
from .decomposition import _decompose
from .emptiness import find_accepted_word
from .inclusion import inclusion_counterexample, is_subset
from .operations import intersection, union


def strongest_safety_violation(
    automaton: BuchiAutomaton, candidate_safety: BuchiAutomaton
):
    """Theorem 6's bound, checked on a concrete pair.

    If ``candidate_safety`` is a safety property with
    ``L(B) ⊆ L(candidate)``, return a word in
    ``lcl(L(B)) \\ L(candidate)`` — Theorem 6 says there is none, i.e.
    the return value is always ``None`` for qualifying candidates.
    Raises ``ValueError`` when the candidate does not qualify.
    """
    if not is_safety(candidate_safety):
        raise ValueError("candidate is not a safety property")
    if not is_subset(automaton, candidate_safety):
        raise ValueError("candidate does not contain L(B)")
    return inclusion_counterexample(closure(automaton), candidate_safety)


def weakest_liveness_violation(
    automaton: BuchiAutomaton, candidate_second: BuchiAutomaton
):
    """Theorem 7's bound on a concrete pair.

    If ``L(B) = L(cl B) ∩ L(candidate)``, then ``candidate`` must lie
    below ``L(B) ∪ ¬lcl(L(B))``; returns a counterexample word (always
    ``None``, per the theorem).  Raises when the candidate does not
    factor B.
    """
    safety = closure(automaton)
    recombined = intersection(safety, candidate_second)
    # hypothesis L(B) = L(cl B) ∩ L(candidate): the ⊆-of-B direction is
    # checked exactly (complements only B); the ⊇ direction would require
    # complementing the candidate, so it is checked extensionally on all
    # bounded lassos (sound for rejecting bad candidates in practice)
    gap = inclusion_counterexample(recombined, automaton)
    if gap is not None:
        raise ValueError("candidate does not factor L(B) through cl(B)")
    alphabet = sorted(automaton.alphabet, key=repr)
    for word in all_lassos(alphabet, 2, 2):
        if automaton.accepts(word) and not recombined.accepts(word):
            raise ValueError("candidate does not factor L(B) through cl(B)")
    # candidate ⊆ B ∪ ¬cl(B)  iff  candidate ∩ ¬B ∩ cl(B) = ∅ — this
    # arrangement complements only the (small) original automaton, never
    # the union
    gap_automaton = intersection(
        intersection(candidate_second, complement(automaton)), safety
    )
    witness = find_accepted_word(gap_automaton)
    if witness is not None:
        weakest = union(automaton, complement_safety(safety))
        assert candidate_second.accepts(witness) and not weakest.accepts(witness)
    return witness


def canonical_is_extremal(automaton: BuchiAutomaton) -> bool:
    """Self-check: the canonical decomposition's own parts satisfy both
    extremal bounds."""
    d = _decompose(automaton)
    if strongest_safety_violation(automaton, d.safety) is not None:
        return False
    return weakest_liveness_violation(automaton, d.liveness) is None
