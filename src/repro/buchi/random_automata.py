"""Seeded random Büchi automata for tests and benchmark sweeps."""

from __future__ import annotations

import random as _random
from collections.abc import Iterable

from .automaton import BuchiAutomaton


def random_automaton(
    rng: _random.Random,
    n_states: int,
    alphabet: Iterable = ("a", "b"),
    transition_density: float = 1.2,
    acceptance_density: float = 0.3,
    name: str = "R",
) -> BuchiAutomaton:
    """A random NBA in the Tabakov–Vardi style: ``transition_density * n``
    transitions per symbol (rounded), each state accepting with
    probability ``acceptance_density`` (at least one accepting state)."""
    if n_states < 1:
        raise ValueError("need at least one state")
    alphabet = tuple(alphabet)
    states = list(range(n_states))
    transitions: dict = {}
    per_symbol = max(1, round(transition_density * n_states))
    for a in alphabet:
        chosen = set()
        for _ in range(per_symbol):
            chosen.add((rng.choice(states), rng.choice(states)))
        for q, r in chosen:
            key = (q, a)
            transitions[key] = transitions.get(key, frozenset()) | {r}
    accepting = {q for q in states if rng.random() < acceptance_density}
    if not accepting:
        accepting = {rng.choice(states)}
    return BuchiAutomaton(
        alphabet=frozenset(alphabet),
        states=frozenset(states),
        initial=0,
        transitions=transitions,
        accepting=frozenset(accepting),
        name=name,
    )


def random_lasso(rng: _random.Random, alphabet: Iterable, max_prefix: int = 3, max_cycle: int = 4):
    """A random lasso word over ``alphabet``."""
    from repro.omega.word import LassoWord

    alphabet = tuple(alphabet)
    prefix = [rng.choice(alphabet) for _ in range(rng.randint(0, max_prefix))]
    cycle = [rng.choice(alphabet) for _ in range(rng.randint(1, max_cycle))]
    return LassoWord(prefix, cycle)
