"""Seeded random Büchi automata for tests and benchmark sweeps.

Both generators take either a :class:`random.Random` instance or a plain
``int`` seed, so benchmark sweeps and warm-start workloads can pin their
inputs with one literal (``random_automaton(7, 12)``) and reproduce them
anywhere.
"""

from __future__ import annotations

import random as _random
from collections.abc import Iterable

from .automaton import BuchiAutomaton


def _as_rng(rng: _random.Random | int) -> _random.Random:
    """Accept an explicit generator or an int seed (fresh generator)."""
    if isinstance(rng, _random.Random):
        return rng
    return _random.Random(rng)


def random_automaton(
    rng: _random.Random | int,
    n_states: int,
    alphabet: Iterable = ("a", "b"),
    transition_density: float = 1.2,
    acceptance_density: float = 0.3,
    name: str = "R",
) -> BuchiAutomaton:
    """A random NBA in the Tabakov–Vardi style: ``transition_density * n``
    transitions per symbol (rounded), each state accepting with
    probability ``acceptance_density`` (at least one accepting state).

    ``rng`` may be a ``random.Random`` or an int seed."""
    if n_states < 1:
        raise ValueError("need at least one state")
    rng = _as_rng(rng)
    alphabet = tuple(alphabet)
    n = n_states
    per_symbol = max(1, round(transition_density * n_states))
    # draw endpoints with rng.choice's own rejection-sampling loop,
    # inlined: bit-identical to `rng.choice(range(n))` on the same seed
    # (so seeded workloads are stable across versions) at a fraction of
    # the per-draw overhead
    getrandbits = rng.getrandbits
    k = n.bit_length()
    by_source: dict = {}
    for a in alphabet:
        chosen = set()
        for _ in range(per_symbol):
            q = getrandbits(k)
            while q >= n:
                q = getrandbits(k)
            r = getrandbits(k)
            while r >= n:
                r = getrandbits(k)
            chosen.add((q, r))
        for q, r in chosen:
            by_source.setdefault((q, a), set()).add(r)
    transitions = {key: frozenset(targets) for key, targets in by_source.items()}
    accepting = {q for q in range(n) if rng.random() < acceptance_density}
    if not accepting:
        accepting = {rng.choice(range(n))}
    return BuchiAutomaton(
        alphabet=frozenset(alphabet),
        states=frozenset(range(n)),
        initial=0,
        transitions=transitions,
        accepting=frozenset(accepting),
        name=name,
    )


def random_lasso(
    rng: _random.Random | int,
    alphabet: Iterable,
    max_prefix: int = 3,
    max_cycle: int = 4,
):
    """A random lasso word over ``alphabet``.  ``rng`` may be a
    ``random.Random`` or an int seed."""
    from repro.omega.word import LassoWord

    rng = _as_rng(rng)
    alphabet = tuple(alphabet)
    prefix = [rng.choice(alphabet) for _ in range(rng.randint(0, max_prefix))]
    cycle = [rng.choice(alphabet) for _ in range(rng.randint(1, max_cycle))]
    return LassoWord(prefix, cycle)
