"""Seeded random Büchi automata for tests and benchmark sweeps.

Both generators take either a :class:`random.Random` instance or a plain
``int`` seed, so benchmark sweeps and warm-start workloads can pin their
inputs with one literal (``random_automaton(7, 12)``) and reproduce them
anywhere.

Generation is *dense-first* (PR 10): :func:`random_dense_automaton`
draws straight into bitmask rows — no per-transition frozensets, no
hashable-state dict — and :func:`random_automaton` uninterns that core
only to honor its public hashable-state return type.  Benchmarks that
feed kernels directly should take the dense form and skip the unintern
entirely; that is the path that stops generation overhead from masking
kernel wins (ROADMAP open item 1).

Seeded workloads are stable across versions: the RNG draw sequence of
:func:`random_dense_automaton` is bit-identical to the original
hashable-state generator (the same inlined ``rng.choice(range(n))``
rejection sampling, in the same order), so ``random_automaton(seed, n)``
returns exactly the automaton it always has.
"""

from __future__ import annotations

import random as _random
from collections.abc import Iterable

from repro.automata.dense import DenseBuchi, DenseForm

from .automaton import BuchiAutomaton, from_dense


def _as_rng(rng: _random.Random | int) -> _random.Random:
    """Accept an explicit generator or an int seed (fresh generator)."""
    if isinstance(rng, _random.Random):
        return rng
    return _random.Random(rng)


def random_dense_automaton(
    rng: _random.Random | int,
    n_states: int,
    alphabet: Iterable = ("a", "b"),
    transition_density: float = 1.2,
    acceptance_density: float = 0.3,
) -> DenseForm:
    """A random NBA in the Tabakov–Vardi style, drawn directly into a
    dense core: ``transition_density * n`` transitions per symbol
    (rounded), each state accepting with probability
    ``acceptance_density`` (at least one accepting state).

    States are their own identities (``0..n-1``) and symbols keep the
    caller's order, so the returned :class:`DenseForm` is ready for the
    kernels with no interner pass.  The form is *not* attached to any
    hashable automaton — ``BuchiAutomaton.to_dense()`` numbers states in
    interner BFS order, which this identity numbering need not match.
    """
    if n_states < 1:
        raise ValueError("need at least one state")
    rng = _as_rng(rng)
    symbols = tuple(alphabet)
    n = n_states
    per_symbol = max(1, round(transition_density * n_states))
    # draw endpoints with rng.choice's own rejection-sampling loop,
    # inlined: bit-identical to `rng.choice(range(n))` on the same seed
    # (so seeded workloads are stable across versions) at a fraction of
    # the per-draw overhead.  Duplicate (q, r) draws collapse in the
    # bitmask OR exactly as they did in the old per-symbol set.
    getrandbits = rng.getrandbits
    k = n.bit_length()
    succ = []
    for _ in symbols:
        row = [0] * n
        for _ in range(per_symbol):
            q = getrandbits(k)
            while q >= n:
                q = getrandbits(k)
            r = getrandbits(k)
            while r >= n:
                r = getrandbits(k)
            row[q] |= 1 << r
        succ.append(tuple(row))
    accepting = 0
    for q in range(n):
        if rng.random() < acceptance_density:
            accepting |= 1 << q
    if not accepting:
        accepting = 1 << rng.choice(range(n))
    core = DenseBuchi(
        n_states=n,
        n_symbols=len(symbols),
        initial=0,
        succ=tuple(succ),
        accepting=accepting,
    )
    return DenseForm(core, tuple(range(n)), symbols)


def random_automaton(
    rng: _random.Random | int,
    n_states: int,
    alphabet: Iterable = ("a", "b"),
    transition_density: float = 1.2,
    acceptance_density: float = 0.3,
    name: str = "R",
) -> BuchiAutomaton:
    """A random NBA in the Tabakov–Vardi style, as a hashable-state
    :class:`BuchiAutomaton` (the dense draw of
    :func:`random_dense_automaton`, uninterned).

    ``rng`` may be a ``random.Random`` or an int seed."""
    form = random_dense_automaton(
        rng, n_states, alphabet, transition_density, acceptance_density
    )
    return from_dense(form, name=name)


def random_lasso(
    rng: _random.Random | int,
    alphabet: Iterable,
    max_prefix: int = 3,
    max_cycle: int = 4,
):
    """A random lasso word over ``alphabet``.  ``rng`` may be a
    ``random.Random`` or an int seed."""
    from repro.omega.word import LassoWord

    rng = _as_rng(rng)
    alphabet = tuple(alphabet)
    prefix = [rng.choice(alphabet) for _ in range(rng.randint(0, max_prefix))]
    cycle = [rng.choice(alphabet) for _ in range(rng.randint(1, max_cycle))]
    return LassoWord(prefix, cycle)
