"""The live-restricted subset construction, lowered to dense tables.

:class:`SubsetTable` determinizes ``post(S, a) ∩ live`` once so that a
single event step is two list indexings.  It is the shared prefix
machine of the monitoring stack: :mod:`repro.rv.compile` builds its
product falsifier and bound tracker from it, and
:mod:`repro.enforcement.monitor` runs Schneider-style truncation
monitors on it directly.  It lives here — not in :mod:`repro.rv` —
because it depends only on :class:`~repro.buchi.automaton.BuchiAutomaton`
and :func:`~repro.buchi.emptiness.live_states`; enforcement can import
it without pulling in the full decompose-driven compile pipeline.
"""

from __future__ import annotations

from collections.abc import Iterable
from contextlib import nullcontext

from .automaton import BuchiAutomaton
from .emptiness import live_states


class SubsetTable:
    """The determinized, live-restricted subset automaton as dense tables.

    States are small integers; ``next_state[q][i]`` is the successor of
    state ``q`` on the ``i``-th symbol (``symbol_index`` maps symbols to
    ``i``).  State ``q`` with ``alive[q]`` false is the unique dead state
    (the empty subset) and loops to itself — the table is complete.
    """

    __slots__ = ("symbols", "symbol_index", "initial", "next_state", "alive", "subsets")

    def __init__(self, symbols, symbol_index, initial, next_state, alive, subsets):
        self.symbols = symbols
        self.symbol_index = symbol_index
        self.initial = initial
        self.next_state = next_state
        self.alive = alive
        self.subsets = subsets

    @classmethod
    def from_automaton(cls, automaton: BuchiAutomaton, *, phases=None) -> "SubsetTable":
        """Determinize ``post(S, a) ∩ live`` once, for O(1) event steps.

        ``phases`` is an optional :class:`repro.obs.profile.PhaseTimer`
        (duck-typed — anything with ``.phase(name)`` context managers);
        callers with a compile pipeline pass theirs to attribute the
        ``live_states`` / ``determinize`` time.
        """
        phase = phases.phase if phases is not None else (lambda _name: nullcontext())
        with phase("live_states"):
            live = live_states(automaton)
        with phase("determinize"):
            return cls._determinize(automaton, live)

    @classmethod
    def _determinize(cls, automaton: BuchiAutomaton, live: frozenset) -> "SubsetTable":
        symbols = tuple(sorted(automaton.alphabet, key=repr))
        symbol_index = {a: i for i, a in enumerate(symbols)}
        start = frozenset({automaton.initial}) & live
        index: dict[frozenset, int] = {start: 0}
        subsets: list[frozenset] = [start]
        next_state: list[list[int]] = []
        i = 0
        while i < len(subsets):
            subset = subsets[i]
            row = []
            for a in symbols:
                nxt = automaton.post(subset, a) & live if subset else subset
                if nxt not in index:
                    index[nxt] = len(subsets)
                    subsets.append(nxt)
                row.append(index[nxt])
            next_state.append(row)
            i += 1
        alive = [bool(s) for s in subsets]
        return cls(symbols, symbol_index, 0, next_state, alive, tuple(subsets))

    def __len__(self) -> int:
        return len(self.next_state)

    def step(self, state: int, symbol) -> int:
        """One event step (raises ``KeyError`` on foreign symbols)."""
        return self.next_state[state][self.symbol_index[symbol]]

    def run(self, events: Iterable) -> int:
        state = self.initial
        table, index = self.next_state, self.symbol_index
        for e in events:
            state = table[state][index[e]]
        return state
