"""Generalized Büchi automata (multiple acceptance sets).

A GNBA accepts a word iff some run visits *every* acceptance set
infinitely often — the natural output of tableau constructions and the
natural home of conjunctions of fairness constraints.  This module
provides the public datatype, lasso acceptance, and the counter
degeneralization to plain Büchi (the same construction the LTL
translator uses internally).
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping
from dataclasses import dataclass, field
from itertools import product

from repro.omega.word import LassoWord, Symbol

from .automaton import (
    AutomatonError,
    BuchiAutomaton,
    State,
    _is_cyclic_component,
    _tarjan,
)


@dataclass(frozen=True)
class GeneralizedBuchiAutomaton:
    """An immutable GNBA; ``acceptance_sets`` may be empty (then every
    infinite run is accepting)."""

    alphabet: frozenset
    states: frozenset
    initial: State
    transitions: Mapping[tuple[State, Symbol], frozenset]
    acceptance_sets: tuple  # tuple[frozenset, ...]
    name: str = field(default="G", compare=False)

    def __post_init__(self):
        if not self.alphabet:
            raise AutomatonError("alphabet must be non-empty")
        if self.initial not in self.states:
            raise AutomatonError(f"initial state {self.initial!r} unknown")
        for (q, a), targets in self.transitions.items():
            if q not in self.states or not targets <= self.states:
                raise AutomatonError(f"malformed transition ({q!r}, {a!r})")
            if a not in self.alphabet:
                raise AutomatonError(f"transition on unknown symbol {a!r}")
        for fs in self.acceptance_sets:
            if not fs <= self.states:
                raise AutomatonError("acceptance sets must be state subsets")

    @classmethod
    def build(
        cls,
        alphabet: Iterable,
        states: Iterable,
        initial,
        transitions: Mapping[tuple, Iterable],
        acceptance_sets: Iterable[Iterable],
        name: str = "G",
    ) -> "GeneralizedBuchiAutomaton":
        return cls(
            alphabet=frozenset(alphabet),
            states=frozenset(states),
            initial=initial,
            transitions={k: frozenset(v) for k, v in transitions.items()},
            acceptance_sets=tuple(frozenset(f) for f in acceptance_sets),
            name=name,
        )

    def successors(self, q: State, a: Symbol) -> frozenset:
        return self.transitions.get((q, a), frozenset())

    def accepts(self, word: LassoWord) -> bool:
        """Lasso acceptance: a reachable cyclic SCC of the cycle graph
        intersecting every acceptance set."""
        if not word.symbols() <= self.alphabet:
            raise AutomatonError("word uses symbols outside the alphabet")
        current = frozenset({self.initial})
        for a in word.prefix:
            nxt: set = set()
            for q in current:
                nxt |= self.successors(q, a)
            current = frozenset(nxt)
            if not current:
                return False
        v = word.cycle
        nodes = set(product(self.states, range(len(v))))
        adjacency: dict = {n: set() for n in nodes}
        for q, i in nodes:
            for r in self.successors(q, v[i]):
                adjacency[q, i].add((r, (i + 1) % len(v)))
        reachable = set()
        frontier = [(q, 0) for q in current]
        reachable.update(frontier)
        while frontier:
            n = frontier.pop()
            for m in adjacency[n]:
                if m not in reachable:
                    reachable.add(m)
                    frontier.append(m)
        for component in _tarjan(reachable, adjacency):
            if not _is_cyclic_component(component, adjacency):
                continue
            component_states = {q for q, _i in component}
            if all(component_states & fs for fs in self.acceptance_sets):
                return True
        return False

    def degeneralized(self) -> BuchiAutomaton:
        """The equivalent plain Büchi automaton (counter construction).

        NBA states ``(q, i)`` await acceptance set ``i``; the counter
        advances when the source state lies in set ``i``; accepting =
        counter 0 and state in set 0.
        """
        sets = self.acceptance_sets or (frozenset(self.states),)
        k = len(sets)

        def step(source, i: int) -> int:
            return (i + 1) % k if source in sets[i] else i

        states = {(q, i) for q in self.states for i in range(k)}
        transitions: dict = {}
        for (q, a), targets in self.transitions.items():
            for i in range(k):
                nxt = step(q, i)
                transitions[(q, i), a] = frozenset((t, nxt) for t in targets)
        accepting = frozenset(
            (q, 0) for q in self.states if q in sets[0]
        )
        return BuchiAutomaton(
            alphabet=self.alphabet,
            states=frozenset(states),
            initial=(self.initial, 0),
            transitions=transitions,
            accepting=accepting,
            name=f"deg({self.name})",
        )

    def __repr__(self) -> str:
        return (
            f"GeneralizedBuchiAutomaton({self.name!r}, |Q|={len(self.states)}, "
            f"k={len(self.acceptance_sets)})"
        )


def fairness_intersection(
    automata: Iterable[BuchiAutomaton], name: str = "fair"
) -> GeneralizedBuchiAutomaton:
    """The synchronous product of several Büchi automata as a GNBA with
    one acceptance set per factor — the textbook use of generalized
    acceptance (conjunctions of fairness constraints without the
    counter blow-up until the very end)."""
    automata = list(automata)
    if not automata:
        raise AutomatonError("need at least one automaton")
    alphabet = automata[0].alphabet
    for m in automata[1:]:
        if m.alphabet != alphabet:
            raise AutomatonError("alphabet mismatch")
    states = set(product(*[m.states for m in automata]))
    transitions: dict = {}
    for joint in states:
        for a in alphabet:
            target_sets = [m.successors(q, a) for m, q in zip(automata, joint)]
            if all(target_sets):
                transitions[joint, a] = frozenset(product(*target_sets))
    acceptance_sets = [
        frozenset(j for j in states if j[i] in automata[i].accepting)
        for i in range(len(automata))
    ]
    return GeneralizedBuchiAutomaton(
        alphabet=alphabet,
        states=frozenset(states),
        initial=tuple(m.initial for m in automata),
        transitions=transitions,
        acceptance_sets=tuple(acceptance_sets),
        name=name,
    )
