"""Boolean operations (union, intersection) and small constructors.

Closure of Büchi-definable languages under union, intersection (this
module) and complementation (:mod:`repro.buchi.complement`) is what makes
them a Boolean algebra — the lattice on which the paper's Theorem 2 is
instantiated in Section 2.4.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

from repro.automata.kernel import iter_bits, product_core
from repro.omega.word import LassoWord, Symbol

from .automaton import AutomatonError, BuchiAutomaton, State


def _check_alphabets(a: BuchiAutomaton, b: BuchiAutomaton) -> None:
    if a.alphabet != b.alphabet:
        raise AutomatonError(
            f"alphabet mismatch: {sorted(map(str, a.alphabet))} vs "
            f"{sorted(map(str, b.alphabet))}"
        )


def union(a: BuchiAutomaton, b: BuchiAutomaton, name: str | None = None) -> BuchiAutomaton:
    """``L(a) ∪ L(b)`` — disjoint copies plus a fresh initial state whose
    transitions simulate both original initial states."""
    _check_alphabets(a, b)
    form_a, form_b = a.to_dense(), b.to_dense()
    # Disjoint tagged copies of both inputs (transitions carried over
    # verbatim, empty-target entries included), plus the fresh initial
    # state simulating both original initial states.
    names = (
        [("∪", None)]
        + [("l", q) for q in form_a.states]
        + [("r", q) for q in form_b.states]
    )
    transitions: dict = {}
    for tag, m in (("l", a), ("r", b)):
        for (q, sym), targets in m.transitions.items():
            transitions[(tag, q), sym] = frozenset((tag, r) for r in targets)
    for sym in a.alphabet:
        merged = [
            (tag, r)
            for tag, m in (("l", a), ("r", b))
            for r in m.transitions.get((m.initial, sym), ())
        ]
        if merged:
            transitions[("∪", None), sym] = frozenset(merged)
    # The fresh initial state must be accepting iff either original initial
    # state could begin an accepting run that revisits it — but since the
    # fresh state has no incoming edges, its acceptance flag never affects
    # any infinite run; leave it non-accepting.
    result = BuchiAutomaton(
        alphabet=a.alphabet,
        states=frozenset(names),
        initial=("∪", None),
        transitions=transitions,
        accepting=frozenset(
            [("l", q) for q in a.accepting] + [("r", q) for q in b.accepting]
        ),
        name=name or f"({a.name} ∪ {b.name})",
    )
    # the union's blocks are successor-closed copies of the inputs, so
    # lasso membership can reuse the inputs' memoized cycle analyses
    form = result.to_dense()
    parent_index = form.state_index
    form.union_cycle_hint(
        form_a,
        form_b,
        tuple(parent_index["l", s] for s in form_a.states),
        tuple(parent_index["r", s] for s in form_b.states),
    )
    return result


def intersection(
    a: BuchiAutomaton, b: BuchiAutomaton, name: str | None = None
) -> BuchiAutomaton:
    """``L(a) ∩ L(b)`` via the standard two-phase product.

    Phase 0 waits for ``a`` to accept, phase 1 for ``b``; the product
    accepts when phase flips through (accepting of ``a`` seen, then of
    ``b``) infinitely often.
    """
    _check_alphabets(a, b)
    form_a, form_b = a.to_dense(), b.to_dense()
    core = product_core(form_a.core, form_b.core)
    n_b = form_b.core.n_states
    # Index layout of product_core: (p*n_b + q)*2 + phase.
    names: list = [None] * core.n_states
    for p, p_state in enumerate(form_a.states):
        for q, q_state in enumerate(form_b.states):
            base = (p * n_b + q) * 2
            names[base] = (p_state, q_state, 0)
            names[base + 1] = (p_state, q_state, 1)
    states = frozenset(names)
    transitions: dict = {}
    for a_i, sym in enumerate(form_a.symbols):
        row = core.succ[a_i]
        for pq in range(core.n_states):
            mask = row[pq]
            if mask:
                transitions[names[pq], sym] = frozenset(
                    names[r] for r in iter_bits(mask)
                )
    # acceptance: phase 1 with b accepting — the 1 -> 0 flip, which happens
    # infinitely often exactly when both automata accept infinitely often
    accepting = frozenset((p, q, 1) for p in a.states for q in b.accepting)
    return BuchiAutomaton(
        alphabet=a.alphabet,
        states=frozenset(states),
        initial=(a.initial, b.initial, 0),
        transitions=transitions,
        accepting=accepting,
        name=name or f"({a.name} ∩ {b.name})",
    )


def intersect_many(automata: Sequence[BuchiAutomaton]) -> BuchiAutomaton:
    """Left fold of :func:`intersection` over one or more automata."""
    if not automata:
        raise AutomatonError("need at least one automaton")
    result = automata[0]
    for m in automata[1:]:
        result = intersection(result, m)
    return result


def single_word_automaton(
    alphabet: Iterable[Symbol], word: LassoWord, name: str | None = None
) -> BuchiAutomaton:
    """The automaton accepting exactly ``{u · v^ω}``."""
    alphabet = frozenset(alphabet)
    u, v = word.prefix, word.cycle
    states = [("u", i) for i in range(len(u))] + [("v", i) for i in range(len(v))]
    transitions: dict = {}
    for i, sym in enumerate(u):
        nxt = ("u", i + 1) if i + 1 < len(u) else ("v", 0)
        transitions[("u", i), sym] = frozenset({nxt})
    for i, sym in enumerate(v):
        nxt = ("v", (i + 1) % len(v))
        transitions[("v", i), sym] = frozenset({nxt})
    initial = ("u", 0) if u else ("v", 0)
    return BuchiAutomaton(
        alphabet=alphabet,
        states=frozenset(states),
        initial=initial,
        transitions=transitions,
        accepting=frozenset({("v", 0)}),
        name=name or f"word({word!r})",
    )


def suffix_language_automaton(automaton: BuchiAutomaton, state: State) -> BuchiAutomaton:
    """``B(q)`` — the same automaton started at ``state`` (paper §4.4
    notation, equally useful for word automata)."""
    if state not in automaton.states:
        raise AutomatonError(f"{state!r} is not a state")
    return BuchiAutomaton(
        alphabet=automaton.alphabet,
        states=automaton.states,
        initial=state,
        transitions=dict(automaton.transitions),
        accepting=automaton.accepting,
        name=f"{automaton.name}({state!r})",
    )


def finite_prefix_automaton(
    alphabet: Iterable[Symbol], prefixes: Iterable[Sequence[Symbol]], name: str = "pfx"
) -> BuchiAutomaton:
    """The safety automaton for "the word starts with one of ``prefixes``"
    (then anything): a trie over the prefixes with a universal tail.

    A convenient source of safety languages for tests and benchmarks.
    """
    alphabet = frozenset(alphabet)
    prefix_list = [tuple(p) for p in prefixes]
    trie_nodes = {()}
    for p in prefix_list:
        for i in range(len(p) + 1):
            trie_nodes.add(p[: i])
    transitions: dict = {}
    done = "✓"
    for node in trie_nodes:
        if node in prefix_list:
            continue
        for a in alphabet:
            nxt = node + (a,)
            if nxt in trie_nodes:
                target = done if nxt in prefix_list else nxt
                transitions[node, a] = frozenset({target})
    for a in alphabet:
        transitions[done, a] = frozenset({done})
    states = {n for n in trie_nodes if n not in prefix_list} | {done}
    initial = done if () in prefix_list else ()
    return BuchiAutomaton(
        alphabet=alphabet,
        states=frozenset(states),
        initial=initial,
        transitions=transitions,
        accepting=frozenset(states),
        name=name,
    )
