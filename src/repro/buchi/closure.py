"""The Alpern–Schneider closure operator on Büchi automata (§2.4).

The paper: *"The operator first removes states that cannot reach an
accepting state and then makes every remaining state an accepting state.
In this way, the fairness condition is made trivial.  It can then be
shown that applying this operator to B results in an automaton whose
language is the lcl of the language of B."*

This module implements that operator, the exact semantic ``lcl``
membership test it is validated against, and the derived safety/liveness
tests on automata.  All of it runs on the dense kernel
(:mod:`repro.automata`): intern once, compute reachable/live bitmasks,
unintern the surviving states.
"""

from __future__ import annotations

from repro.automata.kernel import lcl_member
from repro.omega.word import LassoWord

from .automaton import BuchiAutomaton
from .emptiness import empty_automaton


def closure(automaton: BuchiAutomaton) -> BuchiAutomaton:
    """``cl(B)``: trim states with empty language, make all states
    accepting.  ``L(cl B) = lcl(L(B))``.

    An automaton for ``∅`` is its own closure (``lcl.∅ = ∅`` — note this
    means ``lcl`` happens to fix 0 here, though the lattice framework
    never requires it).
    """
    form = automaton.to_dense()
    keep = form.reachable() & form.live()
    if not keep & (1 << form.core.initial):
        return empty_automaton(automaton.alphabet, name=f"cl({automaton.name})")
    states = form.unintern_mask(keep)
    return BuchiAutomaton(
        alphabet=automaton.alphabet,
        states=states,
        initial=automaton.initial,
        transitions=form.restricted_transitions(keep),
        accepting=states,
        name=automaton.name,
    )


def is_closure_automaton(automaton: BuchiAutomaton) -> bool:
    """Structurally in the image of :func:`closure`: every state useful and
    accepting.  Such automata are called *safety automata* — Schneider's
    security automata are exactly these."""
    form = automaton.to_dense()
    full = form.core.full_mask()
    return (
        form.core.accepting == full
        and form.reachable() == full
        and form.live() == full
    )


def semantic_lcl_member(automaton: BuchiAutomaton, word: LassoWord) -> bool:
    """Exact membership of ``word`` in ``lcl(L(B))`` straight from the
    paper's definition: every finite prefix of ``word`` must extend to a
    member of ``L(B)``.

    A prefix ``x`` extends iff some state in ``δ̂(q0, x)`` has non-empty
    language.  Along a lasso the subset sequence is eventually periodic,
    so only finitely many prefixes need checking — we run the subset
    construction until the (cycle-position, state-set) pair repeats.

    This is the ground truth that :func:`closure` is tested against
    (they must agree on every lasso).
    """
    form = automaton.to_dense()
    symbol = form.symbol_index
    try:
        prefix = [symbol[a] for a in word.prefix]
        cycle = [symbol[a] for a in word.cycle]
    except KeyError:
        # a symbol outside the alphabet kills every run at that prefix
        return False
    return lcl_member(form.core, form.live(), prefix, cycle)


def is_safety(automaton: BuchiAutomaton) -> bool:
    """``L(B)`` is a safety property: ``L(B) = lcl(L(B))``.

    ``L ⊆ lcl.L`` always holds, so this reduces to
    ``L(cl B) ⊆ L(B)`` — an ordinary inclusion check.
    """
    from .inclusion import is_subset

    return is_subset(closure(automaton), automaton)


def is_liveness(automaton: BuchiAutomaton) -> bool:
    """``L(B)`` is a liveness property: ``lcl(L(B)) = Σ^ω``.

    Equivalently the complement of the (safety) closure automaton is
    empty — cheap, because safety automata complement by subset
    construction."""
    from .complement import complement_safety
    from .emptiness import is_empty

    return is_empty(complement_safety(closure(automaton)))
