"""The Alpern–Schneider closure operator on Büchi automata (§2.4).

The paper: *"The operator first removes states that cannot reach an
accepting state and then makes every remaining state an accepting state.
In this way, the fairness condition is made trivial.  It can then be
shown that applying this operator to B results in an automaton whose
language is the lcl of the language of B."*

This module implements that operator, the exact semantic ``lcl``
membership test it is validated against, and the derived safety/liveness
tests on automata.
"""

from __future__ import annotations

from repro.omega.word import LassoWord

from .automaton import BuchiAutomaton
from .emptiness import empty_automaton, live_states


def closure(automaton: BuchiAutomaton) -> BuchiAutomaton:
    """``cl(B)``: trim states with empty language, make all states
    accepting.  ``L(cl B) = lcl(L(B))``.

    An automaton for ``∅`` is its own closure (``lcl.∅ = ∅`` — note this
    means ``lcl`` happens to fix 0 here, though the lattice framework
    never requires it).
    """
    keep = automaton.reachable_states() & live_states(automaton)
    if automaton.initial not in keep:
        return empty_automaton(automaton.alphabet, name=f"cl({automaton.name})")
    trimmed = automaton.restricted_to(keep)
    return trimmed.with_accepting(trimmed.states)


def is_closure_automaton(automaton: BuchiAutomaton) -> bool:
    """Structurally in the image of :func:`closure`: every state useful and
    accepting.  Such automata are called *safety automata* — Schneider's
    security automata are exactly these."""
    return (
        automaton.accepting == automaton.states
        and automaton.reachable_states() == automaton.states
        and live_states(automaton) == automaton.states
    )


def semantic_lcl_member(automaton: BuchiAutomaton, word: LassoWord) -> bool:
    """Exact membership of ``word`` in ``lcl(L(B))`` straight from the
    paper's definition: every finite prefix of ``word`` must extend to a
    member of ``L(B)``.

    A prefix ``x`` extends iff some state in ``δ̂(q0, x)`` has non-empty
    language.  Along a lasso the subset sequence is eventually periodic,
    so only finitely many prefixes need checking — we run the subset
    construction until the (cycle-position, state-set) pair repeats.

    This is the ground truth that :func:`closure` is tested against
    (they must agree on every lasso).
    """
    live = live_states(automaton)
    current = frozenset({automaton.initial})
    if not current & live:
        return False
    for a in word.prefix:
        current = automaton.post(current, a)
        if not current & live:
            return False
    v = word.cycle
    seen: set[tuple[int, frozenset]] = set()
    position = 0
    while (position, current) not in seen:
        seen.add((position, current))
        current = automaton.post(current, v[position])
        position = (position + 1) % len(v)
        if not current & live:
            return False
    return True


def is_safety(automaton: BuchiAutomaton) -> bool:
    """``L(B)`` is a safety property: ``L(B) = lcl(L(B))``.

    ``L ⊆ lcl.L`` always holds, so this reduces to
    ``L(cl B) ⊆ L(B)`` — an ordinary inclusion check.
    """
    from .inclusion import is_subset

    return is_subset(closure(automaton), automaton)


def is_liveness(automaton: BuchiAutomaton) -> bool:
    """``L(B)`` is a liveness property: ``lcl(L(B)) = Σ^ω``.

    Equivalently the complement of the (safety) closure automaton is
    empty — cheap, because safety automata complement by subset
    construction."""
    from .complement import complement_safety
    from .emptiness import is_empty

    return is_empty(complement_safety(closure(automaton)))
