"""Emptiness and witness extraction for Büchi automata.

``L(B) ≠ ∅`` iff some accepting state lies on a cycle reachable from the
initial state — decided via SCC analysis on the dense core
(:mod:`repro.automata`).  Non-emptiness comes with a constructive
witness: a :class:`~repro.omega.word.LassoWord` in the language, which
is how every extensional claim in this reproduction is cross-checked
against the semantic (lasso-membership) layer.
"""

from __future__ import annotations

from repro.omega.word import LassoWord

from .automaton import BuchiAutomaton, State


def live_states(automaton: BuchiAutomaton) -> frozenset:
    """States ``q`` with ``L(B(q)) ≠ ∅`` — those that can reach a cyclic
    SCC containing an accepting state.

    This is exactly the state set the paper's closure operator keeps
    ("first removes states that cannot reach an accepting state" — more
    precisely, states whose language is empty; see §4.4's
    ``Q' = {q | L(B(q)) ≠ ∅}``).
    """
    form = automaton.to_dense()
    return form.unintern_mask(form.live())


def is_empty(automaton: BuchiAutomaton) -> bool:
    """``L(B) = ∅``?"""
    form = automaton.to_dense()
    return not form.live() & (1 << form.core.initial)


def find_accepted_word(automaton: BuchiAutomaton) -> LassoWord | None:
    """A lasso word in ``L(B)``, or ``None`` when the language is empty.

    The witness is built from a shortest symbol-labeled path to an
    accepting state on a reachable cycle, plus a shortest cycle back.
    """
    form = automaton.to_dense()
    candidates = form.unintern_mask(
        form.reachable() & form.live() & form.core.accepting
    )
    for target in sorted(candidates, key=repr):
        prefix = _shortest_word(automaton, automaton.initial, target, allow_empty=True)
        if prefix is None:
            continue
        cycle = _shortest_word(automaton, target, target, allow_empty=False)
        if cycle is None:
            continue
        return LassoWord(prefix, cycle)
    return None


def trim(automaton: BuchiAutomaton) -> BuchiAutomaton:
    """Restrict to useful states: reachable and with non-empty language.

    When the initial state itself is useless the result is a canonical
    one-state automaton for ``∅`` over the same alphabet.
    """
    form = automaton.to_dense()
    keep = form.reachable() & form.live()
    if not keep & (1 << form.core.initial):
        return empty_automaton(automaton.alphabet, name=automaton.name)
    states = form.unintern_mask(keep)
    return BuchiAutomaton(
        alphabet=automaton.alphabet,
        states=states,
        initial=automaton.initial,
        transitions=form.restricted_transitions(keep),
        accepting=automaton.accepting & states,
        name=automaton.name,
    )


def empty_automaton(alphabet, name: str = "∅") -> BuchiAutomaton:
    """A canonical automaton with ``L = ∅``."""
    return BuchiAutomaton.build(
        alphabet=alphabet,
        states=["dead"],
        initial="dead",
        transitions={},
        accepting=[],
        name=name,
    )


def universal_automaton(alphabet, name: str = "Σ^ω") -> BuchiAutomaton:
    """A canonical automaton with ``L = Σ^ω``."""
    return BuchiAutomaton.build(
        alphabet=alphabet,
        states=["⊤"],
        initial="⊤",
        transitions={("⊤", a): ["⊤"] for a in alphabet},
        accepting=["⊤"],
        name=name,
    )


def _shortest_word(
    automaton: BuchiAutomaton, source: State, target: State, allow_empty: bool
) -> tuple | None:
    """BFS for the shortest symbol sequence driving ``source`` to
    ``target``; with ``allow_empty=False`` the sequence must be non-empty
    (used for cycles)."""
    if allow_empty and source == target:
        return ()
    seen = set()
    queue: list[tuple[State, tuple]] = []
    for a in sorted(automaton.alphabet, key=repr):
        for r in sorted(automaton.successors(source, a), key=repr):
            if r == target:
                return (a,)
            if r not in seen:
                seen.add(r)
                queue.append((r, (a,)))
    while queue:
        q, word = queue.pop(0)
        for a in sorted(automaton.alphabet, key=repr):
            for r in sorted(automaton.successors(q, a), key=repr):
                if r == target:
                    return word + (a,)
                if r not in seen:
                    seen.add(r)
                    queue.append((r, word + (a,)))
    return None
