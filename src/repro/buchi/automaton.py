"""Büchi automata over infinite words.

Matches the paper's Section 2.4 definition: ``B = (Σ, Q, q0, δ, F)`` with
``δ : Q × Σ → P(Q)``; a run is accepting iff it visits ``F`` infinitely
often; ``L(B)`` is the set of words with an accepting run.

States may be any hashable objects (construction algorithms produce
tuples/frozensets); :meth:`BuchiAutomaton.renumbered` maps them to small
integers for readable output and faster hashing downstream.
"""

from __future__ import annotations

from collections.abc import Hashable, Iterable, Mapping
from dataclasses import dataclass, field
from itertools import product

from repro.omega.word import LassoWord, Symbol

State = Hashable


class AutomatonError(ValueError):
    """Raised when automaton data is malformed."""


@dataclass(frozen=True)
class BuchiAutomaton:
    """An immutable nondeterministic Büchi automaton."""

    alphabet: frozenset
    states: frozenset
    initial: State
    transitions: Mapping[tuple[State, Symbol], frozenset]
    accepting: frozenset
    name: str = field(default="B", compare=False)

    def __post_init__(self):
        if not self.alphabet:
            raise AutomatonError("alphabet must be non-empty")
        if self.initial not in self.states:
            raise AutomatonError(f"initial state {self.initial!r} not in states")
        if not self.accepting <= self.states:
            raise AutomatonError("accepting states must be a subset of states")
        for (q, a), targets in self.transitions.items():
            if q not in self.states:
                raise AutomatonError(f"transition from unknown state {q!r}")
            if a not in self.alphabet:
                raise AutomatonError(f"transition on unknown symbol {a!r}")
            if not targets <= self.states:
                raise AutomatonError(
                    f"transition ({q!r}, {a!r}) targets unknown states"
                )

    @classmethod
    def build(
        cls,
        alphabet: Iterable[Symbol],
        states: Iterable[State],
        initial: State,
        transitions: Mapping[tuple[State, Symbol], Iterable[State]],
        accepting: Iterable[State],
        name: str = "B",
    ) -> "BuchiAutomaton":
        """Convenience constructor that freezes all collections."""
        return cls(
            alphabet=frozenset(alphabet),
            states=frozenset(states),
            initial=initial,
            transitions={
                key: frozenset(targets) for key, targets in transitions.items()
            },
            accepting=frozenset(accepting),
            name=name,
        )

    # -- basic queries ----------------------------------------------------------

    def successors(self, q: State, a: Symbol) -> frozenset:
        """``δ(q, a)`` (empty when no transition is defined)."""
        return self.transitions.get((q, a), frozenset())

    def post(self, subset: frozenset, a: Symbol) -> frozenset:
        """The subset-construction step ``δ̂(S, a)``."""
        out: set = set()
        for q in subset:
            out |= self.successors(q, a)
        return frozenset(out)

    def is_deterministic(self) -> bool:
        """At most one successor per (state, symbol)."""
        return all(len(t) <= 1 for t in self.transitions.values())

    def is_complete(self) -> bool:
        """At least one successor per (state, symbol)."""
        return all(
            self.successors(q, a) for q in self.states for a in self.alphabet
        )

    def transition_count(self) -> int:
        return sum(len(t) for t in self.transitions.values())

    # -- graph structure ----------------------------------------------------------

    def edges(self) -> Iterable[tuple[State, Symbol, State]]:
        for (q, a), targets in self.transitions.items():
            for r in targets:
                yield (q, a, r)

    def reachable_states(self, start: State | None = None) -> frozenset:
        """States reachable from ``start`` (default: the initial state)."""
        start = self.initial if start is None else start
        seen = {start}
        frontier = [start]
        while frontier:
            q = frontier.pop()
            for a in self.alphabet:
                for r in self.successors(q, a):
                    if r not in seen:
                        seen.add(r)
                        frontier.append(r)
        return frozenset(seen)

    def strongly_connected_components(self) -> list[frozenset]:
        """Tarjan's SCCs of the transition graph (symbols ignored)."""
        adjacency: dict[State, set] = {q: set() for q in self.states}
        for q, _a, r in self.edges():
            adjacency[q].add(r)
        return _tarjan(self.states, adjacency)

    # -- acceptance on lasso words ----------------------------------------------

    def accepts(self, word: LassoWord) -> bool:
        """Whether ``word = u · v^ω ∈ L(B)``.

        Standard lasso membership: track (state, cycle-position) pairs;
        the word is accepted iff from some pair reachable after reading
        ``u`` there is a reachable cycle through an accepting state in the
        (state × position) graph.
        """
        if not word.symbols() <= self.alphabet:
            raise AutomatonError(
                f"word uses symbols outside the alphabet: "
                f"{word.symbols() - self.alphabet!r}"
            )
        u, v = word.prefix, word.cycle
        # states reachable after the transient part
        current = frozenset({self.initial})
        for a in u:
            current = self.post(current, a)
            if not current:
                return False
        # nodes of the cycle graph: (state, position in v)
        nodes = set(product(self.states, range(len(v))))
        adjacency: dict[tuple, set] = {n: set() for n in nodes}
        for q, i in nodes:
            for r in self.successors(q, v[i]):
                adjacency[q, i].add((r, (i + 1) % len(v)))
        start_nodes = {(q, 0) for q in current}
        reachable = _graph_reachable(start_nodes, adjacency)
        for component in _tarjan(reachable, adjacency):
            if not any(q in self.accepting for q, _i in component):
                continue
            if _is_cyclic_component(component, adjacency):
                return True
        return False

    def language(self):
        """``L(B)`` as a semantic :class:`~repro.omega.language.OmegaLanguage`."""
        from repro.omega.language import OmegaLanguage

        return OmegaLanguage(self.alphabet, self.accepts, name=f"L({self.name})")

    # -- transformations ---------------------------------------------------------

    def with_accepting(self, accepting: Iterable[State]) -> "BuchiAutomaton":
        return BuchiAutomaton(
            alphabet=self.alphabet,
            states=self.states,
            initial=self.initial,
            transitions=dict(self.transitions),
            accepting=frozenset(accepting),
            name=self.name,
        )

    def restricted_to(self, keep: Iterable[State]) -> "BuchiAutomaton":
        """The sub-automaton on ``keep`` (must contain the initial state)."""
        keep = frozenset(keep)
        if self.initial not in keep:
            raise AutomatonError("cannot drop the initial state")
        transitions = {
            (q, a): targets & keep
            for (q, a), targets in self.transitions.items()
            if q in keep and targets & keep
        }
        return BuchiAutomaton(
            alphabet=self.alphabet,
            states=keep,
            initial=self.initial,
            transitions=transitions,
            accepting=self.accepting & keep,
            name=self.name,
        )

    def completed(self, sink: State = "⊥") -> "BuchiAutomaton":
        """A complete automaton with the same language: missing transitions
        go to a fresh non-accepting sink."""
        if self.is_complete():
            return self
        while sink in self.states:
            sink = (sink, "'")
        states = self.states | {sink}
        transitions: dict = {}
        for q in states:
            for a in self.alphabet:
                targets = self.successors(q, a) if q in self.states else frozenset()
                transitions[q, a] = targets if targets else frozenset({sink})
        transitions.update(
            {(sink, a): frozenset({sink}) for a in self.alphabet}
        )
        return BuchiAutomaton(
            alphabet=self.alphabet,
            states=states,
            initial=self.initial,
            transitions=transitions,
            accepting=self.accepting,
            name=self.name,
        )

    def canonical_key(self) -> str:
        """A structural cache key, invariant under state renaming.

        Two automata that are isomorphic up to a renaming of their
        states (same alphabet, same transition structure, same
        initial/accepting marking) get the same key; automata with
        different structure get different keys.  Built on the canonical
        labeling of :func:`repro.canonical.canonical_digraph_key` —
        the key hashes the *full* renumbered transition relation, so
        equal keys imply isomorphism, which is what makes it safe as a
        memoization key in :mod:`repro.service` (DESIGN.md §8)."""
        from repro.canonical import canonical_digraph_key, stable_token

        colors = {
            q: (q == self.initial, q in self.accepting) for q in self.states
        }
        edges = [
            (a, q, r)
            for (q, a), targets in self.transitions.items()
            for r in targets
        ]
        return "buchi:" + canonical_digraph_key(
            self.states,
            colors,
            edges,
            graph_attrs=(
                "buchi",
                tuple(sorted(stable_token(a) for a in self.alphabet)),
            ),
        )

    def renumbered(self, name: str | None = None) -> "BuchiAutomaton":
        """An isomorphic copy with states ``0..n-1`` (BFS order from the
        initial state, then the rest in repr order)."""
        order: list[State] = [self.initial]
        seen = {self.initial}
        i = 0
        while i < len(order):
            q = order[i]
            i += 1
            for a in sorted(self.alphabet, key=repr):
                for r in sorted(self.successors(q, a), key=repr):
                    if r not in seen:
                        seen.add(r)
                        order.append(r)
        order.extend(sorted(self.states - seen, key=repr))
        index = {q: k for k, q in enumerate(order)}
        return BuchiAutomaton(
            alphabet=self.alphabet,
            states=frozenset(range(len(order))),
            initial=0,
            transitions={
                (index[q], a): frozenset(index[r] for r in targets)
                for (q, a), targets in self.transitions.items()
            },
            accepting=frozenset(index[q] for q in self.accepting),
            name=self.name if name is None else name,
        )

    def __repr__(self) -> str:
        return (
            f"BuchiAutomaton({self.name!r}, |Q|={len(self.states)}, "
            f"|δ|={self.transition_count()}, |F|={len(self.accepting)})"
        )


# -- shared graph helpers -------------------------------------------------------


def _graph_reachable(start: Iterable, adjacency: Mapping) -> set:
    seen = set(start)
    frontier = list(seen)
    while frontier:
        n = frontier.pop()
        for m in adjacency.get(n, ()):
            if m not in seen:
                seen.add(m)
                frontier.append(m)
    return seen


def _tarjan(nodes: Iterable, adjacency: Mapping) -> list[frozenset]:
    """Tarjan's strongly connected components, iterative."""
    nodes = list(nodes)
    index_of: dict = {}
    lowlink: dict = {}
    on_stack: set = set()
    stack: list = []
    components: list[frozenset] = []
    counter = [0]

    for root in nodes:
        if root in index_of:
            continue
        work = [(root, iter(adjacency.get(root, ())))]
        index_of[root] = lowlink[root] = counter[0]
        counter[0] += 1
        stack.append(root)
        on_stack.add(root)
        while work:
            node, it = work[-1]
            advanced = False
            for succ in it:
                if succ not in index_of:
                    index_of[succ] = lowlink[succ] = counter[0]
                    counter[0] += 1
                    stack.append(succ)
                    on_stack.add(succ)
                    work.append((succ, iter(adjacency.get(succ, ()))))
                    advanced = True
                    break
                if succ in on_stack:
                    lowlink[node] = min(lowlink[node], index_of[succ])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                lowlink[parent] = min(lowlink[parent], lowlink[node])
            if lowlink[node] == index_of[node]:
                component = set()
                while True:
                    w = stack.pop()
                    on_stack.discard(w)
                    component.add(w)
                    if w == node:
                        break
                components.append(frozenset(component))
    return components


def _is_cyclic_component(component: frozenset, adjacency: Mapping) -> bool:
    """Whether the SCC carries at least one edge (non-trivial, or a
    self-loop)."""
    if len(component) > 1:
        return True
    (node,) = component
    return node in adjacency.get(node, ())
