"""Büchi automata over infinite words.

Matches the paper's Section 2.4 definition: ``B = (Σ, Q, q0, δ, F)`` with
``δ : Q × Σ → P(Q)``; a run is accepting iff it visits ``F`` infinitely
often; ``L(B)`` is the set of words with an accepting run.

States may be any hashable objects (construction algorithms produce
tuples/frozensets); :meth:`BuchiAutomaton.renumbered` maps them to small
integers for readable output and faster hashing downstream.
"""

from __future__ import annotations

from collections.abc import Hashable, Iterable, Mapping
from dataclasses import dataclass, field

from repro.automata.dense import DenseBuchi, DenseForm
from repro.automata.interner import Interner
from repro.automata.kernel import (
    adjacency,
    iter_bits,
    post,
    reachable_mask,
    scc_masks,
)
from repro.omega.word import LassoWord, Symbol

State = Hashable


class AutomatonError(ValueError):
    """Raised when automaton data is malformed."""


@dataclass(frozen=True)
class BuchiAutomaton:
    """An immutable nondeterministic Büchi automaton."""

    alphabet: frozenset
    states: frozenset
    initial: State
    transitions: Mapping[tuple[State, Symbol], frozenset]
    accepting: frozenset
    name: str = field(default="B", compare=False)

    def __post_init__(self):
        if not self.alphabet:
            raise AutomatonError("alphabet must be non-empty")
        if self.initial not in self.states:
            raise AutomatonError(f"initial state {self.initial!r} not in states")
        if not self.accepting <= self.states:
            raise AutomatonError("accepting states must be a subset of states")
        for (q, a), targets in self.transitions.items():
            if q not in self.states:
                raise AutomatonError(f"transition from unknown state {q!r}")
            if a not in self.alphabet:
                raise AutomatonError(f"transition on unknown symbol {a!r}")
            if not targets <= self.states:
                raise AutomatonError(
                    f"transition ({q!r}, {a!r}) targets unknown states"
                )

    @classmethod
    def build(
        cls,
        alphabet: Iterable[Symbol],
        states: Iterable[State],
        initial: State,
        transitions: Mapping[tuple[State, Symbol], Iterable[State]],
        accepting: Iterable[State],
        name: str = "B",
    ) -> "BuchiAutomaton":
        """Convenience constructor that freezes all collections."""
        return cls(
            alphabet=frozenset(alphabet),
            states=frozenset(states),
            initial=initial,
            transitions={
                key: frozenset(targets) for key, targets in transitions.items()
            },
            accepting=frozenset(accepting),
            name=name,
        )

    # -- basic queries ----------------------------------------------------------

    def successors(self, q: State, a: Symbol) -> frozenset:
        """``δ(q, a)`` (empty when no transition is defined)."""
        return self.transitions.get((q, a), frozenset())

    def post(self, subset: frozenset, a: Symbol) -> frozenset:
        """The subset-construction step ``δ̂(S, a)``."""
        out: set = set()
        for q in subset:
            out |= self.successors(q, a)
        return frozenset(out)

    def is_deterministic(self) -> bool:
        """At most one successor per (state, symbol)."""
        return all(len(t) <= 1 for t in self.transitions.values())

    def is_complete(self) -> bool:
        """At least one successor per (state, symbol)."""
        return all(
            self.successors(q, a) for q in self.states for a in self.alphabet
        )

    def transition_count(self) -> int:
        return sum(len(t) for t in self.transitions.values())

    # -- graph structure ----------------------------------------------------------

    def edges(self) -> Iterable[tuple[State, Symbol, State]]:
        for (q, a), targets in self.transitions.items():
            for r in targets:
                yield (q, a, r)

    def reachable_states(self, start: State | None = None) -> frozenset:
        """States reachable from ``start`` (default: the initial state)."""
        form = self.to_dense()
        if start is None:
            return form.unintern_mask(form.reachable())
        index = form.state_index.get(start)
        if index is None:
            # not a state: nothing to follow, mirroring the graph walk
            return frozenset({start})
        return form.unintern_mask(reachable_mask(form.core, 1 << index))

    def strongly_connected_components(self) -> list[frozenset]:
        """Tarjan's SCCs of the transition graph (symbols ignored)."""
        form = self.to_dense()
        adj = adjacency(form.core)
        return [form.unintern_mask(c) for c in scc_masks(adj)]

    # -- acceptance on lasso words ----------------------------------------------

    def accepts(self, word: LassoWord) -> bool:
        """Whether ``word = u · v^ω ∈ L(B)``.

        Subset-steps through ``u`` on the dense core, then intersects
        with the cycle's winning-state mask — memoized per cycle on the
        dense form, so checking many lassos sharing cycles against the
        same automaton pays the cycle analysis once.
        """
        if not word.symbols() <= self.alphabet:
            raise AutomatonError(
                f"word uses symbols outside the alphabet: "
                f"{word.symbols() - self.alphabet!r}"
            )
        form = self.to_dense()
        symbol = form.symbol_index
        succ = form.core.succ
        current = 1 << form.core.initial
        for a in word.prefix:
            current = post(succ[symbol[a]], current)
            if not current:
                return False
        return bool(current & form.cycle_win(tuple(symbol[a] for a in word.cycle)))

    def language(self):
        """``L(B)`` as a semantic :class:`~repro.omega.language.OmegaLanguage`."""
        from repro.omega.language import OmegaLanguage

        return OmegaLanguage(self.alphabet, self.accepts, name=f"L({self.name})")

    # -- transformations ---------------------------------------------------------

    def with_accepting(self, accepting: Iterable[State]) -> "BuchiAutomaton":
        return BuchiAutomaton(
            alphabet=self.alphabet,
            states=self.states,
            initial=self.initial,
            transitions=dict(self.transitions),
            accepting=frozenset(accepting),
            name=self.name,
        )

    def restricted_to(self, keep: Iterable[State]) -> "BuchiAutomaton":
        """The sub-automaton on ``keep`` (must contain the initial state)."""
        keep = frozenset(keep)
        if self.initial not in keep:
            raise AutomatonError("cannot drop the initial state")
        transitions = {
            (q, a): targets & keep
            for (q, a), targets in self.transitions.items()
            if q in keep and targets & keep
        }
        return BuchiAutomaton(
            alphabet=self.alphabet,
            states=keep,
            initial=self.initial,
            transitions=transitions,
            accepting=self.accepting & keep,
            name=self.name,
        )

    def completed(self, sink: State = "⊥") -> "BuchiAutomaton":
        """A complete automaton with the same language: missing transitions
        go to a fresh non-accepting sink."""
        if self.is_complete():
            return self
        while sink in self.states:
            sink = (sink, "'")
        states = self.states | {sink}
        transitions: dict = {}
        for q in states:
            for a in self.alphabet:
                targets = self.successors(q, a) if q in self.states else frozenset()
                transitions[q, a] = targets if targets else frozenset({sink})
        transitions.update(
            {(sink, a): frozenset({sink}) for a in self.alphabet}
        )
        return BuchiAutomaton(
            alphabet=self.alphabet,
            states=states,
            initial=self.initial,
            transitions=transitions,
            accepting=self.accepting,
            name=self.name,
        )

    def canonical_key(self) -> str:
        """A structural cache key, invariant under state renaming.

        Two automata that are isomorphic up to a renaming of their
        states (same alphabet, same transition structure, same
        initial/accepting marking) get the same key; automata with
        different structure get different keys.  Built on the canonical
        labeling of :func:`repro.canonical.canonical_digraph_key` —
        the key hashes the *full* renumbered transition relation, so
        equal keys imply isomorphism, which is what makes it safe as a
        memoization key in :mod:`repro.service` (DESIGN.md §8)."""
        from repro.canonical import canonical_digraph_key, stable_token

        form = self.to_dense()
        core = form.core
        colors = {
            q: (q == core.initial, bool((core.accepting >> q) & 1))
            for q in range(core.n_states)
        }
        edges = [
            (symbol, q, r)
            for a, symbol in enumerate(form.symbols)
            for q in range(core.n_states)
            for r in iter_bits(core.succ[a][q])
        ]
        return "buchi:" + canonical_digraph_key(
            range(core.n_states),
            colors,
            edges,
            graph_attrs=(
                "buchi",
                tuple(sorted(stable_token(a) for a in self.alphabet)),
            ),
        )

    # -- the dense kernel bridge --------------------------------------------------

    def _state_interner(self) -> Interner:
        """The repo's one state-numbering order: BFS from the initial
        state (symbols in repr order, successors in repr order), then
        any unreachable states in repr order.  Shared by
        :meth:`renumbered` and :meth:`to_dense`, so dense index ``i``
        always names the same state ``renumbered()`` calls ``i``."""
        # one repr-keyed sort of the state set, then integer ranks for
        # every successor sort below (repr is recomputed per element by
        # each sorted() call otherwise — the dominant cost at scale);
        # materialized lazily: deterministic automata never need it
        by_repr = None
        rank = None
        symbols = sorted(self.alphabet, key=repr)
        transitions = self.transitions
        initial = self.initial
        seen = {initial}
        add_seen = seen.add
        order = [initial]
        add = order.append
        i = 0
        while i < len(order):
            q = order[i]
            i += 1
            for a in symbols:
                targets = transitions.get((q, a))
                if not targets:
                    continue
                if len(targets) == 1:
                    (r,) = targets
                    if r not in seen:
                        add_seen(r)
                        add(r)
                    continue
                if seen.issuperset(targets):
                    continue
                if len(targets) <= 8:
                    # small tie-sets: sorting by repr directly costs a few
                    # repr calls; the global rank table costs |Q| of them
                    ordered = sorted(targets, key=repr)
                elif rank is None:
                    by_repr = sorted(self.states, key=repr)
                    rank = {q: i for i, q in enumerate(by_repr)}.__getitem__
                    ordered = sorted(targets, key=rank)
                else:
                    ordered = sorted(targets, key=rank)
                for r in ordered:
                    if r not in seen:
                        add_seen(r)
                        add(r)
        if len(order) < len(self.states):
            if by_repr is None:
                by_repr = sorted(self.states, key=repr)
            for q in by_repr:
                if q not in seen:
                    add(q)
        return Interner.from_ordered(order)

    def to_dense(self) -> DenseForm:
        """The automaton's dense form (memoized on this instance).

        States are numbered by :meth:`_state_interner` (the initial
        state is 0), symbols by repr order.  The form is cached with
        ``object.__setattr__`` — the dataclass is frozen, but ``eq`` and
        ``hash`` read fields only, so the cache never affects identity;
        a racing double-compute writes the same value twice, harmlessly.
        """
        form = getattr(self, "_dense_form", None)
        if form is not None:
            return form
        interner = self._state_interner()
        states = interner.values()
        symbols = tuple(sorted(self.alphabet, key=repr))
        symbol_index = {a: i for i, a in enumerate(symbols)}
        n = len(states)
        index = interner.index_map()
        succ = [[0] * n for _ in symbols]
        for (q, a), targets in self.transitions.items():
            if not targets:
                continue
            mask = 0
            for r in targets:
                mask |= 1 << index[r]
            succ[symbol_index[a]][index[q]] = mask
        accepting = 0
        for q in self.accepting:
            accepting |= 1 << index[q]
        core = DenseBuchi(
            n_states=n,
            n_symbols=len(symbols),
            initial=0,
            succ=tuple(tuple(row) for row in succ),
            accepting=accepting,
        )
        form = DenseForm(core, states, symbols)
        object.__setattr__(self, "_dense_form", form)
        return form

    def _seed_dense(self, form: DenseForm) -> None:
        """Pre-populate the :meth:`to_dense` cache.

        Constructor fast path: a caller that already holds the dense
        core it built the automaton from can hand it over instead of
        having ``to_dense`` re-derive it — but only when the form's
        numbering is exactly the :meth:`_state_interner` order, so the
        documented ``to_dense``/``renumbered`` correspondence still
        holds for the seeded instance."""
        object.__setattr__(self, "_dense_form", form)

    def renumbered(self, name: str | None = None) -> "BuchiAutomaton":
        """An isomorphic copy with states ``0..n-1`` (BFS order from the
        initial state, then the rest in repr order)."""
        interner = self._state_interner()
        return BuchiAutomaton(
            alphabet=self.alphabet,
            states=frozenset(range(len(interner))),
            initial=0,
            transitions={
                (interner.index_of(q), a): frozenset(
                    interner.index_of(r) for r in targets
                )
                for (q, a), targets in self.transitions.items()
            },
            accepting=frozenset(interner.index_of(q) for q in self.accepting),
            name=self.name if name is None else name,
        )

    def __repr__(self) -> str:
        return (
            f"BuchiAutomaton({self.name!r}, |Q|={len(self.states)}, "
            f"|δ|={self.transition_count()}, |F|={len(self.accepting)})"
        )


def from_dense(form: DenseForm, name: str = "B") -> BuchiAutomaton:
    """The automaton a dense form denotes, over int states ``0..n-1``.

    Lossless up to one representational quirk: a dense core cannot tell
    "no transition entry" from an explicit empty-target entry (both mean
    ``δ(q, a) = ∅``), so explicit empty entries are not reproduced —
    ``from_dense(B.to_dense())`` equals ``B.renumbered()`` for any
    automaton without them.
    """
    core = form.core
    transitions: dict = {}
    for a, symbol in enumerate(form.symbols):
        row = core.succ[a]
        for q in range(core.n_states):
            mask = row[q]
            if mask:
                transitions[q, symbol] = frozenset(iter_bits(mask))
    return BuchiAutomaton(
        alphabet=frozenset(form.symbols),
        states=frozenset(range(core.n_states)),
        initial=core.initial,
        transitions=transitions,
        accepting=frozenset(iter_bits(core.accepting)),
        name=name,
    )


# -- shared graph helpers (hashable-graph callers: ctl, systems, generalized) ---


def _graph_reachable(start: Iterable, adjacency: Mapping) -> set:
    seen = set(start)
    frontier = list(seen)
    while frontier:
        n = frontier.pop()
        for m in adjacency.get(n, ()):
            if m not in seen:
                seen.add(m)
                frontier.append(m)
    return seen


def _tarjan(nodes: Iterable, adjacency: Mapping) -> list[frozenset]:
    """Tarjan's strongly connected components, iterative."""
    nodes = list(nodes)
    index_of: dict = {}
    lowlink: dict = {}
    on_stack: set = set()
    stack: list = []
    components: list[frozenset] = []
    counter = [0]

    for root in nodes:
        if root in index_of:
            continue
        work = [(root, iter(adjacency.get(root, ())))]
        index_of[root] = lowlink[root] = counter[0]
        counter[0] += 1
        stack.append(root)
        on_stack.add(root)
        while work:
            node, it = work[-1]
            advanced = False
            for succ in it:
                if succ not in index_of:
                    index_of[succ] = lowlink[succ] = counter[0]
                    counter[0] += 1
                    stack.append(succ)
                    on_stack.add(succ)
                    work.append((succ, iter(adjacency.get(succ, ()))))
                    advanced = True
                    break
                if succ in on_stack:
                    lowlink[node] = min(lowlink[node], index_of[succ])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                lowlink[parent] = min(lowlink[parent], lowlink[node])
            if lowlink[node] == index_of[node]:
                component = set()
                while True:
                    w = stack.pop()
                    on_stack.discard(w)
                    component.add(w)
                    if w == node:
                        break
                components.append(frozenset(component))
    return components


def _is_cyclic_component(component: frozenset, adjacency: Mapping) -> bool:
    """Whether the SCC carries at least one edge (non-trivial, or a
    self-loop)."""
    if len(component) > 1:
        return True
    (node,) = component
    return node in adjacency.get(node, ())
