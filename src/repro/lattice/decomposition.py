"""The paper's decomposition and extremal theorems (Section 3).

This module is the computational heart of the reproduction.  Each public
function implements one numbered result:

* :func:`liveness_part` — Lemma 4 (``a ∨ b`` is live for ``b ∈ cmp(cl.a)``)
* :func:`_decompose` — Theorem 3 (two comparable closures); Theorem 2 is
  the ``cl1 = cl2`` special case :func:`_decompose_single`.  Call both
  through the unified :func:`repro.analysis.decompose` facade; the old
  public names :func:`decompose` / :func:`decompose_single` remain as
  deprecated shims.
* :func:`no_decomposition_witness` / :func:`theorem5_applies` — Theorem 5
* :func:`check_strongest_safety` — Theorem 6 (machine closure / extremal
  safety)
* :func:`check_weakest_liveness` — Theorem 7 (extremal liveness in
  distributive lattices)
* :func:`all_decompositions` — exhaustive search used by the Figure 1/2
  benches to *prove* non-decomposability on the counterexample lattices.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass

from repro.obs.metrics import REGISTRY
from repro.obs.profile import timed

from .closure import LatticeClosure
from .lattice import FiniteLattice, LatticeError
from .poset import Element
from .properties import is_complemented, is_distributive, is_modular

#: Decomposition observability: how often the Theorem 2/3 construction
#: runs, how often its hypotheses fail, and how large the exhaustive
#: searches (`all_decompositions`, Theorem 5's witness hunt) get — the
#: closure *construction* fixpoint counts live in :mod:`.closure`.
_DECOMPOSITIONS = REGISTRY.counter(
    "repro_lattice_decompositions_total", "Theorem 2/3 decompositions built"
)
_HYPOTHESIS_FAILURES = REGISTRY.counter(
    "repro_lattice_decomposition_failures_total",
    "DecompositionError raises, by cause",
    ("cause",),
)
_SEARCH_CANDIDATES = REGISTRY.counter(
    "repro_lattice_decomposition_search_candidates_total",
    "(safety, liveness) candidate pairs scanned by the exhaustive searches",
)


class DecompositionError(LatticeError):
    """Raised when a decomposition does not exist or hypotheses fail."""


@dataclass(frozen=True)
class Decomposition:
    """A safety/liveness factorization ``element = safety ∧ liveness``."""

    element: Element
    safety: Element
    liveness: Element
    complement_used: Element

    def verify(self, lattice: FiniteLattice, cl1: LatticeClosure, cl2: LatticeClosure) -> bool:
        """Re-check all three certified facts from Theorem 3."""
        return (
            lattice.meet(self.safety, self.liveness) == self.element
            and cl1.is_safety(self.safety)
            and cl2.is_liveness(self.liveness)
        )


def liveness_part(
    lattice: FiniteLattice, cl: LatticeClosure, a: Element, b: Element
) -> Element:
    """Lemma 4: for ``b ∈ cmp(cl.a)``, the element ``a ∨ b`` is cl-live.

    Raises :class:`DecompositionError` when ``b`` is not a complement of
    ``cl.a`` (the lemma's hypothesis).
    """
    if not lattice.is_complement(cl(a), b):
        raise DecompositionError(
            f"{b!r} is not a complement of cl({a!r}) = {cl(a)!r}"
        )
    live = lattice.join(a, b)
    # Lemma 4's conclusion is a theorem; assert it as an internal sanity
    # check rather than trusting the proof transcription.
    assert cl.is_liveness(live), "Lemma 4 violated — closure axioms are broken"
    return live


@timed("repro.lattice.decompose")
def _decompose(
    lattice: FiniteLattice,
    cl1: LatticeClosure,
    cl2: LatticeClosure,
    a: Element,
    complement: Element | None = None,
    check_hypotheses: bool = True,
) -> Decomposition:
    """Theorem 3: in a modular complemented lattice with lattice closures
    ``cl1 <= cl2`` (pointwise), every ``a`` is the meet of a cl1-safety
    element and a cl2-liveness element.

    The construction follows the paper's proof verbatim:
    ``safety = cl1.a`` and ``liveness = a ∨ b`` for any
    ``b ∈ cmp(cl2.a)``.

    Parameters
    ----------
    complement:
        A specific ``b ∈ cmp(cl2.a)`` to use.  Complements are not unique
        in non-distributive lattices; by default the first one in element
        order is taken.
    check_hypotheses:
        When true (default), verify modularity, complementedness and
        ``cl1 <= cl2`` before decomposing; disable for hot benchmark loops
        over lattices already known to qualify.
    """
    if check_hypotheses:
        if not cl2.dominates(cl1):
            _HYPOTHESIS_FAILURES.labels(cause="comparability").add()
            raise DecompositionError("hypothesis cl1 <= cl2 (pointwise) fails")
        if not is_modular(lattice):
            _HYPOTHESIS_FAILURES.labels(cause="modularity").add()
            raise DecompositionError("lattice is not modular")
        if not is_complemented(lattice):
            _HYPOTHESIS_FAILURES.labels(cause="complementedness").add()
            raise DecompositionError("lattice is not complemented")
    closed2 = cl2(a)
    if complement is None:
        b = lattice.some_complement(closed2)
    else:
        if not lattice.is_complement(closed2, complement):
            _HYPOTHESIS_FAILURES.labels(cause="bad_complement").add()
            raise DecompositionError(
                f"{complement!r} is not a complement of cl2({a!r}) = {closed2!r}"
            )
        b = complement
    safety = cl1(a)
    liveness = lattice.join(a, b)
    result = Decomposition(element=a, safety=safety, liveness=liveness, complement_used=b)
    if lattice.meet(safety, liveness) != a:
        # Only reachable when hypotheses were skipped but do not hold.
        _HYPOTHESIS_FAILURES.labels(cause="identity").add()
        raise DecompositionError(
            f"decomposition identity fails at {a!r}: "
            f"{safety!r} ∧ {liveness!r} = {lattice.meet(safety, liveness)!r}"
        )
    _DECOMPOSITIONS.add()
    return result


def _decompose_single(
    lattice: FiniteLattice,
    cl: LatticeClosure,
    a: Element,
    complement: Element | None = None,
    check_hypotheses: bool = True,
) -> Decomposition:
    """Theorem 2: the one-closure decomposition (``cl1 = cl2 = cl``),
    e.g. the Alpern–Schneider ``P = lcl.P ∩ (P ∪ ¬lcl.P)``."""
    return _decompose(
        lattice, cl, cl, a, complement=complement, check_hypotheses=check_hypotheses
    )


def decompose(
    lattice: FiniteLattice,
    cl1: LatticeClosure,
    cl2: LatticeClosure,
    a: Element,
    complement: Element | None = None,
    check_hypotheses: bool = True,
) -> Decomposition:
    """Deprecated spelling of Theorem 3 — use
    :func:`repro.analysis.decompose` with ``closure=(cl1, cl2)``."""
    warnings.warn(
        "repro.lattice.decomposition.decompose is deprecated; use "
        "repro.analysis.decompose(element, closure=(cl1, cl2))",
        DeprecationWarning,
        stacklevel=2,
    )
    return _decompose(
        lattice, cl1, cl2, a, complement=complement, check_hypotheses=check_hypotheses
    )


def decompose_single(
    lattice: FiniteLattice,
    cl: LatticeClosure,
    a: Element,
    complement: Element | None = None,
    check_hypotheses: bool = True,
) -> Decomposition:
    """Deprecated spelling of Theorem 2 — use
    :func:`repro.analysis.decompose` with ``closure=cl``."""
    warnings.warn(
        "repro.lattice.decomposition.decompose_single is deprecated; use "
        "repro.analysis.decompose(element, closure=cl)",
        DeprecationWarning,
        stacklevel=2,
    )
    return _decompose_single(
        lattice, cl, a, complement=complement, check_hypotheses=check_hypotheses
    )


def all_decompositions(
    lattice: FiniteLattice,
    cl1: LatticeClosure,
    cl2: LatticeClosure,
    a: Element,
) -> list[tuple[Element, Element]]:
    """Every pair ``(s, l)`` with ``s`` cl1-safe, ``l`` cl2-live and
    ``a = s ∧ l`` — by exhaustive search.

    Used to *prove* negative results on small lattices: Lemma 6 says this
    list is empty for the Figure 1 instance.
    """
    _SEARCH_CANDIDATES.add(len(lattice.elements) ** 2)
    return [
        (s, live)
        for s in lattice.elements
        if cl1.is_safety(s)
        for live in lattice.elements
        if cl2.is_liveness(live) and lattice.meet(s, live) == a
    ]


# -- Theorem 5: the impossible fourth decomposition -----------------------------


def theorem5_applies(
    lattice: FiniteLattice, cl1: LatticeClosure, cl2: LatticeClosure, a: Element
) -> bool:
    """Theorem 5's precondition: ``cl2.a = 1`` and ``cl1.a < 1``."""
    return cl2(a) == lattice.top and lattice.lt(cl1(a), lattice.top)


def no_decomposition_witness(
    lattice: FiniteLattice, cl1: LatticeClosure, cl2: LatticeClosure, a: Element
) -> tuple[Element, Element] | None:
    """Search for ``(s, l)`` with ``cl2.s = s``, ``cl1.l = 1``, ``a = s ∧ l``.

    Theorem 5 asserts this returns ``None`` whenever
    :func:`theorem5_applies` — i.e. there is no decomposition of ``a`` into
    a *cl2-safety* and *cl1-liveness* element (safety taken with the larger
    closure, liveness with the smaller: the "fourth" combination).
    """
    _SEARCH_CANDIDATES.add(len(lattice.elements) ** 2)
    for s in lattice.elements:
        if cl2(s) != s:
            continue
        for live in lattice.elements:
            if cl1(live) != lattice.top:
                continue
            if lattice.meet(s, live) == a:
                return (s, live)
    return None


# -- Theorems 6 and 7: extremality ------------------------------------------------


def check_strongest_safety(
    lattice: FiniteLattice,
    cl1: LatticeClosure,
    cl2: LatticeClosure,
    a: Element,
) -> bool:
    """Theorem 6: for every factorization ``a = s ∧ z`` where ``s`` is a
    cl1- or cl2-safety element, ``cl1.a <= s``.

    So ``cl1.a`` is the *strongest* safety element usable in any
    decomposition of ``a`` — the machine-closure observation.  Verified by
    exhaustive search over all factorizations.
    """
    if not cl2.dominates(cl1):
        raise DecompositionError("hypothesis cl1 <= cl2 (pointwise) fails")
    target = cl1(a)
    for s in lattice.elements:
        if not (cl1.is_safety(s) or cl2(s) == s):
            continue
        for z in lattice.elements:
            if lattice.meet(s, z) == a and not lattice.leq(target, s):
                return False
    return True


def check_weakest_liveness(
    lattice: FiniteLattice,
    cl1: LatticeClosure,
    cl2: LatticeClosure,
    a: Element,
    require_distributive: bool = True,
) -> bool:
    """Theorem 7: in a *distributive* lattice, for every factorization
    ``a = s ∧ z`` with ``s`` a safety element and every
    ``b ∈ cmp(cl1.a)``, we have ``z <= a ∨ b``.

    So ``a ∨ b`` is the *weakest* element usable as the second conjunct.
    With ``require_distributive=False`` the check is still run (it can and
    does fail on Figure 2's M3 — that is the point of the figure).
    """
    if not cl2.dominates(cl1):
        raise DecompositionError("hypothesis cl1 <= cl2 (pointwise) fails")
    if require_distributive and not is_distributive(lattice):
        raise DecompositionError("lattice is not distributive")
    complements = lattice.complements(cl1(a))
    for s in lattice.elements:
        if not (cl1.is_safety(s) or cl2(s) == s):
            continue
        for z in lattice.elements:
            if lattice.meet(s, z) != a:
                continue
            for b in complements:
                if not lattice.leq(z, lattice.join(a, b)):
                    return False
    return True


# -- machine closure (Abadi–Lamport, discussed after Theorem 6) ---------------------


def is_machine_closed(
    lattice: FiniteLattice, cl: LatticeClosure, safety: Element, other: Element
) -> bool:
    """The pair ``(safety, other)`` is machine closed when
    ``cl(safety ∧ other) = safety`` — the liveness conjunct constrains no
    safety behaviour beyond what ``safety`` already specifies."""
    return cl(lattice.meet(safety, other)) == safety


def canonical_decomposition_is_machine_closed(
    lattice: FiniteLattice, cl: LatticeClosure, a: Element
) -> bool:
    """The paper's remark after Theorem 6: the canonical pair
    ``(cl.a, a ∨ b)`` is machine closed."""
    d = _decompose_single(lattice, cl, a, check_hypotheses=False)
    return is_machine_closed(lattice, cl, d.safety, d.liveness)
