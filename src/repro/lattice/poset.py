"""Finite partially ordered sets.

A :class:`FinitePoset` is the combinatorial substrate underneath the
lattice engine (:mod:`repro.lattice.lattice`).  Elements may be any
hashable Python objects; the order is stored explicitly as a reflexive,
transitive, antisymmetric relation, so every query (``leq``, covers,
bounds) is a dictionary lookup.

The paper's Figures 1 and 2 are Hasse diagrams; :meth:`FinitePoset.from_covers`
builds a poset directly from such a diagram and
:meth:`FinitePoset.hasse_edges` recovers it.
"""

from __future__ import annotations

from collections.abc import Hashable, Iterable, Mapping
from typing import Any

Element = Hashable


class PosetError(ValueError):
    """Raised when input data does not describe a valid partial order."""


class FinitePoset:
    """An explicit finite partial order.

    Parameters
    ----------
    elements:
        The carrier set.  Order of iteration is preserved and used as the
        canonical element ordering (useful for deterministic output).
    leq_pairs:
        Pairs ``(x, y)`` meaning ``x <= y``.  The reflexive-transitive
        closure is taken automatically; antisymmetry is verified.
    """

    __slots__ = ("_elements", "_index", "_down", "_up")

    def __init__(self, elements: Iterable[Element], leq_pairs: Iterable[tuple[Element, Element]]):
        raw = list(elements)
        self._elements: tuple[Element, ...] = tuple(raw)
        element_set = set(self._elements)
        if len(element_set) != len(self._elements):
            raise PosetError("duplicate elements")
        self._index: dict[Element, int] = {x: i for i, x in enumerate(self._elements)}

        # ``_down[x]`` is the principal downset of x (everything <= x).
        down: dict[Element, set[Element]] = {x: {x} for x in self._elements}
        for lo, hi in leq_pairs:
            if lo not in element_set or hi not in element_set:
                raise PosetError(f"pair ({lo!r}, {hi!r}) mentions unknown element")
            down[hi].add(lo)
        _transitively_close(down)

        for x in self._elements:
            for y in down[x]:
                if x != y and x in down[y]:
                    raise PosetError(f"antisymmetry violated between {x!r} and {y!r}")

        self._down = {x: frozenset(s) for x, s in down.items()}
        up: dict[Element, set[Element]] = {x: set() for x in self._elements}
        for x in self._elements:
            for y in self._down[x]:
                up[y].add(x)
        self._up = {x: frozenset(s) for x, s in up.items()}

    # -- constructors ---------------------------------------------------

    @classmethod
    def from_covers(cls, covers: Mapping[Element, Iterable[Element]]) -> "FinitePoset":
        """Build a poset from a Hasse diagram.

        ``covers[x]`` lists the elements *covering* ``x`` (immediately
        above it).  Elements appearing only as covers are added to the
        carrier automatically.
        """
        elements: list[Element] = []
        for lo, his in covers.items():
            if lo not in elements:
                elements.append(lo)
            for hi in his:
                if hi not in elements:
                    elements.append(hi)
        pairs = [(lo, hi) for lo, his in covers.items() for hi in his]
        return cls(elements, pairs)

    @classmethod
    def from_leq(cls, elements: Iterable[Element], leq) -> "FinitePoset":
        """Build a poset from a binary predicate ``leq(x, y)``."""
        elems = list(dict.fromkeys(elements))
        pairs = [(x, y) for x in elems for y in elems if leq(x, y)]
        return cls(elems, pairs)

    @classmethod
    def chain(cls, n: int) -> "FinitePoset":
        """The total order ``0 < 1 < ... < n-1``."""
        if n < 0:
            raise PosetError("chain length must be non-negative")
        return cls(range(n), [(i, i + 1) for i in range(n - 1)])

    @classmethod
    def antichain(cls, n: int) -> "FinitePoset":
        """``n`` pairwise-incomparable elements."""
        return cls(range(n), [])

    # -- basic queries ---------------------------------------------------

    @property
    def elements(self) -> tuple[Element, ...]:
        return self._elements

    def __len__(self) -> int:
        return len(self._elements)

    def __contains__(self, x: Any) -> bool:
        return x in self._index

    def __iter__(self):
        return iter(self._elements)

    def leq(self, x: Element, y: Element) -> bool:
        """``x <= y`` in this order."""
        self._check(x)
        self._check(y)
        return x in self._down[y]

    def lt(self, x: Element, y: Element) -> bool:
        """``x < y`` (strict)."""
        return x != y and self.leq(x, y)

    def comparable(self, x: Element, y: Element) -> bool:
        return self.leq(x, y) or self.leq(y, x)

    def downset(self, x: Element) -> frozenset:
        """All elements ``<= x``."""
        self._check(x)
        return self._down[x]

    def upset(self, x: Element) -> frozenset:
        """All elements ``>= x``."""
        self._check(x)
        return self._up[x]

    # -- covers and extrema ----------------------------------------------

    def covers(self, x: Element, y: Element) -> bool:
        """True when ``y`` covers ``x``: ``x < y`` with nothing in between."""
        if not self.lt(x, y):
            return False
        return not any(self.lt(x, z) and self.lt(z, y) for z in self._elements)

    def upper_covers(self, x: Element) -> list[Element]:
        return [y for y in self._elements if self.covers(x, y)]

    def lower_covers(self, x: Element) -> list[Element]:
        return [y for y in self._elements if self.covers(y, x)]

    def hasse_edges(self) -> list[tuple[Element, Element]]:
        """All cover pairs ``(lower, upper)`` — the Hasse diagram."""
        return [
            (x, y)
            for x in self._elements
            for y in self._elements
            if self.covers(x, y)
        ]

    def minimal_elements(self) -> list[Element]:
        return [x for x in self._elements if len(self._down[x]) == 1]

    def maximal_elements(self) -> list[Element]:
        return [x for x in self._elements if len(self._up[x]) == 1]

    def bottom(self) -> Element | None:
        """The least element, or ``None`` when there is none."""
        mins = self.minimal_elements()
        if len(mins) == 1 and len(self._up[mins[0]]) == len(self):
            return mins[0]
        return None

    def top(self) -> Element | None:
        """The greatest element, or ``None`` when there is none."""
        maxs = self.maximal_elements()
        if len(maxs) == 1 and len(self._down[maxs[0]]) == len(self):
            return maxs[0]
        return None

    # -- bounds ------------------------------------------------------------

    def upper_bounds(self, xs: Iterable[Element]) -> set[Element]:
        xs = list(xs)
        if not xs:
            return set(self._elements)
        bounds = set(self._up[xs[0]])
        for x in xs[1:]:
            bounds &= self._up[x]
        return bounds

    def lower_bounds(self, xs: Iterable[Element]) -> set[Element]:
        xs = list(xs)
        if not xs:
            return set(self._elements)
        bounds = set(self._down[xs[0]])
        for x in xs[1:]:
            bounds &= self._down[x]
        return bounds

    def least_upper_bound(self, xs: Iterable[Element]) -> Element | None:
        """The join of ``xs`` when it exists, else ``None``."""
        bounds = self.upper_bounds(xs)
        least = [b for b in bounds if all(b in self._down[c] for c in bounds)]
        return least[0] if least else None

    def greatest_lower_bound(self, xs: Iterable[Element]) -> Element | None:
        """The meet of ``xs`` when it exists, else ``None``."""
        bounds = self.lower_bounds(xs)
        greatest = [b for b in bounds if all(c in self._down[b] for c in bounds)]
        return greatest[0] if greatest else None

    # -- structural operations ---------------------------------------------

    def dual(self) -> "FinitePoset":
        """The order-reversed poset: ``x <= y`` in the dual iff ``y <= x`` here."""
        pairs = [(x, y) for x in self._elements for y in self._down[x]]
        return FinitePoset(self._elements, pairs)

    def restrict(self, subset: Iterable[Element]) -> "FinitePoset":
        """The induced sub-poset on ``subset``."""
        subset = [x for x in self._elements if x in set(subset)]
        pairs = [(x, y) for x in subset for y in subset if self.leq(x, y)]
        return FinitePoset(subset, pairs)

    def linear_extension(self) -> list[Element]:
        """A topological ordering: ``x <= y`` implies x appears first."""
        return sorted(self._elements, key=lambda x: len(self._down[x]))

    def is_chain(self) -> bool:
        return all(
            self.comparable(x, y) for x in self._elements for y in self._elements
        )

    def is_antichain(self) -> bool:
        return all(
            x == y or not self.comparable(x, y)
            for x in self._elements
            for y in self._elements
        )

    # -- dunder -------------------------------------------------------------

    def __eq__(self, other: Any) -> bool:
        if not isinstance(other, FinitePoset):
            return NotImplemented
        return set(self._elements) == set(other._elements) and all(
            self._down[x] == other._down[x] for x in self._elements
        )

    def __hash__(self):
        return hash((frozenset(self._elements), frozenset(self._down.items())))

    def __repr__(self) -> str:
        return f"FinitePoset({len(self)} elements, {len(self.hasse_edges())} cover edges)"

    def _check(self, x: Element) -> None:
        if x not in self._index:
            raise KeyError(f"{x!r} is not an element of this poset")


def _transitively_close(down: dict[Element, set[Element]]) -> None:
    """In-place reflexive-transitive closure of principal downsets."""
    changed = True
    while changed:
        changed = False
        for x, below in down.items():
            extra = set()
            for y in below:
                extra |= down[y] - below
            if extra:
                below |= extra
                changed = True
