"""Exhaustive property checkers for finite lattices.

The decomposition theorems of the paper are proved under explicit
hypotheses — the lattice must be *modular* and *complemented* (Theorems 2
and 3), or *distributive* (Theorem 7).  This module decides each
hypothesis for a :class:`~repro.lattice.lattice.FiniteLattice`, and also
produces *witnesses* when a hypothesis fails, mirroring the paper's use of
counterexamples (Figures 1 and 2) to show each hypothesis is necessary.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations, permutations

from .lattice import FiniteLattice
from .poset import Element


@dataclass(frozen=True)
class LawViolation:
    """A witness that an algebraic law fails."""

    law: str
    witness: tuple

    def __str__(self) -> str:
        return f"{self.law} fails at {self.witness}"


# -- the lattice axioms (Section 3 of the paper) -----------------------------


def check_lattice_laws(lat: FiniteLattice) -> list[LawViolation]:
    """Verify the associative, commutative, idempotency and absorption laws
    (and their duals) exhaustively.  Returns all violations found.

    For a :class:`FiniteLattice` built from a poset this always returns
    ``[]`` — the check exists to validate structures built from raw
    meet/join operations and to machine-check the paper's Section 3 claims.
    """
    violations: list[LawViolation] = []
    elems = lat.elements
    for a in elems:
        if lat.meet(a, a) != a:
            violations.append(LawViolation("idempotency (meet)", (a,)))
        if lat.join(a, a) != a:
            violations.append(LawViolation("idempotency (join)", (a,)))
    for a in elems:
        for b in elems:
            if lat.meet(a, b) != lat.meet(b, a):
                violations.append(LawViolation("commutativity (meet)", (a, b)))
            if lat.join(a, b) != lat.join(b, a):
                violations.append(LawViolation("commutativity (join)", (a, b)))
            if lat.meet(a, lat.join(a, b)) != a:
                violations.append(LawViolation("absorption (meet-join)", (a, b)))
            if lat.join(a, lat.meet(a, b)) != a:
                violations.append(LawViolation("absorption (join-meet)", (a, b)))
    for a in elems:
        for b in elems:
            for c in elems:
                if lat.meet(lat.meet(a, b), c) != lat.meet(a, lat.meet(b, c)):
                    violations.append(LawViolation("associativity (meet)", (a, b, c)))
                if lat.join(lat.join(a, b), c) != lat.join(a, lat.join(b, c)):
                    violations.append(LawViolation("associativity (join)", (a, b, c)))
    return violations


# -- modularity ----------------------------------------------------------------


def find_modularity_violation(lat: FiniteLattice) -> tuple | None:
    """A triple ``(a, b, c)`` with ``a <= c`` but
    ``a ∨ (b ∧ c) != (a ∨ b) ∧ c``, or ``None`` when modular.

    This is the exact inequality from the paper's definition:
    *a lattice is modular if a <= c implies a ∨ (b ∧ c) = (a ∨ b) ∧ c*.
    """
    elems = lat.elements
    for a in elems:
        for c in elems:
            if not lat.leq(a, c):
                continue
            for b in elems:
                left = lat.join(a, lat.meet(b, c))
                right = lat.meet(lat.join(a, b), c)
                if left != right:
                    return (a, b, c)
    return None


def is_modular(lat: FiniteLattice) -> bool:
    return find_modularity_violation(lat) is None


def find_pentagon(lat: FiniteLattice) -> tuple | None:
    """An N5 pentagon sublattice ``(0', a, b, c, 1')`` with ``a < b``,
    ``c`` incomparable to both, witnessing non-modularity (Dedekind's
    theorem: a lattice is modular iff it has no N5 sublattice).

    Returned as ``(bottom, a, b, c, top)`` of the pentagon, or ``None``.
    """
    elems = lat.elements
    for a, b in permutations(elems, 2):
        if not lat.lt(a, b):
            continue
        for c in elems:
            if lat.poset.comparable(a, c) or lat.poset.comparable(b, c):
                continue
            if lat.meet(a, c) == lat.meet(b, c) and lat.join(a, c) == lat.join(b, c):
                return (lat.meet(a, c), a, b, c, lat.join(a, c))
    return None


# -- distributivity ---------------------------------------------------------


def find_distributivity_violation(lat: FiniteLattice) -> tuple | None:
    """A triple ``(a, b, c)`` with ``a ∧ (b ∨ c) != (a ∧ b) ∨ (a ∧ c)``,
    or ``None`` when distributive."""
    elems = lat.elements
    for a in elems:
        for b in elems:
            for c in elems:
                left = lat.meet(a, lat.join(b, c))
                right = lat.join(lat.meet(a, b), lat.meet(a, c))
                if left != right:
                    return (a, b, c)
    return None


def is_distributive(lat: FiniteLattice) -> bool:
    return find_distributivity_violation(lat) is None


def dual_distributivity_holds(lat: FiniteLattice) -> bool:
    """``a ∨ (b ∧ c) = (a ∨ b) ∧ (a ∨ c)`` for all triples.

    The paper notes (before Theorem 7) that ∧-over-∨ distribution holds iff
    ∨-over-∧ does; this checker lets tests confirm that equivalence.
    """
    elems = lat.elements
    return all(
        lat.join(a, lat.meet(b, c)) == lat.meet(lat.join(a, b), lat.join(a, c))
        for a in elems
        for b in elems
        for c in elems
    )


def find_diamond(lat: FiniteLattice) -> tuple | None:
    """An M3 diamond sublattice: three elements with pairwise equal meets
    and pairwise equal joins, witnessing non-distributivity in a modular
    lattice (Birkhoff: distributive iff no N5 and no M3 sublattice).

    Returned as ``(bottom, x, y, z, top)`` of the diamond, or ``None``.
    """
    elems = lat.elements
    for x, y, z in combinations(elems, 3):
        m = lat.meet(x, y)
        if lat.meet(x, z) != m or lat.meet(y, z) != m:
            continue
        j = lat.join(x, y)
        if lat.join(x, z) != j or lat.join(y, z) != j:
            continue
        if m == j:
            continue
        # the five elements must be distinct for a genuine M3 copy
        if len({m, x, y, z, j}) == 5:
            return (m, x, y, z, j)
    return None


# -- complementation and Boolean-ness ----------------------------------------


def uncomplemented_elements(lat: FiniteLattice) -> list[Element]:
    """Elements with no complement at all."""
    return [x for x in lat.elements if not lat.complements(x)]


def is_complemented(lat: FiniteLattice) -> bool:
    """Every element has at least one complement (the paper's requirement
    for Theorems 2/3)."""
    return not uncomplemented_elements(lat)


def has_unique_complements(lat: FiniteLattice) -> bool:
    return all(len(lat.complements(x)) == 1 for x in lat.elements)


def is_modular_complemented(lat: FiniteLattice) -> bool:
    """The exact hypothesis of the paper's Theorems 2 and 3."""
    return is_modular(lat) and is_complemented(lat)


def is_boolean(lat: FiniteLattice) -> bool:
    """Distributive and complemented — a (finite) Boolean algebra.

    The paper observes that a Boolean algebra is a special case of a
    modular complemented lattice; :func:`is_boolean` implies
    :func:`is_modular_complemented` and tests assert that implication.
    """
    return is_distributive(lat) and is_complemented(lat)


def is_atomistic(lat: FiniteLattice) -> bool:
    """Every element is a join of atoms (true for finite Boolean algebras)."""
    atom_list = lat.atoms()
    for x in lat.elements:
        below = [a for a in atom_list if lat.leq(a, x)]
        if lat.join_many(below) != x:
            return False
    return True


@dataclass(frozen=True)
class LatticeProfile:
    """Summary of the hypotheses relevant to the paper's theorems."""

    size: int
    modular: bool
    distributive: bool
    complemented: bool
    boolean: bool
    unique_complements: bool

    @property
    def satisfies_theorem3_hypotheses(self) -> bool:
        return self.modular and self.complemented

    @property
    def satisfies_theorem7_hypotheses(self) -> bool:
        return self.distributive and self.complemented


def profile(lat: FiniteLattice) -> LatticeProfile:
    """Classify ``lat`` against every hypothesis the paper uses."""
    distributive = is_distributive(lat)
    return LatticeProfile(
        size=len(lat),
        modular=distributive or is_modular(lat),
        distributive=distributive,
        complemented=is_complemented(lat),
        boolean=distributive and is_complemented(lat),
        unique_complements=has_unique_complements(lat),
    )
