"""Birkhoff duality and the Dedekind–MacNeille completion.

Two classical constructions that round out the lattice substrate:

* :func:`birkhoff_representation` — every finite distributive lattice is
  (isomorphic to) the lattice of downsets of its join-irreducibles;
  :func:`downset_lattice` builds the latter from any poset.  Used by the
  tests as an independent oracle for distributivity.
* :func:`dedekind_macneille` — the smallest complete lattice containing
  a poset, built from the Galois connection between upper and lower
  bounds.  Its closed sets are exactly a closure operator's fixpoints,
  tying the paper's closure machinery back to classical order theory.
"""

from __future__ import annotations

from .lattice import FiniteLattice
from .poset import FinitePoset


def downset_lattice(poset: FinitePoset) -> FiniteLattice:
    """The lattice of downward-closed subsets of ``poset``, ordered by
    inclusion (always distributive)."""
    downsets: set[frozenset] = set()
    frontier = [frozenset()]
    downsets.add(frozenset())
    while frontier:
        current = frontier.pop()
        for x in poset.elements:
            if x in current:
                continue
            if all(y in current for y in poset.downset(x) if y != x):
                bigger = current | {x}
                if bigger not in downsets:
                    downsets.add(bigger)
                    frontier.append(bigger)
    return FiniteLattice.from_leq(sorted(downsets, key=sorted), frozenset.issubset)


def birkhoff_representation(lattice: FiniteLattice):
    """The Birkhoff dual of a finite *distributive* lattice: the map
    ``x ↦ {join-irreducibles below x}`` onto the downset lattice of the
    join-irreducible sub-poset.

    Returns ``(irreducible_poset, iso)`` where ``iso`` is the dict
    realizing the isomorphism.  Raises ``ValueError`` when the lattice
    is not distributive (the representation would not be injective or
    onto).
    """
    from .properties import is_distributive

    if not is_distributive(lattice):
        raise ValueError("Birkhoff representation requires distributivity")
    irreducibles = lattice.join_irreducibles()
    sub = lattice.poset.restrict(irreducibles)
    iso = {
        x: frozenset(j for j in irreducibles if lattice.leq(j, x))
        for x in lattice.elements
    }
    return sub, iso


def dedekind_macneille(poset: FinitePoset) -> FiniteLattice:
    """The Dedekind–MacNeille completion: cuts ``A`` with
    ``A = lower(upper(A))``, ordered by inclusion.

    The map ``A ↦ lower(upper(A))`` is precisely the closure operator of
    the bounds Galois connection; the completion's elements are its
    closed sets.
    """
    # Every cut is an intersection of principal downsets (one per upper
    # bound), and conversely such intersections are cuts; the top cut is
    # the whole carrier (the empty intersection).
    if len(poset) == 0:
        return FiniteLattice.from_leq([frozenset()], frozenset.issubset)
    cuts: set[frozenset] = {frozenset(poset.elements)}
    cuts |= {poset.downset(x) for x in poset.elements}
    changed = True
    while changed:
        changed = False
        current = list(cuts)
        for a in current:
            for b in current:
                meet_cut = a & b
                if meet_cut not in cuts:
                    cuts.add(meet_cut)
                    changed = True
    return FiniteLattice.from_leq(sorted(cuts, key=sorted), frozenset.issubset)
