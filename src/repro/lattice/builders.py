"""Standard lattice constructions, including the paper's Figures 1 and 2.

Every family the reproduction benchmarks over is built here: Boolean
algebras (powersets), chains, the two minimal "forbidden" lattices N5 and
M3, divisor and partition lattices, and the exact labeled counterexample
lattices of the paper's figures together with the closure operators the
captions describe.
"""

from __future__ import annotations

from collections.abc import Hashable, Iterable
from dataclasses import dataclass
from itertools import combinations
from math import gcd

from .closure import LatticeClosure
from .lattice import FiniteLattice, LatticeError
from .poset import FinitePoset


def chain(n: int) -> FiniteLattice:
    """The ``n``-element chain ``0 < 1 < ... < n-1`` (distributive; only
    complemented when ``n <= 2``)."""
    if n < 1:
        raise LatticeError("a chain lattice needs at least one element")
    return FiniteLattice(FinitePoset.chain(n))


def boolean_lattice(n_atoms: int) -> FiniteLattice:
    """The Boolean algebra ``2^n``: elements are frozensets of ``range(n)``.

    This is the finite stand-in for the paper's ``P(Σ^ω)`` instance — a
    Boolean algebra, hence modular and complemented, so Theorems 2/3 apply.
    """
    return powerset_lattice(range(n_atoms))


def powerset_lattice(universe: Iterable[Hashable]) -> FiniteLattice:
    """The powerset of ``universe`` ordered by inclusion."""
    ground = list(dict.fromkeys(universe))
    elements = []
    for r in range(len(ground) + 1):
        elements.extend(frozenset(c) for c in combinations(ground, r))
    return FiniteLattice.from_leq(elements, frozenset.issubset)


def n5() -> FiniteLattice:
    """The pentagon N5 — the minimal non-modular lattice.

    Elements are ``'0', 'a', 'b', 'c', '1'`` with ``a < b`` and ``c``
    incomparable to both, matching the paper's Figure 1 labeling.
    """
    return FiniteLattice.from_covers(
        {"0": ["a", "c"], "a": ["b"], "b": ["1"], "c": ["1"]}
    )


def m3() -> FiniteLattice:
    """The diamond M3 — the minimal modular non-distributive lattice.

    Elements are ``'a', 's', 'b', 'z', '1'`` with bottom ``a`` and three
    pairwise-incomparable coatoms, matching the paper's Figure 2 labeling
    (``s = cl.a``)."""
    return FiniteLattice.from_covers(
        {"a": ["s", "b", "z"], "s": ["1"], "b": ["1"], "z": ["1"]}
    )


def divisor_lattice(n: int) -> FiniteLattice:
    """Divisors of ``n`` under divisibility (meet = gcd, join = lcm).

    Distributive; complemented exactly when ``n`` is squarefree — a handy
    source of distributive-but-not-complemented examples.
    """
    if n < 1:
        raise LatticeError("n must be positive")
    divisors = [d for d in range(1, n + 1) if n % d == 0]
    return FiniteLattice.from_meet_join(
        divisors,
        meet=gcd,
        join=lambda a, b: a * b // gcd(a, b),
    )


def partition_lattice(n: int) -> FiniteLattice:
    """Partitions of ``{0..n-1}`` ordered by refinement.

    For ``n >= 3`` this is complemented but *not* modular for ``n >= 4``
    — used to probe where Theorem 2's hypotheses break.  Elements are
    frozensets of frozenset blocks.  Exponential; keep ``n <= 5``.
    """
    if n < 1:
        raise LatticeError("n must be positive")
    partitions = [frozenset(frozenset(b) for b in p) for p in _set_partitions(list(range(n)))]

    def refines(p, q) -> bool:
        return all(any(block <= qblock for qblock in q) for block in p)

    return FiniteLattice.from_leq(partitions, refines)


def _set_partitions(items: list):
    if not items:
        yield []
        return
    first, rest = items[0], items[1:]
    for partial in _set_partitions(rest):
        for i, block in enumerate(partial):
            yield partial[:i] + [[first] + block] + partial[i + 1 :]
        yield [[first]] + partial


def diamond_mn(n_coatoms: int) -> FiniteLattice:
    """``M_n``: bottom, ``n`` incomparable middle elements, top.

    Modular and complemented for ``n >= 2`` (every middle element has
    ``n - 1`` complements) but non-distributive for ``n >= 3`` —
    the workhorse family for Theorem-3-beyond-Boolean benchmarks.
    """
    if n_coatoms < 0:
        raise LatticeError("n_coatoms must be non-negative")
    covers: dict = {"0": [f"m{i}" for i in range(n_coatoms)] or ["1"]}
    for i in range(n_coatoms):
        covers[f"m{i}"] = ["1"]
    return FiniteLattice.from_covers(covers)


def subspace_lattice_gf2(dim: int) -> FiniteLattice:
    """The lattice of subspaces of the vector space GF(2)^dim.

    The classical example of a *modular, complemented, non-distributive*
    lattice — exactly the generality gap between Theorem 3 and the
    Boolean-algebra frameworks (Gumm, Alpern–Schneider) the paper improves
    on.  Subspaces are frozensets of vectors (tuples over {0,1}).
    Superexponential; keep ``dim <= 3``.
    """
    if dim < 0:
        raise LatticeError("dim must be non-negative")
    vectors = [tuple(v) for v in _all_vectors(dim)]
    subspaces = sorted(_all_subspaces(vectors, dim), key=lambda s: (len(s), sorted(s)))

    def meet(a, b):
        return frozenset(a & b)

    def join(a, b):
        return _span(a | b)

    return FiniteLattice.from_meet_join(subspaces, meet, join)


def _all_vectors(dim: int):
    if dim == 0:
        yield ()
        return
    for v in _all_vectors(dim - 1):
        yield v + (0,)
        yield v + (1,)


def _vadd(u, v):
    return tuple((a + b) % 2 for a, b in zip(u, v))


def _span(vectors) -> frozenset:
    zero = tuple([0] * (len(next(iter(vectors))) if vectors else 0))
    span = {zero}
    changed = True
    while changed:
        changed = False
        for u in list(span):
            for v in vectors:
                w = _vadd(u, v)
                if w not in span:
                    span.add(w)
                    changed = True
    return frozenset(span)


def _all_subspaces(vectors, dim) -> set:
    zero = tuple([0] * dim)
    subspaces = {frozenset({zero})}
    frontier = {frozenset({zero})}
    while frontier:
        nxt = set()
        for s in frontier:
            for v in vectors:
                if v in s:
                    continue
                bigger = _span(set(s) | {v})
                if bigger not in subspaces:
                    subspaces.add(bigger)
                    nxt.add(bigger)
        frontier = nxt
    return subspaces


# -- the paper's figures, with their closures ---------------------------------


@dataclass(frozen=True)
class FigureInstance:
    """A counterexample lattice together with the closure from its caption
    and the distinguished elements the caption talks about."""

    lattice: FiniteLattice
    closure: LatticeClosure
    notes: dict


def figure1() -> FigureInstance:
    """Figure 1: the pentagon N5 with ``cl.a = b``, ``cl`` the identity
    otherwise.

    Per Lemma 6, the element ``a`` cannot be written as the meet of a
    cl-safety element and a cl-liveness element — modularity is a real
    hypothesis of Theorem 2.
    """
    lat = n5()
    mapping = {x: x for x in lat.elements}
    mapping["a"] = "b"
    closure = LatticeClosure(lat, mapping, name="fig1")
    return FigureInstance(
        lattice=lat,
        closure=closure,
        notes={"element": "a", "closure_of_element": "b"},
    )


def figure2() -> FigureInstance:
    """Figure 2: the diamond M3 with a closure mapping the bottom ``a``
    to the coatom ``s``.

    The caption's facts hold here: ``s`` is a safety element,
    ``a = s ∧ z``, ``b ∈ cmp(cl.a)``, yet ``z <= a ∨ b`` fails — so
    Theorem 7's distributivity hypothesis is necessary.  The closed set is
    ``{s, 1}`` (mapping ``a`` to ``s`` forces ``cl.b = cl.z = 1`` by
    monotonicity).
    """
    lat = m3()
    closure = LatticeClosure.from_closed_elements(lat, {"s"}, name="fig2")
    return FigureInstance(
        lattice=lat,
        closure=closure,
        notes={"element": "a", "safety": "s", "complement": "b", "other": "z"},
    )
