"""Lattice morphisms and Galois connections.

Gumm derived the Alpern–Schneider theorem from a ⋁-preserving map between
⋁-complete Boolean algebras; the paper replaces that machinery with bare
lattice closures.  This module implements both sides of the comparison:

* :class:`LatticeHomomorphism` — structure-preserving maps, with checks
  for which operations they preserve;
* :class:`GaloisConnection` — an adjoint pair ``f ⊣ g``; its round-trip
  ``g ∘ f`` is always a lattice closure (:meth:`GaloisConnection.closure`),
  which is how many closures — including ``lcl`` via the
  prefix/extension adjunction — arise in practice.
"""

from __future__ import annotations

from collections.abc import Callable, Mapping

from .closure import LatticeClosure
from .lattice import FiniteLattice, LatticeError
from .poset import Element


class MorphismError(LatticeError):
    """Raised when a map fails the structure-preservation it claims."""


class LatticeHomomorphism:
    """A map between finite lattices, with preservation checks.

    By default only monotonicity is required at construction; use
    :meth:`preserves_meets` / :meth:`preserves_joins` /
    :meth:`is_homomorphism` to interrogate stronger properties, or pass
    ``require='homomorphism'`` to enforce them eagerly.
    """

    __slots__ = ("source", "target", "_table")

    def __init__(
        self,
        source: FiniteLattice,
        target: FiniteLattice,
        mapping: Mapping[Element, Element] | Callable[[Element], Element],
        require: str = "monotone",
    ):
        self.source = source
        self.target = target
        if callable(mapping):
            table = {x: mapping(x) for x in source.elements}
        else:
            table = dict(mapping)
        for x in source.elements:
            if x not in table:
                raise MorphismError(f"mapping not total; missing {x!r}")
            if table[x] not in target:
                raise MorphismError(f"image {table[x]!r} not in target lattice")
        self._table = table
        if not self.is_monotone():
            raise MorphismError("map is not monotone")
        if require == "homomorphism" and not self.is_homomorphism():
            raise MorphismError("map is not a lattice homomorphism")
        elif require not in ("monotone", "homomorphism"):
            raise ValueError(f"unknown requirement {require!r}")

    def __call__(self, x: Element) -> Element:
        return self._table[x]

    def is_monotone(self) -> bool:
        src, tgt = self.source, self.target
        return all(
            tgt.leq(self._table[x], self._table[y])
            for x in src.elements
            for y in src.elements
            if src.leq(x, y)
        )

    def preserves_meets(self) -> bool:
        src, tgt = self.source, self.target
        return all(
            self._table[src.meet(x, y)] == tgt.meet(self._table[x], self._table[y])
            for x in src.elements
            for y in src.elements
        )

    def preserves_joins(self) -> bool:
        src, tgt = self.source, self.target
        return all(
            self._table[src.join(x, y)] == tgt.join(self._table[x], self._table[y])
            for x in src.elements
            for y in src.elements
        )

    def preserves_bounds(self) -> bool:
        return (
            self._table[self.source.bottom] == self.target.bottom
            and self._table[self.source.top] == self.target.top
        )

    def is_homomorphism(self) -> bool:
        return self.preserves_meets() and self.preserves_joins()

    def is_embedding(self) -> bool:
        """Injective homomorphism — exhibits the source as a sublattice."""
        return self.is_homomorphism() and len(set(self._table.values())) == len(
            self._table
        )

    def image(self) -> list[Element]:
        seen = dict.fromkeys(self._table[x] for x in self.source.elements)
        return list(seen)

    def __repr__(self) -> str:
        return f"LatticeHomomorphism({len(self.source)} -> {len(self.target)})"


class GaloisConnection:
    """A (monotone) Galois connection ``f : L -> M``, ``g : M -> L`` with
    ``f.x <= y  iff  x <= g.y``.

    The composite ``g ∘ f`` is a lattice closure on ``L`` — this is the
    structural reason closures are everywhere, and
    :meth:`closure` returns it as a validated
    :class:`~repro.lattice.closure.LatticeClosure`.
    """

    __slots__ = ("lower", "upper")

    def __init__(self, lower: LatticeHomomorphism, upper: LatticeHomomorphism):
        if lower.source is not upper.target or lower.target is not upper.source:
            if lower.source != upper.target or lower.target != upper.source:
                raise MorphismError("maps do not form a pair L -> M, M -> L")
        self.lower = lower  # f : L -> M  (left adjoint)
        self.upper = upper  # g : M -> L  (right adjoint)
        if not self._adjoint():
            raise MorphismError("adjunction law f.x <= y iff x <= g.y fails")

    def _adjoint(self) -> bool:
        source = self.lower.source
        target = self.lower.target
        return all(
            target.leq(self.lower(x), y) == source.leq(x, self.upper(y))
            for x in source.elements
            for y in target.elements
        )

    def closure(self, name: str = "g∘f") -> LatticeClosure:
        """The induced lattice closure ``g ∘ f`` on the source lattice."""
        source = self.lower.source
        return LatticeClosure(
            source, {x: self.upper(self.lower(x)) for x in source.elements}, name=name
        )

    def kernel(self, name: str = "f∘g") -> dict:
        """The interior (kernel) operator ``f ∘ g`` on the target lattice,
        returned as a raw table (it is a *co*closure, not a closure)."""
        target = self.lower.target
        return {y: self.lower(self.upper(y)) for y in target.elements}

    @classmethod
    def from_lower(
        cls, source: FiniteLattice, target: FiniteLattice, lower_map
    ) -> "GaloisConnection":
        """Complete a join-preserving ``f`` to a connection by computing its
        (unique) right adjoint ``g.y = ∨ {x : f.x <= y}``.

        ``f`` must preserve all finite joins including the empty one
        (``f.0 = 0``); otherwise no right adjoint exists.
        """
        f = LatticeHomomorphism(source, target, lower_map)
        if not f.preserves_joins() or f(source.bottom) != target.bottom:
            raise MorphismError("a left adjoint must preserve joins (including 0)")

        def g(y):
            return source.join_many(x for x in source.elements if target.leq(f(x), y))

        return cls(f, LatticeHomomorphism(target, source, g))


def gumm_framework_applies(lat: FiniteLattice) -> bool:
    """Whether Gumm's hypotheses hold for this carrier.

    Gumm requires a ⋁-complete Boolean algebra.  Every *finite* lattice is
    ⋁-complete, so on finite carriers the test reduces to Boolean-ness —
    the interesting failures (the Büchi/Rabin language lattices, which are
    Boolean but not ⋁-complete) are infinite and are exhibited in
    :mod:`repro.buchi` instead (see ``benchmarks`` ABL2).
    """
    from .properties import is_boolean

    return is_boolean(lat)
