"""Lattice-closure operators (Section 3 of the paper).

A *lattice closure* on ``L`` is a function ``cl : L -> L`` with

1. ``a <= cl.a``                 (extensive)
2. ``cl.a = cl(cl.a)``           (idempotent)
3. ``a <= b  implies  cl.a <= cl.b``   (monotone)

— strictly weaker than a topological closure, which in addition must
preserve binary joins and fix 0.  The paper's central observation is that
these three axioms alone suffice for the safety/liveness decomposition;
:class:`LatticeClosure` validates exactly them and nothing more, and
records whether the stronger topological axioms *happen* to hold so the
ablation benchmarks can compare the two regimes.
"""

from __future__ import annotations

import time
from collections.abc import Callable, Iterable, Mapping

from repro.obs.metrics import REGISTRY

from .lattice import FiniteLattice, LatticeError
from .poset import Element

#: Observability for closure construction: how many meet-closure
#: fixpoint rounds :meth:`LatticeClosure.from_closed_elements` runs
#: (each round rescans the closed set), and how many closures are built.
_FIXPOINT_ITERATIONS = REGISTRY.counter(
    "repro_lattice_closure_fixpoint_iterations_total",
    "meet-closure fixpoint rounds in from_closed_elements",
)
_CLOSURES_BUILT = REGISTRY.counter(
    "repro_lattice_closures_built_total", "LatticeClosure instances validated"
)
_CLOSURE_BUILD_SECONDS = REGISTRY.histogram(
    "repro_lattice_closure_build_seconds",
    "construction + axiom-validation wall time per LatticeClosure",
)


class ClosureError(ValueError):
    """Raised when a map violates the lattice-closure axioms."""


class LatticeClosure:
    """A validated lattice-closure operator on a finite lattice.

    Parameters
    ----------
    lattice:
        The carrier lattice.
    mapping:
        Either a dict ``{x: cl(x)}`` or a callable.  Totality and the
        three closure axioms are verified eagerly (the table is small).
    name:
        Optional label used in reports (e.g. ``"lcl"``, ``"ncl"``).
    """

    __slots__ = ("_lattice", "_table", "name")

    def __init__(
        self,
        lattice: FiniteLattice,
        mapping: Mapping[Element, Element] | Callable[[Element], Element],
        name: str = "cl",
    ):
        started = time.perf_counter()
        self._lattice = lattice
        if callable(mapping):
            table = {x: mapping(x) for x in lattice.elements}
        else:
            table = dict(mapping)
        missing = [x for x in lattice.elements if x not in table]
        if missing:
            raise ClosureError(f"mapping is not total; missing {missing!r}")
        for x, y in table.items():
            if x not in lattice or y not in lattice:
                raise ClosureError(f"mapping mentions non-element {x!r} -> {y!r}")
        self._table = table
        self.name = name
        self._validate()
        _CLOSURES_BUILT.add()
        _CLOSURE_BUILD_SECONDS.record(time.perf_counter() - started)

    def _validate(self) -> None:
        lat = self._lattice
        for x in lat.elements:
            cx = self._table[x]
            if not lat.leq(x, cx):
                raise ClosureError(f"not extensive: {x!r} </= cl({x!r}) = {cx!r}")
            if self._table[cx] != cx:
                raise ClosureError(
                    f"not idempotent: cl({x!r}) = {cx!r} but cl({cx!r}) = "
                    f"{self._table[cx]!r}"
                )
        for x in lat.elements:
            for y in lat.elements:
                if lat.leq(x, y) and not lat.leq(self._table[x], self._table[y]):
                    raise ClosureError(
                        f"not monotone: {x!r} <= {y!r} but "
                        f"cl({x!r}) = {self._table[x]!r} </= cl({y!r}) = {self._table[y]!r}"
                    )

    # -- constructors --------------------------------------------------------

    @classmethod
    def identity(cls, lattice: FiniteLattice) -> "LatticeClosure":
        """The trivial closure: every element is closed (safety)."""
        return cls(lattice, {x: x for x in lattice.elements}, name="id")

    @classmethod
    def constant_top(cls, lattice: FiniteLattice) -> "LatticeClosure":
        """The coarsest closure: everything is dense (liveness)."""
        return cls(lattice, {x: lattice.top for x in lattice.elements}, name="top")

    @classmethod
    def from_closed_elements(
        cls,
        lattice: FiniteLattice,
        closed: Iterable[Element],
        name: str = "cl",
    ) -> "LatticeClosure":
        """The closure whose image is the meet-closure of ``closed`` ∪ {1}:
        ``cl.x`` is the least closed element above ``x``.

        This is the canonical way closures arise (closed sets of a topology,
        safety properties of a framework) and always yields a valid lattice
        closure.
        """
        closed_set = set(closed) | {lattice.top}
        for c in closed_set:
            if c not in lattice:
                raise ClosureError(f"{c!r} not in lattice")
        # Close under finite meets so least-closed-above is well defined.
        changed = True
        iterations = 0
        while changed:
            changed = False
            iterations += 1
            for a in list(closed_set):
                for b in list(closed_set):
                    m = lattice.meet(a, b)
                    if m not in closed_set:
                        closed_set.add(m)
                        changed = True
        _FIXPOINT_ITERATIONS.add(iterations)
        table = {}
        for x in lattice.elements:
            above = [c for c in closed_set if lattice.leq(x, c)]
            table[x] = lattice.meet_many(above)
        return cls(lattice, table, name=name)

    # -- application -----------------------------------------------------------

    @property
    def lattice(self) -> FiniteLattice:
        return self._lattice

    def __call__(self, x: Element) -> Element:
        try:
            return self._table[x]
        except KeyError:
            raise KeyError(f"{x!r} not in lattice") from None

    def closed_elements(self) -> list[Element]:
        """The image of ``cl`` = the fixpoints = the safety elements."""
        return [x for x in self._lattice.elements if self._table[x] == x]

    def is_safety(self, x: Element) -> bool:
        """``x`` is a cl-safety element: ``x = cl.x``."""
        return self._table[x] == x

    def is_liveness(self, x: Element) -> bool:
        """``x`` is a cl-liveness element: ``cl.x = 1``."""
        return self._table[x] == self._lattice.top

    def dense_elements(self) -> list[Element]:
        """All cl-liveness elements."""
        return [x for x in self._lattice.elements if self.is_liveness(x)]

    # -- derived facts from the paper -------------------------------------------

    def lemma3_holds_at(self, a: Element, b: Element) -> bool:
        """Lemma 3: ``cl(a ∧ b) <= cl.a ∧ cl.b`` (always true; exposed so
        property tests can machine-check the proof's conclusion)."""
        lat = self._lattice
        return lat.leq(self(lat.meet(a, b)), lat.meet(self(a), self(b)))

    def preserves_joins(self) -> bool:
        """Whether ``cl(a ∨ b) = cl.a ∨ cl.b`` — the *extra* axiom a
        topological closure would demand.  The paper's point: we never need
        this, and ``ncl`` genuinely violates it."""
        lat = self._lattice
        return all(
            self(lat.join(a, b)) == lat.join(self(a), self(b))
            for a in lat.elements
            for b in lat.elements
        )

    def join_preservation_violation(self) -> tuple | None:
        """A pair witnessing ``cl(a ∨ b) != cl.a ∨ cl.b``, or ``None``."""
        lat = self._lattice
        for a in lat.elements:
            for b in lat.elements:
                if self(lat.join(a, b)) != lat.join(self(a), self(b)):
                    return (a, b)
        return None

    def fixes_bottom(self) -> bool:
        """Whether ``cl.0 = 0`` (the other topological axiom we drop)."""
        return self._table[self._lattice.bottom] == self._lattice.bottom

    def is_topological(self) -> bool:
        """All four Kuratowski-style axioms from Section 2.2."""
        return self.fixes_bottom() and self.preserves_joins()

    def dominates(self, other: "LatticeClosure") -> bool:
        """``other.x <= self.x`` pointwise — the comparability hypothesis
        ``cl1 <= cl2`` of Theorem 3 (self plays cl2)."""
        lat = self._lattice
        if other._lattice is not lat and other._lattice != lat:
            raise LatticeError("closures live on different lattices")
        return all(lat.leq(other(x), self(x)) for x in lat.elements)

    def __repr__(self) -> str:
        return (
            f"LatticeClosure({self.name!r}, {len(self.closed_elements())} closed "
            f"of {len(self._lattice)})"
        )


def all_closures(lattice: FiniteLattice) -> list[LatticeClosure]:
    """Enumerate *every* lattice closure on a (small) lattice.

    Closures on a finite lattice are in bijection with meet-closed subsets
    containing 1 (their sets of closed elements), which is what we
    enumerate.  Exponential in ``len(lattice)`` — intended for the tiny
    counterexample lattices of Figures 1 and 2 and for exhaustive testing.
    """
    from itertools import combinations

    elems = [x for x in lattice.elements if x != lattice.top]
    closures = []
    seen_images: set[frozenset] = set()
    for r in range(len(elems) + 1):
        for subset in combinations(elems, r):
            candidate = set(subset) | {lattice.top}
            if not _meet_closed(lattice, candidate):
                continue
            key = frozenset(candidate)
            if key in seen_images:
                continue
            seen_images.add(key)
            closures.append(LatticeClosure.from_closed_elements(lattice, candidate))
    return closures


def _meet_closed(lattice: FiniteLattice, subset: set) -> bool:
    return all(lattice.meet(a, b) in subset for a in subset for b in subset)
