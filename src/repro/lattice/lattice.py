"""Finite lattices with explicit meet/join tables.

The paper's framework is stated over lattices ``(L, ∧, ∨, 0, 1)``; this
module provides the concrete finite realization used throughout the
reproduction: meets and joins are precomputed into tables so the theorem
checkers in :mod:`repro.lattice.decomposition` run at dictionary-lookup
speed, and every algebraic law the paper appeals to (associativity,
commutativity, idempotency, absorption — Section 3) can be verified
exhaustively by :mod:`repro.lattice.properties`.
"""

from __future__ import annotations

from collections.abc import Callable, Iterable
from typing import Any

from .poset import Element, FinitePoset, PosetError


class LatticeError(ValueError):
    """Raised when a structure is not (or cannot be made into) a lattice."""


class FiniteLattice:
    """A finite lattice, constructed from a poset in which all meets/joins exist.

    The lattice is bounded automatically (every finite lattice has a 0 and
    a 1).  Elements are arbitrary hashables carried over from the poset.
    """

    __slots__ = ("_poset", "_meet", "_join", "_bottom", "_top")

    def __init__(self, poset: FinitePoset):
        self._poset = poset
        if len(poset) == 0:
            raise LatticeError("a lattice must be non-empty")
        self._meet: dict[tuple[Element, Element], Element] = {}
        self._join: dict[tuple[Element, Element], Element] = {}
        elems = poset.elements
        for x in elems:
            for y in elems:
                m = poset.greatest_lower_bound((x, y))
                if m is None:
                    raise LatticeError(f"{x!r} and {y!r} have no meet")
                j = poset.least_upper_bound((x, y))
                if j is None:
                    raise LatticeError(f"{x!r} and {y!r} have no join")
                self._meet[x, y] = m
                self._join[x, y] = j
        bottom = poset.bottom()
        top = poset.top()
        if bottom is None or top is None:
            # Cannot happen when all pairwise meets/joins exist in a finite
            # poset, but guard against pathological posets anyway.
            raise LatticeError("finite lattice must be bounded")
        self._bottom = bottom
        self._top = top

    # -- constructors -------------------------------------------------------

    @classmethod
    def from_covers(cls, covers) -> "FiniteLattice":
        """Build a lattice from a Hasse diagram (see :meth:`FinitePoset.from_covers`)."""
        return cls(FinitePoset.from_covers(covers))

    @classmethod
    def from_leq(cls, elements: Iterable[Element], leq) -> "FiniteLattice":
        return cls(FinitePoset.from_leq(elements, leq))

    @classmethod
    def from_meet_join(
        cls,
        elements: Iterable[Element],
        meet: Callable[[Element, Element], Element],
        join: Callable[[Element, Element], Element],
    ) -> "FiniteLattice":
        """Build a lattice from algebraic meet/join operations.

        The induced order is ``x <= y  iff  meet(x, y) == x`` (the paper's
        algebraic viewpoint); consistency with ``join`` is verified.
        """
        elems = list(dict.fromkeys(elements))
        for x in elems:
            for y in elems:
                meet_says = meet(x, y) == x
                join_says = join(x, y) == y
                if meet_says != join_says:
                    raise LatticeError(
                        f"meet and join disagree on the order of {x!r}, {y!r}"
                    )
        return cls.from_leq(elems, lambda x, y: meet(x, y) == x)

    # -- core operations ------------------------------------------------------

    @property
    def poset(self) -> FinitePoset:
        return self._poset

    @property
    def elements(self) -> tuple[Element, ...]:
        return self._poset.elements

    @property
    def bottom(self) -> Element:
        """The zero element 0 (``a ∨ 0 = a``)."""
        return self._bottom

    @property
    def top(self) -> Element:
        """The unit element 1 (``a ∧ 1 = a``)."""
        return self._top

    def __len__(self) -> int:
        return len(self._poset)

    def __iter__(self):
        return iter(self._poset)

    def __contains__(self, x: Any) -> bool:
        return x in self._poset

    def meet(self, x: Element, y: Element) -> Element:
        """Greatest lower bound ``x ∧ y``."""
        try:
            return self._meet[x, y]
        except KeyError:
            raise KeyError(f"({x!r}, {y!r}) not in lattice") from None

    def join(self, x: Element, y: Element) -> Element:
        """Least upper bound ``x ∨ y``."""
        try:
            return self._join[x, y]
        except KeyError:
            raise KeyError(f"({x!r}, {y!r}) not in lattice") from None

    def meet_many(self, xs: Iterable[Element]) -> Element:
        """``∧ xs``; the meet of the empty family is 1."""
        result = self._top
        for x in xs:
            result = self.meet(result, x)
        return result

    def join_many(self, xs: Iterable[Element]) -> Element:
        """``∨ xs``; the join of the empty family is 0."""
        result = self._bottom
        for x in xs:
            result = self.join(result, x)
        return result

    def leq(self, x: Element, y: Element) -> bool:
        """``x <= y``, equivalently ``x ∧ y = x`` (Section 3)."""
        return self._poset.leq(x, y)

    def lt(self, x: Element, y: Element) -> bool:
        return self._poset.lt(x, y)

    # -- complements (Section 3) ----------------------------------------------

    def is_complement(self, x: Element, y: Element) -> bool:
        """``y ∈ cmp(x)``: ``x ∧ y = 0`` and ``x ∨ y = 1``."""
        return self.meet(x, y) == self._bottom and self.join(x, y) == self._top

    def complements(self, x: Element) -> list[Element]:
        """``cmp(x)`` — all complements of ``x`` (possibly several, possibly none).

        The paper stresses that complements need not be unique outside
        distributive lattices; callers that need *a* complement should use
        :meth:`some_complement`.
        """
        return [y for y in self.elements if self.is_complement(x, y)]

    def some_complement(self, x: Element) -> Element:
        """An arbitrary (first in element order) complement of ``x``."""
        for y in self.elements:
            if self.is_complement(x, y):
                return y
        raise LatticeError(f"{x!r} has no complement")

    # -- distinguished elements ---------------------------------------------

    def atoms(self) -> list[Element]:
        """Elements covering 0."""
        return self._poset.upper_covers(self._bottom)

    def coatoms(self) -> list[Element]:
        """Elements covered by 1."""
        return self._poset.lower_covers(self._top)

    def join_irreducibles(self) -> list[Element]:
        """Non-zero elements that are not proper joins."""
        result = []
        for x in self.elements:
            if x == self._bottom:
                continue
            if len(self._poset.lower_covers(x)) == 1:
                result.append(x)
        return result

    def meet_irreducibles(self) -> list[Element]:
        """Non-unit elements that are not proper meets."""
        result = []
        for x in self.elements:
            if x == self._top:
                continue
            if len(self._poset.upper_covers(x)) == 1:
                result.append(x)
        return result

    def canonical_key(self) -> str:
        """A structural cache key, invariant under element renaming.

        Two lattices related by :meth:`relabel` (or any other
        order-isomorphism) get the same key.  The key canonically labels
        the Hasse diagram via :func:`repro.canonical.canonical_digraph_key`
        — the covering relation determines the order, hence the lattice
        (see DESIGN.md §8)."""
        from repro.canonical import canonical_digraph_key

        elements = self.elements
        colors = {
            x: (x == self._bottom, x == self._top) for x in elements
        }
        edges = [("<", lo, hi) for lo, hi in self._poset.hasse_edges()]
        return "lattice:" + canonical_digraph_key(
            elements, colors, edges, graph_attrs=("lattice", len(elements))
        )

    # -- derived lattices -------------------------------------------------------

    def dual(self) -> "FiniteLattice":
        """The order-dual lattice (swaps ∧/∨ and 0/1)."""
        return FiniteLattice(self._poset.dual())

    def product(self, other: "FiniteLattice") -> "FiniteLattice":
        """The direct product; preserves modularity, distributivity and
        complementedness componentwise."""
        elements = [(x, y) for x in self.elements for y in other.elements]
        return FiniteLattice.from_leq(
            elements,
            lambda p, q: self.leq(p[0], q[0]) and other.leq(p[1], q[1]),
        )

    def interval(self, lo: Element, hi: Element) -> "FiniteLattice":
        """The interval sublattice ``[lo, hi]``."""
        if not self.leq(lo, hi):
            raise LatticeError(f"[{lo!r}, {hi!r}] is empty")
        subset = [x for x in self.elements if self.leq(lo, x) and self.leq(x, hi)]
        return FiniteLattice(self._poset.restrict(subset))

    def sublattice_generated_by(self, generators: Iterable[Element]) -> "FiniteLattice":
        """The smallest sublattice (same meets/joins) containing ``generators``
        plus the bounds 0 and 1."""
        closed = set(generators) | {self._bottom, self._top}
        for g in closed:
            if g not in self._poset:
                raise KeyError(f"{g!r} not in lattice")
        changed = True
        while changed:
            changed = False
            current = list(closed)
            for x in current:
                for y in current:
                    for z in (self.meet(x, y), self.join(x, y)):
                        if z not in closed:
                            closed.add(z)
                            changed = True
        return FiniteLattice(self._poset.restrict(closed))

    def relabel(self, mapping) -> "FiniteLattice":
        """A copy with elements renamed via ``mapping`` (a dict or callable)."""
        if not callable(mapping):
            table = dict(mapping)
            mapping = table.__getitem__
        new_elems = [mapping(x) for x in self.elements]
        if len(set(new_elems)) != len(new_elems):
            raise LatticeError("relabeling is not injective")
        back = dict(zip(new_elems, self.elements))
        return FiniteLattice.from_leq(
            new_elems, lambda a, b: self.leq(back[a], back[b])
        )

    # -- dunder -------------------------------------------------------------

    def __eq__(self, other: Any) -> bool:
        if not isinstance(other, FiniteLattice):
            return NotImplemented
        return self._poset == other._poset

    def __hash__(self):
        return hash(self._poset)

    def __repr__(self) -> str:
        return f"FiniteLattice({len(self)} elements)"


def is_lattice_poset(poset: FinitePoset) -> bool:
    """True when every pair of elements has both a meet and a join."""
    try:
        FiniteLattice(poset)
    except (LatticeError, PosetError):
        return False
    return True
