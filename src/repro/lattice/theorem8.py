"""Theorem 8 (branching time, stated lattice-theoretically).

Paper: *If (q ES ∨ q US) and p = q ∧ r, then ncl.p ≤ q and
r ≥ p ∨ b for b ∈ cmp(ncl.p)* — i.e. the branching-time corollary of
Theorems 6 and 7 with cl1 = ncl, cl2 = fcl.

The statement is purely lattice-theoretic, so it is implemented (and
benchmarked) at that level: given two comparable closures, whenever an
element factors through a cl1- or cl2-safety conjunct, the safety
conjunct dominates ``cl1.p`` and — in distributive lattices — the other
conjunct is below ``p ∨ b``.
"""

from __future__ import annotations

from .closure import LatticeClosure
from .decomposition import DecompositionError
from .lattice import FiniteLattice
from .properties import is_distributive


def theorem8_holds(
    lattice: FiniteLattice,
    ncl: LatticeClosure,
    fcl: LatticeClosure,
    p,
    check_weakest: bool | None = None,
) -> bool:
    """Exhaustively verify Theorem 8's two conclusions at ``p``.

    For every factorization ``p = q ∧ r`` with ``q`` an ncl- or
    fcl-safety element:

    1. ``ncl.p ≤ q``  (from Theorem 6), and
    2. when the lattice is distributive (or ``check_weakest=True``):
       ``r ≤ p ∨ b`` for every ``b ∈ cmp(ncl.p)``  (from Theorem 7).
    """
    if not fcl.dominates(ncl):
        raise DecompositionError("hypothesis ncl <= fcl (pointwise) fails")
    if check_weakest is None:
        check_weakest = is_distributive(lattice)
    target = ncl(p)
    complements = lattice.complements(target)
    for q in lattice.elements:
        if not (ncl.is_safety(q) or fcl.is_safety(q)):
            continue
        for r in lattice.elements:
            if lattice.meet(q, r) != p:
                continue
            if not lattice.leq(target, q):
                return False
            if check_weakest:
                for b in complements:
                    if not lattice.leq(r, lattice.join(p, b)):
                        return False
    return True


def theorem8_safety_bound_witnesses(
    lattice: FiniteLattice, ncl: LatticeClosure, fcl: LatticeClosure, p
) -> list:
    """All factorizations ``(q, r)`` of ``p`` through safety conjuncts —
    for inspection/reporting; Theorem 8 says every listed ``q`` lies
    above ``ncl.p``."""
    out = []
    for q in lattice.elements:
        if not (ncl.is_safety(q) or fcl.is_safety(q)):
            continue
        for r in lattice.elements:
            if lattice.meet(q, r) == p:
                out.append((q, r))
    return out
