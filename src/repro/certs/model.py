"""Certificate models: frozen, JSON-round-trippable, and self-describing.

A :class:`Certificate` is the portable proof object attached to a
decomposition answer (DESIGN.md §10).  It contains everything an
*independent* checker needs to replay the decomposition theorems on the
concrete answer — serialized automata/lattices with small-int state
ids, explicit witnesses, and the list of obligations the issuer claims
to have discharged — plus a content digest so a corrupted payload is
rejected before any replay starts.

This module is deliberately **stdlib-only**: it is the single shared
vocabulary between the prover side (:mod:`repro.certs.build`, which may
use the whole repo including the dense kernel) and the verifier side
(:mod:`repro.certs.verify`, which may import nothing but the stdlib and
this module — enforced by checks rule RC008).  Keeping the model here
free of ``repro`` imports is what makes that split possible.

Serialization conventions:

* states are ``0..n-1`` ints, one namespace per serialized automaton;
* symbols are opaque string tokens; the three automata of a Büchi
  certificate must carry *identical* alphabet tuples so that equal
  indices mean equal symbols;
* transitions are sorted triples ``(state, symbol, targets)`` with
  empty target sets omitted;
* the payload digest is SHA-256 over the canonical (sorted-keys,
  compact) JSON of ``version : domain : payload``.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from types import MappingProxyType

__all__ = [
    "BUCHI_OBLIGATIONS",
    "CERT_VERSION",
    "Certificate",
    "CertificateError",
    "LATTICE_OBLIGATIONS",
    "LassoWitness",
    "RABIN_OBLIGATIONS",
    "REQUIRED_OBLIGATIONS",
    "RabinSample",
    "RunNode",
    "SerializedAutomaton",
    "SerializedBuchiPayload",
    "SerializedLatticePayload",
    "SerializedRabinAutomaton",
    "SerializedRabinPayload",
    "SerializedTree",
    "payload_digest",
    "validate_certificate",
]

#: Format version; bump on incompatible payload changes.
CERT_VERSION = 1

#: Obligations an issuer must discharge, per domain.  The verifier
#: rejects any certificate whose obligation list differs from this set —
#: a *dropped* obligation is a corruption, not a shortcut.
BUCHI_OBLIGATIONS = (
    "closure-replay",      # L(B_S) = lcl(L(B)), replayed naively
    "safety-inclusion",    # L(B) ⊆ L(B_S)
    "union-structure",     # B_L = B ⊔ D with a fresh initial (embedding)
    "disjointness",        # L(B_S) ∩ L(D) = ∅  (closes B = B_S ∩ B_L)
    "density",             # lcl(L(B_L)) = Σ^ω
    "witnesses",           # recorded lasso memberships agree
)
LATTICE_OBLIGATIONS = (
    "lattice-laws",            # the tables form a bounded lattice
    "closure-axioms",          # cl1, cl2 are lattice closures
    "comparability",           # cl1 <= cl2 pointwise
    "complement-witness",      # b ∈ cmp(cl2.a)
    "conjuncts",               # s = cl1.a is cl1-safe, l = a ∨ b is cl2-live
    "identity",                # s ∧ l = a
    "modularity-instances",    # every recorded modular-law instance holds
)
RABIN_OBLIGATIONS = (
    "closure-shape",       # safety is rfcl-shaped over the original
    "safety-membership",   # per-sample safety claims replayed exactly
    "membership-runs",     # run-graph witness per positive original claim
    "sample-identity",     # in_original ⟹ in_safety on every sample
)
REQUIRED_OBLIGATIONS = MappingProxyType({
    "buchi": BUCHI_OBLIGATIONS,
    "ltl": BUCHI_OBLIGATIONS,
    "lattice": LATTICE_OBLIGATIONS,
    "rabin": RABIN_OBLIGATIONS,
})


class CertificateError(ValueError):
    """Raised on malformed, unparsable, or internally inconsistent
    certificate data."""


# -- Büchi / LTL payloads -------------------------------------------------------


@dataclass(frozen=True)
class SerializedAutomaton:
    """A Büchi automaton over small-int states and indexed symbols."""

    n_states: int
    alphabet: tuple  # tuple[str, ...] — symbol tokens, index = symbol id
    initial: int
    transitions: tuple  # tuple[(state, symbol, tuple[target, ...]), ...]
    accepting: tuple  # tuple[int, ...]

    def to_dict(self) -> dict:
        return {
            "n_states": self.n_states,
            "alphabet": list(self.alphabet),
            "initial": self.initial,
            "transitions": [
                [q, a, list(targets)] for q, a, targets in self.transitions
            ],
            "accepting": list(self.accepting),
        }

    @classmethod
    def from_dict(cls, data) -> "SerializedAutomaton":
        _require(isinstance(data, dict), "automaton payload must be an object")
        return cls(
            n_states=_int_field(data, "n_states"),
            alphabet=tuple(_str_list(data, "alphabet")),
            initial=_int_field(data, "initial"),
            transitions=tuple(
                (_as_int(row, 0), _as_int(row, 1), tuple(_int_items(row, 2)))
                for row in _list_field(data, "transitions")
            ),
            accepting=tuple(_int_items(data, "accepting")),
        )

    def validate(self) -> None:
        _require(self.n_states >= 1, "automaton needs at least one state")
        _require(len(self.alphabet) >= 1, "automaton needs a symbol")
        _require(
            len(set(self.alphabet)) == len(self.alphabet),
            "alphabet tokens must be distinct",
        )
        _require(0 <= self.initial < self.n_states, "initial state out of range")
        for state in self.accepting:
            _require(0 <= state < self.n_states, "accepting state out of range")
        _require(
            len(set(self.accepting)) == len(self.accepting),
            "duplicate accepting state",
        )
        seen = set()
        for q, a, targets in self.transitions:
            _require(0 <= q < self.n_states, "transition source out of range")
            _require(0 <= a < len(self.alphabet), "transition symbol out of range")
            _require((q, a) not in seen, "duplicate transition row")
            seen.add((q, a))
            _require(len(targets) >= 1, "empty transition row must be omitted")
            _require(
                len(set(targets)) == len(targets), "duplicate transition target"
            )
            for target in targets:
                _require(
                    0 <= target < self.n_states, "transition target out of range"
                )


@dataclass(frozen=True)
class LassoWitness:
    """One lasso word ``prefix · cycle^ω`` (symbol indices) with its
    recorded membership bits in the three automata."""

    prefix: tuple  # tuple[int, ...]
    cycle: tuple  # tuple[int, ...] — non-empty
    in_original: bool
    in_safety: bool
    in_liveness: bool

    def to_dict(self) -> dict:
        return {
            "prefix": list(self.prefix),
            "cycle": list(self.cycle),
            "in_original": self.in_original,
            "in_safety": self.in_safety,
            "in_liveness": self.in_liveness,
        }

    @classmethod
    def from_dict(cls, data) -> "LassoWitness":
        _require(isinstance(data, dict), "witness must be an object")
        return cls(
            prefix=tuple(_int_items(data, "prefix")),
            cycle=tuple(_int_items(data, "cycle")),
            in_original=_bool_field(data, "in_original"),
            in_safety=_bool_field(data, "in_safety"),
            in_liveness=_bool_field(data, "in_liveness"),
        )

    def validate(self, n_symbols: int) -> None:
        _require(len(self.cycle) >= 1, "lasso cycle must be non-empty")
        for symbol in self.prefix + self.cycle:
            _require(0 <= symbol < n_symbols, "witness symbol out of range")


@dataclass(frozen=True)
class SerializedBuchiPayload:
    """The Büchi/LTL certificate body: the three automata of §2.4 plus
    the structural witnesses tying them together.

    ``embedding[q]`` is the liveness-automaton state carrying the tagged
    copy of original state ``q``; ``right_block`` lists the liveness
    states forming the ``¬cl(B)`` branch of the union.  Together they
    let the verifier reconstruct ``B_L = B ⊔ D`` without trusting the
    builder's union code.
    """

    original: SerializedAutomaton
    safety: SerializedAutomaton
    liveness: SerializedAutomaton
    embedding: tuple  # tuple[int, ...], length n_states(original)
    right_block: tuple  # tuple[int, ...] — liveness-state ids
    witnesses: tuple  # tuple[LassoWitness, ...]
    obligations: tuple  # tuple[str, ...]
    subject: str = ""

    def to_dict(self) -> dict:
        return {
            "original": self.original.to_dict(),
            "safety": self.safety.to_dict(),
            "liveness": self.liveness.to_dict(),
            "embedding": list(self.embedding),
            "right_block": list(self.right_block),
            "witnesses": [w.to_dict() for w in self.witnesses],
            "obligations": list(self.obligations),
            "subject": self.subject,
        }

    @classmethod
    def from_dict(cls, data) -> "SerializedBuchiPayload":
        _require(isinstance(data, dict), "buchi payload must be an object")
        return cls(
            original=SerializedAutomaton.from_dict(_dict_field(data, "original")),
            safety=SerializedAutomaton.from_dict(_dict_field(data, "safety")),
            liveness=SerializedAutomaton.from_dict(_dict_field(data, "liveness")),
            embedding=tuple(_int_items(data, "embedding")),
            right_block=tuple(_int_items(data, "right_block")),
            witnesses=tuple(
                LassoWitness.from_dict(w) for w in _list_field(data, "witnesses")
            ),
            obligations=tuple(_str_list(data, "obligations")),
            subject=_str_field(data, "subject"),
        )

    def validate(self) -> None:
        self.original.validate()
        self.safety.validate()
        self.liveness.validate()
        _require(
            self.original.alphabet == self.safety.alphabet == self.liveness.alphabet,
            "the three automata must share one alphabet token tuple",
        )
        _require(
            len(self.embedding) == self.original.n_states,
            "embedding must map every original state",
        )
        for state in self.embedding:
            _require(
                0 <= state < self.liveness.n_states,
                "embedding target out of range",
            )
        _require(
            len(set(self.embedding)) == len(self.embedding),
            "embedding must be injective",
        )
        _require(
            len(set(self.right_block)) == len(self.right_block),
            "duplicate right-block state",
        )
        for state in self.right_block:
            _require(
                0 <= state < self.liveness.n_states,
                "right-block state out of range",
            )
        for witness in self.witnesses:
            witness.validate(len(self.original.alphabet))


# -- lattice payloads -----------------------------------------------------------


@dataclass(frozen=True)
class SerializedLatticePayload:
    """The Theorem-2/3 witness chain over a fully tabulated lattice.

    Elements are ``0..n-1``; ``meet``/``join`` are full ``n × n``
    tables, ``cl1``/``cl2`` are value tables, and the four indices name
    the decomposition ``element = safety ∧ liveness`` with
    ``complement ∈ cmp(cl2.element)``.  ``modularity_instances`` are the
    ``(x, y, z)`` triples (with ``x ≤ z``) whose modular-law instances
    the proof of Theorem 3 uses; ``elements`` carries display tokens
    only (the mathematics never reads them).
    """

    n: int
    meet: tuple  # tuple[tuple[int, ...], ...], n rows of n
    join: tuple
    bottom: int
    top: int
    cl1: tuple  # tuple[int, ...], length n
    cl2: tuple
    element: int
    safety: int
    liveness: int
    complement: int
    modularity_instances: tuple  # tuple[(x, y, z), ...]
    obligations: tuple
    elements: tuple = ()  # tuple[str, ...] display names
    subject: str = ""

    def to_dict(self) -> dict:
        return {
            "n": self.n,
            "meet": [list(row) for row in self.meet],
            "join": [list(row) for row in self.join],
            "bottom": self.bottom,
            "top": self.top,
            "cl1": list(self.cl1),
            "cl2": list(self.cl2),
            "element": self.element,
            "safety": self.safety,
            "liveness": self.liveness,
            "complement": self.complement,
            "modularity_instances": [list(t) for t in self.modularity_instances],
            "obligations": list(self.obligations),
            "elements": list(self.elements),
            "subject": self.subject,
        }

    @classmethod
    def from_dict(cls, data) -> "SerializedLatticePayload":
        _require(isinstance(data, dict), "lattice payload must be an object")
        return cls(
            n=_int_field(data, "n"),
            meet=tuple(
                tuple(_int_items(data["meet"], i))
                for i in range(len(_list_field(data, "meet")))
            ),
            join=tuple(
                tuple(_int_items(data["join"], i))
                for i in range(len(_list_field(data, "join")))
            ),
            bottom=_int_field(data, "bottom"),
            top=_int_field(data, "top"),
            cl1=tuple(_int_items(data, "cl1")),
            cl2=tuple(_int_items(data, "cl2")),
            element=_int_field(data, "element"),
            safety=_int_field(data, "safety"),
            liveness=_int_field(data, "liveness"),
            complement=_int_field(data, "complement"),
            modularity_instances=tuple(
                (_as_int(row, 0), _as_int(row, 1), _as_int(row, 2))
                for row in _list_field(data, "modularity_instances")
            ),
            obligations=tuple(_str_list(data, "obligations")),
            elements=tuple(_str_list(data, "elements")),
            subject=_str_field(data, "subject"),
        )

    def validate(self) -> None:
        n = self.n
        _require(n >= 1, "lattice must be non-empty")
        for table in (self.meet, self.join):
            _require(len(table) == n, "operation table must have n rows")
            for row in table:
                _require(len(row) == n, "operation table row must have n entries")
                for value in row:
                    _require(0 <= value < n, "operation table entry out of range")
        for table in (self.cl1, self.cl2):
            _require(len(table) == n, "closure table must have n entries")
            for value in table:
                _require(0 <= value < n, "closure table entry out of range")
        for index in (self.bottom, self.top, self.element, self.safety,
                      self.liveness, self.complement):
            _require(0 <= index < n, "element index out of range")
        for x, y, z in self.modularity_instances:
            for index in (x, y, z):
                _require(0 <= index < n, "modularity instance index out of range")
        if self.elements:
            _require(len(self.elements) == n, "element names must cover 0..n-1")


# -- Rabin payloads -------------------------------------------------------------


@dataclass(frozen=True)
class SerializedRabinAutomaton:
    """A Rabin tree automaton over small-int states.

    ``transitions`` rows are ``(state, symbol, moves)`` where each move
    is a branching-length tuple of successor states; ``pairs`` are
    ``(green, red)`` index tuples.
    """

    n_states: int
    alphabet: tuple
    initial: int
    branching: int
    transitions: tuple  # tuple[(q, a, tuple[tuple[int, ...], ...]), ...]
    pairs: tuple  # tuple[(tuple[int, ...], tuple[int, ...]), ...]

    def to_dict(self) -> dict:
        return {
            "n_states": self.n_states,
            "alphabet": list(self.alphabet),
            "initial": self.initial,
            "branching": self.branching,
            "transitions": [
                [q, a, [list(move) for move in moves]]
                for q, a, moves in self.transitions
            ],
            "pairs": [[list(green), list(red)] for green, red in self.pairs],
        }

    @classmethod
    def from_dict(cls, data) -> "SerializedRabinAutomaton":
        _require(isinstance(data, dict), "rabin automaton must be an object")
        transitions = []
        for row in _list_field(data, "transitions"):
            _require(
                isinstance(row, list) and len(row) == 3
                and isinstance(row[2], list),
                "bad transition row",
            )
            moves = tuple(tuple(_int_items(row[2], i)) for i in range(len(row[2])))
            transitions.append((_as_int(row, 0), _as_int(row, 1), moves))
        pairs = []
        for row in _list_field(data, "pairs"):
            _require(isinstance(row, list) and len(row) == 2, "bad pair row")
            pairs.append((tuple(_int_items(row, 0)), tuple(_int_items(row, 1))))
        return cls(
            n_states=_int_field(data, "n_states"),
            alphabet=tuple(_str_list(data, "alphabet")),
            initial=_int_field(data, "initial"),
            branching=_int_field(data, "branching"),
            transitions=tuple(transitions),
            pairs=tuple(pairs),
        )

    def validate(self) -> None:
        _require(self.n_states >= 1, "rabin automaton needs a state")
        _require(len(self.alphabet) >= 1, "rabin automaton needs a symbol")
        _require(
            len(set(self.alphabet)) == len(self.alphabet),
            "alphabet tokens must be distinct",
        )
        _require(0 <= self.initial < self.n_states, "initial state out of range")
        _require(self.branching >= 1, "branching must be >= 1")
        seen = set()
        for q, a, moves in self.transitions:
            _require(0 <= q < self.n_states, "transition source out of range")
            _require(0 <= a < len(self.alphabet), "transition symbol out of range")
            _require((q, a) not in seen, "duplicate transition row")
            seen.add((q, a))
            _require(len(moves) >= 1, "empty move set must be omitted")
            for move in moves:
                _require(len(move) == self.branching, "move arity mismatch")
                for target in move:
                    _require(0 <= target < self.n_states, "move target out of range")
        for green, red in self.pairs:
            for state in green + red:
                _require(0 <= state < self.n_states, "pair state out of range")


@dataclass(frozen=True)
class SerializedTree:
    """A regular tree: per-vertex label tokens and successor tuples."""

    n_vertices: int
    labels: tuple  # tuple[str, ...]
    successors: tuple  # tuple[tuple[int, ...], ...]
    root: int

    def to_dict(self) -> dict:
        return {
            "n_vertices": self.n_vertices,
            "labels": list(self.labels),
            "successors": [list(row) for row in self.successors],
            "root": self.root,
        }

    @classmethod
    def from_dict(cls, data) -> "SerializedTree":
        _require(isinstance(data, dict), "tree must be an object")
        return cls(
            n_vertices=_int_field(data, "n_vertices"),
            labels=tuple(_str_list(data, "labels")),
            successors=tuple(
                tuple(_int_items(data["successors"], i))
                for i in range(len(_list_field(data, "successors")))
            ),
            root=_int_field(data, "root"),
        )

    def validate(self, branching: int) -> None:
        _require(self.n_vertices >= 1, "tree needs a vertex")
        _require(len(self.labels) == self.n_vertices, "one label per vertex")
        _require(len(self.successors) == self.n_vertices, "successors per vertex")
        _require(0 <= self.root < self.n_vertices, "tree root out of range")
        for row in self.successors:
            _require(len(row) == branching, "tree successor arity mismatch")
            for vertex in row:
                _require(0 <= vertex < self.n_vertices, "tree successor out of range")


@dataclass(frozen=True)
class RunNode:
    """One node of a regular run graph: which tree vertex it reads,
    which automaton state it is in, and its child node ids (one per
    tree direction)."""

    vertex: int
    state: int
    children: tuple  # tuple[int, ...]

    def to_dict(self) -> dict:
        return {
            "vertex": self.vertex,
            "state": self.state,
            "children": list(self.children),
        }

    @classmethod
    def from_dict(cls, data) -> "RunNode":
        _require(isinstance(data, dict), "run node must be an object")
        return cls(
            vertex=_int_field(data, "vertex"),
            state=_int_field(data, "state"),
            children=tuple(_int_items(data, "children")),
        )


@dataclass(frozen=True)
class RabinSample:
    """One sample tree with its membership claims; a positive original
    claim must come with a run-graph witness (node 0 is the root)."""

    tree: SerializedTree
    in_original: bool
    in_safety: bool
    run: tuple = ()  # tuple[RunNode, ...]; empty iff in_original is False

    def to_dict(self) -> dict:
        return {
            "tree": self.tree.to_dict(),
            "in_original": self.in_original,
            "in_safety": self.in_safety,
            "run": [node.to_dict() for node in self.run],
        }

    @classmethod
    def from_dict(cls, data) -> "RabinSample":
        _require(isinstance(data, dict), "sample must be an object")
        return cls(
            tree=SerializedTree.from_dict(_dict_field(data, "tree")),
            in_original=_bool_field(data, "in_original"),
            in_safety=_bool_field(data, "in_safety"),
            run=tuple(RunNode.from_dict(n) for n in _list_field(data, "run")),
        )


@dataclass(frozen=True)
class SerializedRabinPayload:
    """The Theorem-9 certificate body.

    ``safety_map[i]`` is the original-state index that safety state
    ``i`` came from (``rfcl`` keeps a subset of the states).  Rabin
    complementation is non-elementary, so the identity obligations are
    *sample-extensional*: exact per-sample replays rather than a
    language-level proof (DESIGN.md §10 spells out the difference).
    """

    original: SerializedRabinAutomaton
    safety: SerializedRabinAutomaton
    safety_map: tuple  # tuple[int, ...], length n_states(safety)
    samples: tuple  # tuple[RabinSample, ...]
    obligations: tuple
    subject: str = ""

    def to_dict(self) -> dict:
        return {
            "original": self.original.to_dict(),
            "safety": self.safety.to_dict(),
            "safety_map": list(self.safety_map),
            "samples": [s.to_dict() for s in self.samples],
            "obligations": list(self.obligations),
            "subject": self.subject,
        }

    @classmethod
    def from_dict(cls, data) -> "SerializedRabinPayload":
        _require(isinstance(data, dict), "rabin payload must be an object")
        return cls(
            original=SerializedRabinAutomaton.from_dict(
                _dict_field(data, "original")
            ),
            safety=SerializedRabinAutomaton.from_dict(_dict_field(data, "safety")),
            safety_map=tuple(_int_items(data, "safety_map")),
            samples=tuple(
                RabinSample.from_dict(s) for s in _list_field(data, "samples")
            ),
            obligations=tuple(_str_list(data, "obligations")),
            subject=_str_field(data, "subject"),
        )

    def validate(self) -> None:
        self.original.validate()
        self.safety.validate()
        _require(
            self.original.alphabet == self.safety.alphabet,
            "original and safety automata must share one alphabet",
        )
        _require(
            self.original.branching == self.safety.branching,
            "original and safety automata must share one branching degree",
        )
        _require(
            len(self.safety_map) == self.safety.n_states,
            "safety_map must cover every safety state",
        )
        _require(
            len(set(self.safety_map)) == len(self.safety_map),
            "safety_map must be injective",
        )
        for state in self.safety_map:
            _require(
                0 <= state < self.original.n_states,
                "safety_map target out of range",
            )
        _require(len(self.samples) >= 1, "at least one sample is required")
        for sample in self.samples:
            sample.tree.validate(self.original.branching)
            _require(
                set(sample.tree.labels) <= set(self.original.alphabet),
                "sample tree label outside the alphabet",
            )
            for node in sample.run:
                _require(
                    0 <= node.vertex < sample.tree.n_vertices,
                    "run node vertex out of range",
                )
                _require(
                    0 <= node.state < self.original.n_states,
                    "run node state out of range",
                )
                _require(
                    len(node.children) == self.original.branching,
                    "run node arity mismatch",
                )
                for child in node.children:
                    _require(
                        0 <= child < len(sample.run),
                        "run node child out of range",
                    )


_PAYLOAD_TYPES = MappingProxyType({
    "buchi": SerializedBuchiPayload,
    "ltl": SerializedBuchiPayload,
    "lattice": SerializedLatticePayload,
    "rabin": SerializedRabinPayload,
})


# -- the envelope ----------------------------------------------------------------


def payload_digest(version: int, domain: str, payload_dict: dict) -> str:
    """SHA-256 over the canonical JSON of ``version : domain : payload``."""
    canonical = json.dumps(
        payload_dict, sort_keys=True, separators=(",", ":"), ensure_ascii=True
    )
    material = f"{version}:{domain}:{canonical}"
    return hashlib.sha256(material.encode("utf-8")).hexdigest()


@dataclass(frozen=True)
class Certificate:
    """The envelope: versioned, domain-tagged, digest-sealed payload."""

    version: int
    domain: str
    payload: object
    digest: str = field(default="", compare=False)

    @classmethod
    def seal(cls, domain: str, payload) -> "Certificate":
        """Build an envelope with a freshly computed digest."""
        return cls(
            version=CERT_VERSION,
            domain=domain,
            payload=payload,
            digest=payload_digest(CERT_VERSION, domain, payload.to_dict()),
        )

    def to_dict(self) -> dict:
        return {
            "version": self.version,
            "domain": self.domain,
            "payload": self.payload.to_dict(),
            "digest": self.digest,
        }

    def to_json(self) -> str:
        return json.dumps(
            self.to_dict(), sort_keys=True, separators=(",", ":"),
            ensure_ascii=True,
        )

    @classmethod
    def from_dict(cls, data) -> "Certificate":
        _require(isinstance(data, dict), "certificate must be a JSON object")
        version = _int_field(data, "version")
        domain = _str_field(data, "domain")
        payload_type = _PAYLOAD_TYPES.get(domain)
        _require(payload_type is not None, f"unknown certificate domain {domain!r}")
        payload = payload_type.from_dict(_dict_field(data, "payload"))
        return cls(
            version=version,
            domain=domain,
            payload=payload,
            digest=_str_field(data, "digest"),
        )

    @classmethod
    def from_json(cls, text: str) -> "Certificate":
        try:
            data = json.loads(text)
        except (ValueError, TypeError) as exc:
            raise CertificateError(f"unparsable certificate JSON: {exc}") from None
        return cls.from_dict(data)

    @property
    def obligations(self) -> tuple:
        return getattr(self.payload, "obligations", ())

    def summary(self) -> str:
        """A short human-readable description for logs and examples."""
        subject = getattr(self.payload, "subject", "") or "<unnamed>"
        lines = [
            f"certificate v{self.version} [{self.domain}] for {subject}",
            f"  digest      : {self.digest[:16]}…",
            f"  obligations : {', '.join(self.obligations)}",
        ]
        witnesses = getattr(self.payload, "witnesses", None)
        if witnesses is not None:
            lines.append(f"  witnesses   : {len(witnesses)} lasso word(s)")
        samples = getattr(self.payload, "samples", None)
        if samples is not None:
            lines.append(f"  samples     : {len(samples)} regular tree(s)")
        instances = getattr(self.payload, "modularity_instances", None)
        if instances is not None:
            lines.append(f"  modularity  : {len(instances)} instance(s) replayed")
        return "\n".join(lines)


def validate_certificate(certificate: Certificate) -> None:
    """Structural validation: versions, digest, index ranges, and the
    exact obligation set.  Raises :class:`CertificateError`; semantic
    replay lives in :mod:`repro.certs.verify`."""
    _require(isinstance(certificate, Certificate), "not a Certificate")
    _require(
        certificate.version == CERT_VERSION,
        f"unsupported certificate version {certificate.version!r}",
    )
    required = REQUIRED_OBLIGATIONS.get(certificate.domain)
    _require(
        required is not None,
        f"unknown certificate domain {certificate.domain!r}",
    )
    expected_type = _PAYLOAD_TYPES[certificate.domain]
    _require(
        isinstance(certificate.payload, expected_type),
        f"{certificate.domain} certificate carries a "
        f"{type(certificate.payload).__name__} payload",
    )
    expected = payload_digest(
        certificate.version, certificate.domain, certificate.payload.to_dict()
    )
    _require(certificate.digest == expected, "payload digest mismatch")
    _require(
        tuple(sorted(certificate.obligations)) == tuple(sorted(required)),
        "obligation list does not match the required set "
        f"for domain {certificate.domain!r}",
    )
    certificate.payload.validate()


# -- strict field readers --------------------------------------------------------


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise CertificateError(message)


def _int_field(data: dict, key: str) -> int:
    value = data.get(key)
    _require(isinstance(value, int) and not isinstance(value, bool),
             f"field {key!r} must be an integer")
    return value


def _bool_field(data: dict, key: str) -> bool:
    value = data.get(key)
    _require(isinstance(value, bool), f"field {key!r} must be a boolean")
    return value


def _str_field(data: dict, key: str) -> str:
    value = data.get(key)
    _require(isinstance(value, str), f"field {key!r} must be a string")
    return value


def _dict_field(data: dict, key: str) -> dict:
    value = data.get(key)
    _require(isinstance(value, dict), f"field {key!r} must be an object")
    return value


def _list_field(data: dict, key: str) -> list:
    value = data.get(key)
    _require(isinstance(value, list), f"field {key!r} must be an array")
    return value


def _str_list(data: dict, key: str) -> list:
    value = _list_field(data, key)
    _require(
        all(isinstance(item, str) for item in value),
        f"field {key!r} must hold strings",
    )
    return value


def _int_items(container, key) -> list:
    if isinstance(container, dict):
        value = container.get(key)
    else:
        _require(isinstance(container, list), "expected an array")
        _require(
            isinstance(key, int) and 0 <= key < len(container),
            "missing array element",
        )
        value = container[key]
    _require(isinstance(value, list), "expected an integer array")
    _require(
        all(isinstance(i, int) and not isinstance(i, bool) for i in value),
        "expected integers",
    )
    return value


def _as_int(row, index: int) -> int:
    _require(isinstance(row, list) and len(row) > index, "truncated row")
    value = row[index]
    _require(isinstance(value, int) and not isinstance(value, bool),
             "expected an integer")
    return value
