"""The independent certificate verifier.

This package is the trusted base of :mod:`repro.certs`: it imports only
the standard library and :mod:`repro.certs.model`, never the analysis
layers whose results it checks (checks rule RC008 enforces exactly
that).  :func:`verify` takes a :class:`~repro.certs.model.Certificate`,
validates its structure and digest, then replays every obligation with
the naive semantics in the sibling modules.

Verification never raises on a bad certificate — it returns a
:class:`VerificationResult` whose ``reason`` names the first obligation
that failed to replay.
"""

from __future__ import annotations

from dataclasses import dataclass
from types import MappingProxyType

from ..model import (
    REQUIRED_OBLIGATIONS,
    Certificate,
    CertificateError,
    validate_certificate,
)
from .buchi import replay_buchi
from .lattice import replay_lattice
from .rabin import replay_rabin

__all__ = ["VerificationResult", "verify", "verify_json"]


@dataclass(frozen=True)
class VerificationResult:
    """Outcome of one verification run."""

    ok: bool
    domain: str
    checked: tuple  # obligation names that were replayed
    reason: str = ""  # empty on success, first failure otherwise

    def __bool__(self) -> bool:
        return self.ok


_REPLAYERS = MappingProxyType({
    "buchi": replay_buchi,
    "ltl": replay_buchi,
    "lattice": replay_lattice,
    "rabin": replay_rabin,
})


def verify(certificate: Certificate) -> VerificationResult:
    """Structurally validate, then replay every obligation."""
    domain = getattr(certificate, "domain", "?")
    try:
        validate_certificate(certificate)
    except CertificateError as error:
        return VerificationResult(
            ok=False, domain=str(domain), checked=(), reason=f"structure: {error}"
        )
    replay = _REPLAYERS[certificate.domain]
    reason = replay(certificate.payload)
    checked = REQUIRED_OBLIGATIONS[certificate.domain]
    if reason is not None:
        return VerificationResult(
            ok=False, domain=certificate.domain, checked=checked, reason=reason
        )
    return VerificationResult(ok=True, domain=certificate.domain, checked=checked)


def verify_json(text: str) -> VerificationResult:
    """Verify a certificate given as its JSON wire form."""
    try:
        certificate = Certificate.from_json(text)
    except CertificateError as error:
        return VerificationResult(
            ok=False, domain="?", checked=(), reason=f"structure: {error}"
        )
    return verify(certificate)
