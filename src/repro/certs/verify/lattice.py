"""Obligation replay for lattice certificates (Theorems 2/3).

The payload tabulates the whole lattice, so the replay is pure finite
mathematics on int tables: first prove the tables actually describe a
bounded lattice and two lattice closures, then replay the witness chain
of Theorem 3 — ``safety = cl1.a``, ``liveness = a ∨ b`` for a recorded
``b ∈ cmp(cl2.a)``, the decomposition identity ``safety ∧ liveness =
a``, and every modular-law instance the proof leans on.  Nothing from
:mod:`repro.lattice` is imported; the certificate stands on its own.
"""

from __future__ import annotations

from ..model import SerializedLatticePayload

__all__ = ["replay_lattice"]


def replay_lattice(payload: SerializedLatticePayload) -> str | None:
    """Replay every obligation; return ``None`` on success or a short
    rejection reason."""
    n = payload.n
    meet = payload.meet
    join = payload.join

    def leq(x: int, y: int) -> bool:
        return meet[x][y] == x

    # lattice-laws: idempotent, commutative, associative, absorbing,
    # correctly bounded.
    for x in range(n):
        if meet[x][x] != x or join[x][x] != x:
            return "lattice-laws: idempotence fails"
        if meet[payload.bottom][x] != payload.bottom:
            return "lattice-laws: bottom is not least"
        if join[payload.top][x] != payload.top:
            return "lattice-laws: top is not greatest"
        for y in range(n):
            if meet[x][y] != meet[y][x] or join[x][y] != join[y][x]:
                return "lattice-laws: commutativity fails"
            if meet[x][join[x][y]] != x or join[x][meet[x][y]] != x:
                return "lattice-laws: absorption fails"
            for z in range(n):
                if meet[meet[x][y]][z] != meet[x][meet[y][z]]:
                    return "lattice-laws: meet associativity fails"
                if join[join[x][y]][z] != join[x][join[y][z]]:
                    return "lattice-laws: join associativity fails"

    # closure-axioms: both tables are extensive, idempotent, monotone.
    for name, table in (("cl1", payload.cl1), ("cl2", payload.cl2)):
        for x in range(n):
            if not leq(x, table[x]):
                return f"closure-axioms: {name} is not extensive"
            if table[table[x]] != table[x]:
                return f"closure-axioms: {name} is not idempotent"
            for y in range(n):
                if leq(x, y) and not leq(table[x], table[y]):
                    return f"closure-axioms: {name} is not monotone"

    # comparability: cl1 <= cl2 pointwise.
    for x in range(n):
        if not leq(payload.cl1[x], payload.cl2[x]):
            return "comparability: cl1 exceeds cl2"

    a = payload.element
    safety = payload.safety
    liveness = payload.liveness
    b = payload.complement

    # complement-witness: b ∈ cmp(cl2.a).
    closed2 = payload.cl2[a]
    if meet[closed2][b] != payload.bottom or join[closed2][b] != payload.top:
        return "complement-witness: b is not a complement of cl2(a)"

    # conjuncts: safety = cl1.a (hence cl1-safe) and liveness = a ∨ b
    # with cl2(liveness) = top (cl2-live, Lemma 4's conclusion).
    if safety != payload.cl1[a]:
        return "conjuncts: safety part is not cl1(a)"
    if payload.cl1[safety] != safety:
        return "conjuncts: safety part is not cl1-closed"
    if liveness != join[a][b]:
        return "conjuncts: liveness part is not a ∨ b"
    if payload.cl2[liveness] != payload.top:
        return "conjuncts: liveness part is not cl2-live"

    # identity: safety ∧ liveness = a.
    if meet[safety][liveness] != a:
        return "identity: safety ∧ liveness differs from the element"

    # modularity-instances: each (x, y, z) has x ≤ z and satisfies the
    # modular law, and the instance the Theorem-3 proof uses — x = a,
    # y = b, z = cl1(a) — must be among them.
    if (a, b, payload.cl1[a]) not in payload.modularity_instances:
        return "modularity-instances: the Theorem-3 instance is missing"
    for x, y, z in payload.modularity_instances:
        if not leq(x, z):
            return "modularity-instances: instance violates x ≤ z"
        if join[x][meet[y][z]] != meet[join[x][y]][z]:
            return "modularity-instances: modular law fails on an instance"
    return None
