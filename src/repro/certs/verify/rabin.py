"""Obligation replay for Rabin tree-automaton certificates (Theorem 9).

Rabin complementation is non-elementary, so — alone among the four
domains — the identity obligations here are *sample-extensional*: the
certificate carries concrete regular trees, and the verifier replays
the membership claims exactly rather than proving a language-level
identity (the honest scope is spelled out in DESIGN.md §10).  What *is*
replayed exactly, with naive semantics:

* ``closure-shape`` — the safety automaton is ``rfcl``-shaped over the
  original: an injective state map, the initial preserved, transitions
  exactly the original's restricted to the kept states, and a single
  trivial acceptance pair ``(Q', ∅)``; or (empty-language case) a
  verbatim copy of the original under the identity map;
* ``safety-membership`` — for trivialized safety automata, membership
  is a safety game (every infinite run accepts, only getting stuck
  loses), decided exactly by a greatest fixpoint on tree-vertex ×
  state pairs;
* ``membership-runs`` — each positive original claim carries a finite
  run graph, checked for consistency (root, labels, arities, chosen
  moves) and for acceptance: no reachable cycle may violate every
  Rabin pair (a Streett-style bad-cycle search over the run's SCCs);
* ``sample-identity`` — ``in_original ⟹ in_safety`` on every sample,
  which is exactly the decomposition identity restricted to samples
  (``liveness = original ∪ ¬safety`` makes the rest tautological).
"""

from __future__ import annotations

from ..model import RabinSample, SerializedRabinAutomaton, SerializedRabinPayload
from .common import strongly_connected_components

__all__ = ["replay_rabin"]


def replay_rabin(payload: SerializedRabinPayload) -> str | None:
    """Replay every obligation; return ``None`` on success or a short
    rejection reason."""
    trivialized = _is_trivialized(payload.safety)
    problem = _check_closure_shape(payload, trivialized)
    if problem is not None:
        return f"closure-shape: {problem}"

    for sample in payload.samples:
        if trivialized:
            member = _safety_member(payload.safety, sample)
            if member != sample.in_safety:
                return "safety-membership: safety claim does not replay"
        elif sample.in_safety != sample.in_original:
            # verbatim copy: identical automata must get identical claims
            return "safety-membership: claims differ on identical automata"

        if sample.in_original != bool(sample.run):
            return "membership-runs: run witness present iff claim is positive"
        if sample.run:
            problem = _check_run(payload.original, sample)
            if problem is not None:
                return f"membership-runs: {problem}"

        if sample.in_original and not sample.in_safety:
            return "sample-identity: member of B outside its closure"
    return None


def _is_trivialized(safety: SerializedRabinAutomaton) -> bool:
    """One pair ``(all states, ∅)`` — the non-empty ``rfcl`` image."""
    if len(safety.pairs) != 1:
        return False
    green, red = safety.pairs[0]
    return not red and frozenset(green) == frozenset(range(safety.n_states))


def _moves_table(automaton: SerializedRabinAutomaton) -> dict:
    return {(q, a): frozenset(moves) for q, a, moves in automaton.transitions}


def _check_closure_shape(
    payload: SerializedRabinPayload, trivialized: bool
) -> str | None:
    original = payload.original
    safety = payload.safety
    mapping = payload.safety_map
    original_moves = _moves_table(original)
    safety_moves = _moves_table(safety)
    if not trivialized:
        # empty-language case: rfcl(B) = B verbatim, identity map.
        if mapping != tuple(range(original.n_states)):
            return "copy mode requires the identity state map"
        if (safety.n_states != original.n_states
                or safety.initial != original.initial
                or safety_moves != original_moves
                or safety.pairs != original.pairs):
            return "copy mode requires a verbatim copy of the original"
        return None
    if mapping[safety.initial] != original.initial:
        return "safety initial does not map to the original initial"
    kept = frozenset(mapping)
    for q in range(safety.n_states):
        origin = mapping[q]
        for a in range(len(original.alphabet)):
            expected = frozenset(
                move for move in original_moves.get((origin, a), frozenset())
                if all(target in kept for target in move)
            )
            mapped = frozenset(
                tuple(mapping[target] for target in move)
                for move in safety_moves.get((q, a), frozenset())
            )
            if mapped != expected:
                return "safety transitions are not the restricted original's"
    return None


def _safety_member(safety: SerializedRabinAutomaton, sample: RabinSample) -> bool:
    """Membership in a trivial-acceptance automaton: the greatest
    fixpoint of "some move keeps every child alive" on (vertex, state)
    pairs — a safety game, decided exactly."""
    tree = sample.tree
    moves = _moves_table(safety)
    token_index = {token: i for i, token in enumerate(safety.alphabet)}
    alive = {
        (v, q) for v in range(tree.n_vertices) for q in range(safety.n_states)
    }
    changed = True
    while changed:
        changed = False
        for v, q in sorted(alive):
            symbol = token_index.get(tree.labels[v])
            options = moves.get((q, symbol), frozenset()) if symbol is not None else frozenset()
            if not any(
                all(
                    (tree.successors[v][i], move[i]) in alive
                    for i in range(len(move))
                )
                for move in options
            ):
                alive.discard((v, q))
                changed = True
    return (tree.root, safety.initial) in alive


def _check_run(
    original: SerializedRabinAutomaton, sample: RabinSample
) -> str | None:
    """Consistency plus acceptance of the run-graph witness."""
    tree = sample.tree
    run = sample.run
    moves = _moves_table(original)
    token_index = {token: i for i, token in enumerate(original.alphabet)}
    root = run[0]
    if root.vertex != tree.root or root.state != original.initial:
        return "run root does not read the tree root in the initial state"
    reachable = {0}
    frontier = [0]
    while frontier:
        index = frontier.pop()
        node = run[index]
        symbol = token_index[tree.labels[node.vertex]]
        move = tuple(run[child].state for child in node.children)
        if move not in moves.get((node.state, symbol), frozenset()):
            return "run node uses a move outside the transition relation"
        for direction, child in enumerate(node.children):
            if run[child].vertex != tree.successors[node.vertex][direction]:
                return "run child reads the wrong tree vertex"
            if child not in reachable:
                reachable.add(child)
                frontier.append(child)
    if len(reachable) != len(run):
        return "run graph contains unreachable nodes"
    adjacency = {index: list(run[index].children) for index in reachable}
    if _bad_cycle_exists(adjacency, run, original.pairs):
        return "run graph contains a rejecting cycle"
    return None


def _bad_cycle_exists(adjacency: dict, run, pairs) -> bool:
    """A cycle violating every Rabin pair — i.e. for all ``i``, it
    either avoids ``green_i`` or touches ``red_i``.  Classic Streett-
    emptiness recursion over SCCs: a pair satisfied at the whole-SCC
    level might still fail on a sub-cycle avoiding its greens, so
    remove those greens and recurse."""
    green_sets = [frozenset(green) for green, _red in pairs]
    red_sets = [frozenset(red) for _green, red in pairs]
    pending = [adjacency]
    while pending:
        graph = pending.pop()
        for component in strongly_connected_components(graph):
            if len(component) == 1:
                node = next(iter(component))
                if node not in graph.get(node, ()):
                    continue
            states = {run[node].state for node in component}
            satisfied = [
                i for i in range(len(pairs))
                if not states & red_sets[i] and states & green_sets[i]
            ]
            if not satisfied:
                # every pair fails on the cycle through all of C
                return True
            removed = frozenset().union(*(green_sets[i] for i in satisfied))
            survivors = {
                node for node in component if run[node].state not in removed
            }
            if survivors:
                pending.append({
                    node: [t for t in graph[node] if t in survivors]
                    for node in survivors
                })
    return False
