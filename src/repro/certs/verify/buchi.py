"""Obligation replay for Büchi/LTL certificates.

The certificate claims ``B = B_S ∩ B_L`` with ``B_S = lcl(B)`` and
``B_L`` dense.  The replay never trusts the issuer's constructions:

* ``closure-replay`` recomputes ``cl(B)`` naively and proves it
  language-equal to the certificate's ``B_S`` (two safety inclusions
  via subset-construction complements);
* ``safety-inclusion`` proves ``L(B) ⊆ L(B_S)`` directly;
* ``union-structure`` checks that ``B_L`` really is a disjoint union
  ``B ⊔ D`` under a fresh initial state, using the certificate's
  embedding as the isomorphism witness — this gives
  ``L(B_L) = L(B) ∪ L(D)`` structurally;
* ``disjointness`` proves ``L(B_S) ∩ L(D) = ∅``, which together with
  the two inclusions closes the identity ``L(B) = L(B_S) ∩ L(B_L)``;
* ``density`` recomputes ``cl(B_L)`` and proves its complement empty
  (``lcl(L(B_L)) = Σ^ω``);
* ``witnesses`` replays every recorded lasso membership bit in all
  three automata.
"""

from __future__ import annotations

from ..model import SerializedBuchiPayload
from .common import (
    Naut,
    accepts_lasso,
    from_serialized,
    is_empty,
    language_equal_safety,
    naive_closure,
    product,
    subset_complement,
    trim,
)

__all__ = ["replay_buchi"]


def replay_buchi(payload: SerializedBuchiPayload) -> str | None:
    """Replay every obligation; return ``None`` on success or a short
    rejection reason naming the first obligation that failed."""
    original = from_serialized(payload.original)
    safety = from_serialized(payload.safety)
    liveness = from_serialized(payload.liveness)

    # closure-replay: L(B_S) = lcl(L(B)), both sides reduced to trimmed
    # all-accepting form first (anything else is not a safety automaton).
    closed = naive_closure(original)
    trimmed_safety = trim(safety)
    if trimmed_safety is not None and trimmed_safety.accepting != trimmed_safety.states:
        return "closure-replay: safety part is not a safety automaton"
    if not language_equal_safety(closed, trimmed_safety):
        return "closure-replay: safety part differs from the recomputed closure"

    # safety-inclusion: L(B) ⊆ L(B_S).
    if not is_empty(original):
        if trimmed_safety is None:
            return "safety-inclusion: original non-empty but safety part empty"
        if not is_empty(product(original, subset_complement(trimmed_safety))):
            return "safety-inclusion: found a word of B outside B_S"

    # union-structure: B_L = B ⊔ D under a fresh initial.
    problem = _check_union_structure(payload, original, liveness)
    if problem is not None:
        return f"union-structure: {problem}"
    complement_branch = _right_branch(payload, liveness)

    # disjointness: L(B_S) ∩ L(D) = ∅.
    if trimmed_safety is not None and not is_empty(complement_branch):
        if not is_empty(product(trimmed_safety, complement_branch)):
            return "disjointness: safety part meets the complement branch"

    # density: lcl(L(B_L)) = Σ^ω.
    closed_liveness = naive_closure(liveness)
    if closed_liveness is None:
        return "density: liveness part has empty language"
    if not is_empty(subset_complement(closed_liveness)):
        return "density: closure of the liveness part misses some word"

    # witnesses: recorded membership bits replay exactly, and a
    # non-empty original language must come with a member witness.
    for witness in payload.witnesses:
        bits = (
            accepts_lasso(original, witness.prefix, witness.cycle),
            accepts_lasso(safety, witness.prefix, witness.cycle),
            accepts_lasso(liveness, witness.prefix, witness.cycle),
        )
        if bits != (witness.in_original, witness.in_safety, witness.in_liveness):
            return "witnesses: recorded membership bits do not replay"
        if witness.in_original != (witness.in_safety and witness.in_liveness):
            return "witnesses: identity fails on a recorded lasso"
    if not is_empty(original) and not any(
        w.in_original for w in payload.witnesses
    ):
        return "witnesses: non-empty original language but no member witness"
    return None


def _check_union_structure(
    payload: SerializedBuchiPayload, original: Naut, liveness: Naut
) -> str | None:
    """``B_L`` decomposes as embedded-``B`` ⊔ right block, glued under a
    fresh initial state with no incoming edges."""
    embedding = payload.embedding
    left = frozenset(embedding)
    right = frozenset(payload.right_block)
    fresh = liveness.initial
    if fresh in left or fresh in right:
        return "fresh initial state must sit outside both blocks"
    if left | right | {fresh} != liveness.states:
        return "blocks plus the fresh initial must cover the liveness states"
    for (state, symbol), targets in liveness.transitions.items():
        if fresh in targets:
            return "fresh initial state has an incoming edge"
        if state in right and not targets <= right:
            return "right block is not transition-closed"
    # the embedding is a transition- and acceptance-isomorphism of B
    # onto the left block
    for q in original.states:
        image = embedding[q]
        if (image in liveness.accepting) != (q in original.accepting):
            return "embedding does not preserve acceptance"
        for symbol in range(original.n_symbols):
            expected = frozenset(
                embedding[target] for target in original.successors(q, symbol)
            )
            if liveness.successors(image, symbol) != expected:
                return "embedding does not preserve transitions"
    # the fresh initial simulates B's initial on the left block exactly
    for symbol in range(original.n_symbols):
        expected = frozenset(
            embedding[target]
            for target in original.successors(original.initial, symbol)
        )
        if liveness.successors(fresh, symbol) & left != expected:
            return "fresh initial does not simulate the original initial"
    return None


def _right_branch(payload: SerializedBuchiPayload, liveness: Naut) -> Naut:
    """``D``: the right block plus the fresh initial restricted to it —
    by union-structure, ``L(B_L) = L(B) ∪ L(D)``."""
    right = frozenset(payload.right_block)
    fresh = liveness.initial
    states = right | {fresh}
    transitions = {}
    for (state, symbol), targets in liveness.transitions.items():
        if state in right:
            transitions[state, symbol] = targets
        elif state == fresh:
            kept = targets & right
            if kept:
                transitions[state, symbol] = kept
    return Naut(
        n_symbols=liveness.n_symbols,
        states=states,
        initial=fresh,
        transitions=transitions,
        accepting=liveness.accepting & right,
    )
