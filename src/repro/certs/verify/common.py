"""Naive automaton semantics for the certificate verifier.

Everything here is deliberately re-implemented from scratch over plain
hashable states — dict-of-frozenset transition maps, BFS reachability,
an iterative Kosaraju SCC pass, subset-construction complementation of
safety automata, a two-phase Büchi product, and lasso membership by
cycle search.  None of it touches :mod:`repro.automata` (or any other
``repro`` package): the point of the verifier is that a bug in the
dense kernel cannot certify itself, so the replay layer must share no
code with the layer being checked (checks rule RC008 enforces the
import boundary).

The algorithms favor obviousness over speed; certificates are small by
construction and the verifier is the trusted base of the whole
subsystem.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..model import SerializedAutomaton

__all__ = [
    "Naut",
    "accepts_lasso",
    "from_serialized",
    "is_empty",
    "language_equal_safety",
    "live_states",
    "naive_closure",
    "product",
    "reachable_states",
    "strongly_connected_components",
    "subset_complement",
    "trim",
]


@dataclass(frozen=True)
class Naut:
    """A naive Büchi automaton: hashable states, indexed symbols."""

    n_symbols: int
    states: frozenset
    initial: object
    transitions: dict  # (state, symbol index) -> frozenset of states
    accepting: frozenset

    def successors(self, state, symbol: int) -> frozenset:
        return self.transitions.get((state, symbol), frozenset())


def from_serialized(automaton: SerializedAutomaton) -> Naut:
    """The naive form of a serialized automaton (states = ints)."""
    transitions = {
        (q, a): frozenset(targets)
        for q, a, targets in automaton.transitions
    }
    return Naut(
        n_symbols=len(automaton.alphabet),
        states=frozenset(range(automaton.n_states)),
        initial=automaton.initial,
        transitions=transitions,
        accepting=frozenset(automaton.accepting),
    )


def reachable_states(naut: Naut) -> frozenset:
    """BFS from the initial state over all symbols."""
    seen = {naut.initial}
    frontier = [naut.initial]
    while frontier:
        state = frontier.pop()
        for symbol in range(naut.n_symbols):
            for target in naut.successors(state, symbol):
                if target not in seen:
                    seen.add(target)
                    frontier.append(target)
    return frozenset(seen)


def strongly_connected_components(adjacency: dict) -> list:
    """Kosaraju's algorithm, fully iterative; ``adjacency`` maps every
    node to an iterable of successor nodes.  Returns a list of sets."""
    order = []
    visited = set()
    for root in adjacency:
        if root in visited:
            continue
        stack = [(root, iter(adjacency.get(root, ())))]
        visited.add(root)
        while stack:
            node, successors = stack[-1]
            advanced = False
            for target in successors:
                if target not in visited:
                    visited.add(target)
                    stack.append((target, iter(adjacency.get(target, ()))))
                    advanced = True
                    break
            if not advanced:
                stack.pop()
                order.append(node)
    transpose: dict = {node: [] for node in adjacency}
    for node, successors in adjacency.items():
        for target in successors:
            transpose.setdefault(target, []).append(node)
    assigned = set()
    components = []
    for node in reversed(order):
        if node in assigned:
            continue
        component = {node}
        assigned.add(node)
        frontier = [node]
        while frontier:
            current = frontier.pop()
            for target in transpose.get(current, ()):
                if target not in assigned:
                    assigned.add(target)
                    component.add(target)
                    frontier.append(target)
        components.append(component)
    return components


def _adjacency(naut: Naut) -> dict:
    adjacency: dict = {state: set() for state in naut.states}
    for (state, _symbol), targets in naut.transitions.items():
        adjacency[state].update(targets)
    return adjacency


def _cyclic_components(adjacency: dict) -> list:
    """The nontrivial SCCs: size > 1, or a single node with a self-loop."""
    return [
        component
        for component in strongly_connected_components(adjacency)
        if len(component) > 1
        or next(iter(component)) in adjacency.get(next(iter(component)), ())
    ]


def live_states(naut: Naut) -> frozenset:
    """States that can reach an accepting state lying on a cycle — the
    states with non-empty language."""
    adjacency = _adjacency(naut)
    anchors = set()
    for component in _cyclic_components(adjacency):
        anchors.update(component & naut.accepting)
    # backward closure over the transpose graph
    transpose: dict = {state: set() for state in naut.states}
    for state, targets in adjacency.items():
        for target in targets:
            transpose[target].add(state)
    live = set(anchors)
    frontier = list(anchors)
    while frontier:
        state = frontier.pop()
        for source in transpose[state]:
            if source not in live:
                live.add(source)
                frontier.append(source)
    return frozenset(live)


def trim(naut: Naut):
    """Restrict to reachable states with non-empty language, or ``None``
    when the language is empty (the initial state is useless)."""
    keep = reachable_states(naut) & live_states(naut)
    if naut.initial not in keep:
        return None
    transitions = {}
    for (state, symbol), targets in naut.transitions.items():
        if state not in keep:
            continue
        kept = targets & keep
        if kept:
            transitions[state, symbol] = kept
    return Naut(
        n_symbols=naut.n_symbols,
        states=frozenset(keep),
        initial=naut.initial,
        transitions=transitions,
        accepting=naut.accepting & keep,
    )


def is_empty(naut) -> bool:
    """``L = ∅``?  Accepts ``None`` (the canonical empty automaton)."""
    if naut is None:
        return True
    return naut.initial not in live_states(naut)


def naive_closure(naut: Naut):
    """``cl(B)``: trim, then make every state accepting.  Returns
    ``None`` for the empty language (``lcl.∅ = ∅`` here)."""
    trimmed = trim(naut)
    if trimmed is None:
        return None
    return Naut(
        n_symbols=trimmed.n_symbols,
        states=trimmed.states,
        initial=trimmed.initial,
        transitions=trimmed.transitions,
        accepting=trimmed.states,
    )


def subset_complement(naut: Naut) -> Naut:
    """Complement of a *safety* automaton (every state accepting) by
    subset construction: the complement accepts exactly the words whose
    subset run dies (reaches the empty set, an accepting sink)."""
    if naut.accepting != naut.states:
        raise ValueError("subset_complement needs an all-accepting automaton")
    dead = frozenset()
    initial = frozenset({naut.initial})
    transitions: dict = {}
    seen = {initial}
    frontier = [initial]
    while frontier:
        subset = frontier.pop()
        for symbol in range(naut.n_symbols):
            target = frozenset(
                t for state in subset for t in naut.successors(state, symbol)
            )
            transitions[subset, symbol] = frozenset({target})
            if target not in seen:
                seen.add(target)
                frontier.append(target)
    if dead not in seen:
        seen.add(dead)
        for symbol in range(naut.n_symbols):
            transitions[dead, symbol] = frozenset({dead})
    return Naut(
        n_symbols=naut.n_symbols,
        states=frozenset(seen),
        initial=initial,
        transitions=transitions,
        accepting=frozenset({dead}),
    )


def product(left: Naut, right: Naut) -> Naut:
    """``L(left) ∩ L(right)`` by the standard two-phase construction;
    states are ``(p, q, phase)`` and acceptance marks the 1→0 flips."""
    if left.n_symbols != right.n_symbols:
        raise ValueError("product needs automata over one alphabet")

    def next_phase(phase: int, p, q) -> int:
        if phase == 0 and p in left.accepting:
            return 1
        if phase == 1 and q in right.accepting:
            return 0
        return phase

    initial = (left.initial, right.initial, 0)
    states = {initial}
    transitions: dict = {}
    frontier = [initial]
    while frontier:
        state = frontier.pop()
        p, q, phase = state
        for symbol in range(left.n_symbols):
            targets = set()
            for np in left.successors(p, symbol):
                for nq in right.successors(q, symbol):
                    targets.add((np, nq, next_phase(phase, p, q)))
            if not targets:
                continue
            transitions[state, symbol] = frozenset(targets)
            for target in targets:
                if target not in states:
                    states.add(target)
                    frontier.append(target)
    accepting = frozenset(
        (p, q, phase) for (p, q, phase) in states
        if phase == 1 and q in right.accepting
    )
    return Naut(
        n_symbols=left.n_symbols,
        states=frozenset(states),
        initial=initial,
        transitions=transitions,
        accepting=accepting,
    )


def _included_in_safety(left, right) -> bool:
    """``L(left) ⊆ L(right)`` where ``right`` is a trimmed all-accepting
    safety automaton (or ``None`` for the empty language)."""
    if is_empty(left):
        return True
    if right is None:
        return False
    return is_empty(product(left, subset_complement(right)))


def language_equal_safety(left, right) -> bool:
    """Language equality of two safety automata, each either a trimmed
    all-accepting :class:`Naut` or ``None`` (the empty language)."""
    if left is None or right is None:
        return is_empty(left) == is_empty(right)
    return _included_in_safety(left, right) and _included_in_safety(right, left)


def accepts_lasso(naut: Naut, prefix, cycle) -> bool:
    """Membership of ``prefix · cycle^ω`` (symbol-index sequences) by
    explicit cycle search on the (position, state) spine graph."""
    if not cycle:
        raise ValueError("lasso cycle must be non-empty")
    spine = tuple(prefix) + tuple(cycle)
    loop_start = len(prefix)

    def advance(position: int) -> int:
        return position + 1 if position + 1 < len(spine) else loop_start

    start = (0, naut.initial)
    adjacency: dict = {}
    frontier = [start]
    while frontier:
        node = frontier.pop()
        if node in adjacency:
            continue
        position, state = node
        symbol = spine[position]
        successors = [
            (advance(position), target)
            for target in naut.successors(state, symbol)
        ]
        adjacency[node] = successors
        frontier.extend(successors)
    for component in _cyclic_components(adjacency):
        if any(state in naut.accepting for (_position, state) in component):
            return True
    return False
