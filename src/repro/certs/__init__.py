"""Machine-checkable decomposition certificates (DESIGN.md §10).

Every decomposition answer in this repo can be shipped with a
*certificate*: a frozen, JSON-round-trippable proof object carrying the
serialized answer, the witnesses the theorems call for, and a content
digest.  An independent verifier replays every obligation with naive
hashable-state semantics — it shares no code with the dense kernel that
produced the answer (checks rule RC008 enforces the import boundary), so
a kernel bug cannot certify itself.

Three entry points:

* :func:`certificate_for` — issue a sealed certificate for a finished
  decomposition (imports the prover stack lazily; the verifier side of
  the package stays importable without it);
* :func:`verify_certificate` — replay all obligations, with obs
  counters and a latency histogram around the untouched
  :mod:`repro.certs.verify` core;
* :func:`tla_skeleton` — export the TLA+ module skeleton
  (``Safety == …``, ``Liveness == …``, theorem stubs).
"""

from __future__ import annotations

import time

from repro.obs.metrics import REGISTRY

from .model import (
    CERT_VERSION,
    Certificate,
    CertificateError,
    validate_certificate,
)
from .tla import tla_skeleton
from .verify import VerificationResult, verify_json

__all__ = [
    "CERT_VERSION",
    "Certificate",
    "CertificateError",
    "VerificationResult",
    "certificate_for",
    "tla_skeleton",
    "validate_certificate",
    "verify_certificate",
    "verify_json",
]

#: Verification observability.  Issue-side metrics live in
#: :mod:`repro.certs.build`; none of this touches :mod:`repro.certs.verify`,
#: which stays stdlib-pure.
_VERIFIED = REGISTRY.counter(
    "repro_certs_verified_total",
    "certificate verifications, by domain and outcome",
    ("domain", "outcome"),
)
_VERIFY_SECONDS = REGISTRY.histogram(
    "repro_certs_verify_seconds", "wall time to replay one certificate"
)


def certificate_for(decomposition, **options) -> Certificate:
    """Issue a certificate for a decomposition — see
    :func:`repro.certs.build.certificate_for` (imported lazily so the
    verifier side never drags in the prover stack)."""
    from .build import certificate_for as _build

    return _build(decomposition, **options)


def verify_certificate(certificate: Certificate) -> VerificationResult:
    """Independently replay a certificate's obligations, with metrics."""
    started = time.perf_counter()
    from .verify import verify as _replay

    result = _replay(certificate)
    _VERIFY_SECONDS.record(time.perf_counter() - started)
    _VERIFIED.labels(
        domain=result.domain, outcome="accepted" if result.ok else "rejected"
    ).add()
    return result
