"""Certificate issuance — the *prover* side of :mod:`repro.certs`.

Unlike :mod:`repro.certs.verify`, this module runs on the full repo
stack (dense kernel, game bridge, lattice tables): it takes a finished
decomposition, serializes the concrete answer into the frozen model
vocabulary, gathers the structural and extensional witnesses each
domain's obligations call for, and seals the result under a content
digest.  Nothing issued here is trusted — the point of the subsystem is
that :func:`repro.certs.verify_certificate` replays every obligation
with independent naive semantics.

Dispatch mirrors :func:`repro.analysis.decompose`'s return types, but by
shape rather than import: lattice results arrive as the facade's
``BoundDecomposition`` (``lattice``/``cl1``/``cl2``/``inner``
attributes), which this module must not import — ``repro.analysis``
imports *us* for ``certify=True``, and the checks layering (RC003)
forbids the cycle.
"""

from __future__ import annotations

import time

from repro.buchi.automaton import BuchiAutomaton
from repro.buchi.decomposition import BuchiDecomposition
from repro.buchi.emptiness import find_accepted_word
from repro.canonical import stable_token
from repro.obs.metrics import REGISTRY
from repro.omega.word import LassoWord

from .model import (
    BUCHI_OBLIGATIONS,
    LATTICE_OBLIGATIONS,
    RABIN_OBLIGATIONS,
    Certificate,
    CertificateError,
    LassoWitness,
    RabinSample,
    RunNode,
    SerializedAutomaton,
    SerializedBuchiPayload,
    SerializedLatticePayload,
    SerializedRabinAutomaton,
    SerializedRabinPayload,
    SerializedTree,
)

__all__ = ["certificate_for"]

_ISSUED = REGISTRY.counter(
    "repro_certs_issued_total", "certificates issued, by domain", ("domain",)
)
_ISSUE_SECONDS = REGISTRY.histogram(
    "repro_certs_issue_seconds", "wall time to serialize and seal one certificate"
)


def certificate_for(decomposition, *, domain=None, subject="", samples=()):
    """Issue a sealed :class:`~repro.certs.model.Certificate` for a
    finished decomposition.

    Parameters
    ----------
    decomposition:
        A ``BuchiDecomposition``, a ``RabinDecomposition``, or the
        analysis facade's ``BoundDecomposition`` (recognized by shape).
    domain:
        Optional override of the inferred domain tag — the LTL route
        passes ``"ltl"`` for the Büchi decomposition of a formula's
        automaton.
    subject:
        Display name recorded in the payload (shown by ``summary()``).
    samples:
        Rabin only: extra :class:`~repro.trees.regular.RegularTree`
        samples to record membership claims for, on top of the
        automatically gathered ones.
    """
    started = time.perf_counter()
    if isinstance(decomposition, BuchiDecomposition):
        domain = domain or "buchi"
        if domain not in ("buchi", "ltl"):
            raise CertificateError(f"bad domain {domain!r} for a Büchi subject")
        payload = _buchi_payload(decomposition, subject)
    elif _looks_like_bound_lattice(decomposition):
        if domain not in (None, "lattice"):
            raise CertificateError(f"bad domain {domain!r} for a lattice subject")
        domain = "lattice"
        payload = _lattice_payload(decomposition, subject)
    elif _looks_like_rabin(decomposition):
        if domain not in (None, "rabin"):
            raise CertificateError(f"bad domain {domain!r} for a Rabin subject")
        domain = "rabin"
        payload = _rabin_payload(decomposition, subject, samples)
    else:
        raise CertificateError(
            f"don't know how to certify {type(decomposition).__name__!r}"
        )
    certificate = Certificate.seal(domain, payload)
    _ISSUED.labels(domain=domain).add()
    _ISSUE_SECONDS.record(time.perf_counter() - started)
    return certificate


def _looks_like_bound_lattice(decomposition) -> bool:
    return all(
        hasattr(decomposition, attr) for attr in ("lattice", "cl1", "cl2", "inner")
    )


def _looks_like_rabin(decomposition) -> bool:
    original = getattr(decomposition, "original", None)
    return hasattr(original, "pairs") and hasattr(original, "branching")


# -- Büchi / LTL ----------------------------------------------------------------


def _buchi_payload(
    decomposition: BuchiDecomposition, subject: str
) -> SerializedBuchiPayload:
    original = decomposition.original
    safety = decomposition.safety
    liveness = decomposition.liveness
    symbols = tuple(sorted(original.alphabet, key=repr))
    symbol_index = {a: i for i, a in enumerate(symbols)}
    tokens = tuple(stable_token(a) for a in symbols)

    serialized_original, original_index = _serialize_buchi(original, tokens, symbols)
    serialized_safety, _ = _serialize_buchi(safety, tokens, symbols)
    serialized_liveness, liveness_index = _serialize_buchi(liveness, tokens, symbols)

    # the union construction tags the embedded copy of B with 'l' and the
    # ¬cl(B) branch with 'r'; recover both blocks from those tags
    left = {("l", q) for q in original.states}
    fresh = liveness.initial
    if not left <= liveness.states or fresh in left:
        raise CertificateError(
            "liveness automaton does not have the §2.4 union shape"
        )
    order = sorted(original.states, key=repr)
    embedding = tuple(liveness_index[("l", q)] for q in order)
    right_block = tuple(
        sorted(
            liveness_index[q]
            for q in liveness.states
            if q not in left and q != fresh
        )
    )
    witnesses = _gather_witnesses(
        original, safety, liveness, symbols, symbol_index
    )
    return SerializedBuchiPayload(
        original=serialized_original,
        safety=serialized_safety,
        liveness=serialized_liveness,
        embedding=embedding,
        right_block=right_block,
        witnesses=witnesses,
        obligations=BUCHI_OBLIGATIONS,
        subject=subject or original.name,
    )


def _serialize_buchi(
    automaton: BuchiAutomaton, tokens: tuple, symbols: tuple
) -> tuple:
    order = sorted(automaton.states, key=repr)
    index = {q: i for i, q in enumerate(order)}
    rows = []
    for (q, a), targets in automaton.transitions.items():
        if not targets:
            continue
        rows.append(
            (index[q], symbols.index(a), tuple(sorted(index[r] for r in targets)))
        )
    serialized = SerializedAutomaton(
        n_states=len(order),
        alphabet=tokens,
        initial=index[automaton.initial],
        transitions=tuple(sorted(rows)),
        accepting=tuple(sorted(index[q] for q in automaton.accepting)),
    )
    return serialized, index


def _gather_witnesses(original, safety, liveness, symbols, symbol_index) -> tuple:
    candidates = [
        find_accepted_word(original),
        find_accepted_word(liveness),
        LassoWord((), (symbols[0],)),
    ]
    witnesses = []
    seen = set()
    for word in candidates:
        if word is None:
            continue
        prefix = tuple(symbol_index[a] for a in word.prefix)
        cycle = tuple(symbol_index[a] for a in word.cycle)
        if (prefix, cycle) in seen:
            continue
        seen.add((prefix, cycle))
        witnesses.append(
            LassoWitness(
                prefix=prefix,
                cycle=cycle,
                in_original=original.accepts(word),
                in_safety=safety.accepts(word),
                in_liveness=liveness.accepts(word),
            )
        )
    return tuple(witnesses)


# -- lattice --------------------------------------------------------------------


def _lattice_payload(decomposition, subject: str) -> SerializedLatticePayload:
    lattice = decomposition.lattice
    cl1 = decomposition.cl1
    cl2 = decomposition.cl2
    elements = lattice.elements
    index = {x: i for i, x in enumerate(elements)}
    n = len(elements)
    meet = tuple(
        tuple(index[lattice.meet(x, y)] for y in elements) for x in elements
    )
    join = tuple(
        tuple(index[lattice.join(x, y)] for y in elements) for x in elements
    )
    a = index[decomposition.element]
    b = index[decomposition.complement_used]
    cl1_table = tuple(index[cl1(x)] for x in elements)
    cl2_table = tuple(index[cl2(x)] for x in elements)
    # the instance Theorem 3's proof leans on (x=a, y=b, z=cl1.a), plus
    # the trivially-bounded one so the list never collapses to a point
    instances = tuple(
        dict.fromkeys([(a, b, cl1_table[a]), (index[lattice.bottom], b, index[lattice.top])])
    )
    return SerializedLatticePayload(
        n=n,
        meet=meet,
        join=join,
        bottom=index[lattice.bottom],
        top=index[lattice.top],
        cl1=cl1_table,
        cl2=cl2_table,
        element=a,
        safety=index[decomposition.safety],
        liveness=index[decomposition.liveness],
        complement=b,
        modularity_instances=instances,
        obligations=LATTICE_OBLIGATIONS,
        elements=tuple(stable_token(x) for x in elements),
        subject=subject or f"{cl1.name}/{cl2.name} decomposition",
    )


# -- Rabin ----------------------------------------------------------------------


def _rabin_payload(decomposition, subject: str, samples) -> SerializedRabinPayload:
    from repro.rabin.games_bridge import (
        accepts_tree,
        emptiness_witness,
        membership_run,
    )
    from repro.trees.regular import RegularTree

    original = decomposition.original
    safety = decomposition.safety
    symbols = tuple(sorted(original.alphabet, key=repr))
    tokens = tuple(stable_token(a) for a in symbols)
    token_of = dict(zip(symbols, tokens))

    serialized_original, original_index = _serialize_rabin(
        original, tokens, symbols
    )
    serialized_safety, safety_index = _serialize_rabin(safety, tokens, symbols)
    safety_order = sorted(safety.states, key=repr)
    safety_map = tuple(original_index[q] for q in safety_order)

    trees = list(samples)
    trees.append(emptiness_witness(original))
    trees.append(emptiness_witness(safety))
    for a in symbols[:2]:
        trees.append(RegularTree.constant(a, k=original.branching))

    recorded = []
    seen = set()
    for tree in trees:
        if tree is None:
            continue
        if not tree.symbols() <= set(symbols):
            raise CertificateError(
                "sample tree uses labels outside the automaton alphabet"
            )
        serialized_tree, vertex_index = _serialize_tree(tree, token_of)
        key = (serialized_tree.labels, serialized_tree.successors,
               serialized_tree.root)
        if key in seen:
            continue
        seen.add(key)
        in_original = accepts_tree(original, tree)
        run = ()
        if in_original:
            raw = membership_run(original, tree)
            if raw is None:
                raise CertificateError(
                    "membership and run extraction disagree on a sample"
                )
            run = tuple(
                RunNode(
                    vertex=vertex_index[v],
                    state=original_index[q],
                    children=children,
                )
                for v, q, children in raw
            )
        recorded.append(
            RabinSample(
                tree=serialized_tree,
                in_original=in_original,
                in_safety=accepts_tree(safety, tree),
                run=run,
            )
        )
    if not recorded:
        raise CertificateError("no usable sample trees for the Rabin certificate")
    return SerializedRabinPayload(
        original=serialized_original,
        safety=serialized_safety,
        safety_map=safety_map,
        samples=tuple(recorded),
        obligations=RABIN_OBLIGATIONS,
        subject=subject or original.name,
    )


def _serialize_rabin(automaton, tokens: tuple, symbols: tuple) -> tuple:
    order = sorted(automaton.states, key=repr)
    index = {q: i for i, q in enumerate(order)}
    rows = []
    for (q, a), moves in automaton.transitions.items():
        if not moves:
            continue
        rows.append(
            (
                index[q],
                symbols.index(a),
                tuple(sorted(tuple(index[s] for s in move) for move in moves)),
            )
        )
    serialized = SerializedRabinAutomaton(
        n_states=len(order),
        alphabet=tokens,
        initial=index[automaton.initial],
        branching=automaton.branching,
        transitions=tuple(sorted(rows)),
        pairs=tuple(
            (
                tuple(sorted(index[q] for q in pair.green)),
                tuple(sorted(index[q] for q in pair.red)),
            )
            for pair in automaton.pairs
        ),
    )
    return serialized, index


def _serialize_tree(tree, token_of: dict) -> tuple:
    order = [tree.root]
    seen = {tree.root}
    i = 0
    while i < len(order):
        v = order[i]
        i += 1
        for s in tree.successors_of_vertex(v):
            if s not in seen:
                seen.add(s)
                order.append(s)
    index = {v: i for i, v in enumerate(order)}
    serialized = SerializedTree(
        n_vertices=len(order),
        labels=tuple(token_of[tree.label_of_vertex(v)] for v in order),
        successors=tuple(
            tuple(index[s] for s in tree.successors_of_vertex(v)) for v in order
        ),
        root=0,
    )
    return serialized, index
