"""TLA+ skeleton export for decomposition certificates.

The exemplar form (see SNIPPETS.md) states the split as two named
definitions and two theorem stubs — ``System => []Safety`` discharged by
an inductive argument, ``System => Liveness`` left to fairness — and
that is exactly the consumable shape of the paper's decomposition: a
certificate ``B = B_S ∩ B_L`` *is* the claim that the property splits
into a ``[]``-provable part and a dense remainder.

This module renders a certificate into such a skeleton: the automata
(or lattice tables) become commented context, ``Safety`` / ``Liveness``
become definitions over an abstract behavior variable, and the theorem
obligations the verifier replayed become ``THEOREM`` stubs with
``PROOF OMITTED`` bodies for a human (or TLAPS) to take over.  Stdlib
only, like everything on the trusted side of :mod:`repro.certs`.
"""

from __future__ import annotations

import re

from .model import (
    Certificate,
    CertificateError,
    SerializedBuchiPayload,
    SerializedLatticePayload,
    SerializedRabinPayload,
)

__all__ = ["tla_skeleton"]

_MODULE_WIDTH = 77


def tla_skeleton(certificate: Certificate, module: str = "") -> str:
    """The TLA+ module skeleton for one certificate."""
    name = module or _module_name(certificate)
    payload = certificate.payload
    if isinstance(payload, SerializedBuchiPayload):
        body = _buchi_body(payload)
    elif isinstance(payload, SerializedLatticePayload):
        body = _lattice_body(payload)
    elif isinstance(payload, SerializedRabinPayload):
        body = _rabin_body(payload)
    else:
        raise CertificateError(
            f"no TLA+ skeleton for payload {type(payload).__name__!r}"
        )
    header = f" MODULE {name} "
    dashes = _MODULE_WIDTH - len(header)
    left = dashes // 2
    lines = [
        "-" * left + header + "-" * (dashes - left),
        f"(* Exported from a repro.certs certificate ({certificate.domain}),",
        f"   digest {certificate.digest[:16]}…; the verifier replayed:",
        f"   {', '.join(certificate.obligations)}. *)",
        "EXTENDS Naturals, Sequences, TLAPS",
        "",
    ]
    lines.extend(body)
    lines.extend([
        "",
        "THEOREM DecompositionIdentity == Prop <=> (Safety /\\ Liveness)",
        "PROOF OMITTED  \\* replayed by repro.certs.verify",
        "",
        "THEOREM SafetyIsSafety == System => []Safety",
        "PROOF OMITTED  \\* Safety is the canonical closure cl(Prop)",
        "",
        "THEOREM LivenessIsDense == System => Liveness",
        "PROOF OMITTED  \\* needs fairness: Liveness is dense (cl = TRUE)",
        "",
        "=" * _MODULE_WIDTH,
    ])
    return "\n".join(lines) + "\n"


def _module_name(certificate: Certificate) -> str:
    subject = getattr(certificate.payload, "subject", "") or certificate.domain
    cleaned = re.sub(r"[^A-Za-z0-9]", "", subject) or "Decomposition"
    if cleaned[0].isdigit():
        cleaned = "M" + cleaned
    return f"{cleaned}Cert"


def _symbol_names(alphabet: tuple) -> list:
    return [f"sym{i}" for i in range(len(alphabet))]


def _buchi_body(payload: SerializedBuchiPayload) -> list:
    names = _symbol_names(payload.original.alphabet)
    lines = [
        f"(* Alphabet: {len(names)} symbols; behavior is one infinite word",
        "   over them, modeled as a variable read one symbol per step. *)",
        f"CONSTANTS {', '.join(names)}",
        "VARIABLE sym",
        "vars == <<sym>>",
        "",
        f"Sigma == {{{', '.join(names)}}}",
        "Init == sym \\in Sigma",
        "Next == sym' \\in Sigma",
        "System == Init /\\ [][Next]_vars",
        "",
        f"(* Prop: L(B), {payload.original.n_states} states,"
        f" {len(payload.original.accepting)} accepting. *)",
        "Prop == TRUE  \\* TODO: transcribe the Buchi acceptance of B",
        "",
        f"(* Safety == L(B_S) = cl(L(B)): {payload.safety.n_states} states,",
        "   every state accepting — violations occur at a finite prefix. *)",
        "Safety == TRUE  \\* TODO: transcribe the safety automaton B_S",
        "",
        f"(* Liveness == L(B_L) = L(B) \\cup ~cl(L(B)):"
        f" {payload.liveness.n_states} states, dense. *)",
        "Liveness == TRUE  \\* TODO: transcribe the liveness automaton B_L",
    ]
    return lines


def _lattice_body(payload: SerializedLatticePayload) -> list:
    lines = [
        f"(* A {payload.n}-element lattice; elements are 0..{payload.n - 1},",
        "   the order is the certificate's meet table.  The decomposition is",
        f"   element {payload.element} = {payload.safety} /\\ "
        f"{payload.liveness} with complement witness {payload.complement}. *)",
        f"Elems == 0..{payload.n - 1}",
        "VARIABLE x",
        "vars == <<x>>",
        "",
        "Init == x \\in Elems",
        "Next == x' \\in Elems",
        "System == Init /\\ [][Next]_vars",
        "",
        f"Prop == x = {payload.element}",
        f"Safety == x = {payload.safety}  \\* cl1(a): the safety conjunct",
        f"Liveness == x = {payload.liveness}  \\* a \\/ b: the liveness conjunct",
    ]
    return lines


def _rabin_body(payload: SerializedRabinPayload) -> list:
    names = _symbol_names(payload.original.alphabet)
    lines = [
        f"(* A {payload.original.branching}-ary Rabin tree automaton with",
        f"   {payload.original.n_states} states and"
        f" {len(payload.original.pairs)} acceptance pair(s); behavior is one",
        "   infinite tree, modeled abstractly. *)",
        f"CONSTANTS {', '.join(names)}",
        "VARIABLE tree",
        "vars == <<tree>>",
        "",
        "Init == TRUE",
        "Next == TRUE",
        "System == Init /\\ [][Next]_vars",
        "",
        "Prop == TRUE  \\* TODO: transcribe the Rabin acceptance of B",
        f"(* Safety == L(rfcl B): {payload.safety.n_states} states,"
        f" trivialized acceptance. *)",
        "Safety == TRUE  \\* TODO: transcribe the closure automaton rfcl(B)",
        "Liveness == TRUE  \\* L(B) \\cup ~L(rfcl B) — dense by Theorem 9",
    ]
    return lines
