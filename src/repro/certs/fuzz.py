"""Certificate corruption fuzzing: every mutation must be rejected.

The harness issues genuine certificates across all four domains (using
the per-package decomposition internals directly, so it stays off the
analysis facade and out of the RC003 import cycle), then applies
*guaranteed-invalidating* mutations to their wire form — digest
bit-flips, domain swaps, dropped obligations, witness-bit flips,
embedding corruption, lattice index shifts, dropped run witnesses —
reseals the digest where the point is to stress the *replay* layer
rather than the digest check, and asserts that
:func:`repro.certs.verify.verify_json` rejects every single corruption.

Runs standalone (CI pins the seed)::

    PYTHONPATH=src python -m repro.certs.fuzz --seed 7 --rounds 500
"""

from __future__ import annotations

import argparse
import copy
import json
import random
from types import MappingProxyType, SimpleNamespace

from .model import payload_digest
from .verify import verify_json

__all__ = ["corruptions_for", "fuzz", "random_certificates"]


# -- base certificates ----------------------------------------------------------


def _buchi_certificate(rng: random.Random):
    from repro.buchi.decomposition import _decompose
    from repro.buchi.random_automata import random_automaton

    from .build import certificate_for

    automaton = random_automaton(rng, rng.randint(2, 5), name="fuzz")
    return certificate_for(_decompose(automaton), subject="fuzz-buchi")


def _ltl_certificate(rng: random.Random):
    from repro.ltl.classify import _decompose_formula
    from repro.ltl.parser import parse

    from .build import certificate_for

    formula = parse(rng.choice(["G a", "F b", "a U b", "G F a", "a & X b"]))
    decomposition = _decompose_formula(formula, alphabet={"a", "b"})
    return certificate_for(decomposition, domain="ltl", subject="fuzz-ltl")


def _lattice_certificate(rng: random.Random):
    from repro.lattice.decomposition import _decompose
    from repro.lattice.random_lattices import (
        random_comparable_closure_pair,
        random_modular_complemented,
    )

    from .build import certificate_for

    lattice = random_modular_complemented(rng, max_factors=2, max_diamond=3)
    cl1, cl2 = random_comparable_closure_pair(rng, lattice)
    element = rng.choice(lattice.elements)
    inner = _decompose(lattice, cl1, cl2, element)
    bound = SimpleNamespace(
        lattice=lattice,
        cl1=cl1,
        cl2=cl2,
        inner=inner,
        element=inner.element,
        safety=inner.safety,
        liveness=inner.liveness,
        complement_used=inner.complement_used,
    )
    return certificate_for(bound, subject="fuzz-lattice")


def _rabin_certificate(rng: random.Random):
    from repro.rabin.automaton import RabinTreeAutomaton
    from repro.rabin.decomposition import _decompose

    from .build import certificate_for

    n = rng.randint(1, 3)
    states = list(range(n))
    alphabet = ("a", "b")
    transitions = {}
    for q in states:
        for a in alphabet:
            moves = {
                (rng.choice(states), rng.choice(states))
                for _ in range(rng.randint(0, 2))
            }
            if moves:
                transitions[q, a] = moves
    pairs = [([q for q in states if rng.random() < 0.5] or [0], [])]
    automaton = RabinTreeAutomaton.build(
        alphabet, states, 0, transitions, pairs, branching=2, name="fuzz"
    )
    return certificate_for(_decompose(automaton), subject="fuzz-rabin")


def random_certificates(rng: random.Random) -> list:
    """One genuine certificate per domain, seeded by ``rng``."""
    return [
        _buchi_certificate(rng),
        _ltl_certificate(rng),
        _lattice_certificate(rng),
        _rabin_certificate(rng),
    ]


# -- mutations ------------------------------------------------------------------
#
# Every mutator takes the certificate's dict form and returns a corrupted
# copy.  Mutations marked reseal=True recompute the digest so the replay
# layer (not the digest check) must do the rejecting; the others leave a
# stale digest on purpose.


def _reseal(data: dict) -> dict:
    data["digest"] = payload_digest(data["version"], data["domain"], data["payload"])
    return data


def _mutate_digest(data, rng):
    digest = data["digest"]
    i = rng.randrange(len(digest))
    flipped = "0" if digest[i] != "0" else "1"
    data["digest"] = digest[:i] + flipped + digest[i + 1:]
    return data


def _mutate_domain(data, rng):
    choices = [d for d in ("buchi", "ltl", "lattice", "rabin") if d != data["domain"]]
    data["domain"] = rng.choice(choices)
    return data


def _mutate_version(data, rng):
    data["version"] = data["version"] + 1
    return _reseal(data)


def _mutate_drop_obligation(data, rng):
    obligations = data["payload"]["obligations"]
    obligations.pop(rng.randrange(len(obligations)))
    return _reseal(data)


def _mutate_witness_bit(data, rng):
    witnesses = data["payload"]["witnesses"]
    witness = witnesses[rng.randrange(len(witnesses))]
    bit = rng.choice(["in_original", "in_safety", "in_liveness"])
    witness[bit] = not witness[bit]
    return _reseal(data)


def _mutate_embedding_acceptance(data, rng):
    # break the acceptance-isomorphism onto the left block: toggle the
    # liveness acceptance flag of one embedded state
    payload = data["payload"]
    image = payload["embedding"][rng.randrange(len(payload["embedding"]))]
    accepting = payload["liveness"]["accepting"]
    if image in accepting:
        accepting.remove(image)
    else:
        accepting.append(image)
        accepting.sort()
    return _reseal(data)


def _mutate_truncate_embedding(data, rng):
    data["payload"]["embedding"].pop()
    return _reseal(data)


def _mutate_lattice_element(data, rng):
    payload = data["payload"]
    payload["element"] = (payload["element"] + 1) % payload["n"]
    return _reseal(data)


def _mutate_lattice_closure(data, rng):
    # cl1 no longer fixes the safety conjunct: breaks idempotence or the
    # conjuncts obligation, whichever the verifier reaches first
    payload = data["payload"]
    safety = payload["safety"]
    payload["cl1"][safety] = (payload["cl1"][safety] + 1) % payload["n"]
    return _reseal(data)


def _mutate_rabin_safety_claim(data, rng):
    samples = data["payload"]["samples"]
    sample = samples[rng.randrange(len(samples))]
    sample["in_safety"] = not sample["in_safety"]
    return _reseal(data)


def _mutate_rabin_run(data, rng):
    # desynchronize claim and witness: drop the run of a positive sample,
    # or orphan a negative one with a bogus claim
    samples = data["payload"]["samples"]
    positives = [s for s in samples if s["in_original"]]
    if positives:
        rng.choice(positives)["run"] = []
    else:
        samples[rng.randrange(len(samples))]["in_original"] = True
    return _reseal(data)


_GENERIC_MUTATIONS = (
    ("digest-flip", _mutate_digest),
    ("domain-swap", _mutate_domain),
    ("version-bump", _mutate_version),
    ("drop-obligation", _mutate_drop_obligation),
)
_BUCHI_MUTATIONS = (
    ("witness-bit-flip", _mutate_witness_bit),
    ("embedding-acceptance", _mutate_embedding_acceptance),
    ("truncate-embedding", _mutate_truncate_embedding),
)
_DOMAIN_MUTATIONS = MappingProxyType({
    "buchi": _BUCHI_MUTATIONS,
    "ltl": _BUCHI_MUTATIONS,
    "lattice": (
        ("element-shift", _mutate_lattice_element),
        ("closure-corruption", _mutate_lattice_closure),
    ),
    "rabin": (
        ("safety-claim-flip", _mutate_rabin_safety_claim),
        ("run-desync", _mutate_rabin_run),
    ),
})


def corruptions_for(certificate) -> tuple:
    """The ``(label, mutator)`` pairs applicable to one certificate."""
    return _GENERIC_MUTATIONS + _DOMAIN_MUTATIONS[certificate.domain]


def corrupt(certificate, label: str, mutator, rng: random.Random) -> str:
    """One corrupted wire-form of ``certificate``."""
    data = copy.deepcopy(certificate.to_dict())
    return json.dumps(mutator(data, rng))


# -- the harness ----------------------------------------------------------------


def fuzz(seed: int = 7, rounds: int = 500) -> dict:
    """Run ``rounds`` corruption rounds; every corruption must be
    rejected.  Returns a stats dict; raises ``AssertionError`` if any
    corrupted certificate verifies."""
    rng = random.Random(seed)
    certificates = random_certificates(rng)
    for certificate in certificates:
        result = verify_json(certificate.to_json())
        assert result.ok, (
            f"genuine {certificate.domain} certificate rejected: {result.reason}"
        )
    by_mutation: dict = {}
    accepted = []
    for round_no in range(rounds):
        certificate = certificates[round_no % len(certificates)]
        label, mutator = rng.choice(corruptions_for(certificate))
        text = corrupt(certificate, label, mutator, rng)
        result = verify_json(text)
        by_mutation[label] = by_mutation.get(label, 0) + 1
        if result.ok:
            accepted.append((certificate.domain, label))
    assert not accepted, f"verifier accepted corrupted certificates: {accepted}"
    return {
        "seed": seed,
        "rounds": rounds,
        "rejected": rounds,
        "by_mutation": dict(sorted(by_mutation.items())),
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--rounds", type=int, default=500)
    args = parser.parse_args(argv)
    stats = fuzz(seed=args.seed, rounds=args.rounds)
    print(json.dumps(stats, indent=2, sort_keys=True))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
