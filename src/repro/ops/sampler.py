"""A sampling wall-clock profiler over ``sys._current_frames()``.

Answers "where is the service spending its time *right now*?" without
instrumenting anything: a background thread wakes ``hz`` times a second,
snapshots every thread's current Python frame stack, and counts
identical collapsed stacks.  Output is the classic *collapsed-stack*
format — ``frame;frame;...;leaf count`` per line — consumed directly by
``flamegraph.pl`` and https://speedscope.app (import as
"Brendan Gregg collapsed").

Honesty about cost is part of the contract: the sampler measures its own
duty cycle (time spent inside the sampling pass over the window walked)
and publishes it as ``repro_ops_sampler_overhead_ratio``, so "what does
50 Hz cost?" is a gauge, not a guess — and the committed
``BENCH_obs_overhead.json`` prices the same question against service
throughput.

Wall-clock, not CPU: a thread blocked on a lock or a queue *is* sampled
where it blocks.  That is the point — the service's worker threads
waiting on admission or cache locks show up as exactly that.
"""

from __future__ import annotations

import sys
import threading
import time

from repro.obs.metrics import REGISTRY

from .journal import JOURNAL, EventJournal

_SAMPLES = REGISTRY.counter(
    "repro_ops_sampler_samples_total", "stack samples taken by the ops profiler"
)
_OVERHEAD = REGISTRY.gauge(
    "repro_ops_sampler_overhead_ratio",
    "fraction of wall time the ops profiler spent sampling (self-measured)",
)

#: Frames deeper than this are truncated (defensive: recursive kernels).
MAX_DEPTH = 128


def _render_stack(frame) -> str:
    """One thread's stack as ``root;...;leaf`` (module.function frames)."""
    parts: list[str] = []
    depth = 0
    while frame is not None and depth < MAX_DEPTH:
        code = frame.f_code
        module = frame.f_globals.get("__name__", "?")
        parts.append(f"{module}.{code.co_name}")
        frame = frame.f_back
        depth += 1
    parts.reverse()
    return ";".join(parts)


class SamplingProfiler:
    """Samples all threads' stacks at ``hz`` until stopped.

    Use as a context manager for a fixed window::

        with SamplingProfiler(hz=50) as profiler:
            serve_traffic()
        print(profiler.collapsed())

    or start/stop explicitly for an open-ended window.  One profiler may
    be started at most once; make a fresh one per window (they are
    cheap, and immutability-after-stop keeps reports reproducible).
    """

    def __init__(self, hz: float = 50, *, journal: EventJournal | None = JOURNAL):
        if not 0 < hz <= 1000:
            raise ValueError("hz must be in (0, 1000]")
        self.hz = hz
        self.interval = 1.0 / hz
        self._journal = journal
        self._counts: dict[str, int] = {}
        self._samples = 0
        self._sampling_seconds = 0.0
        self._started_at = 0.0
        self._stopped_at = 0.0
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None
        self._lock = threading.Lock()

    # -- lifecycle ----------------------------------------------------------

    def start(self) -> "SamplingProfiler":
        if self._thread is not None:
            raise RuntimeError("profiler already started; make a fresh one")
        self._started_at = time.perf_counter()
        self._thread = threading.Thread(
            target=self._loop, name="repro-ops-sampler", daemon=True
        )
        self._thread.start()
        if self._journal is not None:
            self._journal.emit("ops.profile_start", hz=self.hz)
        return self

    def stop(self) -> "SamplingProfiler":
        if self._thread is None:
            return self
        self._stop.set()
        self._thread.join()
        self._stopped_at = time.perf_counter()
        if self._journal is not None:
            self._journal.emit(
                "ops.profile_done",
                hz=self.hz,
                samples=self.samples,
                overhead_ratio=round(self.overhead_ratio(), 6),
            )
        return self

    @property
    def running(self) -> bool:
        return self._thread is not None and self._thread.is_alive()

    def __enter__(self) -> "SamplingProfiler":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()

    # -- the sampling loop --------------------------------------------------

    def _loop(self) -> None:
        own_ident = threading.get_ident()
        next_tick = time.perf_counter()
        while not self._stop.is_set():
            pass_started = time.perf_counter()
            frames = sys._current_frames()
            rendered = [
                _render_stack(frame)
                for ident, frame in frames.items()
                if ident != own_ident
            ]
            del frames  # drop frame references promptly
            spent = time.perf_counter() - pass_started
            with self._lock:
                for stack in rendered:
                    self._counts[stack] = self._counts.get(stack, 0) + 1
                self._samples += len(rendered)
                self._sampling_seconds += spent
            _SAMPLES.add(len(rendered))
            wall = time.perf_counter() - self._started_at
            if wall > 0:
                _OVERHEAD.set(self.sampling_seconds / wall)
            next_tick += self.interval
            delay = next_tick - time.perf_counter()
            if delay <= 0:
                # fell behind (a sampling pass overran the interval):
                # resynchronize instead of bursting to catch up
                next_tick = time.perf_counter()
            elif self._stop.wait(delay):
                break

    # -- results ------------------------------------------------------------

    @property
    def samples(self) -> int:
        with self._lock:
            return self._samples

    @property
    def sampling_seconds(self) -> float:
        with self._lock:
            return self._sampling_seconds

    def overhead_ratio(self) -> float:
        """Self-measured duty cycle: sampling time / profiled wall time."""
        end = self._stopped_at if self._stopped_at else time.perf_counter()
        wall = end - self._started_at
        return self.sampling_seconds / wall if wall > 0 else 0.0

    def counts(self) -> dict[str, int]:
        with self._lock:
            return dict(self._counts)

    def collapsed(self) -> str:
        """Collapsed-stack text: ``frame;frame;...;leaf count`` lines,
        heaviest stacks first (flamegraph.pl / speedscope compatible)."""
        counts = self.counts()
        lines = [
            f"{stack} {count}"
            for stack, count in sorted(
                counts.items(), key=lambda item: (-item[1], item[0])
            )
        ]
        return "\n".join(lines) + ("\n" if lines else "")


def profile_for(seconds: float, *, hz: float = 50,
                journal: EventJournal | None = JOURNAL) -> SamplingProfiler:
    """Sample every thread for a fixed window and return the (stopped)
    profiler — ``profile_for(1.0).collapsed()`` is the one-liner the
    ``/debug/profile`` endpoint serves."""
    if seconds <= 0:
        raise ValueError("seconds must be positive")
    profiler = SamplingProfiler(hz=hz, journal=journal)
    with profiler:
        # the sampler thread does the work; this thread just keeps the
        # window open (Event.wait, not sleep, so tests can be precise)
        threading.Event().wait(seconds)
    return profiler
