"""repro.ops — the live operations plane of the analysis service.

:mod:`repro.obs` can count and time; this package answers the questions
a running deployment gets asked: *what are you doing right now, which
requests are slow and why, and are you healthy enough to route to?*
Four pillars (DESIGN.md §11):

* **Request contexts** — :class:`repro.obs.context.RequestContext`
  (re-exported here), created per request by
  :class:`~repro.service.server.AnalysisService`, carried across the
  worker pool, and fed by every kernel
  :class:`~repro.obs.profile.PhaseTimer`, so each request's wall time
  decomposes into attributable phases (the slow-log's evidence).
* :mod:`repro.ops.journal` — the :class:`EventJournal`: a bounded,
  level-filtered ring of typed, request-correlated events
  (admitted/shed/timed-out, cache hit/miss/rejected/evicted, cert
  verify pass/fail, pool worker start/death), drainable in-process and
  over HTTP.
* :mod:`repro.ops.sampler` — :class:`SamplingProfiler`, a
  ``sys._current_frames()`` wall-clock sampler emitting collapsed
  stacks (flamegraph.pl / speedscope) with a self-measured overhead
  gauge.
* :mod:`repro.ops.http` — :class:`OpsServer`, the stdlib HTTP
  introspection endpoint: ``/metrics``, ``/healthz``, ``/readyz`` (the
  sharded tier's routing contract), ``/debug/inflight``,
  ``/debug/cache``, ``/debug/slowlog``, ``/debug/events``,
  ``/debug/profile``.

Layering: this package imports only :mod:`repro.obs` submodules and the
stdlib; the service hands itself to :class:`OpsServer` duck-typed, so
``ops`` never depends on ``service`` (no import cycle, RC003).

Quick start::

    from repro.ops import start_ops_server
    from repro.service import AnalysisService

    service = AnalysisService(workers=4, slow_threshold=0.25)
    ops = start_ops_server(service)     # ephemeral port on 127.0.0.1
    print(ops.url)                       # scrape /metrics, hit /readyz
"""

from repro.obs.context import RequestContext, current_context, use_context

from .http import OpsServer, start_ops_server
from .journal import (
    DEBUG,
    ERROR,
    EVENT_CATALOG,
    EVENT_NAME_RE,
    INFO,
    JOURNAL,
    LEVELS,
    WARN,
    Event,
    EventJournal,
    JournalError,
    to_jsonl,
)
from .sampler import SamplingProfiler, profile_for

__all__ = [
    "RequestContext",
    "current_context",
    "use_context",
    "EventJournal",
    "Event",
    "JournalError",
    "JOURNAL",
    "EVENT_CATALOG",
    "EVENT_NAME_RE",
    "LEVELS",
    "DEBUG",
    "INFO",
    "WARN",
    "ERROR",
    "to_jsonl",
    "SamplingProfiler",
    "profile_for",
    "OpsServer",
    "start_ops_server",
]
