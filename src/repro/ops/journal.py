"""The structured event journal: a lock-cheap bounded ring of typed
operational events.

Metrics (:mod:`repro.obs.metrics`) answer *how much*; the journal
answers *what happened, in what order, to which request*.  Every event
is a registered, named record — request admitted/shed/timed-out, cache
hit/miss/rejected/evicted, certificate verify pass/fail, pool worker
start/death — with a level, a wall-clock timestamp, an optional
``request_id`` correlation key, and free-form fields.  Events land in a
``deque(maxlen=...)`` ring, so a long-running service keeps the recent
past and never grows without bound.

Levels follow the access-log convention: high-frequency per-request
chatter (admitted, cache hit/miss, successful completion, HTTP
requests) is ``debug``; rare lifecycle transitions (worker start/death,
server start/stop, shutdown, certificate pass) are ``info``; anomalies
(shed, timeout, slow request, rejected certificate, failed requests,
worker task errors) are ``warn``.  The default ``min_level`` is
``info`` — the production posture — so healthy steady-state traffic
journals *nothing per request* (metrics and the slow-log carry the
steady state) and the ring retains what an operator actually reads:
lifecycle edges and anomalies.  One
:meth:`EventJournal.set_min_level(\"debug\") <EventJournal.set_min_level>`
turns the fully-correlated per-request stream on live.

Discipline, machine-enforced by checks rule RC009:

* event names match ``^[a-z][a-z0-9_.]*$`` and must be *registered*
  (:meth:`EventJournal.register` or the :data:`EVENT_CATALOG` baked in
  below) — a typo'd name raises at emit time instead of producing an
  event nobody's query will ever match.

The emit hot path is deliberately tiny — level compare, frozenset
membership, one timestamp, one locked append of a plain tuple (the
:class:`Event` record is materialized lazily at *read* time), one
pre-resolved counter bump — because the analysis service emits per
request, and the committed overhead budget
(``BENCH_obs_overhead.json``) holds journal + request context to ≤ 5%
of warm-path service throughput.
"""

from __future__ import annotations

import json
import re
import threading
import time
from collections import deque
from dataclasses import dataclass
from types import MappingProxyType

from repro.obs.metrics import REGISTRY

EVENT_NAME_RE = re.compile(r"^[a-z][a-z0-9_.]*$")

#: Symbolic levels (numeric so filtering is one compare).
LEVELS = MappingProxyType({"debug": 10, "info": 20, "warn": 30, "error": 40})
_LEVEL_NAMES = MappingProxyType({v: k for k, v in LEVELS.items()})

DEBUG, INFO, WARN, ERROR = 10, 20, 30, 40

#: Every event type the repo emits, registered up front so RC009 (and
#: emit-time validation) can hold names to the catalog.  Third parties
#: extend via :meth:`EventJournal.register`.
EVENT_CATALOG = (
    # service request lifecycle
    "service.request_admitted",
    "service.request_done",
    "service.request_shed",
    "service.request_timeout",
    "service.slow_request",
    "service.shutdown",
    # result-cache outcomes
    "cache.hit",
    "cache.miss",
    "cache.uncacheable",
    "cache.rejected",
    "cache.evicted",
    # certificate replay on cache hits
    "cert.verify_pass",
    "cert.verify_fail",
    # rv engine: four-valued verdict transitions (PR 10)
    "rv.verdict_transition",
    # worker-pool lifecycle
    "pool.worker_start",
    "pool.worker_death",
    "pool.task_error",
    # the sharded tier: router + worker lifecycle
    "shard.spawn",
    "shard.exit",
    "shard.redeliver",
    "shard.warm_start",
    "shard.unresponsive",
    "shard.respawn_failed",
    "router.shutdown",
    # the ops plane itself
    "ops.http_request",
    "ops.server_start",
    "ops.server_stop",
    "ops.profile_start",
    "ops.profile_done",
)

_EVENTS_TOTAL = REGISTRY.counter(
    "repro_ops_journal_events_total",
    "journal events recorded, by level",
    ("level",),
)

#: Per-level counter children resolved once: the hot path must not pay
#: the labels() lookup per event.
_LEVEL_COUNTS = MappingProxyType({
    value: _EVENTS_TOTAL.labels(level=name) for name, value in LEVELS.items()
})


class JournalError(ValueError):
    """Bad event name, unknown level, or unregistered event type."""


@dataclass(frozen=True)
class Event:
    """One journal record (immutable; materialized at read time)."""

    seq: int
    ts: float
    name: str
    level: int
    request_id: str | None
    fields: tuple

    @property
    def level_name(self) -> str:
        return _LEVEL_NAMES.get(self.level, str(self.level))

    def to_dict(self) -> dict:
        return {
            "seq": self.seq,
            "ts": self.ts,
            "name": self.name,
            "level": self.level_name,
            "request_id": self.request_id,
            **dict(self.fields),
        }


def _coerce_level(level: int | str) -> int:
    if isinstance(level, str):
        try:
            return LEVELS[level]
        except KeyError:
            raise JournalError(
                f"unknown level {level!r} (known: {', '.join(LEVELS)})"
            ) from None
    return int(level)


class EventJournal:
    """A bounded, thread-safe ring of typed events.

    ``maxlen`` bounds retention; ``min_level`` filters at record time
    (suppressed events cost one compare; default ``info``).  Event names
    must be registered — the constructor seeds :data:`EVENT_CATALOG`;
    call :meth:`register` for additional types before first emit.
    """

    def __init__(self, maxlen: int = 4096, *,
                 min_level: int | str = INFO,
                 events: tuple = EVENT_CATALOG):
        if maxlen < 1:
            raise ValueError("maxlen must be >= 1")
        self.maxlen = maxlen
        self._min_level = _coerce_level(min_level)
        # copy-on-write: emit() membership-tests this lock-free, so
        # register() swaps in a whole new frozenset instead of mutating
        self._registered: frozenset[str] = frozenset()
        self._ring: deque[tuple] = deque(maxlen=maxlen)
        self._seq = 0
        self._dropped = 0
        self._lock = threading.Lock()
        for name in events:
            self.register(name)

    # -- registration -------------------------------------------------------

    def register(self, name: str) -> str:
        """Register an event type; names are validated once, here."""
        if not EVENT_NAME_RE.match(name):
            raise JournalError(
                f"invalid event name {name!r}: must match "
                f"{EVENT_NAME_RE.pattern}"
            )
        self._registered = self._registered | {name}
        return name

    def registered(self) -> frozenset:
        return self._registered

    @property
    def min_level(self) -> int:
        return self._min_level

    def set_min_level(self, level: int | str) -> None:
        # A bare attribute swap: the threshold is a filter knob, not
        # shared state needing the ring's lock — emit() reads it
        # lock-free so a suppressed debug event costs one compare.
        self._min_level = _coerce_level(level)

    # -- the hot path -------------------------------------------------------

    def emit(self, name: str, /, level: int = INFO,
             request_id: str | None = None, **fields) -> None:
        """Record one event (or return in one compare when filtered)."""
        if level < self._min_level:
            return
        if name not in self._registered:
            raise JournalError(
                f"unregistered event {name!r}: add it to EVENT_CATALOG "
                "or call journal.register() first"
            )
        ts = time.time()
        with self._lock:
            self._seq += 1
            if len(self._ring) == self.maxlen:
                self._dropped += 1
            # raw tuple on the hot path; Event dataclasses are built
            # lazily in events()/drain() (reads are rare, emits are not)
            self._ring.append((self._seq, ts, name, level, request_id, fields))
        _LEVEL_COUNTS.get(level, _LEVEL_COUNTS[INFO]).add()

    # -- reading ------------------------------------------------------------

    @staticmethod
    def _materialize(record: tuple) -> Event:
        seq, ts, name, level, request_id, fields = record
        return Event(seq, ts, name, level, request_id, tuple(fields.items()))

    def events(self, *, level: int | str | None = None,
               request_id: str | None = None,
               name: str | None = None,
               limit: int | None = None) -> list[Event]:
        """The retained events, oldest first, optionally filtered by
        minimum ``level``, exact ``request_id`` or exact ``name``;
        ``limit`` keeps the *newest* N matches."""
        floor = _coerce_level(level) if level is not None else None
        with self._lock:
            snapshot = list(self._ring)
        out = [
            self._materialize(record) for record in snapshot
            if (floor is None or record[3] >= floor)
            and (request_id is None or record[4] == request_id)
            and (name is None or record[2] == name)
        ]
        if limit is not None and len(out) > limit:
            out = out[-limit:]
        return out

    def drain(self) -> list[Event]:
        """Remove and return everything retained (oldest first)."""
        with self._lock:
            snapshot = list(self._ring)
            self._ring.clear()
        return [self._materialize(record) for record in snapshot]

    def clear(self) -> None:
        with self._lock:
            self._ring.clear()
            self._dropped = 0

    def stats(self) -> dict:
        with self._lock:
            return {
                "retained": len(self._ring),
                "maxlen": self.maxlen,
                "emitted": self._seq,
                "dropped": self._dropped,
                "min_level": _LEVEL_NAMES.get(self._min_level, str(self._min_level)),
            }

    def __len__(self) -> int:
        with self._lock:
            return len(self._ring)

    def __repr__(self) -> str:
        stats = self.stats()
        return (f"EventJournal(retained={stats['retained']}/{self.maxlen}, "
                f"emitted={stats['emitted']})")


def to_jsonl(events) -> str:
    """Events as JSONL text (the ``/debug/events`` wire format)."""
    return "".join(
        json.dumps(event.to_dict(), sort_keys=True) + "\n" for event in events
    )


#: The process-wide default journal every instrumented module reports to
#: (mirrors :data:`repro.obs.metrics.REGISTRY`).
JOURNAL = EventJournal()
