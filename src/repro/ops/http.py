"""The ops HTTP endpoint: introspection for a live analysis service.

A stdlib :class:`~http.server.ThreadingHTTPServer` mounted *beside* an
:class:`~repro.service.server.AnalysisService` (the service is passed
in, duck-typed — this module imports no serving code, per RC003-style
layering).  Endpoints:

==========================  ============================================
``/metrics``                Prometheus text exposition of the shared
                            registry (round-trips through
                            :func:`repro.obs.export.parse_prometheus_text`).
``/healthz``                Liveness: 200 while the process serves, 503
                            once the service is shut down.
``/readyz``                 Readiness: 200 only while the service is
                            accepting work — 503 on shutdown *and* while
                            the admission gate is saturated.  This is the
                            routing contract the sharded tier keys on.
``/debug/inflight``         The live request table: id, kind, origin,
                            age, deadline remaining, phase breakdown so
                            far.
``/debug/cache``            :meth:`ResultCache.stats` plus per-line
                            age/hits/size detail.
``/debug/slowlog``          The service's retained slow-request entries.
``/debug/events``           The event journal as JSONL
                            (``?level=&request_id=&name=&limit=``).
``/debug/profile``          Run the sampling profiler for
                            ``?seconds=N`` (``&hz=H``) and return
                            collapsed stacks (flamegraph.pl/speedscope).
==========================  ============================================

Handlers snapshot all shared state into the response body *before*
writing a single byte — no metrics-registry or cache lock is ever held
across a socket write (checks rule RC011 enforces this statically with
a lock-set dataflow over every handler's CFG), so a slow or stalled
scraper cannot back-pressure the serving path.
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from types import MappingProxyType
from urllib.parse import parse_qs, urlparse

from repro.obs.export import to_prometheus
from repro.obs.metrics import REGISTRY, MetricRegistry

from .journal import DEBUG, JOURNAL, EventJournal, to_jsonl
from .sampler import profile_for

#: ``/debug/profile`` window clamp: an ops endpoint must not be usable
#: to park handler threads for minutes.
MAX_PROFILE_SECONDS = 30.0
MAX_PROFILE_HZ = 200.0


def _json_body(payload) -> bytes:
    return (json.dumps(payload, sort_keys=True, default=str) + "\n").encode("utf-8")


class _OpsHTTPServer(ThreadingHTTPServer):
    daemon_threads = True
    allow_reuse_address = True
    #: set by :class:`OpsServer` right after construction
    ops: "OpsServer | None" = None


class _OpsHandler(BaseHTTPRequestHandler):
    server_version = "repro-ops/1.0"
    protocol_version = "HTTP/1.1"

    # -- plumbing -----------------------------------------------------------

    @property
    def ops(self) -> "OpsServer":
        return self.server.ops

    def log_message(self, format: str, *args) -> None:  # noqa: A002 — stdlib signature
        journal = self.ops.journal
        if journal is not None:
            journal.emit(
                "ops.http_request", DEBUG,
                path=self.path, message=format % args,
            )

    def _respond(self, status: int, body: bytes,
                 content_type: str = "application/json") -> None:
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _query(self) -> dict:
        return parse_qs(urlparse(self.path).query)

    def _param(self, query: dict, name: str, default=None):
        values = query.get(name)
        return values[-1] if values else default

    # -- routing ------------------------------------------------------------

    def do_GET(self) -> None:  # noqa: N802 — stdlib dispatch name
        route = urlparse(self.path).path.rstrip("/") or "/"
        handler = _ROUTES.get(route)
        if handler is None:
            self._respond(404, _json_body({
                "error": f"no such endpoint {route!r}",
                "endpoints": sorted(_ROUTES),
            }))
            return
        try:
            handler(self)
        except ValueError as exc:
            self._respond(400, _json_body({"error": str(exc)}))

    # -- endpoints ----------------------------------------------------------

    def _get_index(self) -> None:
        self._respond(200, _json_body({
            "service": self.ops.service is not None,
            "endpoints": sorted(route for route in _ROUTES if route != "/"),
        }))

    def _get_metrics(self) -> None:
        text = to_prometheus(self.ops.registry)
        self._respond(200, text.encode("utf-8"),
                      content_type="text/plain; version=0.0.4; charset=utf-8")

    def _get_healthz(self) -> None:
        service = self.ops.service
        if service is not None and service.closed:
            self._respond(503, _json_body({"status": "shutdown"}))
        else:
            self._respond(200, _json_body({"status": "ok"}))

    def _get_readyz(self) -> None:
        service = self.ops.service
        if service is None:
            self._respond(200, _json_body({"ready": True, "service": False}))
            return
        state = service.readiness()
        self._respond(200 if state["ready"] else 503, _json_body(state))

    def _get_inflight(self) -> None:
        service = self.ops.service
        rows = service.inflight() if service is not None else []
        self._respond(200, _json_body({"count": len(rows), "inflight": rows}))

    def _get_cache(self) -> None:
        service = self.ops.service
        if service is None:
            self._respond(200, _json_body({"cache": None}))
            return
        cache = service.cache
        body = {
            "stats": cache.stats().to_dict(),
            "lines": cache.lines(),
        }
        # A sharded tier's cache view aggregates per-process caches; the
        # summed stats alone would hide a cold shard, so surface the
        # per-shard breakdown whenever the view offers one.
        stats_by_shard = getattr(cache, "stats_by_shard", None)
        if stats_by_shard is not None:
            body["shards"] = {
                str(index): stats.to_dict()
                for index, stats in stats_by_shard().items()
            }
        self._respond(200, _json_body(body))

    def _get_slowlog(self) -> None:
        service = self.ops.service
        rows = service.slow_log() if service is not None else []
        self._respond(200, _json_body({"count": len(rows), "slow": rows}))

    def _get_events(self) -> None:
        journal = self.ops.journal
        if journal is None:
            self._respond(200, b"", content_type="application/x-ndjson")
            return
        query = self._query()
        limit_raw = self._param(query, "limit", "256")
        try:
            limit = int(limit_raw)
        except ValueError:
            raise ValueError(f"limit must be an integer, got {limit_raw!r}") from None
        events = journal.events(
            level=self._param(query, "level"),
            request_id=self._param(query, "request_id"),
            name=self._param(query, "name"),
            limit=max(0, limit),
        )
        self._respond(200, to_jsonl(events).encode("utf-8"),
                      content_type="application/x-ndjson")

    def _get_profile(self) -> None:
        query = self._query()
        try:
            seconds = float(self._param(query, "seconds", "1"))
            hz = float(self._param(query, "hz", "50"))
        except ValueError:
            raise ValueError("seconds and hz must be numbers") from None
        if not 0 < seconds <= MAX_PROFILE_SECONDS:
            raise ValueError(
                f"seconds must be in (0, {MAX_PROFILE_SECONDS:g}], got {seconds:g}"
            )
        if not 0 < hz <= MAX_PROFILE_HZ:
            raise ValueError(f"hz must be in (0, {MAX_PROFILE_HZ:g}], got {hz:g}")
        profiler = profile_for(seconds, hz=hz, journal=self.ops.journal)
        header = (
            f"# repro.ops profile: {seconds:g}s at {hz:g} Hz, "
            f"{profiler.samples} samples, "
            f"self-overhead {profiler.overhead_ratio():.4%}\n"
        )
        self._respond(200, (header + profiler.collapsed()).encode("utf-8"),
                      content_type="text/plain; charset=utf-8")


_ROUTES = MappingProxyType({
    "/": _OpsHandler._get_index,
    "/metrics": _OpsHandler._get_metrics,
    "/healthz": _OpsHandler._get_healthz,
    "/readyz": _OpsHandler._get_readyz,
    "/debug/inflight": _OpsHandler._get_inflight,
    "/debug/cache": _OpsHandler._get_cache,
    "/debug/slowlog": _OpsHandler._get_slowlog,
    "/debug/events": _OpsHandler._get_events,
    "/debug/profile": _OpsHandler._get_profile,
})


class OpsServer:
    """The ops endpoint's lifecycle: bind, serve on a daemon thread, close.

    ``service`` is any object with the :class:`AnalysisService`
    introspection surface (``closed``, ``readiness()``, ``inflight()``,
    ``slow_log()``, ``cache``) — or ``None`` for a metrics/journal-only
    endpoint.  ``port=0`` (default) binds an ephemeral port; read
    ``server.url`` after :meth:`start`.
    """

    def __init__(self, service=None, *,
                 registry: MetricRegistry | None = None,
                 journal: EventJournal | None = JOURNAL,
                 host: str = "127.0.0.1", port: int = 0):
        self.service = service
        self.registry = registry if registry is not None else REGISTRY
        self.journal = journal
        self.host = host
        self._requested_port = port
        self._httpd: _OpsHTTPServer | None = None
        self._thread: threading.Thread | None = None

    def start(self) -> "OpsServer":
        if self._httpd is not None:
            raise RuntimeError("ops server already started")
        self._httpd = _OpsHTTPServer((self.host, self._requested_port), _OpsHandler)
        self._httpd.ops = self
        self._thread = threading.Thread(
            target=self._httpd.serve_forever, name="repro-ops-http", daemon=True
        )
        self._thread.start()
        if self.journal is not None:
            self.journal.emit("ops.server_start", host=self.host, port=self.port)
        return self

    @property
    def started(self) -> bool:
        return self._httpd is not None

    @property
    def port(self) -> int:
        if self._httpd is None:
            raise RuntimeError("ops server not started")
        return self._httpd.server_address[1]

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def close(self) -> None:
        if self._httpd is None:
            return
        port = self.port
        self._httpd.shutdown()
        self._httpd.server_close()
        self._thread.join()
        self._httpd = None
        self._thread = None
        if self.journal is not None:
            self.journal.emit("ops.server_stop", host=self.host, port=port)

    def __enter__(self) -> "OpsServer":
        # idempotent so `with start_ops_server(...) as ops:` works
        return self if self.started else self.start()

    def __exit__(self, *exc) -> None:
        self.close()

    def __repr__(self) -> str:
        where = self.url if self.started else "unstarted"
        return f"OpsServer({where}, service={self.service is not None})"


def start_ops_server(service=None, **kwargs) -> OpsServer:
    """Construct and start an :class:`OpsServer` in one call."""
    return OpsServer(service, **kwargs).start()
