"""Rabin tree automata on k-ary infinite trees (paper §4.4).

``B = (Σ, Q, q0, δ, Φ)`` with ``δ : Q × Σ → P(Q^k)`` and ``Φ`` given by
pairs ``(green_i, red_i)``: a run is accepting iff along every infinite
path, for some ``i``, a green-i state recurs and red-i states stop.

Runs and acceptance are decided game-theoretically in
:mod:`repro.rabin.games_bridge` (membership and emptiness both reduce to
parity games via the LAR construction).
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping
from dataclasses import dataclass, field


class RabinError(ValueError):
    """Raised when automaton data is malformed."""


@dataclass(frozen=True)
class RabinPair:
    """One acceptance pair: visit ``green`` infinitely often, ``red``
    only finitely often."""

    green: frozenset
    red: frozenset


@dataclass(frozen=True)
class RabinTreeAutomaton:
    """An immutable nondeterministic Rabin automaton on k-ary trees."""

    alphabet: frozenset
    states: frozenset
    initial: object
    transitions: Mapping[tuple, frozenset]  # (q, a) -> frozenset of k-tuples
    pairs: tuple  # tuple[RabinPair, ...]
    branching: int
    name: str = field(default="B", compare=False)

    def __post_init__(self):
        if not self.alphabet:
            raise RabinError("alphabet must be non-empty")
        if self.branching < 1:
            raise RabinError("branching degree must be >= 1")
        if self.initial not in self.states:
            raise RabinError(f"initial state {self.initial!r} unknown")
        for (q, a), tuples in self.transitions.items():
            if q not in self.states:
                raise RabinError(f"transition from unknown state {q!r}")
            if a not in self.alphabet:
                raise RabinError(f"transition on unknown symbol {a!r}")
            for t in tuples:
                if len(t) != self.branching:
                    raise RabinError(
                        f"transition tuple {t!r} has arity {len(t)}, "
                        f"expected {self.branching}"
                    )
                if any(s not in self.states for s in t):
                    raise RabinError(f"tuple {t!r} mentions unknown states")
        for pair in self.pairs:
            if not isinstance(pair, RabinPair):
                raise RabinError("pairs must be RabinPair instances")
            if not pair.green <= self.states or not pair.red <= self.states:
                raise RabinError("pair sets must be subsets of the states")

    @classmethod
    def build(
        cls,
        alphabet: Iterable,
        states: Iterable,
        initial,
        transitions: Mapping[tuple, Iterable],
        pairs: Iterable[tuple[Iterable, Iterable]],
        branching: int,
        name: str = "B",
    ) -> "RabinTreeAutomaton":
        """Convenience constructor freezing all collections; ``pairs`` are
        (green, red) iterables."""
        return cls(
            alphabet=frozenset(alphabet),
            states=frozenset(states),
            initial=initial,
            transitions={
                key: frozenset(tuple(t) for t in tuples)
                for key, tuples in transitions.items()
            },
            pairs=tuple(
                RabinPair(green=frozenset(g), red=frozenset(r)) for g, r in pairs
            ),
            branching=branching,
            name=name,
        )

    def moves(self, q, a) -> frozenset:
        """``δ(q, a)`` — the available successor tuples."""
        return self.transitions.get((q, a), frozenset())

    def restarted_at(self, q) -> "RabinTreeAutomaton":
        """``B(q)`` — same automaton, initial state ``q`` (§4.4)."""
        if q not in self.states:
            raise RabinError(f"{q!r} is not a state")
        return RabinTreeAutomaton(
            alphabet=self.alphabet,
            states=self.states,
            initial=q,
            transitions=dict(self.transitions),
            pairs=self.pairs,
            branching=self.branching,
            name=f"{self.name}({q!r})",
        )

    def restricted_to(self, keep: Iterable) -> "RabinTreeAutomaton":
        """Drop states outside ``keep`` and every tuple touching them."""
        keep = frozenset(keep)
        if self.initial not in keep:
            raise RabinError("cannot drop the initial state")
        transitions = {}
        for (q, a), tuples in self.transitions.items():
            if q not in keep:
                continue
            kept = frozenset(t for t in tuples if all(s in keep for s in t))
            if kept:
                transitions[q, a] = kept
        return RabinTreeAutomaton(
            alphabet=self.alphabet,
            states=keep,
            initial=self.initial,
            transitions=transitions,
            pairs=tuple(
                RabinPair(green=p.green & keep, red=p.red & keep)
                for p in self.pairs
            ),
            branching=self.branching,
            name=self.name,
        )

    def with_pairs(self, pairs: Iterable[RabinPair]) -> "RabinTreeAutomaton":
        return RabinTreeAutomaton(
            alphabet=self.alphabet,
            states=self.states,
            initial=self.initial,
            transitions=dict(self.transitions),
            pairs=tuple(pairs),
            branching=self.branching,
            name=self.name,
        )

    def canonical_key(self) -> str:
        """A structural cache key, invariant under state renaming.

        The transition hyperedges ``(q, a) -> (s_1, …, s_k)`` are encoded
        through auxiliary tuple nodes (one per available move) so the
        canonical labeling of :func:`repro.canonical.canonical_digraph_key`
        applies; acceptance pairs become per-state membership colors.
        Equal keys imply isomorphism (see DESIGN.md §8)."""
        from repro.canonical import canonical_digraph_key, stable_token

        nodes: list = [("q", q) for q in self.states]
        colors: dict = {
            ("q", q): (
                "q",
                q == self.initial,
                tuple((q in p.green, q in p.red) for p in self.pairs),
            )
            for q in self.states
        }
        edges: list = []
        for (q, a), tuples in self.transitions.items():
            for t in tuples:
                tnode = ("t", q, a, t)
                nodes.append(tnode)
                colors[tnode] = ("t",)
                edges.append((("a", stable_token(a)), ("q", q), tnode))
                for i, child in enumerate(t):
                    edges.append((("i", i), tnode, ("q", child)))
        return "rabin:" + canonical_digraph_key(
            nodes,
            colors,
            edges,
            graph_attrs=(
                "rabin",
                self.branching,
                len(self.pairs),
                tuple(sorted(stable_token(a) for a in self.alphabet)),
            ),
        )

    def __repr__(self) -> str:
        return (
            f"RabinTreeAutomaton({self.name!r}, |Q|={len(self.states)}, "
            f"k={self.branching}, pairs={len(self.pairs)})"
        )
