"""Theorem 9: decomposition of Rabin tree automata.

*For any Rabin tree automaton B there exist effectively derivable Rabin
automata B_safe and B_live such that L(B) = L(B_safe) ∩ L(B_live).*

The construction mirrors §2.4: ``B_safe = rfcl(B)`` (a genuine Rabin
automaton with trivialized acceptance — universally safe), and the
liveness component is ``L(B) ∪ ¬L(rfcl B)``.  The complement is
represented semantically as a :class:`~repro.rabin.language.TreeLanguage`
(full Rabin complementation is non-elementary; see DESIGN.md —
membership stays decidable for every regular tree, so the decomposition
identity is machine-checked extensionally on tree samples).

Every membership/emptiness query here runs through the game bridge,
whose arenas are int-interned (:mod:`repro.rabin.games_bridge`), so the
sampled verification loops inherit the dense LAR numbering.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field

from repro.trees.regular import RegularTree

from .automaton import RabinTreeAutomaton
from .closure import rfcl
from .games_bridge import accepts_tree
from .language import TreeLanguage


@dataclass(frozen=True)
class RabinDecomposition:
    """``L(B) = L(B_safe) ∩ live`` with ``B_safe`` a Rabin automaton and
    ``live`` a semantically represented tree language."""

    original: RabinTreeAutomaton
    safety: RabinTreeAutomaton
    liveness: TreeLanguage
    #: Optional :class:`repro.certs.Certificate` attached by
    #: ``repro.analysis.decompose(..., certify=True)``; excluded from
    #: equality so certified and plain results compare as the same answer.
    certificate: object = field(default=None, compare=False, repr=False)

    def verify(self, witness) -> bool:
        """The shared verifier spelling of the unified decomposition
        protocol (:func:`repro.analysis.decompose`): ``witness`` is one
        :class:`~repro.trees.regular.RegularTree` or an iterable of
        them.  Rabin complementation is non-elementary, so — unlike the
        Büchi instance — there is no witness-free exact mode; passing
        ``None`` raises ``TypeError``."""
        if witness is None:
            raise TypeError(
                "RabinDecomposition.verify needs a RegularTree witness "
                "(or an iterable of them); exact verification is not "
                "available for Rabin tree automata"
            )
        if isinstance(witness, RegularTree):
            return self.verify_on_tree(witness)
        return self.verify_on_samples(witness)

    def verify_on_tree(self, tree: RegularTree) -> bool:
        """The identity, on one regular tree."""
        return accepts_tree(self.original, tree) == (
            accepts_tree(self.safety, tree) and tree in self.liveness
        )

    def verify_on_samples(self, trees) -> bool:
        return all(self.verify_on_tree(t) for t in trees)

    def safety_part_is_closed_on(self, trees, depth: int = 3) -> bool:
        """Sampled check that the safety part is fcl-closed: membership
        of each sample in ``L(B_safe)`` coincides with bounded
        fcl-membership (prefix-extendability into the same language)."""
        from repro.trees.closures import fcl_member_bounded, finite_prefix_of_regular

        members = [t for t in trees if accepts_tree(self.safety, t)]

        def extends(x):
            return any(finite_prefix_of_regular(x, z) for z in members)

        for t in trees:
            in_language = accepts_tree(self.safety, t)
            if in_language and not fcl_member_bounded(t, extends, depth):
                return False
        return True


def _decompose(automaton: RabinTreeAutomaton) -> RabinDecomposition:
    """Theorem 9's decomposition."""
    safety = rfcl(automaton)
    live = TreeLanguage.of_automaton(automaton) | ~TreeLanguage.of_automaton(
        safety
    )
    live.name = f"L({automaton.name}) ∪ ¬L({safety.name})"
    return RabinDecomposition(original=automaton, safety=safety, liveness=live)


def decompose(automaton: RabinTreeAutomaton) -> RabinDecomposition:
    """Deprecated spelling of Theorem 9 — use
    :func:`repro.analysis.decompose`."""
    warnings.warn(
        "repro.rabin.decomposition.decompose is deprecated; use "
        "repro.analysis.decompose(automaton)",
        DeprecationWarning,
        stacklevel=2,
    )
    return _decompose(automaton)
