"""Tree languages with decidable membership on regular trees.

Rabin complementation is effective (Thomas [22]) but non-elementary and
far outside a reasonable reproduction, so the liveness component of the
Theorem 9 decomposition is represented *semantically*: a
:class:`TreeLanguage` wraps a membership test on regular trees and forms
a Boolean algebra under ``&``, ``|``, ``~`` — exactly like
:class:`~repro.omega.language.OmegaLanguage` on the word side.  (The
substitution is recorded in DESIGN.md; the safety component is always a
genuine Rabin automaton.)
"""

from __future__ import annotations

from collections.abc import Callable

from repro.trees.regular import RegularTree

from .automaton import RabinTreeAutomaton
from .games_bridge import accepts_tree


class TreeLanguage:
    """A set of k-ary total trees given by a membership oracle on
    regular trees."""

    def __init__(self, branching: int, contains: Callable[[RegularTree], bool], name: str = "T"):
        if branching < 1:
            raise ValueError("branching must be >= 1")
        self.branching = branching
        self._contains = contains
        self.name = name

    def __contains__(self, tree: RegularTree) -> bool:
        if tree.branching != self.branching:
            raise ValueError(
                f"tree branching {tree.branching} != language branching "
                f"{self.branching}"
            )
        return bool(self._contains(tree))

    @classmethod
    def of_automaton(cls, automaton: RabinTreeAutomaton) -> "TreeLanguage":
        return cls(
            automaton.branching,
            lambda t: accepts_tree(automaton, t),
            name=f"L({automaton.name})",
        )

    def _check(self, other: "TreeLanguage") -> None:
        if self.branching != other.branching:
            raise ValueError("branching degrees differ")

    def __and__(self, other: "TreeLanguage") -> "TreeLanguage":
        self._check(other)
        return TreeLanguage(
            self.branching,
            lambda t: t in self and t in other,
            name=f"({self.name} ∩ {other.name})",
        )

    def __or__(self, other: "TreeLanguage") -> "TreeLanguage":
        self._check(other)
        return TreeLanguage(
            self.branching,
            lambda t: t in self or t in other,
            name=f"({self.name} ∪ {other.name})",
        )

    def __invert__(self) -> "TreeLanguage":
        return TreeLanguage(
            self.branching, lambda t: t not in self, name=f"¬{self.name}"
        )

    def agrees_with(self, other: "TreeLanguage", samples) -> bool:
        """Extensional agreement on a finite family of regular trees."""
        self._check(other)
        return all((t in self) == (t in other) for t in samples)

    def __repr__(self) -> str:
        return f"TreeLanguage({self.name!r}, k={self.branching})"
