"""Membership and emptiness of Rabin tree automata via games.

Both questions are games between **Automaton** (player 0: resolve the
nondeterminism — pick a transition tuple, and for emptiness also pick
the label) and **Pathfinder** (player 1: pick the branch to follow).
The winning condition on the resulting play — the Rabin condition over
the visited automaton states — becomes a Muller condition over
*signature colors* (which pairs a state is green/red for), which the LAR
construction turns into a parity game for Zielonka's solver.

The arenas are built over int vertex and color ids (one
:class:`~repro.automata.interner.Interner` each — the repo's single
renumbering codepath), so the LAR records the construction permutes are
tuples of small ints rather than nested frozensets; the winning family
is evaluated on int color sets via a per-game memo and only decodes to
the original signatures on a cache miss.

For non-empty automata, :func:`emptiness_witness` extracts a regular
tree in the language from player 0's positional strategy in the parity
game — the classical "Rabin's basis theorem" effect.
"""

from __future__ import annotations

from repro.automata.interner import Interner
from repro.games.lar import MullerGame, lar_parity_game, rabin_signature
from repro.games.zielonka import solve
from repro.trees.regular import RegularTree

from .automaton import RabinTreeAutomaton

_DEAD = ("⊥-dead",)


def _winning_family(automaton: RabinTreeAutomaton):
    pairs = [(p.green, p.red) for p in automaton.pairs]

    def accepts(color_set: frozenset) -> bool:
        if any(c == "⊥" for c in color_set):
            return False
        for i in range(len(pairs)):
            if any((i, "r") in marks for marks in color_set if marks != "⊥"):
                continue
            if any((i, "g") in marks for marks in color_set if marks != "⊥"):
                return True
        return False

    return accepts


def _int_winning_family(automaton: RabinTreeAutomaton, colors: Interner):
    """The winning family on interned color ids, memoized per game (the
    LAR construction probes the same record prefixes many times)."""
    base = _winning_family(automaton)
    cache: dict = {}

    def accepts(color_set: frozenset) -> bool:
        verdict = cache.get(color_set)
        if verdict is None:
            verdict = cache[color_set] = base(
                frozenset(colors.value(c) for c in color_set)
            )
        return verdict

    return accepts


def _signature(automaton: RabinTreeAutomaton, q) -> frozenset:
    return rabin_signature(q, [(p.green, p.red) for p in automaton.pairs])


def accepts_tree(automaton: RabinTreeAutomaton, tree: RegularTree) -> bool:
    """``tree ∈ L(B)`` — the membership game on (tree vertex × state)."""
    if tree.branching != automaton.branching:
        raise ValueError(
            f"tree branching {tree.branching} != automaton branching "
            f"{automaton.branching}"
        )
    vertices = Interner()
    colors = Interner()
    dead = vertices.intern(_DEAD)
    owner: dict = {dead: 0}
    color: dict = {dead: colors.intern("⊥")}
    edges: dict = {dead: [dead]}
    state_vertices = [
        (v, q) for v in tree.reachable_vertices() for q in automaton.states
    ]
    for v, q in state_vertices:
        node = vertices.intern(("s", v, q))
        owner[node] = 0
        color[node] = colors.intern(_signature(automaton, q))
        label = tree.label_of_vertex(v)
        moves = automaton.moves(q, label) if label in automaton.alphabet else frozenset()
        if not moves:
            edges[node] = [dead]
            continue
        targets = []
        for t in sorted(moves):
            choice = vertices.intern(("c", v, q, t))
            owner[choice] = 1
            color[choice] = color[node]
            succ_vertices = tree.successors_of_vertex(v)
            edges[choice] = [
                vertices.intern(("s", succ_vertices[i], t[i]))
                for i in range(automaton.branching)
            ]
            targets.append(choice)
        edges[node] = targets
    game = MullerGame(owner, color, edges, _int_winning_family(automaton, colors))
    start = vertices.index_of(("s", tree.root, automaton.initial))
    parity, start = lar_parity_game(game, start)
    return solve(parity).winning[start] == 0


def membership_run(
    automaton: RabinTreeAutomaton, tree: RegularTree
) -> tuple | None:
    """A finite run-graph witness for ``tree ∈ L(B)``, or ``None``.

    Player 0's positional strategy in the membership parity game is
    finite-memory on the (tree vertex × state) arena; its reachable
    subgraph *is* a regular accepting run.  Returned as a tuple of
    ``(tree_vertex, state, child_ids)`` triples — node 0 is the root,
    ``child_ids[i]`` the run node reading direction ``i`` — the shape
    :mod:`repro.certs` serializes as its ``membership-runs`` witness.
    """
    if tree.branching != automaton.branching:
        raise ValueError(
            f"tree branching {tree.branching} != automaton branching "
            f"{automaton.branching}"
        )
    vertices = Interner()
    colors = Interner()
    dead = vertices.intern(_DEAD)
    owner: dict = {dead: 0}
    color: dict = {dead: colors.intern("⊥")}
    edges: dict = {dead: [dead]}
    for v in tree.reachable_vertices():
        for q in automaton.states:
            node = vertices.intern(("s", v, q))
            owner[node] = 0
            color[node] = colors.intern(_signature(automaton, q))
            label = tree.label_of_vertex(v)
            moves = (
                automaton.moves(q, label)
                if label in automaton.alphabet
                else frozenset()
            )
            if not moves:
                edges[node] = [dead]
                continue
            targets = []
            for t in sorted(moves):
                choice = vertices.intern(("c", v, q, t))
                owner[choice] = 1
                color[choice] = color[node]
                succ_vertices = tree.successors_of_vertex(v)
                edges[choice] = [
                    vertices.intern(("s", succ_vertices[i], t[i]))
                    for i in range(automaton.branching)
                ]
                targets.append(choice)
            edges[node] = targets
    game = MullerGame(owner, color, edges, _int_winning_family(automaton, colors))
    start = vertices.index_of(("s", tree.root, automaton.initial))
    parity, start = lar_parity_game(game, start)
    solution = solve(parity)
    if solution.winning[start] != 0:
        return None
    index = {start: 0}
    nodes: list = [None]
    frontier = [start]
    while frontier:
        node = frontier.pop()
        (_s, v, q) = vertices.value(node[0])
        choice = solution.strategy.get(node)
        if choice is None:
            choice = next(
                s for s in parity.successors(node) if solution.winning[s] == 0
            )
        child_ids = []
        # parity successors of the choice vertex are in tree-direction
        # order because the underlying Muller edges were built that way
        for child in parity.successors(choice):
            if child not in index:
                index[child] = len(nodes)
                nodes.append(None)
                frontier.append(child)
            child_ids.append(index[child])
        nodes[index[node]] = (v, q, tuple(child_ids))
    return tuple(nodes)


def _emptiness_game(automaton: RabinTreeAutomaton):
    """The emptiness arena (player 0 also chooses the label), plus the
    vertex interner mapping int ids back to the original payloads."""
    vertices = Interner()
    colors = Interner()
    dead = vertices.intern(_DEAD)
    owner: dict = {dead: 0}
    color: dict = {dead: colors.intern("⊥")}
    edges: dict = {dead: [dead]}
    for q in automaton.states:
        node = vertices.intern(("s", q))
        owner[node] = 0
        color[node] = colors.intern(_signature(automaton, q))
        targets = []
        for a in sorted(automaton.alphabet, key=repr):
            for t in sorted(automaton.moves(q, a)):
                choice = vertices.intern(("c", q, a, t))
                owner[choice] = 1
                color[choice] = color[node]
                edges[choice] = [vertices.intern(("s", s)) for s in t]
                targets.append(choice)
        edges[node] = targets if targets else [dead]
    game = MullerGame(owner, color, edges, _int_winning_family(automaton, colors))
    return game, vertices


def is_empty(automaton: RabinTreeAutomaton) -> bool:
    """``L(B) = ∅``?"""
    game, vertices = _emptiness_game(automaton)
    parity, start = lar_parity_game(game, vertices.index_of(("s", automaton.initial)))
    return solve(parity).winning[start] != 0


def nonempty_states(automaton: RabinTreeAutomaton) -> frozenset:
    """``{q | L(B(q)) ≠ ∅}`` — the state set the closure keeps (§4.4)."""
    game, vertices = _emptiness_game(automaton)
    result = set()
    for q in automaton.states:
        parity, start = lar_parity_game(game, vertices.index_of(("s", q)))
        if solve(parity).winning[start] == 0:
            result.add(q)
    return frozenset(result)


def emptiness_witness(automaton: RabinTreeAutomaton) -> RegularTree | None:
    """A regular tree in ``L(B)``, or ``None`` when empty.

    Built from player 0's positional strategy in the LAR parity game:
    the strategy is positional on the expanded arena, i.e. finite-memory
    on the original one, and the reachable strategy subgraph *is* the
    witness tree's generating graph.
    """
    game, vertices = _emptiness_game(automaton)
    parity, start = lar_parity_game(game, vertices.index_of(("s", automaton.initial)))
    solution = solve(parity)
    if solution.winning[start] != 0:
        return None

    labels: dict = {}
    successors: dict = {}
    frontier = [start]
    seen = {start}
    while frontier:
        node = frontier.pop()
        choice = solution.strategy.get(node)
        if choice is None:
            # vertex already in player 0's region must have a move kept
            # by the solver; fall back to any winning successor
            choice = next(
                s for s in parity.successors(node) if solution.winning[s] == 0
            )
        # choice is an LAR vertex (muller_vertex_id, record, hit); decode
        # the original ("c", q, a, t) payload through the interner
        (_c, _q, a, t) = vertices.value(choice[0])
        labels[node] = a
        succ_nodes = []
        for direction_target in parity.successors(choice):
            succ_nodes.append(direction_target)
        # parity successors of the choice vertex are in tree-direction
        # order because the underlying Muller edges were built that way
        successors[node] = tuple(succ_nodes)
        for s in succ_nodes:
            if s not in seen:
                seen.add(s)
                frontier.append(s)
    witness = RegularTree(labels, successors, start)
    return witness
