"""Rabin tree automata: game-based membership/emptiness, the closure
``rfcl``, and the Theorem 9 decomposition (§4.4)."""

from .automaton import RabinError, RabinPair, RabinTreeAutomaton
from .closure import is_closure_automaton, rfcl
from .decomposition import RabinDecomposition, decompose
from .games_bridge import (
    accepts_tree,
    emptiness_witness,
    is_empty,
    nonempty_states,
)
from .language import TreeLanguage
from .operations import intersection_language, union

__all__ = [
    "RabinTreeAutomaton",
    "RabinPair",
    "RabinError",
    "accepts_tree",
    "is_empty",
    "nonempty_states",
    "emptiness_witness",
    "rfcl",
    "is_closure_automaton",
    "TreeLanguage",
    "RabinDecomposition",
    "union",
    "intersection_language",
]
