"""The finite-depth closure ``rfcl`` on Rabin tree automata (§4.4).

The paper: *if L(B) = ∅, rfcl.B = B; otherwise rfcl.B = (Σ, Q', q0, δ',
Φ') where Q' = {q | L(B(q)) ≠ ∅}, δ' is δ restricted to Q', and Φ' is a
condition that holds along all paths, generated from {(Q', ∅)}* — i.e.
keep the states with non-empty language and trivialize acceptance, the
exact tree analogue of the Büchi closure of §2.4.  ``L(rfcl.B) =
fcl(L(B))``.
"""

from __future__ import annotations

from .automaton import RabinPair, RabinTreeAutomaton
from .games_bridge import is_empty, nonempty_states


def rfcl(automaton: RabinTreeAutomaton) -> RabinTreeAutomaton:
    """The closure automaton."""
    if is_empty(automaton):
        return RabinTreeAutomaton(
            alphabet=automaton.alphabet,
            states=automaton.states,
            initial=automaton.initial,
            transitions=dict(automaton.transitions),
            pairs=automaton.pairs,
            branching=automaton.branching,
            name=f"rfcl({automaton.name})",
        )
    live = nonempty_states(automaton)
    trimmed = automaton.restricted_to(live)
    trivial = (RabinPair(green=frozenset(live), red=frozenset()),)
    return RabinTreeAutomaton(
        alphabet=trimmed.alphabet,
        states=trimmed.states,
        initial=trimmed.initial,
        transitions=dict(trimmed.transitions),
        pairs=trivial,
        branching=trimmed.branching,
        name=f"rfcl({automaton.name})",
    )


def is_closure_automaton(automaton: RabinTreeAutomaton) -> bool:
    """Structurally in the image of :func:`rfcl` (non-empty case): a
    single trivial pair covering all

    states."""
    if len(automaton.pairs) != 1:
        return False
    (pair,) = automaton.pairs
    return pair.red == frozenset() and pair.green == automaton.states
