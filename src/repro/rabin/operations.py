"""Boolean operations on Rabin tree automata.

Union is effective and cheap (transition-level nondeterminism plus the
disjoint union of pair lists) — it is half of what Theorem 9's
``B_live = B ∪ ¬rfcl(B)`` needs; the complement half is the documented
semantic substitution (see :mod:`repro.rabin.language`).

Intersection of *Rabin* conditions is not a Rabin condition pairwise
(a conjunction of Rabin pairs is a Streett-like demand), so
:func:`intersection_language` returns the semantic
:class:`~repro.rabin.language.TreeLanguage` instead of pretending.
"""

from __future__ import annotations

from .automaton import RabinPair, RabinTreeAutomaton
from .language import TreeLanguage


def union(a: RabinTreeAutomaton, b: RabinTreeAutomaton, name: str | None = None) -> RabinTreeAutomaton:
    """``L(a) ∪ L(b)`` as a genuine Rabin automaton.

    Disjoint copies plus a fresh initial state whose moves are the union
    of both initials' moves; acceptance pairs are the tagged union (a run
    commits to one copy after the first step, so the pairs never mix).
    """
    if a.alphabet != b.alphabet:
        raise ValueError("alphabet mismatch")
    if a.branching != b.branching:
        raise ValueError("branching mismatch")
    init = ("∪",)
    states = {init}
    transitions: dict = {}
    pairs: list[RabinPair] = []

    for tag, m in (("l", a), ("r", b)):
        for q in m.states:
            states.add((tag, q))
        for (q, sym), tuples in m.transitions.items():
            transitions[(tag, q), sym] = frozenset(
                tuple((tag, s) for s in t) for t in tuples
            )
        for pair in m.pairs:
            pairs.append(
                RabinPair(
                    green=frozenset((tag, q) for q in pair.green),
                    red=frozenset((tag, q) for q in pair.red),
                )
            )

    for sym in a.alphabet:
        moves = frozenset(
            tuple(("l", s) for s in t) for t in a.moves(a.initial, sym)
        ) | frozenset(tuple(("r", s) for s in t) for t in b.moves(b.initial, sym))
        if moves:
            transitions[init, sym] = moves

    return RabinTreeAutomaton(
        alphabet=a.alphabet,
        states=frozenset(states),
        initial=init,
        transitions=transitions,
        pairs=tuple(pairs),
        branching=a.branching,
        name=name or f"({a.name} ∪ {b.name})",
    )


def intersection_language(
    a: RabinTreeAutomaton, b: RabinTreeAutomaton
) -> TreeLanguage:
    """``L(a) ∩ L(b)`` as a semantic tree language (the conjunction of
    two Rabin conditions is not a Rabin condition; see module doc)."""
    return TreeLanguage.of_automaton(a) & TreeLanguage.of_automaton(b)
