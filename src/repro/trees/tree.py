"""Finite Σ-labeled trees (paper §4.1).

A tree is a pair ``(W, w)`` where ``W ⊆ ℕ*`` is prefix-closed and
``w : W → Σ`` labels the nodes.  Nodes are tuples of ints; the root is
``()``.  :class:`FiniteTree` is immutable and hashable.

The paper's notions implemented here: leaves, paths, total / non-total /
finite-depth (for finite trees only non-total applies — every finite tree
is finite-depth and non-total), and k-branching.
"""

from __future__ import annotations

from collections.abc import Iterator, Mapping

Node = tuple[int, ...]


class TreeError(ValueError):
    """Raised when tree data is malformed."""


class FiniteTree:
    """An immutable finite labeled tree."""

    __slots__ = ("_labels",)

    def __init__(self, labels: Mapping[Node, object]):
        table = {tuple(node): label for node, label in labels.items()}
        if not table:
            raise TreeError("a tree must contain at least the root")
        for node in table:
            if node and node[:-1] not in table:
                raise TreeError(f"domain is not prefix-closed at {node!r}")
            if any(not isinstance(i, int) or i < 0 for i in node):
                raise TreeError(f"node {node!r} is not a word over ℕ")
        self._labels = table

    # -- constructors -------------------------------------------------------

    @classmethod
    def leaf_tree(cls, label) -> "FiniteTree":
        """The single-node tree."""
        return cls({(): label})

    @classmethod
    def from_nested(cls, nested) -> "FiniteTree":
        """Build from ``(label, [child, child, ...])`` nesting, e.g.
        ``("a", [("b", []), ("c", [("a", [])]])``."""
        labels: dict[Node, object] = {}

        def walk(spec, node: Node):
            label, children = spec
            labels[node] = label
            for i, child in enumerate(children):
                walk(child, node + (i,))

        walk(nested, ())
        return cls(labels)

    @classmethod
    def path_tree(cls, symbols) -> "FiniteTree":
        """The unary tree spelling ``symbols`` (a finite word as a tree)."""
        symbols = list(symbols)
        if not symbols:
            raise TreeError("a path tree needs at least one symbol")
        return cls({tuple([0] * i): s for i, s in enumerate(symbols)})

    # -- queries ------------------------------------------------------------

    @property
    def nodes(self) -> frozenset:
        return frozenset(self._labels)

    def label(self, node: Node):
        try:
            return self._labels[tuple(node)]
        except KeyError:
            raise KeyError(f"{node!r} is not a node of this tree") from None

    def __contains__(self, node) -> bool:
        return tuple(node) in self._labels

    def __len__(self) -> int:
        return len(self._labels)

    def children(self, node: Node) -> list[Node]:
        node = tuple(node)
        out = []
        i = 0
        # children need not be consecutively numbered in general trees;
        # scan all nodes one longer than `node`
        for other in self._labels:
            if len(other) == len(node) + 1 and other[: len(node)] == node:
                out.append(other)
        return sorted(out)

    def is_leaf(self, node: Node) -> bool:
        """The paper's Definition 2: no proper extension in the domain."""
        node = tuple(node)
        return not any(
            other != node and other[: len(node)] == node for other in self._labels
        )

    def leaves(self) -> list[Node]:
        return sorted(n for n in self._labels if self.is_leaf(n))

    def depth(self) -> int:
        """Length of the longest node."""
        return max(len(n) for n in self._labels)

    def symbols(self) -> frozenset:
        return frozenset(self._labels.values())

    def is_k_branching_interior(self, k: int) -> bool:
        """Every non-leaf node has exactly ``k`` children (the shape
        required of prefixes of k-branching total trees)."""
        return all(
            len(self.children(n)) == k
            for n in self._labels
            if not self.is_leaf(n)
        )

    # -- paths (paper: totally ordered prefix-closed subsets) -----------------

    def root_paths(self) -> Iterator[tuple[Node, ...]]:
        """All maximal root-to-leaf node sequences."""
        for leaf in self.leaves():
            yield tuple(leaf[:i] for i in range(len(leaf) + 1))

    def path_word(self, path) -> tuple:
        """The label word along a node sequence (the paper's ``w(p)``)."""
        return tuple(self._labels[tuple(n)] for n in path)

    # -- derived trees --------------------------------------------------------

    def subtree(self, node: Node) -> "FiniteTree":
        """The subtree rooted at ``node``, re-rooted to ``()``."""
        node = tuple(node)
        if node not in self._labels:
            raise KeyError(f"{node!r} is not a node")
        prefix_len = len(node)
        return FiniteTree(
            {
                other[prefix_len:]: label
                for other, label in self._labels.items()
                if other[:prefix_len] == node
            }
        )

    def truncated(self, depth: int) -> "FiniteTree":
        """The restriction to nodes of length ``<= depth``."""
        if depth < 0:
            raise TreeError("depth must be non-negative")
        return FiniteTree(
            {n: s for n, s in self._labels.items() if len(n) <= depth}
        )

    def relabeled(self, mapping) -> "FiniteTree":
        fn = mapping if callable(mapping) else mapping.__getitem__
        return FiniteTree({n: fn(s) for n, s in self._labels.items()})

    def items(self):
        return self._labels.items()

    # -- dunder ------------------------------------------------------------------

    def __eq__(self, other) -> bool:
        if not isinstance(other, FiniteTree):
            return NotImplemented
        return self._labels == other._labels

    def __hash__(self):
        return hash(frozenset(self._labels.items()))

    def __repr__(self) -> str:
        return f"FiniteTree({len(self)} nodes, depth {self.depth()})"
