"""Tree concatenation and the tree prefix order (paper §4.2).

The paper defines (Definitions 1–4):

* *preliminary concatenation* ``w ⊕ x = (W ∪ X, w ∪ (x ↾ X∖W))`` — glue
  ``x`` over ``w``, keeping ``w``'s labels where both are defined;
* *leaf* — a node with no proper extension in the domain;
* *concatenation* ``w·x`` — like ``⊕`` but growth is only allowed below
  the leaves of ``w``: the nodes of ``x`` kept are those inside ``W`` or
  extending some leaf of ``w``;
* *prefix order* ``x ⊑ y  iff  ∃z : x·z = y``.

:func:`is_tree_prefix` decides ``⊑`` directly via the structural
characterization (domain inclusion + label agreement + new growth only
below leaves), and :func:`prefix_witness` produces the ``z`` that
certifies it — so the definition and the characterization are
cross-checked in the tests.
"""

from __future__ import annotations

from .tree import FiniteTree, Node


def preliminary_concat(w: FiniteTree, x: FiniteTree) -> FiniteTree:
    """Definition 1: ``w ⊕ x`` — union of domains, ``w``'s labels win."""
    labels = {node: label for node, label in x.items()}
    labels.update(dict(w.items()))
    return FiniteTree(labels)


def concat(w: FiniteTree, x: FiniteTree) -> FiniteTree:
    """Definition 3: ``w·x`` — extend ``w`` only below its leaves.

    A node of ``x`` survives iff it lies inside ``w``'s domain or extends
    (as a string) some leaf of ``w``.
    """
    leaves = w.leaves()
    kept = {}
    for node, label in x.items():
        if node in w:
            continue  # w's label wins there anyway; skip early
        if any(_extends(node, leaf) for leaf in leaves):
            kept[node] = label
    labels = dict(w.items())
    labels.update(kept)
    return FiniteTree(labels)


def is_tree_prefix(x: FiniteTree, y: FiniteTree) -> bool:
    """Definition 4: ``x ⊑ y`` — decided structurally.

    ``x ⊑ y`` iff (i) every node of ``x`` is a node of ``y`` with the
    same label, and (ii) every node of ``y`` outside ``x`` strictly
    extends some leaf of ``x``.
    """
    for node, label in x.items():
        if node not in y or y.label(node) != label:
            return False
    leaves = x.leaves()
    for node, _label in y.items():
        if node in x:
            continue
        if not any(_strictly_extends(node, leaf) for leaf in leaves):
            return False
    return True


def is_proper_tree_prefix(x: FiniteTree, y: FiniteTree) -> bool:
    return x != y and is_tree_prefix(x, y)


def prefix_witness(x: FiniteTree, y: FiniteTree) -> FiniteTree | None:
    """A tree ``z`` with ``x·z = y``, or ``None`` when ``x ⋢ y``.

    ``z``'s domain is the set of ``y``-nodes at-or-beyond the leaves of
    ``x``, together with all their ancestors (labeled from ``y``; the
    ancestor labels inside ``x`` are irrelevant to the concatenation, and
    taking them from ``y`` keeps the witness canonical).
    """
    if not is_tree_prefix(x, y):
        return None
    leaves = x.leaves()
    domain: set[Node] = {()}
    for node, _label in y.items():
        if any(_extends(node, leaf) for leaf in leaves):
            for i in range(len(node) + 1):
                domain.add(node[:i])
    return FiniteTree({node: y.label(node) for node in domain})


def tree_prefixes(y: FiniteTree) -> list[FiniteTree]:
    """All trees ``x ⊑ y`` (exponential; for small test trees).

    Prefixes of ``y`` correspond to "antichain cuts": subsets of ``y``'s
    domain that are prefix-closed, contain the root, and — because
    growth happens only below leaves — are *downward complete*: a kept
    node keeps all its ``y``-siblings' subtrees?  No: the
    characterization only requires dropped nodes to extend kept leaves,
    which is automatic for prefix-closed subsets.  So the prefixes are
    exactly the prefix-closed subsets of the domain containing the root,
    labeled as in ``y`` — except that dropping a node requires dropping
    its subtree (prefix-closure) and that a node may only be dropped if
    its parent becomes... a leaf is created wherever children are cut.
    """
    nodes = sorted(y.nodes, key=lambda n: (len(n), n))
    prefixes: list[FiniteTree] = []
    # enumerate prefix-closed subsets containing the root
    rest = [n for n in nodes if n != ()]
    for mask in range(2 ** len(rest)):
        subset = {()} | {rest[i] for i in range(len(rest)) if mask >> i & 1}
        if all(n[:-1] in subset for n in subset if n):
            candidate = FiniteTree({n: y.label(n) for n in subset})
            if is_tree_prefix(candidate, y):
                prefixes.append(candidate)
    return prefixes


def _extends(node: Node, base: Node) -> bool:
    """``base`` is a (string) prefix of ``node``."""
    return len(node) >= len(base) and node[: len(base)] == base


def _strictly_extends(node: Node, base: Node) -> bool:
    return len(node) > len(base) and node[: len(base)] == base
