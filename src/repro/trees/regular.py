"""Regular infinite trees (the decidable fragment of ``A_tot``).

The paper's branching-time framework quantifies over *total* trees —
every node has a successor, so every branch is infinite.  Arbitrary total
trees are not representable; the *regular* ones (finitely many subtrees
up to isomorphism) are, as unfoldings of finite pointed labeled graphs,
and they are complete for the paper's effective claims: a Rabin tree
automaton language is non-empty iff it contains a regular tree.

:class:`RegularTree` fixes a branching degree ``k`` (the paper's §4.4
restriction to k-ary trees) and stores, per vertex, a label and a
``k``-tuple of successor vertices.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence

from .tree import FiniteTree, Node


class RegularTreeError(ValueError):
    """Raised when regular-tree data is malformed."""


class RegularTree:
    """A k-branching total tree, represented as a pointed graph unfolding.

    Parameters
    ----------
    labels:
        ``vertex -> symbol``.
    successors:
        ``vertex -> k-tuple of vertices``; all tuples must have the same
        arity ``k >= 1``.
    root:
        The vertex whose unfolding is the tree.
    """

    __slots__ = ("_labels", "_successors", "root", "branching")

    def __init__(
        self,
        labels: Mapping[object, object],
        successors: Mapping[object, Sequence[object]],
        root: object,
    ):
        self._labels = dict(labels)
        self._successors = {v: tuple(s) for v, s in successors.items()}
        if root not in self._labels:
            raise RegularTreeError(f"root {root!r} has no label")
        arities = {len(s) for s in self._successors.values()}
        if len(arities) != 1:
            raise RegularTreeError("all vertices must have the same arity")
        (self.branching,) = arities
        if self.branching < 1:
            raise RegularTreeError("branching degree must be >= 1 (total trees)")
        for v in self._labels:
            if v not in self._successors:
                raise RegularTreeError(f"vertex {v!r} has no successor tuple")
            for s in self._successors[v]:
                if s not in self._labels:
                    raise RegularTreeError(
                        f"successor {s!r} of {v!r} has no label"
                    )
        self.root = root

    # -- constructors -----------------------------------------------------------

    @classmethod
    def constant(cls, symbol, k: int = 2) -> "RegularTree":
        """The tree labeled ``symbol`` everywhere."""
        return cls({0: symbol}, {0: (0,) * k}, 0)

    @classmethod
    def from_word(cls, word, k: int = 1) -> "RegularTree":
        """The unary (or k-copied) tree spelling an ultimately periodic
        word: each level carries the word's symbol at that depth."""
        from repro.omega.word import LassoWord

        if not isinstance(word, LassoWord):
            raise RegularTreeError("from_word expects a LassoWord")
        labels: dict = {}
        successors: dict = {}
        spine = word.spine_length
        loop_back = len(word.prefix)
        for i in range(spine):
            labels[i] = word[i]
            nxt = i + 1 if i + 1 < spine else loop_back
            successors[i] = (nxt,) * k
        return cls(labels, successors, 0)

    # -- structure ----------------------------------------------------------------

    def vertex_at(self, node: Node):
        """The graph vertex reached by following ``node`` from the root."""
        v = self.root
        for direction in node:
            if not 0 <= direction < self.branching:
                raise RegularTreeError(
                    f"direction {direction} out of range for k={self.branching}"
                )
            v = self._successors[v][direction]
        return v

    def label_at(self, node: Node):
        """The tree's label at tree-node ``node``."""
        return self._labels[self.vertex_at(node)]

    def label_of_vertex(self, v):
        return self._labels[v]

    def successors_of_vertex(self, v) -> tuple:
        return self._successors[v]

    @property
    def vertices(self) -> frozenset:
        return frozenset(self._labels)

    def reachable_vertices(self) -> frozenset:
        seen = {self.root}
        frontier = [self.root]
        while frontier:
            v = frontier.pop()
            for s in self._successors[v]:
                if s not in seen:
                    seen.add(s)
                    frontier.append(s)
        return frozenset(seen)

    def symbols(self) -> frozenset:
        return frozenset(
            self._labels[v] for v in self.reachable_vertices()
        )

    # -- finite approximations ----------------------------------------------------

    def unfold(self, depth: int) -> FiniteTree:
        """The finite-depth prefix of the tree down to ``depth`` — an
        element of the paper's ``A_f`` (every branch cut at the same
        depth, so non-leaf nodes keep all ``k`` children)."""
        if depth < 0:
            raise RegularTreeError("depth must be non-negative")
        labels: dict[Node, object] = {}

        def walk(v, node: Node):
            labels[node] = self._labels[v]
            if len(node) < depth:
                for i, s in enumerate(self._successors[v]):
                    walk(s, node + (i,))

        walk(self.root, ())
        return FiniteTree(labels)

    def branch_word(self, directions) -> "LassoWordView":
        """The labels along one infinite branch given by an eventually
        periodic direction sequence ``(prefix, cycle)`` — returned as a
        :class:`~repro.omega.word.LassoWord` (paths of regular trees along
        regular branches are lasso words)."""
        from repro.omega.word import LassoWord

        dir_prefix, dir_cycle = directions
        dir_prefix = tuple(dir_prefix)
        dir_cycle = tuple(dir_cycle)
        if not dir_cycle:
            raise RegularTreeError("direction cycle must be non-empty")
        # follow until (vertex, position-in-cycle) repeats
        symbols = []
        v = self.root
        for d in dir_prefix:
            symbols.append(self._labels[v])
            v = self._successors[v][d]
        seen: dict[tuple, int] = {}
        position = 0
        tail: list = []
        while (v, position) not in seen:
            seen[v, position] = len(tail)
            tail.append(self._labels[v])
            v = self._successors[v][dir_cycle[position]]
            position = (position + 1) % len(dir_cycle)
        start = seen[v, position]
        return LassoWord(
            tuple(symbols) + tuple(tail[:start]), tuple(tail[start:])
        )

    # -- comparison -----------------------------------------------------------------

    def bisimilar(self, other: "RegularTree") -> bool:
        """Whether the two unfoldings are the same labeled tree (decided
        by a product reachability over vertex pairs)."""
        if self.branching != other.branching:
            return False
        seen = set()
        frontier = [(self.root, other.root)]
        while frontier:
            p, q = frontier.pop()
            if (p, q) in seen:
                continue
            seen.add((p, q))
            if self._labels[p] != other._labels[q]:
                return False
            frontier.extend(
                zip(self._successors[p], other._successors[q])
            )
        return True

    def __repr__(self) -> str:
        return (
            f"RegularTree(k={self.branching}, "
            f"|V|={len(self.reachable_vertices())}, root={self.root!r})"
        )


# readable alias used in docstrings
LassoWordView = "repro.omega.word.LassoWord"
