"""Σ-labeled trees, the paper's tree concatenation/prefix order, and the
branching-time closures (paper §4)."""

from .closures import (
    PartialRegularPrefix,
    closure_on_samples,
    fcl_member_bounded,
    finite_prefix_of_regular,
    frozen_path_word,
    members_extension_oracle,
    partial_prefix_of_regular,
)
from .concat import (
    concat,
    is_proper_tree_prefix,
    is_tree_prefix,
    prefix_witness,
    preliminary_concat,
    tree_prefixes,
)
from .regular import RegularTree, RegularTreeError
from .tree import FiniteTree, TreeError

__all__ = [
    "FiniteTree",
    "TreeError",
    "RegularTree",
    "RegularTreeError",
    "concat",
    "preliminary_concat",
    "is_tree_prefix",
    "is_proper_tree_prefix",
    "prefix_witness",
    "tree_prefixes",
    "finite_prefix_of_regular",
    "PartialRegularPrefix",
    "partial_prefix_of_regular",
    "frozen_path_word",
    "fcl_member_bounded",
    "members_extension_oracle",
    "closure_on_samples",
]
