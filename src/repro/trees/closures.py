"""The branching-time closures ``fcl`` and ``ncl`` on decidable fragments
(paper §4.2–4.3).

The paper defines two closures on ``P(A_tot)``::

    fcl.P = { y total | every finite-depth prefix of y extends into P }
    ncl.P = { y total | every non-total   prefix of y extends into P }

Arbitrary sets of trees are not representable, so this module provides
the machinery the reproduction actually computes with:

* :func:`finite_prefix_of_regular` — decide ``x ⊑ y`` for a finite tree
  ``x`` and a regular total tree ``y`` (structural characterization:
  labels agree and every branching node of ``x`` carries all ``k``
  children).
* :class:`PartialRegularPrefix` — *non-total* regular prefixes (some
  vertices are leaves, others keep their full successor tuple), with the
  coinductive prefix test :func:`partial_prefix_of_regular`.  These are
  exactly the witnesses the paper uses in §4.3 ("consider a tree with
  two paths such that along one of them a always holds").
* :func:`frozen_path_word` — certify that an infinite path of a prefix
  survives into every extension (the refutation principle behind every
  ``ncl`` inequality in the paper's §4.3 table).
* :func:`closure_on_samples` — the bridge to Section 3: given a finite
  universe of regular trees, build the powerset lattice and the induced
  (idempotent-hull) lattice closures, on which Theorem 3/4 run verbatim.
"""

from __future__ import annotations

from collections.abc import Callable, Mapping, Sequence

from repro.lattice.closure import LatticeClosure
from repro.lattice.lattice import FiniteLattice

from .regular import RegularTree
from .tree import FiniteTree


def finite_prefix_of_regular(x: FiniteTree, y: RegularTree) -> bool:
    """``x ⊑ y`` for finite ``x`` and regular total ``y``.

    Characterization (derived from Definition 4): labels agree on ``x``'s
    domain, every direction used lies below ``k``, and every *branching*
    node of ``x`` (one with at least one child) carries all ``k``
    children — otherwise a missing sibling of ``y`` could not be
    accounted for by growth below leaves.
    """
    k = y.branching
    for node, label in x.items():
        if any(not 0 <= d < k for d in node):
            return False
        if y.label_at(node) != label:
            return False
        children = x.children(node)
        if children and len(children) != k:
            return False
        if children and {c[-1] for c in children} != set(range(k)):
            return False
    return True


class PartialRegularPrefix:
    """A regular *non-total* tree: each vertex is either a leaf (empty
    successor tuple) or carries a full ``k``-tuple of successors.

    These are the non-total prefixes ``x ∈ A_nt`` with ``x ⊑ y`` that the
    ``ncl`` closure quantifies over — crucially they may contain
    *infinite* branches (kept forever in every extension).
    """

    __slots__ = ("_labels", "_successors", "root", "branching")

    def __init__(
        self,
        labels: Mapping[object, object],
        successors: Mapping[object, Sequence[object]],
        root: object,
        branching: int,
    ):
        self._labels = dict(labels)
        self._successors = {v: tuple(s) for v, s in successors.items()}
        self.root = root
        self.branching = branching
        if root not in self._labels:
            raise ValueError(f"root {root!r} has no label")
        for v, succ in self._successors.items():
            if len(succ) not in (0, branching):
                raise ValueError(
                    f"vertex {v!r} must be a leaf or have all {branching} children"
                )
        has_leaf = any(not s for s in self._successors.values())
        if not has_leaf:
            raise ValueError("a non-total prefix must contain at least one leaf")

    @classmethod
    def cut_except_branch(
        cls, tree: RegularTree, directions: Sequence[int], keep_depth: int = 1
    ) -> "PartialRegularPrefix":
        """The paper's witness shape: keep the branch that repeatedly
        follows ``directions`` (cycled) infinite, cut every sibling into a
        leaf after ``keep_depth`` more levels.

        The result is a non-total prefix of ``tree`` whose one infinite
        branch is frozen into every extension.
        """
        directions = tuple(directions)
        if not directions:
            raise ValueError("directions must be non-empty")
        labels: dict = {}
        successors: dict = {}
        k = tree.branching

        # vertices of the prefix: ("spine", i) along the kept branch, and
        # ("cut", v, d) for the sibling subtrees truncated after keep_depth
        spine_vertex = tree.root
        spine: list = []
        seen: dict[tuple, int] = {}
        position = 0
        while (spine_vertex, position) not in seen:
            seen[spine_vertex, position] = len(spine)
            spine.append(spine_vertex)
            spine_vertex = tree.successors_of_vertex(spine_vertex)[
                directions[position]
            ]
            position = (position + 1) % len(directions)
        loop_target = seen[spine_vertex, position]

        def cut_name(i: int, path: tuple) -> tuple:
            return ("cut", i, path)

        for i, v in enumerate(spine):
            labels["spine", i] = tree.label_of_vertex(v)
            succ = []
            kept_direction = directions[i % len(directions)]
            for d in range(k):
                if d == kept_direction:
                    nxt = i + 1 if i + 1 < len(spine) else loop_target
                    succ.append(("spine", nxt))
                else:
                    succ.append(cut_name(i, (d,)))
            successors["spine", i] = tuple(succ)
            # build the truncated sibling subtrees
            frontier = [(tree.successors_of_vertex(v)[d], (d,)) for d in range(k) if d != kept_direction]
            while frontier:
                u, path = frontier.pop()
                name = cut_name(i, path)
                labels[name] = tree.label_of_vertex(u)
                if len(path) < keep_depth + 1:
                    child_names = []
                    for d in range(k):
                        child = tree.successors_of_vertex(u)[d]
                        child_names.append(cut_name(i, path + (d,)))
                        frontier.append((child, path + (d,)))
                    successors[name] = tuple(child_names)
                else:
                    successors[name] = ()
        return cls(labels, successors, ("spine", 0), k)

    def label_of_vertex(self, v):
        return self._labels[v]

    def successors_of_vertex(self, v) -> tuple:
        return self._successors[v]

    def is_leaf_vertex(self, v) -> bool:
        return not self._successors[v]

    def infinite_path_word(self, directions: Sequence[int]):
        """The label word along the (eventually periodic) kept branch, as
        a :class:`~repro.omega.word.LassoWord`."""
        from repro.omega.word import LassoWord

        directions = tuple(directions)
        v = self.root
        seen: dict[tuple, int] = {}
        tail: list = []
        position = 0
        while (v, position) not in seen:
            seen[v, position] = len(tail)
            tail.append(self._labels[v])
            succ = self._successors[v]
            if not succ:
                raise ValueError("the designated branch hits a leaf")
            v = succ[directions[position]]
            position = (position + 1) % len(directions)
        start = seen[v, position]
        return LassoWord(tuple(tail[:start]), tuple(tail[start:]))


def partial_prefix_of_regular(x: PartialRegularPrefix, y: RegularTree) -> bool:
    """``x ⊑ y`` for a non-total regular prefix ``x`` and regular total
    ``y`` — coinductive product walk (success on revisit)."""
    if x.branching != y.branching:
        return False
    seen: set[tuple] = set()
    frontier = [(x.root, y.root)]
    while frontier:
        p, q = frontier.pop()
        if (p, q) in seen:
            continue
        seen.add((p, q))
        if x.label_of_vertex(p) != y.label_of_vertex(q):
            return False
        succ = x.successors_of_vertex(p)
        if succ:
            frontier.extend(zip(succ, y.successors_of_vertex(q)))
    return True


def frozen_path_word(x: PartialRegularPrefix, directions: Sequence[int]):
    """The lasso word along an infinite branch of ``x``.

    Refutation principle (machine-checked by the tests): since every
    extension ``z ⊒ x`` contains ``x``'s domain with the same labels, the
    branch survives into every ``z``; if the branch's label word violates
    a universal path property, no extension can satisfy it — hence any
    total ``y ⊒ x`` fails to be in the ``ncl`` of that property.
    """
    return x.infinite_path_word(directions)


# -- bounded fcl membership ------------------------------------------------------


def fcl_member_bounded(
    tree: RegularTree,
    extends: Callable[[FiniteTree], bool],
    depth_bound: int,
) -> bool:
    """Bounded ``fcl`` membership: every finite-depth prefix of ``tree``
    up to ``depth_bound`` extends into the property.

    Only the *full truncations* need checking: any finite prefix ``x`` of
    ``tree`` with depth ``<= d`` satisfies ``x ⊑ unfold(d)``, and ``⊑`` is
    transitive, so extendability of the truncation covers it.
    """
    return all(extends(tree.unfold(d)) for d in range(depth_bound + 1))


def members_extension_oracle(members: Sequence[RegularTree]):
    """The oracle "``x`` extends to one of ``members``" (the case where
    the property is given extensionally as a finite set of regular
    trees — the sampled-lattice instance)."""

    def extends(x: FiniteTree) -> bool:
        return any(finite_prefix_of_regular(x, z) for z in members)

    return extends


# -- the bridge to Section 3: sampled lattices ------------------------------------


def closure_on_samples(
    universe: Sequence[RegularTree],
    depth_bound: int = 3,
    partial_witnesses: Mapping[int, Sequence[PartialRegularPrefix]] | None = None,
    name: str = "fcl",
) -> tuple[FiniteLattice, LatticeClosure]:
    """The powerset lattice over a finite universe of regular trees, with
    the induced closure.

    ``cl(P)`` contains sample ``i`` iff every bounded finite-depth prefix
    of ``universe[i]`` extends to some member of ``P`` — and, when
    ``partial_witnesses[i]`` is supplied, every listed non-total prefix
    extends as well (turning the operator from sampled-``fcl`` into
    sampled-``ncl``).  The raw operator is extensive and monotone; its
    idempotent hull is taken so the result is a genuine lattice closure,
    ready for the Theorem 3/4 machinery.
    """
    universe = list(universe)
    indices = range(len(universe))
    lattice = _powerset_lattice_of_indices(len(universe))
    witnesses = dict(partial_witnesses or {})

    def raw(pset: frozenset) -> frozenset:
        members = [universe[j] for j in sorted(pset)]
        extends = members_extension_oracle(members)
        out = set()
        for i in indices:
            if not fcl_member_bounded(universe[i], extends, depth_bound):
                continue
            ok = all(
                any(partial_prefix_of_regular(w, universe[j]) for j in sorted(pset))
                for w in witnesses.get(i, ())
            )
            if ok:
                out.add(i)
        return frozenset(out)

    table: dict = {}
    for element in lattice.elements:
        current = frozenset(element)
        # idempotent hull: iterate the (extensive, monotone) raw operator
        while True:
            nxt = raw(current)
            if nxt == current:
                break
            current = nxt
        table[element] = frozenset(current)
    closure = LatticeClosure(lattice, table, name=name)
    return lattice, closure


def _powerset_lattice_of_indices(n: int) -> FiniteLattice:
    from repro.lattice.builders import powerset_lattice

    return powerset_lattice(range(n))
