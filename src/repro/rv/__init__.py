"""Streaming runtime verification at serving scale.

The one-shot monitors in :mod:`repro.ltl.monitoring` and
:mod:`repro.enforcement.monitor` carry the theory; this package carries
the traffic.  Layering (each layer only knows the one below):

* :mod:`repro.rv.compile` — formulas → dense transition tables
  (:class:`MonitorTable`, :class:`SubsetTable`), memoized in an LRU
  :class:`CompileCache`;
* :mod:`repro.rv.session` — per-trace cursors over shared tables, with
  bounded-queue backpressure (:class:`TraceSession`,
  :class:`SessionManager`);
* :mod:`repro.rv.pool` — the shared inline-or-parallel
  :class:`WorkerPool` (also dispatches :mod:`repro.service` requests);
* :mod:`repro.rv.engine` — batched ingest, monitor-grouped dispatch
  over the pool (:class:`RvEngine`);
* :mod:`repro.rv.stats` — the engine's measurements
  (:class:`EngineStats`), now a facade over the shared
  :mod:`repro.obs` metric registry (``repro_rv_*`` families with an
  ``engine`` label); pass ``RvEngine(tracer=...)`` for ingest/drain
  spans.

Verdicts are the :class:`~repro.ltl.monitoring.Verdict3` of the
reference monitor, and the engine is bit-identical to feeding each
session's events to an :class:`~repro.ltl.monitoring.RvMonitor` one at
a time — the test suite enforces this equivalence property.
"""

from repro.ltl.monitoring import Verdict3

from .compile import (
    CacheInfo,
    CompileCache,
    DEFAULT_CACHE,
    MonitorTable,
    SubsetTable,
    canonical_key,
    compile_formula,
)
from .engine import RvEngine
from .pool import WorkerPool
from .session import BackpressureError, SessionError, SessionManager, TraceSession
from .stats import Counter, EngineStats, Gauge, Histogram

__all__ = [
    "Verdict3",
    "SubsetTable",
    "MonitorTable",
    "CompileCache",
    "CacheInfo",
    "DEFAULT_CACHE",
    "canonical_key",
    "compile_formula",
    "TraceSession",
    "SessionManager",
    "SessionError",
    "BackpressureError",
    "WorkerPool",
    "RvEngine",
    "Counter",
    "Gauge",
    "Histogram",
    "EngineStats",
]
