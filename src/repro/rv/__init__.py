"""Streaming runtime verification at serving scale.

The one-shot monitors in :mod:`repro.ltl.monitoring` and
:mod:`repro.enforcement.monitor` carry the theory; this package carries
the traffic.  Layering (each layer only knows the one below):

* :mod:`repro.rv.verdicts` — the four-valued verdict lattice
  (:class:`Verdict4`, :class:`MonitorOutcome`) that decomposition-driven
  monitoring produces;
* :mod:`repro.rv.compile` — formulas → :func:`repro.analysis.decompose`
  → dense transition tables (:class:`DecomposedMonitor` =
  :class:`MonitorTable` product of the safety closures +
  :class:`BoundTracker` for the liveness conjunct), memoized in an LRU
  :class:`CompileCache`;
* :mod:`repro.rv.session` — per-trace cursors over shared tables, with
  bounded-queue backpressure and per-session finitary horizons
  (:class:`TraceSession`, :class:`SessionManager`);
* :mod:`repro.rv.pool` — the shared inline-or-parallel
  :class:`WorkerPool` (also dispatches :mod:`repro.service` requests);
* :mod:`repro.rv.engine` — batched ingest, monitor-grouped dispatch
  over the pool, verdict-transition recording (:class:`RvEngine`);
* :mod:`repro.rv.stats` — the engine's measurements
  (:class:`EngineStats`), a facade over the shared :mod:`repro.obs`
  metric registry (``repro_rv_*`` families with an ``engine`` label,
  including the PR-10 ``repro_rv_verdict_transitions_total`` and
  ``repro_rv_verdict_latency_seconds``); pass ``RvEngine(tracer=...)``
  for ingest/drain spans.

The three-valued :class:`~repro.ltl.monitoring.Verdict3` surface is
unchanged and the engine stays bit-identical to feeding each session's
events to an :class:`~repro.ltl.monitoring.RvMonitor` one at a time —
the test suite enforces this equivalence property.  The four-valued
:class:`Verdict4` surface (``verdict4``, ``outcome()``, horizons) rides
alongside it.
"""

from repro.ltl.monitoring import Verdict3

from .compile import (
    BoundTracker,
    CacheInfo,
    CompileCache,
    DEFAULT_CACHE,
    DecomposedMonitor,
    MonitorTable,
    SubsetTable,
    canonical_key,
    compile_formula,
)
from .engine import RvEngine
from .pool import WorkerPool
from .session import BackpressureError, SessionError, SessionManager, TraceSession
from .stats import Counter, EngineStats, Gauge, Histogram
from .verdicts import MonitorOutcome, Verdict4, most_severe

__all__ = [
    "Verdict3",
    "Verdict4",
    "MonitorOutcome",
    "most_severe",
    "SubsetTable",
    "BoundTracker",
    "MonitorTable",
    "DecomposedMonitor",
    "CompileCache",
    "CacheInfo",
    "DEFAULT_CACHE",
    "canonical_key",
    "compile_formula",
    "TraceSession",
    "SessionManager",
    "SessionError",
    "BackpressureError",
    "WorkerPool",
    "RvEngine",
    "Counter",
    "Gauge",
    "Histogram",
    "EngineStats",
]
