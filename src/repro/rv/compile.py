"""Monitor compilation: formulas → dense transition tables, memoized.

The one-shot monitors (:class:`repro.ltl.monitoring.RvMonitor`,
:class:`repro.enforcement.monitor.SecurityMonitor`) pay for the theory on
every event: a frozenset union per automaton step, and the whole
translate → closure → live-states pipeline per construction.  This
module front-loads all of that:

* :class:`SubsetTable` — the *live-restricted subset automaton* of a
  Büchi automaton, determinized once into dense integer tables.  One
  event step is two list indexings.  The empty subset is materialized as
  an absorbing dead state, so stepping never branches.
* :class:`MonitorTable` — the product of the subset tables of ``A_φ``
  and ``A_¬φ`` with a three-valued verdict attached to every state.
  Definite verdicts are absorbing (verdicts are final), which makes the
  table bit-compatible with :class:`~repro.ltl.monitoring.RvMonitor`
  while skipping all per-event set algebra.
* :class:`CompileCache` — an LRU keyed by the *canonical* formula
  (simplified, negation normal form) and alphabet, with hit/miss
  counters, so a fleet of sessions over the same policy compiles it
  exactly once.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from types import MappingProxyType
from collections.abc import Iterable
from dataclasses import dataclass

from repro.buchi.automaton import BuchiAutomaton
from repro.buchi.emptiness import live_states
from repro.ltl.monitoring import Verdict3
from repro.ltl.simplify import simplify
from repro.ltl.syntax import Formula, Not, nnf_over_alphabet
from repro.ltl.translate import translate
from repro.obs.metrics import REGISTRY
from repro.obs.profile import PhaseTimer

#: Per-phase wall time of the compile pipeline (``live_states`` /
#: ``determinize`` inside the subset construction, ``product`` on top).
_PHASES = PhaseTimer("repro.rv.compile")
#: Global (cross-cache) hit/miss tallies; per-cache counts stay on the
#: :class:`CompileCache` instance for :meth:`CompileCache.info`.
_CACHE_HITS = REGISTRY.counter(
    "repro_rv_compile_cache_hits_total", "compile-cache hits across all caches"
)
_CACHE_MISSES = REGISTRY.counter(
    "repro_rv_compile_cache_misses_total", "compile-cache misses across all caches"
)
_TABLES_COMPILED = REGISTRY.counter(
    "repro_rv_tables_compiled_total", "MonitorTable.compile() runs"
)
_TABLE_STATES = REGISTRY.histogram(
    "repro_rv_table_states_count", "product-table states per compiled monitor"
)


class SubsetTable:
    """The determinized, live-restricted subset automaton as dense tables.

    States are small integers; ``next_state[q][i]`` is the successor of
    state ``q`` on the ``i``-th symbol (``symbol_index`` maps symbols to
    ``i``).  State ``q`` with ``alive[q]`` false is the unique dead state
    (the empty subset) and loops to itself — the table is complete.
    """

    __slots__ = ("symbols", "symbol_index", "initial", "next_state", "alive", "subsets")

    def __init__(self, symbols, symbol_index, initial, next_state, alive, subsets):
        self.symbols = symbols
        self.symbol_index = symbol_index
        self.initial = initial
        self.next_state = next_state
        self.alive = alive
        self.subsets = subsets

    @classmethod
    def from_automaton(cls, automaton: BuchiAutomaton) -> "SubsetTable":
        """Determinize ``post(S, a) ∩ live`` once, for O(1) event steps."""
        with _PHASES.phase("live_states"):
            live = live_states(automaton)
        with _PHASES.phase("determinize"):
            return cls._determinize(automaton, live)

    @classmethod
    def _determinize(cls, automaton: BuchiAutomaton, live: frozenset) -> "SubsetTable":
        symbols = tuple(sorted(automaton.alphabet, key=repr))
        symbol_index = {a: i for i, a in enumerate(symbols)}
        start = frozenset({automaton.initial}) & live
        index: dict[frozenset, int] = {start: 0}
        subsets: list[frozenset] = [start]
        next_state: list[list[int]] = []
        i = 0
        while i < len(subsets):
            subset = subsets[i]
            row = []
            for a in symbols:
                nxt = automaton.post(subset, a) & live if subset else subset
                if nxt not in index:
                    index[nxt] = len(subsets)
                    subsets.append(nxt)
                row.append(index[nxt])
            next_state.append(row)
            i += 1
        alive = [bool(s) for s in subsets]
        return cls(symbols, symbol_index, 0, next_state, alive, tuple(subsets))

    def __len__(self) -> int:
        return len(self.next_state)

    def step(self, state: int, symbol) -> int:
        """One event step (raises ``KeyError`` on foreign symbols)."""
        return self.next_state[state][self.symbol_index[symbol]]

    def run(self, events: Iterable) -> int:
        state = self.initial
        table, index = self.next_state, self.symbol_index
        for e in events:
            state = table[state][index[e]]
        return state


_VERDICT_OF = MappingProxyType({
    (True, True): Verdict3.UNKNOWN,
    (True, False): Verdict3.TRUE,
    (False, True): Verdict3.FALSE,
    (False, False): Verdict3.FALSE,  # unreachable: both runs cannot die
})


class MonitorTable:
    """A compiled three-valued monitor: the product of the subset tables
    of ``A_φ`` and ``A_¬φ`` with a verdict per state.

    ``verdicts[q]`` is the :class:`Verdict3` after reading any prefix
    that reaches ``q``; states with a definite verdict are absorbing.
    Stepping is two list indexings — no sets, no allocation.
    """

    __slots__ = ("formula", "alphabet", "symbols", "symbol_index", "initial",
                 "next_state", "verdicts", "states")

    def __init__(self, formula, alphabet, symbols, symbol_index, initial,
                 next_state, verdicts, states):
        self.formula = formula
        self.alphabet = alphabet
        self.symbols = symbols
        self.symbol_index = symbol_index
        self.initial = initial
        self.next_state = next_state
        self.verdicts = verdicts
        self.states = states

    @classmethod
    def compile(cls, formula: Formula, alphabet: Iterable) -> "MonitorTable":
        """The full pipeline: translate φ and ¬φ, close under liveness,
        determinize both subset runs, and product them."""
        alphabet = frozenset(alphabet)
        pos = SubsetTable.from_automaton(translate(formula, alphabet))
        neg = SubsetTable.from_automaton(translate(Not(formula), alphabet))
        with _PHASES.phase("product"):
            table = cls._product(formula, alphabet, pos, neg)
        _TABLES_COMPILED.add()
        _TABLE_STATES.record(len(table))
        return table

    @classmethod
    def _product(cls, formula, alphabet, pos: SubsetTable, neg: SubsetTable
                 ) -> "MonitorTable":
        symbols = pos.symbols
        symbol_index = pos.symbol_index
        start = (pos.initial, neg.initial)
        index: dict[tuple[int, int], int] = {start: 0}
        states: list[tuple[int, int]] = [start]
        next_state: list[list[int]] = []
        verdicts: list[Verdict3] = []
        i = 0
        while i < len(states):
            p, n = states[i]
            verdict = _VERDICT_OF[pos.alive[p], neg.alive[n]]
            verdicts.append(verdict)
            if verdict is not Verdict3.UNKNOWN:
                # definite verdicts are final — absorb.
                next_state.append([i] * len(symbols))
                i += 1
                continue
            row = []
            for k in range(len(symbols)):
                target = (pos.next_state[p][k], neg.next_state[n][k])
                if target not in index:
                    index[target] = len(states)
                    states.append(target)
                row.append(index[target])
            next_state.append(row)
            i += 1
        return cls(formula, alphabet, symbols, symbol_index, 0,
                   next_state, tuple(verdicts), tuple(states))

    def __len__(self) -> int:
        return len(self.next_state)

    def step(self, state: int, symbol) -> int:
        index = self.symbol_index.get(symbol)
        if index is None:
            raise ValueError(f"event {symbol!r} outside the alphabet")
        return self.next_state[state][index]

    def verdict_of(self, state: int) -> Verdict3:
        return self.verdicts[state]

    def run(self, events: Iterable) -> Verdict3:
        """One-shot trace evaluation (the table-driven twin of
        :func:`repro.ltl.monitoring.monitor_verdict`)."""
        state = self.initial
        for e in events:
            state = self.step(state, e)
        return self.verdicts[state]


def canonical_key(formula: Formula, alphabet: Iterable):
    """The cache key: simplified negation-normal form over the alphabet.

    Syntactic variants (``F a`` written twice, double negations, absorbed
    conjuncts) collapse to one compiled monitor; semantics are preserved
    because :func:`~repro.ltl.simplify.simplify` and NNF are
    language-preserving rewrites, and verdicts depend only on languages.
    """
    alphabet = frozenset(alphabet)
    return nnf_over_alphabet(simplify(formula), alphabet), alphabet


@dataclass(frozen=True)
class CacheInfo:
    hits: int
    misses: int
    size: int
    maxsize: int


class CompileCache:
    """A thread-safe LRU of compiled monitors keyed by canonical formula.

    ``get`` compiles at most once per distinct (canonical formula,
    alphabet) pair while it stays resident; the counters let callers
    *prove* reuse (the acceptance test and stats layer read them).
    """

    def __init__(self, maxsize: int = 256):
        if maxsize < 1:
            raise ValueError("maxsize must be positive")
        self.maxsize = maxsize
        self._entries: OrderedDict = OrderedDict()
        self._lock = threading.Lock()
        self._hits = 0
        self._misses = 0

    def get(self, formula: Formula, alphabet: Iterable) -> MonitorTable:
        key = canonical_key(formula, alphabet)
        with self._lock:
            table = self._entries.get(key)
            if table is not None:
                self._hits += 1
                self._entries.move_to_end(key)
            else:
                self._misses += 1
        if table is not None:
            # the counter takes its own lock; update it after releasing
            # ours so the two never nest (the RC011 discipline — this
            # mirrors the miss path below)
            _CACHE_HITS.add()
            return table
        _CACHE_MISSES.add()
        # compile outside the lock: a slow formula must not serialize the
        # whole fleet.  A racing duplicate compile is harmless (same table
        # semantics) and the counters still record one miss per caller.
        table = MonitorTable.compile(key[0], key[1])
        with self._lock:
            existing = self._entries.get(key)
            if existing is not None:
                return existing
            self._entries[key] = table
            while len(self._entries) > self.maxsize:
                self._entries.popitem(last=False)
        return table

    def info(self) -> CacheInfo:
        with self._lock:
            return CacheInfo(self._hits, self._misses, len(self._entries), self.maxsize)

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            self._hits = 0
            self._misses = 0


#: Process-wide default cache (module-level monitors, examples, tests).
DEFAULT_CACHE = CompileCache()


def compile_formula(
    formula: Formula, alphabet: Iterable, cache: CompileCache | None = None
) -> MonitorTable:
    """Compile through a cache (the module default when none is given)."""
    return (cache or DEFAULT_CACHE).get(formula, alphabet)
