"""Monitor compilation: ``decompose()`` output → dense tables, memoized.

Since PR 10 the compilation source of truth is the paper's own split:
:func:`repro.analysis.decompose` factors the policy into its safety
closure and dense (live) part, and each conjunct is lowered onto the
machinery that can actually decide it on a finite prefix:

* the **safety conjunct** ``cl(A_φ)`` feeds the existing
  :class:`SubsetTable` falsifier — bad prefixes of ``cl(L)`` and of
  ``L`` coincide (a prefix is extendable into ``cl(L)`` iff it is a
  prefix of some word of ``L``), so the product of the ``φ``-side and
  ``¬φ``-side subset tables issues verdicts bit-identical to the PR-1
  direct construction;
* the **liveness conjunct** ``A_φ ∪ ¬cl(A_φ)`` feeds a new
  :class:`BoundTracker` — its determinized live-restricted subset run
  with a *good* flag per edge (taking the edge validates an accepting
  visit).  Sessions count events since the last good edge; under a
  finitary horizon (Chatterjee–Fijalkow) an exceeded wait falsifies the
  bounded-liveness obligation, which is what turns "inconclusive
  forever" into the four-valued :class:`~repro.rv.verdicts.Verdict4`.

The classes:

* :class:`SubsetTable` — the *live-restricted subset automaton* of a
  Büchi automaton, determinized once into dense integer tables.  One
  event step is two list indexings.  The empty subset is materialized as
  an absorbing dead state, so stepping never branches.  It lives in
  :mod:`repro.buchi.subset` (re-exported here) so that enforcement's
  truncation monitors can share it without importing this pipeline.
* :class:`MonitorTable` — the product of two subset tables with a
  three-valued verdict attached to every state; definite verdicts are
  absorbing.  The direct (decomposition-bypassing) constructor survives
  only as the deprecated :meth:`MonitorTable.compile_direct` shim.
* :class:`DecomposedMonitor` — a :class:`MonitorTable` plus the
  :class:`BoundTracker` of the liveness conjunct; what
  :meth:`MonitorTable.compile` and the :class:`CompileCache` now emit.
* :class:`CompileCache` — an LRU keyed by the *canonical* formula
  (simplified, negation normal form) and alphabet, with hit/miss
  counters, so a fleet of sessions over the same policy compiles it
  exactly once.  Horizons are runtime parameters of sessions, never
  baked into tables, so one cache line serves every horizon.
"""

from __future__ import annotations

import threading
import warnings
from collections import OrderedDict
from types import MappingProxyType
from collections.abc import Iterable
from dataclasses import dataclass

from repro.analysis.decompose import decompose
from repro.buchi.automaton import BuchiAutomaton
from repro.buchi.emptiness import live_states
from repro.buchi.subset import SubsetTable
from repro.ltl.monitoring import Verdict3
from repro.ltl.simplify import simplify
from repro.ltl.syntax import Formula, Not, nnf_over_alphabet
from repro.ltl.translate import translate
from repro.obs.metrics import REGISTRY
from repro.obs.profile import PhaseTimer

from .verdicts import MonitorOutcome, Verdict4

#: Per-phase wall time of the compile pipeline (``decompose`` for the
#: two conjunct factorizations, ``live_states`` / ``determinize`` inside
#: the subset constructions, ``product`` and ``bound_tracker`` on top).
_PHASES = PhaseTimer("repro.rv.compile")
#: Global (cross-cache) hit/miss tallies; per-cache counts stay on the
#: :class:`CompileCache` instance for :meth:`CompileCache.info`.
_CACHE_HITS = REGISTRY.counter(
    "repro_rv_compile_cache_hits_total", "compile-cache hits across all caches"
)
_CACHE_MISSES = REGISTRY.counter(
    "repro_rv_compile_cache_misses_total", "compile-cache misses across all caches"
)
_TABLES_COMPILED = REGISTRY.counter(
    "repro_rv_tables_compiled_total", "MonitorTable.compile() runs"
)
_TABLE_STATES = REGISTRY.histogram(
    "repro_rv_table_states_count", "product-table states per compiled monitor"
)


class BoundTracker:
    """The liveness conjunct as a deterministic *good-event* tracker.

    The determinized live-restricted subset automaton of
    ``B_L = A_φ ∪ ¬cl(A_φ)``, with a boolean per *edge*:
    ``good[q][i]`` is true when taking symbol ``i`` out of subset-state
    ``q`` **validates** an accepting visit — some still-viable run of
    the liveness conjunct sits on an accepting state at ``q`` and
    survives reading the symbol.  The edge (not state) formulation
    matters because LTL translations are guess-style: an accepting
    *promise* state ("the good event happens next") is enterable on
    almost every prefix, so subset ∩ accepting is nearly always
    non-empty; a promise only becomes progress one step later, when a
    run through it survives.  For ``GF a`` the good edges are exactly
    the ``a``-edges; for ``F b`` the first good edge is the ``b`` that
    discharges the eventuality (and every edge after it).

    A session's *wait* is the number of events since it last took a
    good edge; finitary liveness in the Chatterjee–Fijalkow sense is
    "every wait ≤ horizon", and because that bound is a safety property
    of the prefix, one exceeded wait falsifies it forever (the
    ``LIVENESS_BOUND_EXCEEDED`` latch).

    ``B_L`` is dense (every prefix is extendable into it), so the
    tracker has no reachable dead state — it never falsifies anything
    itself; falsification is the safety conjunct's job.
    """

    __slots__ = ("symbols", "symbol_index", "initial", "next_state", "good")

    def __init__(self, symbols, symbol_index, initial, next_state, good):
        self.symbols = symbols
        self.symbol_index = symbol_index
        self.initial = initial
        self.next_state = next_state
        self.good = good

    @classmethod
    def from_automaton(cls, liveness: BuchiAutomaton) -> "BoundTracker":
        """Lower the liveness conjunct onto dense tables + edge flags."""
        with _PHASES.phase("live_states"):
            live = live_states(liveness)
        with _PHASES.phase("determinize"):
            table = SubsetTable._determinize(liveness, live)
        accepting = liveness.accepting
        good = tuple(
            tuple(
                bool(liveness.post(subset & accepting, a) & live)
                for a in table.symbols
            )
            for subset in table.subsets
        )
        return cls(table.symbols, table.symbol_index, table.initial,
                   table.next_state, good)

    def __len__(self) -> int:
        return len(self.next_state)

    def step(self, state: int, symbol) -> int:
        return self.next_state[state][self.symbol_index[symbol]]

    def good_edge(self, state: int, symbol) -> bool:
        return self.good[state][self.symbol_index[symbol]]


_VERDICT_OF = MappingProxyType({
    (True, True): Verdict3.UNKNOWN,
    (True, False): Verdict3.TRUE,
    (False, True): Verdict3.FALSE,
    (False, False): Verdict3.FALSE,  # unreachable: both runs cannot die
})


class MonitorTable:
    """A compiled three-valued monitor: the product of two subset tables
    with a verdict per state.

    ``verdicts[q]`` is the :class:`Verdict3` after reading any prefix
    that reaches ``q``; states with a definite verdict are absorbing.
    Stepping is two list indexings — no sets, no allocation.

    Since PR 10 the subset tables are built from the *safety closures*
    ``cl(A_φ)`` / ``cl(A_¬φ)`` that :func:`repro.analysis.decompose`
    returns, not from ``A_φ`` / ``A_¬φ`` directly.  The verdicts are
    provably unchanged: a prefix has an extension in ``cl(L)`` iff it
    has one in ``L`` (closure adds exactly the limits of extendable
    prefixes), so the alive-flags — and hence every verdict — coincide
    with the PR-1 construction, which survives only as the deprecated
    :meth:`compile_direct` shim.
    """

    __slots__ = ("formula", "alphabet", "symbols", "symbol_index", "initial",
                 "next_state", "verdicts", "states")

    def __init__(self, formula, alphabet, symbols, symbol_index, initial,
                 next_state, verdicts, states):
        self.formula = formula
        self.alphabet = alphabet
        self.symbols = symbols
        self.symbol_index = symbol_index
        self.initial = initial
        self.next_state = next_state
        self.verdicts = verdicts
        self.states = states

    @classmethod
    def compile(cls, formula: Formula, alphabet: Iterable) -> "DecomposedMonitor":
        """Compile through the decomposition facade (the one supported
        path): factor ``φ`` and ``¬φ`` with
        :func:`repro.analysis.decompose`, lower the safety conjuncts
        onto subset tables, product them, and lower ``φ``'s liveness
        conjunct onto a :class:`BoundTracker`."""
        return DecomposedMonitor.compile(formula, alphabet)

    @classmethod
    def compile_direct(cls, formula: Formula, alphabet: Iterable) -> "MonitorTable":
        """**Deprecated** — the PR-1 direct ``translate() → table`` path,
        bypassing :func:`repro.analysis.decompose`.  Kept only so the
        equivalence property (decomposed ≡ direct on every prefix) stays
        executable; it emits no :class:`BoundTracker`, so sessions over
        its tables can never say anything about liveness."""
        warnings.warn(
            "MonitorTable.compile_direct() is deprecated: compile through "
            "MonitorTable.compile(), which factors the policy via "
            "repro.analysis.decompose() and adds the liveness bound tracker",
            DeprecationWarning,
            stacklevel=2,
        )
        alphabet = frozenset(alphabet)
        pos = SubsetTable.from_automaton(translate(formula, alphabet), phases=_PHASES)
        neg = SubsetTable.from_automaton(translate(Not(formula), alphabet),
                                        phases=_PHASES)
        with _PHASES.phase("product"):
            table = cls._product(formula, alphabet, pos, neg)
        _TABLES_COMPILED.add()
        _TABLE_STATES.record(len(table))
        return table

    @classmethod
    def _product(cls, formula, alphabet, pos: SubsetTable, neg: SubsetTable
                 ) -> "MonitorTable":
        symbols = pos.symbols
        symbol_index = pos.symbol_index
        start = (pos.initial, neg.initial)
        index: dict[tuple[int, int], int] = {start: 0}
        states: list[tuple[int, int]] = [start]
        next_state: list[list[int]] = []
        verdicts: list[Verdict3] = []
        i = 0
        while i < len(states):
            p, n = states[i]
            verdict = _VERDICT_OF[pos.alive[p], neg.alive[n]]
            verdicts.append(verdict)
            if verdict is not Verdict3.UNKNOWN:
                # definite verdicts are final — absorb.
                next_state.append([i] * len(symbols))
                i += 1
                continue
            row = []
            for k in range(len(symbols)):
                target = (pos.next_state[p][k], neg.next_state[n][k])
                if target not in index:
                    index[target] = len(states)
                    states.append(target)
                row.append(index[target])
            next_state.append(row)
            i += 1
        return cls(formula, alphabet, symbols, symbol_index, 0,
                   next_state, tuple(verdicts), tuple(states))

    def __len__(self) -> int:
        return len(self.next_state)

    def step(self, state: int, symbol) -> int:
        index = self.symbol_index.get(symbol)
        if index is None:
            raise ValueError(f"event {symbol!r} outside the alphabet")
        return self.next_state[state][index]

    def verdict_of(self, state: int) -> Verdict3:
        return self.verdicts[state]

    def run(self, events: Iterable) -> Verdict3:
        """One-shot trace evaluation (the table-driven twin of
        :func:`repro.ltl.monitoring.monitor_verdict`)."""
        state = self.initial
        for e in events:
            state = self.step(state, e)
        return self.verdicts[state]


class DecomposedMonitor(MonitorTable):
    """What compilation emits since PR 10: the safety-conjunct product
    table plus the liveness conjunct's :class:`BoundTracker`.

    The table half is a :class:`MonitorTable` in every observable way
    (sessions, the enforcement monitor, and the PR-1 tests step it
    identically); ``tracker`` is the finitary-liveness add-on that
    sessions step in lock-step to maintain their wait counters.  The
    horizon is deliberately *not* part of the monitor: it is a runtime
    parameter of sessions and requests, so one cached monitor serves
    every horizon.
    """

    __slots__ = ("tracker",)

    def __init__(self, *args, tracker: BoundTracker | None = None):
        super().__init__(*args)
        self.tracker = tracker

    @classmethod
    def compile(cls, formula: Formula, alphabet: Iterable) -> "DecomposedMonitor":
        """The decomposition-driven pipeline (see the class docstring)."""
        alphabet = frozenset(alphabet)
        with _PHASES.phase("decompose"):
            positive = decompose(formula, alphabet=alphabet)
            negative = decompose(Not(formula), alphabet=alphabet)
        pos = SubsetTable.from_automaton(positive.safety, phases=_PHASES)
        neg = SubsetTable.from_automaton(negative.safety, phases=_PHASES)
        with _PHASES.phase("product"):
            monitor = cls._product(formula, alphabet, pos, neg)
        with _PHASES.phase("bound_tracker"):
            monitor.tracker = BoundTracker.from_automaton(positive.liveness)
        _TABLES_COMPILED.add()
        _TABLE_STATES.record(len(monitor))
        return monitor

    def run_finitary(self, events: Iterable,
                     horizon: int | None = None) -> MonitorOutcome:
        """One-shot four-valued trace evaluation under a horizon.

        The streaming twin lives in :class:`~repro.rv.session
        .TraceSession`; this is the request/reply form the service's
        ``Monitor`` verb computes.  ``max_wait`` caps at ``horizon + 1``
        once the bound is exceeded (the wait stops being informative
        after the latch).
        """
        table, symbol_index = self.next_state, self.symbol_index
        verdicts = self.verdicts
        tracker = self.tracker
        ttable, tgood = tracker.next_state, tracker.good
        state, tstate = self.initial, tracker.initial
        verdict = verdicts[state]
        # wait = events since the session last took a good edge
        # (w(ε) = 0; reset to 0 on a good edge, else w + 1).
        wait = max_wait = 0
        latched = False
        count = 0
        for e in events:
            count += 1
            if verdict is not Verdict3.UNKNOWN:
                continue
            i = symbol_index[e]
            state = table[state][i]
            verdict = verdicts[state]
            if not latched:
                good = tgood[tstate][i]
                tstate = ttable[tstate][i]
                if good:
                    wait = 0
                else:
                    wait += 1
                    if wait > max_wait:
                        max_wait = wait
                    if horizon is not None and wait > horizon:
                        latched = True
        if verdict is Verdict3.FALSE:
            verdict4 = Verdict4.FALSIFIED_SAFETY
        elif latched:
            verdict4 = Verdict4.LIVENESS_BOUND_EXCEEDED
        elif verdict is Verdict3.TRUE or wait == 0:
            verdict4 = Verdict4.SATISFIED_SO_FAR
        else:
            verdict4 = Verdict4.INCONCLUSIVE
        return MonitorOutcome(
            verdict=verdict4, verdict3=verdict, events=count,
            max_wait=max_wait, horizon=horizon,
        )


def canonical_key(formula: Formula, alphabet: Iterable):
    """The cache key: simplified negation-normal form over the alphabet.

    Syntactic variants (``F a`` written twice, double negations, absorbed
    conjuncts) collapse to one compiled monitor; semantics are preserved
    because :func:`~repro.ltl.simplify.simplify` and NNF are
    language-preserving rewrites, and verdicts depend only on languages.
    """
    alphabet = frozenset(alphabet)
    return nnf_over_alphabet(simplify(formula), alphabet), alphabet


@dataclass(frozen=True)
class CacheInfo:
    hits: int
    misses: int
    size: int
    maxsize: int


class CompileCache:
    """A thread-safe LRU of compiled monitors keyed by canonical formula.

    ``get`` compiles at most once per distinct (canonical formula,
    alphabet) pair while it stays resident; the counters let callers
    *prove* reuse (the acceptance test and stats layer read them).
    Entries are :class:`DecomposedMonitor` instances; horizons are
    session-side, so every horizon shares one entry.
    """

    def __init__(self, maxsize: int = 256):
        if maxsize < 1:
            raise ValueError("maxsize must be positive")
        self.maxsize = maxsize
        self._entries: OrderedDict = OrderedDict()
        self._lock = threading.Lock()
        self._hits = 0
        self._misses = 0

    def get(self, formula: Formula, alphabet: Iterable) -> DecomposedMonitor:
        key = canonical_key(formula, alphabet)
        with self._lock:
            table = self._entries.get(key)
            if table is not None:
                self._hits += 1
                self._entries.move_to_end(key)
            else:
                self._misses += 1
        if table is not None:
            # the counter takes its own lock; update it after releasing
            # ours so the two never nest (the RC011 discipline — this
            # mirrors the miss path below)
            _CACHE_HITS.add()
            return table
        _CACHE_MISSES.add()
        # compile outside the lock: a slow formula must not serialize the
        # whole fleet.  A racing duplicate compile is harmless (same table
        # semantics) and the counters still record one miss per caller.
        table = DecomposedMonitor.compile(key[0], key[1])
        with self._lock:
            existing = self._entries.get(key)
            if existing is not None:
                return existing
            self._entries[key] = table
            while len(self._entries) > self.maxsize:
                self._entries.popitem(last=False)
        return table

    def info(self) -> CacheInfo:
        with self._lock:
            return CacheInfo(self._hits, self._misses, len(self._entries), self.maxsize)

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            self._hits = 0
            self._misses = 0


#: Process-wide default cache (module-level monitors, examples, tests).
DEFAULT_CACHE = CompileCache()


def compile_formula(
    formula: Formula, alphabet: Iterable, cache: CompileCache | None = None
) -> DecomposedMonitor:
    """Compile through a cache (the module default when none is given)."""
    return (cache or DEFAULT_CACHE).get(formula, alphabet)
