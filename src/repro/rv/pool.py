"""A small reusable worker pool shared by the rv engine and the
analysis service.

:class:`WorkerPool` wraps a lazily-created ``ThreadPoolExecutor`` with
the dispatch policy proven in :class:`~repro.rv.engine.RvEngine`: work
runs inline unless the pool is configured for parallelism *and* there is
more than one unit of work, so single-group batches never pay executor
overhead and ``workers=0`` degrades to a plain loop.  The service
(:mod:`repro.service`) reuses the same pool for request dispatch via
:meth:`submit`.

Two ops-plane duties ride on the pool:

* **Context propagation** — ``contextvars`` don't cross threads on
  their own, so :meth:`submit` and :meth:`map` capture the submitting
  thread's context (including the active
  :class:`~repro.obs.context.RequestContext`) and reactivate it on the
  worker.  A kernel phase timer firing three threads deep still
  attributes to the request that caused it.
* **Lifecycle events** — worker starts, worker deaths (at shutdown) and
  escaped task exceptions are journaled, so "did the pool lose a
  thread?" is a query, not a guess.

Python threads don't parallelize pure-Python inner loops (the GIL), but
the pool keeps both callers' shapes honest — grouping, isolation and
determinism are exactly what a process pool or a C kernel would need.
"""

from __future__ import annotations

import contextvars
import threading
from collections.abc import Callable, Sequence
from concurrent.futures import Future, ThreadPoolExecutor

from repro.ops.journal import JOURNAL, WARN, EventJournal

__all__ = ["WorkerPool"]


class WorkerPool:
    """A lazily-started thread pool with an inline fast path.

    ``workers <= 1`` means strictly inline execution: :meth:`map` loops
    in the calling thread and :meth:`submit` runs the callable before
    returning an already-resolved future.  The underlying executor is
    only created on first parallel use, so constructing a pool is free.
    """

    def __init__(self, workers: int = 0, *,
                 thread_name_prefix: str = "worker",
                 journal: EventJournal | None = JOURNAL):
        if workers < 0:
            raise ValueError("workers must be >= 0")
        self.workers = workers
        self.thread_name_prefix = thread_name_prefix
        self._journal = journal
        self._executor: ThreadPoolExecutor | None = None
        self._lock = threading.Lock()
        self._started_workers: list[str] = []

    @property
    def parallel(self) -> bool:
        """Whether this pool can run work on pool threads at all."""
        return self.workers > 1

    @property
    def started(self) -> bool:
        """Whether the underlying executor has been created."""
        return self._executor is not None

    def _worker_started(self) -> None:
        """Executor initializer: runs once on each new worker thread."""
        name = threading.current_thread().name
        with self._lock:
            self._started_workers.append(name)
        if self._journal is not None:
            self._journal.emit("pool.worker_start", worker=name)

    def _ensure_executor(self) -> ThreadPoolExecutor:
        if self._executor is None:
            self._executor = ThreadPoolExecutor(
                max_workers=self.workers,
                thread_name_prefix=self.thread_name_prefix,
                initializer=self._worker_started,
            )
        return self._executor

    # -- dispatch -----------------------------------------------------------

    def _carrying(self, fn: Callable, *args, **kwargs) -> Callable:
        """Bind ``fn(*args, **kwargs)`` to the *submitting* thread's
        ``contextvars`` snapshot, journaling exceptions that escape on
        the worker (they still re-raise through the future)."""
        captured = contextvars.copy_context()

        def run():
            try:
                return captured.run(fn, *args, **kwargs)
            except BaseException as exc:  # noqa: BLE001 — re-raised below
                if self._journal is not None:
                    self._journal.emit(
                        "pool.task_error", WARN,
                        task=getattr(fn, "__qualname__", repr(fn)),
                        error=type(exc).__name__,
                    )
                raise

        return run

    def map(self, fn: Callable, items: Sequence) -> list:
        """Apply ``fn`` to every item, in parallel when it pays off.

        Single-item sequences and ``workers <= 1`` run inline; otherwise
        the items are fanned out to the executor — each on a copy of the
        caller's context — and the results are collected in input order
        (exceptions re-raise here, as with a plain loop)."""
        if not self.parallel or len(items) <= 1:
            return [fn(item) for item in items]
        executor = self._ensure_executor()
        # One context copy per item: a contextvars.Context cannot be
        # entered concurrently, and items may run on distinct threads.
        contexts = [contextvars.copy_context() for _ in items]
        futures = [
            executor.submit(context.run, fn, item)
            for context, item in zip(contexts, items)
        ]
        return [future.result() for future in futures]

    def submit(self, fn: Callable, /, *args, **kwargs) -> Future:
        """Schedule ``fn(*args, **kwargs)``, returning its future.

        With ``workers <= 1`` the call runs inline and the returned
        future is already resolved — callers get one execution model
        regardless of configuration."""
        if not self.parallel:
            future: Future = Future()
            try:
                future.set_result(fn(*args, **kwargs))
            except BaseException as exc:  # noqa: BLE001 — future carries it
                future.set_exception(exc)
            return future
        return self._ensure_executor().submit(self._carrying(fn, *args, **kwargs))

    # -- lifecycle ----------------------------------------------------------

    def shutdown(self, wait: bool = True) -> None:
        """Stop the executor (if started); the pool may be reused after —
        the next parallel call starts a fresh executor.  Worker threads
        genuinely exit here, so each started worker's death is journaled
        (with ``wait=False`` the events note the shutdown was unwaited)."""
        if self._executor is not None:
            self._executor.shutdown(wait=wait)
            self._executor = None
            with self._lock:
                names = list(self._started_workers)
                self._started_workers.clear()
            if self._journal is not None:
                for name in names:
                    self._journal.emit("pool.worker_death",
                                       worker=name, waited=wait)

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc) -> None:
        self.shutdown()

    def __repr__(self) -> str:
        state = "started" if self.started else "idle"
        return f"WorkerPool(workers={self.workers}, {state})"
