"""A small reusable worker pool shared by the rv engine and the
analysis service.

:class:`WorkerPool` wraps a lazily-created ``ThreadPoolExecutor`` with
the dispatch policy proven in :class:`~repro.rv.engine.RvEngine`: work
runs inline unless the pool is configured for parallelism *and* there is
more than one unit of work, so single-group batches never pay executor
overhead and ``workers=0`` degrades to a plain loop.  The service
(:mod:`repro.service`) reuses the same pool for request dispatch via
:meth:`submit`.

Python threads don't parallelize pure-Python inner loops (the GIL), but
the pool keeps both callers' shapes honest — grouping, isolation and
determinism are exactly what a process pool or a C kernel would need.
"""

from __future__ import annotations

from collections.abc import Callable, Sequence
from concurrent.futures import Future, ThreadPoolExecutor

__all__ = ["WorkerPool"]


class WorkerPool:
    """A lazily-started thread pool with an inline fast path.

    ``workers <= 1`` means strictly inline execution: :meth:`map` loops
    in the calling thread and :meth:`submit` runs the callable before
    returning an already-resolved future.  The underlying executor is
    only created on first parallel use, so constructing a pool is free.
    """

    def __init__(self, workers: int = 0, *, thread_name_prefix: str = "worker"):
        if workers < 0:
            raise ValueError("workers must be >= 0")
        self.workers = workers
        self.thread_name_prefix = thread_name_prefix
        self._executor: ThreadPoolExecutor | None = None

    @property
    def parallel(self) -> bool:
        """Whether this pool can run work on pool threads at all."""
        return self.workers > 1

    @property
    def started(self) -> bool:
        """Whether the underlying executor has been created."""
        return self._executor is not None

    def _ensure_executor(self) -> ThreadPoolExecutor:
        if self._executor is None:
            self._executor = ThreadPoolExecutor(
                max_workers=self.workers,
                thread_name_prefix=self.thread_name_prefix,
            )
        return self._executor

    # -- dispatch -----------------------------------------------------------

    def map(self, fn: Callable, items: Sequence) -> list:
        """Apply ``fn`` to every item, in parallel when it pays off.

        Single-item sequences and ``workers <= 1`` run inline; otherwise
        the items are fanned out to the executor and the results are
        collected in input order (exceptions re-raise here, as with a
        plain loop)."""
        if not self.parallel or len(items) <= 1:
            return [fn(item) for item in items]
        executor = self._ensure_executor()
        return list(executor.map(fn, items))

    def submit(self, fn: Callable, /, *args, **kwargs) -> Future:
        """Schedule ``fn(*args, **kwargs)``, returning its future.

        With ``workers <= 1`` the call runs inline and the returned
        future is already resolved — callers get one execution model
        regardless of configuration."""
        if not self.parallel:
            future: Future = Future()
            try:
                future.set_result(fn(*args, **kwargs))
            except BaseException as exc:  # noqa: BLE001 — future carries it
                future.set_exception(exc)
            return future
        return self._ensure_executor().submit(fn, *args, **kwargs)

    # -- lifecycle ----------------------------------------------------------

    def shutdown(self, wait: bool = True) -> None:
        """Stop the executor (if started); the pool may be reused after —
        the next parallel call starts a fresh executor."""
        if self._executor is not None:
            self._executor.shutdown(wait=wait)
            self._executor = None

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc) -> None:
        self.shutdown()

    def __repr__(self) -> str:
        state = "started" if self.started else "idle"
        return f"WorkerPool(workers={self.workers}, {state})"
