"""The streaming engine: batched ingest, grouped dispatch, shared tables.

:class:`RvEngine` is the serving-shaped front of the paper's monitor
theory.  A deployment registers LTL policies (compiled once through the
LRU :class:`~repro.rv.compile.CompileCache`), opens a session per live
trace, and pushes interleaved ``(session_id, event)`` batches.  Each
batch is:

1. *routed* — events are appended to their session's bounded pending
   queue in arrival order (per-session order is the only order that
   matters; sessions are independent);
2. *grouped* — touched sessions are bucketed by compiled monitor, so a
   worker's inner loop stays on one transition table (cache-friendly,
   and the natural sharding unit);
3. *dispatched* — groups run on a thread pool (``workers > 1``) or
   inline (``workers ≤ 1``).  Workers never share a session, so the
   result is deterministic: identical to draining sessions one by one,
   which the test suite checks against the reference
   :class:`~repro.ltl.monitoring.RvMonitor` verdict for verdict.

Python threads don't parallelize the pure-Python table loop (the GIL),
but the pool keeps the engine's shape honest — grouping, isolation and
determinism are exactly what a process pool or a C kernel would need —
and the sequential fallback is the fast path today.
"""

from __future__ import annotations

import time
from collections.abc import Iterable
from functools import partial

from repro.ltl.monitoring import Verdict3
from repro.ltl.syntax import Formula
from repro.obs.trace import NULL_SPAN, NULL_TRACER
from repro.ops.journal import DEBUG, JOURNAL, WARN, EventJournal

from .compile import CompileCache, MonitorTable
from .pool import WorkerPool
from .session import SessionManager, TraceSession
from .stats import EngineStats


class RvEngine:
    """A multi-session, multi-policy runtime-verification engine.

    ``horizon`` is the engine-wide default finitary-liveness bound
    (overridable per session in :meth:`open_session`); ``None`` keeps
    waits unbounded.  Four-valued verdict transitions crossing a drain
    are recorded in the stats plane (``repro_rv_verdict_*`` families)
    and journaled as ``rv.verdict_transition`` events — severe
    destinations (safety falsified, liveness bound exceeded) at WARN,
    the chatty satisfied/inconclusive flips at DEBUG, matching the
    journal's access-log level convention.

    Tracing is opt-in: pass an :class:`~repro.obs.trace.Tracer` to get
    an ``rv.ingest`` span per batch with ``rv.drain_group`` children —
    parent links survive the worker pool because the ingest span is
    handed to each group drain explicitly.  The default is the null
    tracer (one attribute check per ingest), keeping spans off the
    per-event hot path entirely; metrics are always on.
    """

    def __init__(
        self,
        *,
        workers: int = 0,
        max_pending: int = 1024,
        horizon: int | None = None,
        cache: CompileCache | None = None,
        stats: EngineStats | None = None,
        tracer=None,
        journal: EventJournal | None = JOURNAL,
    ):
        self.cache = cache if cache is not None else CompileCache()
        self.sessions = SessionManager(max_pending=max_pending)
        self.horizon = horizon
        self.stats = stats if stats is not None else EngineStats()
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.journal = journal
        self.pool = WorkerPool(workers, thread_name_prefix="rv-worker",
                               journal=journal)

    @property
    def workers(self) -> int:
        return self.pool.workers

    # -- registration -------------------------------------------------------

    def compile(self, formula: Formula, alphabet: Iterable) -> MonitorTable:
        """Compile (or fetch) the shared monitor for a policy."""
        return self.cache.get(formula, alphabet)

    def open_session(self, session_id, formula: Formula, alphabet: Iterable,
                     max_pending: int | None = None,
                     horizon: int | None = None) -> TraceSession:
        """Open a trace session against the (cached) compiled policy.

        ``horizon=None`` inherits the engine default; sessions needing a
        different bound pass their own (the monitor is shared either
        way — horizons never reach the compile cache)."""
        session = self.sessions.open(
            session_id, self.compile(formula, alphabet), max_pending,
            self.horizon if horizon is None else horizon,
        )
        self.stats.sessions_opened.add()
        return session

    def close_session(self, session_id) -> Verdict3:
        """Close a session, returning its last verdict."""
        return self.sessions.close(session_id).verdict

    # -- ingest -------------------------------------------------------------

    def ingest(self, events: Iterable[tuple]) -> dict:
        """Feed one batch of interleaved ``(session_id, event)`` pairs.

        Returns ``{session_id: verdict}`` for every session touched by
        the batch.  Raises :class:`~repro.rv.session.SessionError` for
        unknown ids, ``ValueError`` for foreign symbols and
        :class:`~repro.rv.session.BackpressureError` when a session's
        queue would overflow — all *before* any event of the batch is
        admitted to any queue, so a rejected batch leaves every session
        exactly as it was.
        """
        tracer = self.tracer
        if tracer.enabled:
            with tracer.span("rv.ingest") as span:
                return self._ingest(events, span)
        return self._ingest(events, NULL_SPAN)

    def _ingest(self, events: Iterable[tuple], span) -> dict:
        routed: dict[int, tuple[TraceSession, list]] = {}
        get = self.sessions.get
        for session_id, event in events:
            session = get(session_id)
            entry = routed.get(id(session))
            if entry is None:
                entry = routed[id(session)] = (session, [])
            entry[1].append(event)
        if not routed:
            return {}
        # admission control: the whole batch is validated before any
        # event is queued (atomic reject).
        for session, batch in routed.values():
            session.validate_batch(batch)
        for session, batch in routed.values():
            session.enqueue_many(batch)
        touched = {key: session for key, (session, _) in routed.items()}
        groups = list(self.sessions.by_monitor(touched.values()).values())
        recording = span.recording
        if recording:
            span.set(
                events=sum(len(batch) for _, batch in routed.values()),
                sessions=len(touched),
                groups=len(groups),
            )
        drain = (
            partial(self._drain_group_traced, parent=span)
            if recording
            else self._drain_group
        )
        self.pool.map(drain, groups)
        self.stats.batches.add()
        return {s.session_id: s.verdict for s in touched.values()}

    def _drain_group_traced(self, group: list[TraceSession], parent) -> None:
        # explicit parent: this may run on a pool thread, where the
        # tracer's thread-local stack knows nothing of the ingest span.
        with self.tracer.span("rv.drain_group", parent=parent) as span:
            drained, stepped = self._drain_group(group)
            span.set(sessions=len(group), events=drained, steps=stepped)

    def _drain_group(self, group: list[TraceSession]) -> tuple[int, int]:
        stats = self.stats
        journal = self.journal
        record_drain = stats.record_drain
        perf_counter = time.perf_counter
        monotonic = time.monotonic
        drained = stepped = 0
        for session in group:
            pending = session.pending
            was_final = session.finalized
            before = session.verdict4
            start = perf_counter()
            steps = session.drain()
            record_drain(pending, steps, perf_counter() - start)
            drained += pending
            stepped += steps
            if session.finalized and not was_final:
                stats.record_verdict(session.verdict)
            after = session.verdict4
            if after is not before:
                # verdict transitions are per drain, not per event: the
                # worker loop stays table-only and the ops plane still
                # sees every state the *caller* could have observed.
                stats.record_transition(
                    before, after, monotonic() - session.opened_at
                )
                if journal is not None:
                    journal.emit(
                        "rv.verdict_transition",
                        WARN if after.is_final else DEBUG,
                        session=repr(session.session_id),
                        **{"from": before.value, "to": after.value,
                           "events": session.position, "wait": session.wait},
                    )
        return drained, stepped

    # -- queries ------------------------------------------------------------

    def verdicts(self) -> dict:
        """Current three-valued verdicts of all open sessions."""
        return self.sessions.verdicts()

    def verdicts4(self) -> dict:
        """Current four-valued verdicts of all open sessions."""
        return self.sessions.verdicts4()

    def snapshot(self) -> dict:
        """Stats dashboard including compile-cache counters."""
        return self.stats.snapshot(self.cache)

    # -- lifecycle ----------------------------------------------------------

    def shutdown(self) -> None:
        self.pool.shutdown()

    def __enter__(self) -> "RvEngine":
        return self

    def __exit__(self, *exc) -> None:
        self.shutdown()
