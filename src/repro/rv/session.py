"""Trace sessions: thousands of live traces over shared compiled monitors.

A :class:`TraceSession` is the per-trace slice of monitor state — one
integer (the table state), a verdict, and a bounded pending queue.  The
expensive objects (automata, closures, transition tables) live in the
shared :class:`~repro.rv.compile.MonitorTable`; opening a session is
O(1) and costs a few machine words, which is what makes 10⁴ concurrent
traces against a handful of policies cheap.

Backpressure is per session: events are *enqueued* (cheap, validated)
and *drained* (the tight table loop) separately, and a session whose
pending queue is full raises :class:`BackpressureError` instead of
buffering unboundedly — the caller decides whether to drop, block, or
drain.  Bad-prefix truncation is free: once the verdict is definite the
drain loop stops touching the table entirely and only counts events,
mirroring :meth:`RvMonitor.observe`'s early return.
"""

from __future__ import annotations

from collections import deque
from collections.abc import Iterable, Iterator

from repro.ltl.monitoring import Verdict3

from .compile import MonitorTable


class BackpressureError(RuntimeError):
    """A session's bounded pending queue is full."""


class SessionError(ValueError):
    """Unknown or duplicate session id."""


class TraceSession:
    """One monitored trace: shared table, private cursor."""

    __slots__ = ("session_id", "monitor", "max_pending", "_state", "_verdict",
                 "_events", "_pending")

    def __init__(self, session_id, monitor: MonitorTable, max_pending: int = 1024):
        self.session_id = session_id
        self.monitor = monitor
        self.max_pending = max_pending
        self.reset()

    def reset(self) -> None:
        self._state = self.monitor.initial
        self._verdict = self.monitor.verdicts[self._state]
        self._events = 0
        self._pending: deque = deque()

    @property
    def verdict(self) -> Verdict3:
        return self._verdict

    @property
    def position(self) -> int:
        """Events consumed (pending events are not yet counted)."""
        return self._events

    @property
    def finalized(self) -> bool:
        """Whether the verdict is definite (truncation point reached)."""
        return self._verdict is not Verdict3.UNKNOWN

    @property
    def pending(self) -> int:
        return len(self._pending)

    # -- synchronous path ---------------------------------------------------

    def observe(self, event) -> Verdict3:
        """Feed one event immediately (the RvMonitor-compatible path)."""
        monitor = self.monitor
        index = monitor.symbol_index.get(event)
        if index is None:
            raise ValueError(f"event {event!r} outside the alphabet")
        self._events += 1
        if self._verdict is not Verdict3.UNKNOWN:
            return self._verdict
        self._state = monitor.next_state[self._state][index]
        self._verdict = monitor.verdicts[self._state]
        return self._verdict

    def run(self, events: Iterable) -> Verdict3:
        """Observe a whole finite trace from a fresh start."""
        self.reset()
        for e in events:
            self.observe(e)
        return self._verdict

    # -- queued path (engine batches) --------------------------------------

    def enqueue(self, event) -> None:
        """Admit one event to the pending queue, or push back."""
        if event not in self.monitor.symbol_index:
            raise ValueError(f"event {event!r} outside the alphabet")
        if len(self._pending) >= self.max_pending:
            raise BackpressureError(
                f"session {self.session_id!r}: pending queue full "
                f"({self.max_pending} events); drain before enqueueing more"
            )
        self._pending.append(event)

    def validate_batch(self, events: Iterable) -> None:
        """Check symbols and queue capacity without mutating anything —
        the engine's pre-admission pass, so a rejected batch leaves every
        session exactly as it was."""
        events = list(events)
        symbol_index = self.monitor.symbol_index
        for e in events:
            if e not in symbol_index:
                raise ValueError(f"event {e!r} outside the alphabet")
        if len(self._pending) + len(events) > self.max_pending:
            raise BackpressureError(
                f"session {self.session_id!r}: batch of {len(events)} would "
                f"overflow the pending queue ({len(self._pending)} queued, "
                f"capacity {self.max_pending})"
            )

    def enqueue_many(self, events: Iterable) -> None:
        """Admit a whole sequence atomically: all events queue or none."""
        events = list(events)
        self.validate_batch(events)
        self._pending.extend(events)

    def drain(self) -> int:
        """Process every pending event; returns table steps performed.

        The loop body is two list indexings per event; after truncation
        (definite verdict) the remaining events are counted and dropped
        without touching the table.
        """
        queue = self._pending
        if not queue:
            return 0
        monitor = self.monitor
        table, symbol_index = monitor.next_state, monitor.symbol_index
        state, verdict = self._state, self._verdict
        steps = 0
        if verdict is Verdict3.UNKNOWN:
            verdicts = monitor.verdicts
            while queue:
                state = table[state][symbol_index[queue.popleft()]]
                self._events += 1
                steps += 1
                verdict = verdicts[state]
                if verdict is not Verdict3.UNKNOWN:
                    break
        # truncated: the verdict is final, skip the table entirely.
        self._events += len(queue)
        queue.clear()
        self._state, self._verdict = state, verdict
        return steps


class SessionManager:
    """The id → session directory, with monitor-grouping for dispatch."""

    def __init__(self, max_pending: int = 1024):
        self.max_pending = max_pending
        self._sessions: dict = {}

    def open(self, session_id, monitor: MonitorTable,
             max_pending: int | None = None) -> TraceSession:
        if session_id in self._sessions:
            raise SessionError(f"session {session_id!r} already open")
        session = TraceSession(
            session_id, monitor,
            self.max_pending if max_pending is None else max_pending,
        )
        self._sessions[session_id] = session
        return session

    def get(self, session_id) -> TraceSession:
        try:
            return self._sessions[session_id]
        except KeyError:
            raise SessionError(f"unknown session {session_id!r}") from None

    def close(self, session_id) -> TraceSession:
        try:
            return self._sessions.pop(session_id)
        except KeyError:
            raise SessionError(f"unknown session {session_id!r}") from None

    def __len__(self) -> int:
        return len(self._sessions)

    def __iter__(self) -> Iterator[TraceSession]:
        return iter(self._sessions.values())

    def __contains__(self, session_id) -> bool:
        return session_id in self._sessions

    def verdicts(self) -> dict:
        return {sid: s.verdict for sid, s in self._sessions.items()}

    def by_monitor(self, sessions: Iterable[TraceSession] | None = None
                   ) -> dict[int, list[TraceSession]]:
        """Group sessions by their (shared) compiled monitor — the unit
        of work the engine hands to one worker."""
        groups: dict[int, list[TraceSession]] = {}
        for session in self if sessions is None else sessions:
            groups.setdefault(id(session.monitor), []).append(session)
        return groups
