"""Trace sessions: thousands of live traces over shared compiled monitors.

A :class:`TraceSession` is the per-trace slice of monitor state — two
integers (the product-table state and the bound-tracker state), a wait
counter, a verdict, and a bounded pending queue.  The expensive objects
(automata, closures, transition tables, good-edge flags) live in the
shared :class:`~repro.rv.compile.DecomposedMonitor`; opening a session
is O(1) and costs a few machine words, which is what makes 10⁴
concurrent traces against a handful of policies cheap.

Since PR 10 a session carries *two* verdicts side by side:

* :attr:`TraceSession.verdict` — the reference three-valued verdict,
  bit-identical to PR 1 (the safety product table alone decides it);
* :attr:`TraceSession.verdict4` — the four-valued
  :class:`~repro.rv.verdicts.Verdict4` that also reads the liveness
  conjunct's bound tracker: the session counts events since its last
  *good edge*, and under a finitary ``horizon`` an exceeded wait
  latches ``LIVENESS_BOUND_EXCEEDED`` forever (Chatterjee–Fijalkow:
  the bound is a safety property of the prefix).  Sessions over legacy
  tracker-less :class:`~repro.rv.compile.MonitorTable` objects degrade
  gracefully — ``verdict4`` is then just the three-valued projection.

Backpressure is per session: events are *enqueued* (cheap, validated)
and *drained* (the tight table loop) separately, and a session whose
pending queue is full raises :class:`BackpressureError` instead of
buffering unboundedly — the caller decides whether to drop, block, or
drain.  Bad-prefix truncation is free: once the three-valued verdict is
definite the drain loop stops touching both tables entirely and only
counts events (the four-valued verdict is fixed at that point too:
``FALSE`` dominates everything, and on ``TRUE`` the latch state can no
longer change), mirroring :meth:`RvMonitor.observe`'s early return.
"""

from __future__ import annotations

import time
from collections import deque
from collections.abc import Iterable, Iterator

from repro.ltl.monitoring import Verdict3

from .compile import MonitorTable
from .verdicts import MonitorOutcome, Verdict4


class BackpressureError(RuntimeError):
    """A session's bounded pending queue is full."""


class SessionError(ValueError):
    """Unknown or duplicate session id."""


class TraceSession:
    """One monitored trace: shared tables, private cursors.

    ``horizon`` is the finitary-liveness bound (events a wait may reach
    before ``LIVENESS_BOUND_EXCEEDED`` latches); ``None`` means
    unbounded — waits are still tracked (``max_wait``) but never latch.
    It is a per-session runtime parameter precisely so one cached
    monitor serves every horizon.
    """

    __slots__ = ("session_id", "monitor", "max_pending", "horizon", "tracker",
                 "opened_at", "_state", "_verdict", "_events", "_pending",
                 "_tstate", "_wait", "_max_wait", "_latched")

    def __init__(self, session_id, monitor: MonitorTable,
                 max_pending: int = 1024, horizon: int | None = None):
        if horizon is not None and horizon < 0:
            raise ValueError("horizon must be >= 0 (or None for unbounded)")
        self.session_id = session_id
        self.monitor = monitor
        self.max_pending = max_pending
        self.horizon = horizon
        # legacy MonitorTable compatibility: no tracker → three-valued
        # degradation (verdict4 is the projection of verdict3).
        self.tracker = getattr(monitor, "tracker", None)
        self.opened_at = time.monotonic()
        self.reset()

    def reset(self) -> None:
        self._state = self.monitor.initial
        self._verdict = self.monitor.verdicts[self._state]
        self._events = 0
        self._pending: deque = deque()
        self._tstate = self.tracker.initial if self.tracker is not None else 0
        # wait = events since the last good edge (w(ε) = 0).
        self._wait = 0
        self._max_wait = 0
        self._latched = False

    @property
    def verdict(self) -> Verdict3:
        return self._verdict

    @property
    def verdict4(self) -> Verdict4:
        """The four-valued verdict, resolved in severity order: a
        falsified safety conjunct dominates, then the liveness latch,
        then "nothing outstanding" (definitively satisfied, or wait 0
        with a tracker present)."""
        if self._verdict is Verdict3.FALSE:
            return Verdict4.FALSIFIED_SAFETY
        if self._latched:
            return Verdict4.LIVENESS_BOUND_EXCEEDED
        if self._verdict is Verdict3.TRUE or (
            self._wait == 0 and self.tracker is not None
        ):
            return Verdict4.SATISFIED_SO_FAR
        return Verdict4.INCONCLUSIVE

    @property
    def wait(self) -> int:
        """Events since the last good edge (frozen once latched)."""
        return self._wait

    @property
    def max_wait(self) -> int:
        """Longest wait observed (capped at ``horizon + 1`` on latch)."""
        return self._max_wait

    @property
    def latched(self) -> bool:
        """Whether the finitary-liveness bound has been exceeded."""
        return self._latched

    @property
    def position(self) -> int:
        """Events consumed (pending events are not yet counted)."""
        return self._events

    @property
    def finalized(self) -> bool:
        """Whether the verdict is definite (truncation point reached)."""
        return self._verdict is not Verdict3.UNKNOWN

    @property
    def pending(self) -> int:
        return len(self._pending)

    def outcome(self) -> MonitorOutcome:
        """The session's current state as a one-shot
        :class:`~repro.rv.verdicts.MonitorOutcome` (what the service's
        ``Monitor`` verb replies with)."""
        return MonitorOutcome(
            verdict=self.verdict4, verdict3=self._verdict,
            events=self._events, max_wait=self._max_wait,
            horizon=self.horizon,
        )

    # -- synchronous path ---------------------------------------------------

    def observe(self, event) -> Verdict3:
        """Feed one event immediately (the RvMonitor-compatible path)."""
        monitor = self.monitor
        index = monitor.symbol_index.get(event)
        if index is None:
            raise ValueError(f"event {event!r} outside the alphabet")
        self._events += 1
        if self._verdict is not Verdict3.UNKNOWN:
            return self._verdict
        self._state = monitor.next_state[self._state][index]
        self._verdict = monitor.verdicts[self._state]
        tracker = self.tracker
        if tracker is not None and not self._latched:
            # good flag is read on the edge *out of* the current tracker
            # state, before stepping it (see BoundTracker).
            if tracker.good[self._tstate][index]:
                self._wait = 0
            else:
                self._wait += 1
                if self._wait > self._max_wait:
                    self._max_wait = self._wait
                if self.horizon is not None and self._wait > self.horizon:
                    self._latched = True
            self._tstate = tracker.next_state[self._tstate][index]
        return self._verdict

    def run(self, events: Iterable) -> Verdict3:
        """Observe a whole finite trace from a fresh start."""
        self.reset()
        for e in events:
            self.observe(e)
        return self._verdict

    # -- queued path (engine batches) --------------------------------------

    def enqueue(self, event) -> None:
        """Admit one event to the pending queue, or push back."""
        if event not in self.monitor.symbol_index:
            raise ValueError(f"event {event!r} outside the alphabet")
        if len(self._pending) >= self.max_pending:
            raise BackpressureError(
                f"session {self.session_id!r}: pending queue full "
                f"({self.max_pending} events); drain before enqueueing more"
            )
        self._pending.append(event)

    def validate_batch(self, events: Iterable) -> None:
        """Check symbols and queue capacity without mutating anything —
        the engine's pre-admission pass, so a rejected batch leaves every
        session exactly as it was."""
        events = list(events)
        symbol_index = self.monitor.symbol_index
        for e in events:
            if e not in symbol_index:
                raise ValueError(f"event {e!r} outside the alphabet")
        if len(self._pending) + len(events) > self.max_pending:
            raise BackpressureError(
                f"session {self.session_id!r}: batch of {len(events)} would "
                f"overflow the pending queue ({len(self._pending)} queued, "
                f"capacity {self.max_pending})"
            )

    def enqueue_many(self, events: Iterable) -> None:
        """Admit a whole sequence atomically: all events queue or none."""
        events = list(events)
        self.validate_batch(events)
        self._pending.extend(events)

    def drain(self) -> int:
        """Process every pending event; returns table steps performed.

        Tracker-less monitors keep the PR-1 loop body of two list
        indexings per event; decomposed monitors fuse the bound-tracker
        step into the same loop (one extra indexing plus the wait
        bookkeeping).  After truncation (definite three-valued verdict)
        the remaining events are counted and dropped without touching
        either table.
        """
        queue = self._pending
        if not queue:
            return 0
        monitor = self.monitor
        table, symbol_index = monitor.next_state, monitor.symbol_index
        state, verdict = self._state, self._verdict
        steps = 0
        if verdict is Verdict3.UNKNOWN:
            verdicts = monitor.verdicts
            tracker = self.tracker
            if tracker is None:
                # legacy tight loop (PR-1 tables: no liveness conjunct).
                while queue:
                    state = table[state][symbol_index[queue.popleft()]]
                    self._events += 1
                    steps += 1
                    verdict = verdicts[state]
                    if verdict is not Verdict3.UNKNOWN:
                        break
            else:
                ttable, tgood = tracker.next_state, tracker.good
                tstate, wait, max_wait = self._tstate, self._wait, self._max_wait
                latched, horizon = self._latched, self.horizon
                while queue:
                    i = symbol_index[queue.popleft()]
                    state = table[state][i]
                    self._events += 1
                    steps += 1
                    verdict = verdicts[state]
                    if not latched:
                        if tgood[tstate][i]:
                            wait = 0
                        else:
                            wait += 1
                            if wait > max_wait:
                                max_wait = wait
                            if horizon is not None and wait > horizon:
                                latched = True
                        tstate = ttable[tstate][i]
                    if verdict is not Verdict3.UNKNOWN:
                        break
                self._tstate, self._wait, self._max_wait = tstate, wait, max_wait
                self._latched = latched
        # truncated: the verdict is final, skip the tables entirely.
        self._events += len(queue)
        queue.clear()
        self._state, self._verdict = state, verdict
        return steps


class SessionManager:
    """The id → session directory, with monitor-grouping for dispatch."""

    def __init__(self, max_pending: int = 1024):
        self.max_pending = max_pending
        self._sessions: dict = {}

    def open(self, session_id, monitor: MonitorTable,
             max_pending: int | None = None,
             horizon: int | None = None) -> TraceSession:
        if session_id in self._sessions:
            raise SessionError(f"session {session_id!r} already open")
        session = TraceSession(
            session_id, monitor,
            self.max_pending if max_pending is None else max_pending,
            horizon,
        )
        self._sessions[session_id] = session
        return session

    def get(self, session_id) -> TraceSession:
        try:
            return self._sessions[session_id]
        except KeyError:
            raise SessionError(f"unknown session {session_id!r}") from None

    def close(self, session_id) -> TraceSession:
        try:
            return self._sessions.pop(session_id)
        except KeyError:
            raise SessionError(f"unknown session {session_id!r}") from None

    def __len__(self) -> int:
        return len(self._sessions)

    def __iter__(self) -> Iterator[TraceSession]:
        return iter(self._sessions.values())

    def __contains__(self, session_id) -> bool:
        return session_id in self._sessions

    def verdicts(self) -> dict:
        return {sid: s.verdict for sid, s in self._sessions.items()}

    def verdicts4(self) -> dict:
        return {sid: s.verdict4 for sid, s in self._sessions.items()}

    def by_monitor(self, sessions: Iterable[TraceSession] | None = None
                   ) -> dict[int, list[TraceSession]]:
        """Group sessions by their (shared) compiled monitor — the unit
        of work the engine hands to one worker."""
        groups: dict[int, list[TraceSession]] = {}
        for session in self if sessions is None else sessions:
            groups.setdefault(id(session.monitor), []).append(session)
        return groups
