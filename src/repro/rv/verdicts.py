"""The four-valued verdict lattice of decomposition-driven monitors.

The paper's Theorem 2 splits every property into ``B = B_S ∩ B_L`` —
safety closure ∩ dense part — and a streaming monitor inherits exactly
that split: the safety conjunct is *falsifiable* on a finite prefix
(leave ``lcl(B)`` once and no extension recovers), while the liveness
conjunct is never falsifiable, only *late*.  Chatterjee–Fijalkow's
finitary strengthening makes lateness decidable too: bound the wait for
the next good event by a horizon ``k`` and "some wait exceeded ``k``"
is itself a safety property of the prefix — one exceedance falsifies
the bounded-liveness obligation forever.  The verdicts below are the
cross product of those two one-way doors, ordered by severity:

* :attr:`Verdict4.FALSIFIED_SAFETY` — the prefix left ``lcl(B)``; no
  extension satisfies the property.  Absorbing.
* :attr:`Verdict4.LIVENESS_BOUND_EXCEEDED` — the safety conjunct still
  holds, but some wait for the liveness conjunct's good event exceeded
  the configured horizon.  Absorbing (the finitary obligation is a
  safety property, so one violation is final).
* :attr:`Verdict4.SATISFIED_SO_FAR` — safety unviolated and the bound
  tracker currently sits on a good state (wait = 0): nothing is
  outstanding.  *Not* absorbing in general — the next event may start a
  new wait — except when the three-valued projection is already
  ``TRUE`` (every extension satisfies the property, the liveness
  obligation is discharged for good).
* :attr:`Verdict4.INCONCLUSIVE` — safety unviolated, a wait is open
  but still within the horizon.  The honest "don't know yet".

The three-valued :class:`~repro.ltl.monitoring.Verdict3` of the
reference monitor is the projection that forgets the bound tracker:
``FALSIFIED_SAFETY → FALSE``, definitive satisfaction ``→ TRUE``,
everything else ``→ UNKNOWN`` — which is how the refactored engine
stays bit-compatible with the PR-1 test suite while finally saying
something useful about liveness.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from types import MappingProxyType

from repro.ltl.monitoring import Verdict3

__all__ = ["Verdict4", "MonitorOutcome", "SEVERITY", "most_severe"]


class Verdict4(Enum):
    """Four-valued verdict of a decomposition-driven monitor."""

    FALSIFIED_SAFETY = "falsified_safety"
    LIVENESS_BOUND_EXCEEDED = "liveness_bound_exceeded"
    SATISFIED_SO_FAR = "satisfied_so_far"
    INCONCLUSIVE = "inconclusive"

    @property
    def severity(self) -> int:
        """Alert precedence (higher = worse); see :data:`SEVERITY`."""
        return SEVERITY[self]

    @property
    def is_final(self) -> bool:
        """Whether this verdict, once reached, can only be superseded by
        a strictly more severe one (the two one-way doors)."""
        return self in (
            Verdict4.FALSIFIED_SAFETY, Verdict4.LIVENESS_BOUND_EXCEEDED
        )

    def to_verdict3(self) -> Verdict3:
        """The bound-forgetting projection onto the reference lattice.

        Note this is the projection of the *verdict*, not of the monitor
        state: ``SATISFIED_SO_FAR`` maps to ``UNKNOWN`` because "wait is
        zero right now" says nothing definitive — sessions that reach
        three-valued ``TRUE`` report it through the session API, which
        keeps both verdicts side by side.
        """
        if self is Verdict4.FALSIFIED_SAFETY:
            return Verdict3.FALSE
        return Verdict3.UNKNOWN


#: Alert precedence: a session's reported verdict is the most severe
#: verdict its two conjunct trackers justify.
SEVERITY = MappingProxyType({
    Verdict4.INCONCLUSIVE: 0,
    Verdict4.SATISFIED_SO_FAR: 1,
    Verdict4.LIVENESS_BOUND_EXCEEDED: 2,
    Verdict4.FALSIFIED_SAFETY: 3,
})


def most_severe(*verdicts: Verdict4) -> Verdict4:
    """The join in severity order (alerting semantics)."""
    if not verdicts:
        raise ValueError("most_severe() needs at least one verdict")
    return max(verdicts, key=SEVERITY.__getitem__)


@dataclass(frozen=True)
class MonitorOutcome:
    """The result of running a decomposed monitor over one finite trace
    (the value a :class:`~repro.service.requests.MonitorRequest` reply
    carries).

    ``verdict`` is the four-valued verdict after the last event;
    ``verdict3`` the reference three-valued one; ``max_wait`` the
    longest wait for the liveness conjunct's good event observed along
    the trace (capped at ``horizon + 1`` once the bound is exceeded);
    ``horizon`` echoes the configured bound (``None`` = unbounded: the
    tracker reports waits but never latches).
    """

    verdict: Verdict4
    verdict3: Verdict3
    events: int
    max_wait: int
    horizon: int | None

    @property
    def falsified(self) -> bool:
        return self.verdict is Verdict4.FALSIFIED_SAFETY

    @property
    def bound_exceeded(self) -> bool:
        return self.verdict is Verdict4.LIVENESS_BOUND_EXCEEDED
