"""Engine observability: counters and latency histograms.

Deliberately dependency-free and tiny: a thread-safe :class:`Counter`,
a bounded-reservoir :class:`Histogram` with percentile queries, and the
:class:`EngineStats` bundle the engine threads write into.  Future PRs
benchmark hot paths against these numbers, so the overhead budget is a
lock acquire and an integer add per recorded value.
"""

from __future__ import annotations

import threading
from repro.ltl.monitoring import Verdict3


class Counter:
    """A thread-safe monotonic counter."""

    __slots__ = ("_value", "_lock")

    def __init__(self):
        self._value = 0
        self._lock = threading.Lock()

    def add(self, n: int = 1) -> None:
        with self._lock:
            self._value += n

    @property
    def value(self) -> int:
        return self._value

    def __repr__(self) -> str:
        return f"Counter({self._value})"


class Histogram:
    """A bounded sliding-window reservoir with percentile queries.

    Keeps the most recent ``capacity`` samples in a ring; percentiles are
    computed on demand (nearest-rank) from a sorted copy.  Good enough
    for p50/p99 step-latency dashboards without a dependency.
    """

    __slots__ = ("capacity", "_ring", "_cursor", "_count", "_total", "_lock")

    def __init__(self, capacity: int = 4096):
        if capacity < 1:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self._ring: list[float] = [0.0] * capacity
        self._cursor = 0
        self._count = 0
        self._total = 0.0
        self._lock = threading.Lock()

    def record(self, value: float) -> None:
        with self._lock:
            self._ring[self._cursor] = value
            self._cursor = (self._cursor + 1) % self.capacity
            self._count += 1
            self._total += value

    @property
    def count(self) -> int:
        return self._count

    @property
    def mean(self) -> float:
        with self._lock:
            return self._total / self._count if self._count else 0.0

    def percentile(self, p: float) -> float:
        """Nearest-rank percentile over the retained window (0 ≤ p ≤ 100)."""
        if not 0 <= p <= 100:
            raise ValueError("percentile must be in [0, 100]")
        with self._lock:
            n = min(self._count, self.capacity)
            if n == 0:
                return 0.0
            window = sorted(self._ring[:n])
        rank = max(0, min(n - 1, round(p / 100 * (n - 1))))
        return window[rank]

    def p50(self) -> float:
        return self.percentile(50)

    def p99(self) -> float:
        return self.percentile(99)


class EngineStats:
    """Everything the engine measures, in one bundle.

    * ``events`` — events consumed by sessions (including post-truncation
      events, which are counted but not stepped — matching
      :class:`~repro.ltl.monitoring.RvMonitor` position semantics);
    * ``steps`` — actual table transitions (``events - steps`` is the work
      bad-prefix truncation saved);
    * ``batches`` — ``ingest`` calls; ``drains`` — per-session drains;
    * ``verdicts`` — sessions *reaching* each definite verdict kind;
    * ``step_latency`` — per-event seconds, sampled once per drain
      (drain wall-time / events drained).

    Cache hit/miss counters live on the :class:`~repro.rv.compile
    .CompileCache`; :meth:`snapshot` merges them when given the cache.
    """

    def __init__(self, latency_window: int = 4096):
        self.events = Counter()
        self.steps = Counter()
        self.batches = Counter()
        self.drains = Counter()
        self.sessions_opened = Counter()
        self.verdicts = {
            Verdict3.TRUE: Counter(),
            Verdict3.FALSE: Counter(),
            Verdict3.UNKNOWN: Counter(),
        }
        self.step_latency = Histogram(latency_window)

    def record_verdict(self, verdict: Verdict3) -> None:
        self.verdicts[verdict].add()

    def snapshot(self, cache=None) -> dict:
        """A plain-dict dashboard (stable keys; used by the example and
        the benchmark report)."""
        out = {
            "events": self.events.value,
            "steps": self.steps.value,
            "truncation_savings": self.events.value - self.steps.value,
            "batches": self.batches.value,
            "drains": self.drains.value,
            "sessions_opened": self.sessions_opened.value,
            "verdicts": {k.value: c.value for k, c in self.verdicts.items()},
            "step_latency_p50_us": self.step_latency.p50() * 1e6,
            "step_latency_p99_us": self.step_latency.p99() * 1e6,
        }
        if cache is not None:
            info = cache.info()
            out["cache"] = {
                "hits": info.hits,
                "misses": info.misses,
                "size": info.size,
                "maxsize": info.maxsize,
            }
        return out
