"""Engine observability — now a facade over the shared metric registry.

PR 1 shipped a one-off ``Counter``/``Histogram`` bundle here; those
classes now *are* the :mod:`repro.obs.metrics` implementations
(re-exported below for compatibility), and :class:`EngineStats` is a
thin facade that registers every engine measurement in the process-wide
:data:`~repro.obs.metrics.REGISTRY` under ``repro_rv_*`` names with an
``engine`` label, one label set per engine instance.  Consequences:

* ``snapshot()`` keys are unchanged from PR 1 — dashboards and the
  existing ``tests/rv`` suite work unmodified;
* the same numbers are visible through the registry's Prometheus and
  JSON exposition alongside every other subsystem's metrics;
* reads are now locked (``Counter.value`` and ``Histogram.count`` in the
  PR 1 version read shared state relying on CPython atomicity; the
  registry metrics take the lock on both sides);
* step latencies are log-bucketed (HDR-style) rather than a 4096-sample
  sliding reservoir, so percentiles cover the whole run within ~12%
  relative bucket width instead of exactly-but-only the recent window.
  ``latency_window`` is accepted for API compatibility and ignored.

The overhead budget is unchanged: one lock acquire and one add per
recorded value, all charged per *drain*, never per event.
"""

from __future__ import annotations

import itertools

from repro.ltl.monitoring import Verdict3
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricRegistry,
    REGISTRY,
    share_lock,
)

from .verdicts import Verdict4

__all__ = ["Counter", "Gauge", "Histogram", "EngineStats"]

#: Distinguishes each engine's label set in the shared registry.
_ENGINE_IDS = itertools.count()


class EngineStats:
    """Everything the engine measures, in one bundle.

    * ``events`` — events consumed by sessions (including post-truncation
      events, which are counted but not stepped — matching
      :class:`~repro.ltl.monitoring.RvMonitor` position semantics);
    * ``steps`` — actual table transitions (``events - steps`` is the work
      bad-prefix truncation saved);
    * ``batches`` — ``ingest`` calls; ``drains`` — per-session drains;
    * ``verdicts`` — sessions *reaching* each definite verdict kind;
    * ``step_latency`` — per-event seconds, sampled once per drain
      (drain wall-time / events drained).

    Cache hit/miss counters live on the :class:`~repro.rv.compile
    .CompileCache`; :meth:`snapshot` merges them when given the cache.

    Parameters
    ----------
    latency_window:
        Ignored (PR 1 reservoir compatibility; histograms are now
        log-bucketed and unbounded-window).
    registry:
        The :class:`~repro.obs.metrics.MetricRegistry` to report into;
        defaults to the process-wide one.
    engine:
        The ``engine`` label value; defaults to a fresh sequential id,
        which is what keeps per-instance counts independent.
    """

    def __init__(self, latency_window: int = 4096,
                 registry: MetricRegistry | None = None,
                 engine: str | None = None):
        registry = REGISTRY if registry is None else registry
        self.registry = registry
        self.engine = str(next(_ENGINE_IDS)) if engine is None else str(engine)
        label = {"engine": self.engine}
        self.events = registry.counter(
            "repro_rv_events_total",
            "events consumed by sessions (including post-truncation events)",
            ("engine",),
        ).labels(**label)
        self.steps = registry.counter(
            "repro_rv_steps_total",
            "monitor-table transitions performed",
            ("engine",),
        ).labels(**label)
        self.batches = registry.counter(
            "repro_rv_batches_total", "ingest() calls", ("engine",)
        ).labels(**label)
        self.drains = registry.counter(
            "repro_rv_drains_total", "per-session drains", ("engine",)
        ).labels(**label)
        self.sessions_opened = registry.counter(
            "repro_rv_sessions_opened_total", "sessions opened", ("engine",)
        ).labels(**label)
        verdict_family = registry.counter(
            "repro_rv_verdicts_total",
            "sessions reaching each verdict kind",
            ("engine", "verdict"),
        )
        self.verdicts = {
            kind: verdict_family.labels(engine=self.engine, verdict=kind.value)
            for kind in (Verdict3.TRUE, Verdict3.FALSE, Verdict3.UNKNOWN)
        }
        self.step_latency = registry.histogram(
            "repro_rv_step_latency_seconds",
            "per-event drain latency (drain wall-time / events drained)",
            ("engine",),
        ).labels(**label)
        # Four-valued verdict plane (PR 10): transitions are counted per
        # (from, to) edge and latency is session-open → transition, per
        # destination verdict.  Children are resolved lazily because most
        # engines only ever see a few of the 12 possible edges.
        self._transition_family = registry.counter(
            "repro_rv_verdict_transitions_total",
            "four-valued verdict transitions across sessions (from → to)",
            ("engine", "from", "to"),
        )
        self._verdict_latency_family = registry.histogram(
            "repro_rv_verdict_latency_seconds",
            "session-open → verdict-transition latency, per new verdict",
            ("engine", "verdict"),
        )
        self._transition_counters: dict = {}
        self._verdict_latencies: dict = {}
        # The drain loop updates these three together on every drain;
        # fuse them under one lock so the hot path pays one acquire.
        self._drain_lock = share_lock(self.events, self.steps, self.drains)

    def record_drain(self, pending: int, steps: int, elapsed: float) -> None:
        """One session drain: ``pending`` events consumed, ``steps``
        transitions taken, in ``elapsed`` seconds.  Single fused lock
        acquire for the counters (see :func:`~repro.obs.metrics
        .share_lock`) plus one histogram record."""
        with self._drain_lock:
            self.events._value += pending
            self.steps._value += steps
            self.drains._value += 1
        if pending:
            self.step_latency.record(elapsed / pending)

    def record_verdict(self, verdict: Verdict3) -> None:
        self.verdicts[verdict].add()

    def record_transition(self, old: Verdict4, new: Verdict4,
                          latency: float) -> None:
        """One session's four-valued verdict changed from ``old`` to
        ``new``, ``latency`` seconds after the session opened.  Child
        resolution races are benign: ``labels()`` is get-or-create, so a
        duplicate lookup returns the same child."""
        counter = self._transition_counters.get((old, new))
        if counter is None:
            counter = self._transition_counters.setdefault(
                (old, new),
                self._transition_family.labels(
                    **{"engine": self.engine, "from": old.value, "to": new.value}
                ),
            )
        counter.add()
        histogram = self._verdict_latencies.get(new)
        if histogram is None:
            histogram = self._verdict_latencies.setdefault(
                new,
                self._verdict_latency_family.labels(
                    engine=self.engine, verdict=new.value
                ),
            )
        histogram.record(latency)

    def _verdicts4(self) -> dict:
        """Transitions *into* each four-valued verdict, summed over the
        originating verdicts (the dashboard-friendly aggregation; the
        per-edge counts stay in the registry exposition)."""
        out = {kind.value: 0 for kind in Verdict4}
        for (_, new), counter in list(self._transition_counters.items()):
            out[new.value] += counter.value
        return out

    def snapshot(self, cache=None) -> dict:
        """A plain-dict dashboard (stable keys; used by the example and
        the benchmark report — the PR 1 keys unchanged, with the
        four-valued ``verdicts4`` / ``verdict_latency_us`` beside them
        since PR 10)."""
        out = {
            "events": self.events.value,
            "steps": self.steps.value,
            "truncation_savings": self.events.value - self.steps.value,
            "batches": self.batches.value,
            "drains": self.drains.value,
            "sessions_opened": self.sessions_opened.value,
            "verdicts": {k.value: c.value for k, c in self.verdicts.items()},
            "step_latency_p50_us": self.step_latency.p50() * 1e6,
            "step_latency_p99_us": self.step_latency.p99() * 1e6,
            "verdicts4": self._verdicts4(),
            # session-open → transition latency, per destination verdict
            # (only verdicts actually reached appear)
            "verdict_latency_us": {
                verdict.value: {
                    "p50": histogram.p50() * 1e6,
                    "p99": histogram.p99() * 1e6,
                }
                for verdict, histogram in sorted(
                    self._verdict_latencies.items(), key=lambda kv: kv[0].value
                )
            },
        }
        if cache is not None:
            info = cache.info()
            out["cache"] = {
                "hits": info.hits,
                "misses": info.misses,
                "size": info.size,
                "maxsize": info.maxsize,
            }
        return out
