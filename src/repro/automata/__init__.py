"""The dense automaton kernel: int-indexed, bitset-backed cores.

One interner, one dense representation, one set of bitset kernels —
the performance layer under every Büchi/Rabin hot path (DESIGN.md §9).
Outside this package only ``repro.buchi`` and ``repro.rabin`` may
import it (checks rule RC007); everyone else uses the public facades,
which intern once, run the kernels, and unintern the results.
"""

from .dense import DenseBuchi, DenseDfa, DenseForm
from .interner import Interner
from .kernel import (
    adjacency,
    cycle_win_mask,
    is_cyclic_scc,
    iter_bits,
    lasso_accepts,
    lcl_member,
    live_mask,
    post,
    product_core,
    reachable_mask,
    scc_masks,
    simulation_masks,
    subset_dfa,
    union_core,
)

__all__ = [
    "Interner",
    "DenseBuchi",
    "DenseDfa",
    "DenseForm",
    "iter_bits",
    "post",
    "reachable_mask",
    "adjacency",
    "scc_masks",
    "is_cyclic_scc",
    "live_mask",
    "subset_dfa",
    "product_core",
    "union_core",
    "simulation_masks",
    "cycle_win_mask",
    "lasso_accepts",
    "lcl_member",
]
