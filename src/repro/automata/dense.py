"""Dense automaton cores: int-indexed states, bitmask successor sets.

The hashable-state :class:`~repro.buchi.automaton.BuchiAutomaton` is the
paper-faithful representation; every hot loop in this repo ultimately
walks its transition structure.  :class:`DenseBuchi` is the same
structure with all identity stripped out: states are ``0..n-1``, symbols
are ``0..k-1``, a successor set is one Python int used as a bitmask
(bit ``q`` set ⇔ state ``q`` is a successor), and the accepting set is a
bitmask too.  Set union is ``|``, intersection ``&``, emptiness
``not mask`` — no hashing, no per-element allocation.

The algorithms over these cores live in :mod:`repro.automata.kernel`;
this module holds only the data types plus :class:`DenseForm`, the
bridge object pairing a core with the interned state/symbol identities
of the automaton it came from (built by ``BuchiAutomaton.to_dense()``).

Layering: outside ``repro/automata``, only the ``buchi`` and ``rabin``
packages may import this module (checks rule RC007) — everything else
goes through the public Büchi/Rabin facades.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class DenseBuchi:
    """A Büchi automaton over ``0..n_states-1`` × ``0..n_symbols-1``.

    ``succ[a][q]`` is the bitmask of ``δ(q, a)``; ``accepting`` is the
    bitmask of ``F``.  Immutable and purely structural — two cores are
    equal iff their automata are identical under the numbering.
    """

    n_states: int
    n_symbols: int
    initial: int
    succ: tuple  # succ[a][q] -> int bitmask of successors
    accepting: int

    def __post_init__(self):
        if not 0 <= self.initial < self.n_states:
            raise ValueError(f"initial {self.initial} out of range")
        full = (1 << self.n_states) - 1
        if self.accepting & ~full:
            raise ValueError("accepting mask names states out of range")
        if len(self.succ) != self.n_symbols:
            raise ValueError("need one successor table per symbol")
        for row in self.succ:
            if len(row) != self.n_states:
                raise ValueError("successor table has wrong state count")

    def full_mask(self) -> int:
        """The bitmask of all states."""
        return (1 << self.n_states) - 1

    def post(self, mask: int, a: int) -> int:
        """The subset-construction step ``δ̂(S, a)`` on bitmasks."""
        row = self.succ[a]
        out = 0
        while mask:
            low = mask & -mask
            out |= row[low.bit_length() - 1]
            mask ^= low
        return out

    def transition_count(self) -> int:
        return sum(m.bit_count() for row in self.succ for m in row)


@dataclass(frozen=True)
class DenseDfa:
    """A subset-construction DFA over a dense core.

    States index into ``subsets`` (each entry the state-set bitmask of
    the underlying core); ``trans[s][a]`` is the successor DFA state;
    ``dead`` is the index of the empty subset (always present, with
    self-loops on every symbol) — its reachability is what bad-prefix
    analysis reads off.
    """

    n_symbols: int
    subsets: tuple  # DFA state -> core state-set bitmask
    trans: tuple  # trans[s][a] -> DFA state
    initial: int
    dead: int

    def run(self, word) -> int:
        current = self.initial
        for a in word:
            current = self.trans[current][a]
        return current


class DenseForm:
    """A dense core plus the interned identities it abstracts.

    ``states[i]`` / ``symbols[a]`` are the original hashable values at
    dense index ``i`` / ``a`` (first-appearance BFS order for states,
    repr-sorted for symbols — the exact order ``renumbered()`` uses);
    ``state_index`` / ``symbol_index`` invert them.  The reachable and
    live masks are computed lazily and cached, so every algorithm that
    needs them on the same automaton shares one computation.
    """

    __slots__ = (
        "core", "states", "symbols", "state_index", "symbol_index",
        "_reachable", "_live", "_cycle_wins", "_union_hint",
    )

    def __init__(self, core: DenseBuchi, states: tuple, symbols: tuple):
        self.core = core
        self.states = states
        self.symbols = symbols
        self.state_index = {s: i for i, s in enumerate(states)}
        self.symbol_index = {a: i for i, a in enumerate(symbols)}
        self._reachable = None
        self._live = None
        self._cycle_wins: dict = {}
        # set by repro.buchi.operations.union: (left form, right form,
        # left index map, right index map) — see union_cycle_hint()
        self._union_hint = None

    def reachable(self) -> int:
        """Bitmask of states reachable from the initial state (cached)."""
        if self._reachable is None:
            from .kernel import reachable_mask

            self._reachable = reachable_mask(self.core)
        return self._reachable

    def live(self) -> int:
        """Bitmask of states with non-empty language (cached)."""
        if self._live is None:
            from .kernel import live_mask

            self._live = live_mask(self.core)
        return self._live

    def cycle_win(self, cycle: tuple) -> int:
        """Memoized :func:`~repro.automata.kernel.cycle_win_mask` for a
        tuple of symbol indices — lasso membership against the same
        automaton re-pays only the prefix subset-stepping per word.

        A cached rotation is reused instead of recomputing: ``q`` wins
        ``(c0 · w)^ω`` iff some ``c0``-successor of ``q`` wins
        ``(w · c0)^ω``, so the win mask of a rotated cycle is one
        predecessor sweep per rotated-off symbol."""
        wins = self._cycle_wins
        mask = wins.get(cycle)
        if mask is not None:
            return mask
        if self._union_hint is not None:
            mask = self._union_cycle_win(cycle)
            wins[cycle] = mask
            return mask
        length = len(cycle)
        for d in range(1, length):
            if length % d == 0 and cycle[:d] * (length // d) == cycle:
                mask = self.cycle_win(cycle[:d])
                wins[cycle] = mask
                return mask
        for k in range(1, length):
            target = wins.get(cycle[k:] + cycle[:k])
            if target is None:
                continue
            head = tuple(self.core.succ[a] for a in cycle[:k])
            mask = 0
            remaining = self.reachable()
            while remaining:
                low = remaining & -remaining
                remaining ^= low
                cur = low
                for row in head:
                    nxt = 0
                    while cur:
                        b = cur & -cur
                        nxt |= row[b.bit_length() - 1]
                        cur ^= b
                    cur = nxt
                    if not cur:
                        break
                if cur & target:
                    mask |= low
            wins[cycle] = mask
            return mask
        from .kernel import cycle_win_mask

        mask = cycle_win_mask(self.core, cycle, self.reachable())
        wins[cycle] = mask
        return mask

    def union_cycle_hint(
        self, left: "DenseForm", right: "DenseForm",
        left_map: tuple, right_map: tuple,
    ) -> None:
        """Record that this automaton is the disjoint union of ``left``
        and ``right`` behind a fresh initial state (this form's index 0,
        with no incoming edges), ``left_map[q]``/``right_map[q]`` giving
        the index here of the child's state ``q``.

        Blocks are successor-closed, so a union state wins a cycle iff
        it wins in its own child — :meth:`cycle_win` then maps the
        children's (memoized) win masks instead of re-analyzing the
        union graph, and decides the fresh initial state by one step
        into the rotated cycle's mask."""
        self._union_hint = (left, right, left_map, right_map)

    def _mapped_child_wins(self, cycle: tuple) -> int:
        left, right, left_map, right_map = self._union_hint
        mask = 0
        for child, index_map in ((left, left_map), (right, right_map)):
            child_win = child.cycle_win(cycle)
            while child_win:
                low = child_win & -child_win
                child_win ^= low
                mask |= 1 << index_map[low.bit_length() - 1]
        return mask

    def _union_cycle_win(self, cycle: tuple) -> int:
        mask = self._mapped_child_wins(cycle)
        rotated = cycle[1:] + cycle[:1]
        rotated_mask = (
            mask if rotated == cycle else self._mapped_child_wins(rotated)
        )
        first_step = self.core.succ[cycle[0]][self.core.initial]
        if first_step & rotated_mask:
            mask |= 1 << self.core.initial
        return mask

    def unintern_mask(self, mask: int) -> frozenset:
        """The original state identities named by a bitmask."""
        states = self.states
        out = []
        while mask:
            low = mask & -mask
            out.append(states[low.bit_length() - 1])
            mask ^= low
        return frozenset(out)

    def restricted_transitions(self, keep: int) -> dict:
        """The hashable-state transition dict of the sub-automaton on
        ``keep`` — entries only where source and some target survive
        (exactly what ``BuchiAutomaton.restricted_to`` keeps)."""
        from .kernel import iter_bits

        states, symbols, succ = self.states, self.symbols, self.core.succ
        out: dict = {}
        for a, symbol in enumerate(symbols):
            row = succ[a]
            for q in iter_bits(keep):
                targets = row[q] & keep
                if targets:
                    out[states[q], symbol] = frozenset(
                        states[r] for r in iter_bits(targets)
                    )
        return out

    def __repr__(self) -> str:
        return (
            f"DenseForm(|Q|={self.core.n_states}, "
            f"|Σ|={self.core.n_symbols})"
        )
