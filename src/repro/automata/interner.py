"""The one state-renumbering codepath: hashable values ↔ dense ints.

Every construction in the repo that numbers states — ``renumbered()``,
the dense conversion, subset constructions, DFA minimization, the LAR
game numbering — goes through this class, so "state ``i``" always means
"the ``i``-th value interned", in first-appearance order.  The interner
is deliberately tiny: a list and a dict, no deletion, no mutation of
already-assigned indices.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator


class Interner:
    """A bijection between hashable values and ``0..n-1``.

    Indices are assigned in first-``intern`` order and never change;
    iterating yields the values in index order.
    """

    __slots__ = ("_index", "_values")

    def __init__(self, values: Iterable = ()):
        self._index: dict = {}
        self._values: list = []
        for value in values:
            self.intern(value)

    @classmethod
    def from_ordered(cls, values: Iterable) -> "Interner":
        """Bulk constructor for values already distinct and in their
        intended index order (the hot path for BFS renumbering — one
        C-level dict build instead of per-value ``intern`` calls)."""
        self = cls.__new__(cls)
        self._values = list(values)
        self._index = {v: i for i, v in enumerate(self._values)}
        return self

    def intern(self, value) -> int:
        """The index of ``value``, assigning the next free one if new."""
        index = self._index.get(value)
        if index is None:
            index = len(self._values)
            self._index[value] = index
            self._values.append(value)
        return index

    def index_of(self, value) -> int:
        """The index of an already-interned value (``KeyError`` if new)."""
        return self._index[value]

    def get(self, value, default=None):
        """The index of ``value``, or ``default`` when not interned."""
        return self._index.get(value, default)

    def value(self, index: int):
        """The value interned at ``index``."""
        return self._values[index]

    def values(self) -> tuple:
        """All interned values, in index order."""
        return tuple(self._values)

    def index_map(self) -> dict:
        """A fresh ``{value: index}`` dict (mutation-safe copy)."""
        return dict(self._index)

    def __len__(self) -> int:
        return len(self._values)

    def __contains__(self, value) -> bool:
        return value in self._index

    def __iter__(self) -> Iterator:
        return iter(self._values)

    def __repr__(self) -> str:
        return f"Interner({len(self._values)} values)"
