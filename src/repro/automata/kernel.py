"""Bitset kernels over dense automaton cores.

Every graph algorithm the Büchi/Rabin layers need, written once over
int bitmasks: reachability, Tarjan SCCs, liveness (the state set the
paper's closure operator keeps), the subset construction (the paper's
``cl`` and its complement), the two-phase intersection product, union,
the direct-simulation preorder, and lasso-word membership (both plain
acceptance and the semantic ``lcl`` test).

Conventions: a *mask* is an int whose bit ``q`` stands for state ``q``;
``adj`` is a per-state tuple of masks (symbols forgotten); ``succ`` is
the per-symbol table ``DenseBuchi.succ``.  All functions are pure.
"""

from __future__ import annotations

from .dense import DenseBuchi, DenseDfa


def iter_bits(mask: int):
    """Yield the set bit indices of ``mask``, lowest first."""
    while mask:
        low = mask & -mask
        yield low.bit_length() - 1
        mask ^= low


def post(row, source: int) -> int:
    """Union of ``row[q]`` over the states in ``source`` — one subset
    step for one symbol's successor table."""
    out = 0
    while source:
        low = source & -source
        out |= row[low.bit_length() - 1]
        source ^= low
    return out


def reachable_mask(core: DenseBuchi, start: int | None = None) -> int:
    """States reachable from ``start`` (default: the initial state)."""
    seen = (1 << core.initial) if start is None else start
    frontier = seen
    succ = core.succ
    while frontier:
        new = 0
        for row in succ:
            new |= post(row, frontier)
        frontier = new & ~seen
        seen |= frontier
    return seen


def adjacency(core: DenseBuchi) -> tuple:
    """Per-state successor masks with symbols forgotten."""
    n = core.n_states
    rows = [0] * n
    for row in core.succ:
        for q in range(n):
            rows[q] |= row[q]
    return tuple(rows)


def scc_masks(adj, nodes: int | None = None) -> list[int]:
    """Tarjan's strongly connected components of the graph ``adj``,
    restricted to the ``nodes`` mask (default: all), as a list of masks.

    Iterative, with one resumable remaining-successors mask per stack
    frame — no recursion, no per-node iterator objects.
    """
    n = len(adj)
    if nodes is None:
        nodes = (1 << n) - 1 if n else 0
    index = [-1] * n
    lowlink = [0] * n
    on_stack = 0
    stack: list[int] = []
    components: list[int] = []
    counter = 0
    for root in iter_bits(nodes):
        if index[root] != -1:
            continue
        index[root] = lowlink[root] = counter
        counter += 1
        stack.append(root)
        on_stack |= 1 << root
        work = [(root, adj[root] & nodes)]
        while work:
            node, remaining = work[-1]
            advanced = False
            while remaining:
                low = remaining & -remaining
                remaining ^= low
                succ = low.bit_length() - 1
                if index[succ] == -1:
                    work[-1] = (node, remaining)
                    index[succ] = lowlink[succ] = counter
                    counter += 1
                    stack.append(succ)
                    on_stack |= low
                    work.append((succ, adj[succ] & nodes))
                    advanced = True
                    break
                if on_stack & low and index[succ] < lowlink[node]:
                    lowlink[node] = index[succ]
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                if lowlink[node] < lowlink[parent]:
                    lowlink[parent] = lowlink[node]
            if lowlink[node] == index[node]:
                component = 0
                while True:
                    w = stack.pop()
                    on_stack &= ~(1 << w)
                    component |= 1 << w
                    if w == node:
                        break
                components.append(component)
    return components


def is_cyclic_scc(component: int, adj) -> bool:
    """Whether an SCC carries an edge: more than one state, or a
    self-loop on its single state."""
    if component & (component - 1):
        return True
    q = component.bit_length() - 1
    return bool((adj[q] >> q) & 1)


def live_mask(core: DenseBuchi) -> int:
    """States with non-empty language: those that can reach a cyclic SCC
    containing an accepting state (the paper's ``Q' = {q | L(B(q)) ≠ ∅}``,
    §4.4)."""
    n = core.n_states
    adj = adjacency(core)
    good = 0
    for component in scc_masks(adj):
        if component & core.accepting and is_cyclic_scc(component, adj):
            good |= component
    if not good:
        return 0
    pred = [0] * n
    for q in range(n):
        targets = adj[q]
        bit = 1 << q
        while targets:
            low = targets & -targets
            pred[low.bit_length() - 1] |= bit
            targets ^= low
    result = good
    frontier = good
    while frontier:
        new = 0
        while frontier:
            low = frontier & -frontier
            new |= pred[low.bit_length() - 1]
            frontier ^= low
        frontier = new & ~result
        result |= frontier
    return result


def subset_dfa(
    core: DenseBuchi, *, initial: int | None = None, restrict: int | None = None
) -> DenseDfa:
    """The subset-construction DFA from ``initial`` (default: the core's
    initial state as a singleton), with every post-set intersected with
    ``restrict`` when given.

    The empty subset — the dead state recognizing bad prefixes — is
    always a DFA state (reached naturally or appended), with self-loops
    on every symbol.  DFA state 0 is the initial subset.
    """
    k = core.n_symbols
    succ = core.succ
    init = (1 << core.initial) if initial is None else initial
    if restrict is not None:
        init &= restrict
    subsets = [init]
    index = {init: 0}
    rows: dict[int, tuple] = {}
    todo = [0]
    while todo:
        s = todo.pop()
        mask = subsets[s]
        row = []
        for a in range(k):
            table = succ[a]
            target = 0
            m = mask
            while m:
                low = m & -m
                target |= table[low.bit_length() - 1]
                m ^= low
            if restrict is not None:
                target &= restrict
            t = index.get(target)
            if t is None:
                t = len(subsets)
                index[target] = t
                subsets.append(target)
                todo.append(t)
            row.append(t)
        rows[s] = tuple(row)
    dead = index.get(0)
    if dead is None:
        dead = len(subsets)
        index[0] = dead
        subsets.append(0)
        rows[dead] = (dead,) * k
    return DenseDfa(
        n_symbols=k,
        subsets=tuple(subsets),
        trans=tuple(rows[s] for s in range(len(subsets))),
        initial=0,
        dead=dead,
    )


def _spread2(mask: int) -> int:
    """Bit ``i`` → bit ``2i`` (interleave room for a phase bit)."""
    out = 0
    while mask:
        low = mask & -mask
        out |= 1 << (2 * (low.bit_length() - 1))
        mask ^= low
    return out


def product_core(a: DenseBuchi, b: DenseBuchi) -> DenseBuchi:
    """The two-phase Büchi intersection product.

    State ``(p, q, phase)`` is index ``(p·n_b + q)·2 + phase``; *all*
    triples are enumerated (reachable or not), matching the classical
    construction.  Phase 0 waits for ``a`` to accept, phase 1 for ``b``;
    accepting = phase 1 with ``q`` accepting in ``b``.
    """
    if a.n_symbols != b.n_symbols:
        raise ValueError("product needs a shared alphabet")
    n_a, n_b, k = a.n_states, b.n_states, a.n_symbols
    width = 2 * n_b
    accepting = 0
    for p in range(n_a):
        base = p * width
        for q in iter_bits(b.accepting):
            accepting |= 1 << (base + 2 * q + 1)
    succ_out = []
    for sym in range(k):
        a_row = a.succ[sym]
        b_spread = tuple(_spread2(m) for m in b.succ[sym])
        rows = []
        for p in range(n_a):
            p_acc = (a.accepting >> p) & 1
            targets_a = a_row[p]
            for q in range(n_b):
                q_acc = (b.accepting >> q) & 1
                brow = b_spread[q]
                if not targets_a or not brow:
                    rows.append(0)
                    rows.append(0)
                    continue
                for phase in (0, 1):
                    next_phase = p_acc if phase == 0 else 1 - q_acc
                    shifted = brow << next_phase
                    target = 0
                    for pn in iter_bits(targets_a):
                        target |= shifted << (pn * width)
                    rows.append(target)
        succ_out.append(tuple(rows))
    return DenseBuchi(
        n_states=2 * n_a * n_b,
        n_symbols=k,
        initial=(a.initial * n_b + b.initial) * 2,
        succ=tuple(succ_out),
        accepting=accepting,
    )


def union_core(a: DenseBuchi, b: DenseBuchi) -> DenseBuchi:
    """Disjoint union behind a fresh initial state.

    Index 0 is the fresh (non-accepting) initial state simulating both
    original initial states; ``a``'s states sit at ``1..n_a``, ``b``'s
    at ``n_a+1..n_a+n_b``.
    """
    if a.n_symbols != b.n_symbols:
        raise ValueError("union needs a shared alphabet")
    shift_a, shift_b = 1, 1 + a.n_states
    succ_out = []
    for sym in range(a.n_symbols):
        a_row, b_row = a.succ[sym], b.succ[sym]
        rows = [(a_row[a.initial] << shift_a) | (b_row[b.initial] << shift_b)]
        rows.extend(m << shift_a for m in a_row)
        rows.extend(m << shift_b for m in b_row)
        succ_out.append(tuple(rows))
    return DenseBuchi(
        n_states=1 + a.n_states + b.n_states,
        n_symbols=a.n_symbols,
        initial=0,
        succ=tuple(succ_out),
        accepting=(a.accepting << shift_a) | (b.accepting << shift_b),
    )


def simulation_masks(core: DenseBuchi) -> tuple:
    """The largest direct-simulation relation, as per-state masks:
    bit ``q`` of ``result[p]`` means ``q`` simulates ``p``.

    Greatest-fixpoint iteration of the standard functional — the same
    unique relation the pairwise refinement computes, but each
    refinement round is a handful of mask intersections.
    """
    n = core.n_states
    full = (1 << n) - 1
    acc = core.accepting
    init = tuple(full if not (acc >> p) & 1 else acc for p in range(n))
    sim = list(init)
    changed = True
    while changed:
        changed = False
        can_match = []
        for a in range(core.n_symbols):
            row = core.succ[a]
            table = []
            for pn in range(n):
                t = sim[pn]
                m = 0
                for q in range(n):
                    if row[q] & t:
                        m |= 1 << q
                table.append(m)
            can_match.append(table)
        for p in range(n):
            mask = init[p]
            for a in range(core.n_symbols):
                for pn in iter_bits(core.succ[a][p]):
                    mask &= can_match[a][pn]
                    if not mask:
                        break
                if not mask:
                    break
            if mask != sim[p]:
                sim[p] = mask
                changed = True
    return tuple(sim)


def cycle_win_mask(core: DenseBuchi, cycle, nodes: int | None = None) -> int:
    """States from which reading ``cycle^ω`` can visit an accepting
    state infinitely often — the winners of the lasso with empty prefix.

    One relation composition along the cycle (``f[q]`` = states
    reachable from ``q`` reading the cycle once, ``facc[q]`` = the same
    but passing an accepting state), then Tarjan on the composed
    ``f``-graph: a state wins iff it ``f``-reaches an SCC holding an
    ``facc`` edge that stays inside it.  Any accepting product cycle
    crosses cycle-position 0 every ``len(cycle)`` steps, so the
    position-0 granularity loses nothing — and the result depends only
    on the cycle, so callers can cache it across prefixes.

    ``nodes`` restricts the analysis to a successor-closed state set
    (typically the reachable mask — product cores enumerate mostly
    unreachable triples); states outside it are reported losing.
    """
    n = core.n_states
    acc = core.accepting
    if nodes is None:
        nodes = (1 << n) - 1
    deterministic = True
    for row in core.succ:
        for m in row:
            if m & (m - 1):
                deterministic = False
                break
        if not deterministic:
            break
    if deterministic:
        return _cycle_win_det(core, cycle, nodes)
    if len(cycle) == 1:
        # the composed relation IS the symbol's own successor table;
        # an facc edge is one into (or out of) an accepting state
        row = core.succ[cycle[0]]
        adj = row
        facc = [
            row[q] if (acc >> q) & 1 else row[q] & acc for q in range(n)
        ]
    else:
        f = []
        facc = []
        for q in range(n):
            bit = 1 << q
            f.append(bit if nodes & bit else 0)
            facc.append(bit & acc if nodes & bit else 0)
        for a in cycle:
            row = core.succ[a]
            new_f = []
            new_facc = []
            for q in range(n):
                cur = f[q]
                if cur:
                    new_f.append(post(row, cur))
                    new_facc.append(post(row, facc[q] | (cur & acc)))
                else:
                    new_f.append(0)
                    new_facc.append(0)
            f = new_f
            facc = new_facc
        adj = tuple(f)
    if not nodes & ~acc:
        # safety core (every analyzed state accepting): any infinite run
        # wins, so the winners are the greatest fixpoint of "has a
        # successor that survives" — no SCC machinery needed
        win = nodes
        changed = True
        while changed:
            changed = False
            m = win
            while m:
                low = m & -m
                m ^= low
                if not adj[low.bit_length() - 1] & win:
                    win ^= low
                    changed = True
        return win
    good = 0
    for component in scc_masks(adj, nodes):
        for q in iter_bits(component):
            if facc[q] & component:
                good |= component
                break
    if not good:
        return 0
    pred = [0] * n
    for q in iter_bits(nodes):
        targets = adj[q]
        bit = 1 << q
        while targets:
            low = targets & -targets
            pred[low.bit_length() - 1] |= bit
            targets ^= low
    win = good
    frontier = good
    while frontier:
        new = 0
        while frontier:
            low = frontier & -frontier
            new |= pred[low.bit_length() - 1]
            frontier ^= low
        frontier = new & ~win
        win |= frontier
    return win


def _cycle_win_det(core: DenseBuchi, cycle, nodes: int) -> int:
    """:func:`cycle_win_mask` on a deterministic core: each state has one
    run, so the composed graph is a partial function — follow each
    trajectory to its loop (or death) and check the loop for an
    accepting visit, no SCC machinery needed."""
    n = core.n_states
    acc = core.accepting
    succ = core.succ
    nxt = [-1] * n
    accv = [False] * n
    remaining = nodes
    while remaining:
        low = remaining & -remaining
        remaining ^= low
        q = low.bit_length() - 1
        cur = q
        seen_acc = False
        for a in cycle:
            if (acc >> cur) & 1:
                seen_acc = True
            m = succ[a][cur]
            if not m:
                cur = -1
                break
            cur = m.bit_length() - 1
        if cur >= 0:
            nxt[q] = cur
            accv[q] = seen_acc
    # 0 = unknown, 1 = wins, 2 = loses, 3 = on the current path
    status = [0] * n
    win = 0
    remaining = nodes
    while remaining:
        low = remaining & -remaining
        remaining ^= low
        q = low.bit_length() - 1
        if status[q]:
            continue
        path = []
        verdict = 2
        while True:
            if q < 0:
                break
            st = status[q]
            if st == 1 or st == 2:
                verdict = st
                break
            if st == 3:
                # closed a fresh loop: its verdict is its own acceptance
                i = path.index(q)
                good = False
                for p in path[i:]:
                    if accv[p]:
                        good = True
                        break
                verdict = 1 if good else 2
                break
            status[q] = 3
            path.append(q)
            q = nxt[q]
        for p in path:
            status[p] = verdict
        if verdict == 1:
            for p in path:
                win |= 1 << p
    return win


def lasso_accepts(core: DenseBuchi, prefix, cycle) -> bool:
    """Whether ``u · v^ω ∈ L(B)`` for symbol-index sequences ``u``/``v``:
    subset-step through the prefix, then intersect with the cycle's
    winning-state mask (computed on the reachable part only)."""
    current = 1 << core.initial
    for a in prefix:
        current = post(core.succ[a], current)
        if not current:
            return False
    return bool(current & cycle_win_mask(core, cycle, reachable_mask(core)))


def lcl_member(core: DenseBuchi, live: int, prefix, cycle) -> bool:
    """Membership of ``u · v^ω`` in ``lcl(L(B))``: every prefix of the
    word must keep a live state in the subset run.  The subset sequence
    along a lasso is eventually periodic, so the loop stops when the
    (cycle-position, subset-mask) pair repeats."""
    current = 1 << core.initial
    if not current & live:
        return False
    for a in prefix:
        current = post(core.succ[a], current)
        if not current & live:
            return False
    length = len(cycle)
    seen: set = set()
    position = 0
    while (position, current) not in seen:
        seen.add((position, current))
        current = post(core.succ[cycle[position]], current)
        position = (position + 1) % length
        if not current & live:
            return False
    return True
