"""The linear-time closure ``lcl`` on semantically represented languages.

The paper defines (Section 2.2)::

    lcl.T = { t ∈ Σ^ω | ∀x ⊑ t : ∃t' ∈ T : x ⊑ t' }

i.e. ``t`` is in the closure iff every finite prefix of ``t`` extends to a
member of ``T``.  For languages given only by a membership predicate this
is undecidable, so this module offers the *bounded* semantic version: the
caller supplies a prefix-extension oracle and a prefix-length bound, and
membership in ``lcl`` is checked for all prefixes up to the bound.

For ω-regular languages the bound can be made exact (the subset-automaton
run over a lasso is eventually periodic); that exact computation lives in
:func:`repro.buchi.closure.semantic_lcl_member`.  The bounded version here
is the framework-independent ground truth the automaton construction is
validated against.
"""

from __future__ import annotations

from collections.abc import Callable, Iterable, Sequence

from .language import OmegaLanguage
from .word import LassoWord, Symbol

PrefixOracle = Callable[[Sequence[Symbol]], bool]
"""``oracle(x)`` answers: does the finite word ``x`` extend to a member?"""


def oracle_from_members(members: Iterable[LassoWord]) -> PrefixOracle:
    """A prefix-extension oracle for an explicitly listed (finite) set of
    lasso members: ``x`` extends iff it is a prefix of some member."""
    members = list(members)

    def extends(x: Sequence[Symbol]) -> bool:
        x = tuple(x)
        return any(m.finite_prefix(len(x)) == x for m in members)

    return extends


def lcl_member_bounded(
    word: LassoWord, extends: PrefixOracle, prefix_bound: int
) -> bool:
    """Bounded ``lcl`` membership: every prefix of ``word`` of length
    ``<= prefix_bound`` extends to a member.

    Sound for "no" answers at any bound; "yes" answers are exact once the
    bound covers the oracle's periodic behaviour on the word (for a Büchi
    oracle, ``|u| + |v| * 2^|Q|`` always suffices; far less in practice).
    """
    return all(extends(p) for p in word.prefixes(prefix_bound))


def bounded_lcl(
    language: OmegaLanguage, extends: PrefixOracle, prefix_bound: int
) -> OmegaLanguage:
    """The language ``lcl.L`` as a membership object, using the bounded
    semantic test."""
    return OmegaLanguage(
        language.alphabet,
        lambda w: lcl_member_bounded(w, extends, prefix_bound),
        name=f"lcl.{language.name}",
    )


def is_safety_bounded(
    language: OmegaLanguage,
    extends: PrefixOracle,
    prefix_bound: int,
    max_prefix: int = 2,
    max_cycle: int = 3,
) -> bool:
    """Bounded check that ``L = lcl.L`` (safety) on all small lassos."""
    closed = bounded_lcl(language, extends, prefix_bound)
    return language.agrees_with(closed, max_prefix=max_prefix, max_cycle=max_cycle)


def is_liveness_bounded(
    language: OmegaLanguage,
    extends: PrefixOracle,
    prefix_bound: int,
    max_prefix: int = 2,
    max_cycle: int = 3,
) -> bool:
    """Bounded check that ``lcl.L = Σ^ω`` (liveness): every small lasso is
    in the closure — equivalently here, every short finite word extends to
    a member."""
    closed = bounded_lcl(language, extends, prefix_bound)
    from .word import all_lassos

    return all(
        w in closed for w in all_lassos(language.alphabet, max_prefix, max_cycle)
    )


def decompose_semantically(
    language: OmegaLanguage, extends: PrefixOracle, prefix_bound: int
) -> tuple[OmegaLanguage, OmegaLanguage]:
    """Theorem 1's decomposition ``P = lcl.P ∩ (P ∪ ¬lcl.P)`` as language
    objects — the Boolean-algebra instance of Theorem 2 with ``cl = lcl``.

    Returns ``(safety_part, liveness_part)``.
    """
    closed = bounded_lcl(language, extends, prefix_bound)
    safety = OmegaLanguage(language.alphabet, closed._contains, name=f"lcl.{language.name}")
    liveness = language | ~closed
    liveness.name = f"({language.name} ∪ ¬lcl.{language.name})"
    return safety, liveness
