"""ω-languages with decidable membership on lasso words.

Section 2's lattice is ``P(Σ^ω)``.  The representable fragment this
reproduction computes with is the Boolean algebra of languages with a
*membership oracle on lasso words* — which includes every ω-regular
language (via :mod:`repro.buchi`), every LTL-definable language (via
:mod:`repro.ltl`), and hand-written predicates like Rem's examples.

Language objects form a Boolean algebra under ``&``, ``|`` and ``~``
(meet, join, complement in the paper's sense), so the linear-time
instance of the lattice framework can be exercised semantically.
"""

from __future__ import annotations

from collections.abc import Callable, Iterable

from .word import LassoWord, Symbol, all_lassos


class OmegaLanguage:
    """A set of infinite words over a fixed finite alphabet, represented by
    a membership test on ultimately periodic words."""

    def __init__(
        self,
        alphabet: Iterable[Symbol],
        contains: Callable[[LassoWord], bool],
        name: str = "L",
    ):
        self.alphabet = frozenset(alphabet)
        if not self.alphabet:
            raise ValueError("alphabet must be non-empty")
        self._contains = contains
        self.name = name

    def __contains__(self, word: LassoWord) -> bool:
        if not word.symbols() <= self.alphabet:
            raise ValueError(
                f"word uses symbols {word.symbols() - self.alphabet!r} "
                f"outside the alphabet"
            )
        return bool(self._contains(word))

    # -- Boolean algebra (the lattice operations of Section 3) ---------------

    def __and__(self, other: "OmegaLanguage") -> "OmegaLanguage":
        self._check_same_alphabet(other)
        return OmegaLanguage(
            self.alphabet,
            lambda w: w in self and w in other,
            name=f"({self.name} ∩ {other.name})",
        )

    def __or__(self, other: "OmegaLanguage") -> "OmegaLanguage":
        self._check_same_alphabet(other)
        return OmegaLanguage(
            self.alphabet,
            lambda w: w in self or w in other,
            name=f"({self.name} ∪ {other.name})",
        )

    def __invert__(self) -> "OmegaLanguage":
        return OmegaLanguage(
            self.alphabet, lambda w: w not in self, name=f"¬{self.name}"
        )

    def __sub__(self, other: "OmegaLanguage") -> "OmegaLanguage":
        return self & ~other

    def _check_same_alphabet(self, other: "OmegaLanguage") -> None:
        if self.alphabet != other.alphabet:
            raise ValueError(
                f"alphabet mismatch: {sorted(map(str, self.alphabet))} vs "
                f"{sorted(map(str, other.alphabet))}"
            )

    # -- bounded extensional comparison -----------------------------------------

    def sample(self, max_prefix: int = 2, max_cycle: int = 3) -> list[LassoWord]:
        """The members among all lassos of bounded spelling size."""
        return [w for w in all_lassos(self.alphabet, max_prefix, max_cycle) if w in self]

    def agrees_with(
        self, other: "OmegaLanguage", max_prefix: int = 2, max_cycle: int = 3
    ) -> bool:
        """Extensional equality on all bounded lassos.

        For ω-regular languages, agreement on lassos with
        ``|u| + |v| <= |Q_1| · |Q_2| + 1``-ish bounds implies genuine
        equality; callers with automata in hand should prefer the exact
        check in :mod:`repro.buchi.inclusion`.
        """
        self._check_same_alphabet(other)
        return all(
            (w in self) == (w in other)
            for w in all_lassos(self.alphabet, max_prefix, max_cycle)
        )

    def __repr__(self) -> str:
        return f"OmegaLanguage({self.name!r}, Σ={sorted(map(str, self.alphabet))})"


def empty_language(alphabet: Iterable[Symbol]) -> OmegaLanguage:
    """``∅`` — the lattice's 0."""
    return OmegaLanguage(alphabet, lambda w: False, name="∅")


def universal_language(alphabet: Iterable[Symbol]) -> OmegaLanguage:
    """``Σ^ω`` — the lattice's 1."""
    return OmegaLanguage(alphabet, lambda w: True, name="Σ^ω")


def single_word_language(alphabet: Iterable[Symbol], word: LassoWord) -> OmegaLanguage:
    """``{word}`` — an atom of the lattice (restricted to lassos)."""
    return OmegaLanguage(alphabet, lambda w: w == word, name=f"{{{word!r}}}")
