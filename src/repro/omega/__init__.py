"""Ultimately-periodic ω-words and semantically represented ω-languages
(the linear-time framework of Section 2)."""

from .closure import (
    bounded_lcl,
    decompose_semantically,
    is_liveness_bounded,
    is_safety_bounded,
    lcl_member_bounded,
    oracle_from_members,
)
from .language import (
    OmegaLanguage,
    empty_language,
    single_word_language,
    universal_language,
)
from .word import LassoWord, all_lassos

__all__ = [
    "LassoWord",
    "all_lassos",
    "OmegaLanguage",
    "empty_language",
    "universal_language",
    "single_word_language",
    "lcl_member_bounded",
    "bounded_lcl",
    "oracle_from_members",
    "is_safety_bounded",
    "is_liveness_bounded",
    "decompose_semantically",
]
