"""Ultimately-periodic infinite words (lassos).

The linear-time framework of Section 2 quantifies over ``Σ^ω`` — all
infinite words.  Arbitrary infinite words are not representable, but the
*ultimately periodic* ones ``u · v^ω`` are, and they are complete for every
question this reproduction asks: two ω-regular languages are equal iff
they agree on ultimately periodic words, and every non-empty Büchi
automaton accepts one (the emptiness witness is a lasso).

:class:`LassoWord` stores a canonical form, so structurally different
spellings of the same word (``a·(ba)^ω`` vs ``ab·(ab)^ω``) compare equal.
"""

from __future__ import annotations

from collections.abc import Hashable, Iterable, Iterator, Sequence

Symbol = Hashable


class LassoWord:
    """The infinite word ``prefix · cycle^ω`` in canonical form.

    Canonicalization: the cycle is reduced to its primitive (shortest)
    period, and trailing prefix symbols that merely unroll the cycle are
    folded back into it, making equality and hashing semantic.
    """

    __slots__ = ("_prefix", "_cycle")

    def __init__(self, prefix: Iterable[Symbol], cycle: Iterable[Symbol]):
        prefix = tuple(prefix)
        cycle = tuple(cycle)
        if not cycle:
            raise ValueError("the cycle of a lasso word must be non-empty")
        cycle = _primitive_root(cycle)
        # Fold the prefix: while its last symbol equals the cycle's last
        # symbol, rotate the cycle right and shorten the prefix.  This makes
        # e.g.  a·(ba)^ω  canonicalize to  (ab)^ω.
        prefix_list = list(prefix)
        cycle_list = list(cycle)
        while prefix_list and prefix_list[-1] == cycle_list[-1]:
            prefix_list.pop()
            cycle_list.insert(0, cycle_list.pop())
        self._prefix = tuple(prefix_list)
        self._cycle = tuple(cycle_list)

    # -- structure ------------------------------------------------------------

    @property
    def prefix(self) -> tuple[Symbol, ...]:
        """The canonical transient part ``u``."""
        return self._prefix

    @property
    def cycle(self) -> tuple[Symbol, ...]:
        """The canonical periodic part ``v`` (primitive)."""
        return self._cycle

    @classmethod
    def periodic(cls, cycle: Iterable[Symbol]) -> "LassoWord":
        """The purely periodic word ``v^ω``."""
        return cls((), cycle)

    @classmethod
    def constant(cls, symbol: Symbol) -> "LassoWord":
        """The word ``s^ω``."""
        return cls((), (symbol,))

    # -- access ------------------------------------------------------------------

    def __getitem__(self, i: int) -> Symbol:
        """The symbol at position ``i`` (0-based)."""
        if i < 0:
            raise IndexError("infinite words have no negative positions")
        if i < len(self._prefix):
            return self._prefix[i]
        return self._cycle[(i - len(self._prefix)) % len(self._cycle)]

    def symbols(self) -> frozenset:
        """The set of symbols occurring in the word."""
        return frozenset(self._prefix) | frozenset(self._cycle)

    def recurring_symbols(self) -> frozenset:
        """The symbols occurring infinitely often (exactly the cycle's)."""
        return frozenset(self._cycle)

    def finite_prefix(self, n: int) -> tuple[Symbol, ...]:
        """The first ``n`` symbols."""
        return tuple(self[i] for i in range(n))

    def prefixes(self, up_to: int) -> Iterator[tuple[Symbol, ...]]:
        """All finite prefixes of length ``0..up_to`` (inclusive)."""
        for n in range(up_to + 1):
            yield self.finite_prefix(n)

    def suffix(self, n: int) -> "LassoWord":
        """The word with the first ``n`` symbols dropped — still a lasso."""
        if n < 0:
            raise ValueError("cannot drop a negative number of symbols")
        if n <= len(self._prefix):
            return LassoWord(self._prefix[n:], self._cycle)
        k = (n - len(self._prefix)) % len(self._cycle)
        return LassoWord((), self._cycle[k:] + self._cycle[:k])

    def prepend(self, symbols: Sequence[Symbol]) -> "LassoWord":
        """The word ``symbols · self``."""
        return LassoWord(tuple(symbols) + self._prefix, self._cycle)

    @property
    def spine_length(self) -> int:
        """``|prefix| + |cycle|`` — every position of the word is
        equivalent, for any finite-state observer, to one of this many."""
        return len(self._prefix) + len(self._cycle)

    def positions(self) -> range:
        """The canonical representatives ``0 .. spine_length - 1``; position
        ``i >= len(prefix)`` represents all positions congruent to it."""
        return range(self.spine_length)

    def unrolled(self, copies: int) -> "LassoWord":
        """The same word written with the cycle unrolled ``copies`` extra
        times into the prefix.  Canonicalization maps it back — used by
        tests to confirm semantic equality."""
        if copies < 0:
            raise ValueError("copies must be non-negative")
        return LassoWord(self._prefix + self._cycle * copies, self._cycle)

    # -- dunder ----------------------------------------------------------------

    def __eq__(self, other) -> bool:
        if not isinstance(other, LassoWord):
            return NotImplemented
        return self._prefix == other._prefix and self._cycle == other._cycle

    def __hash__(self):
        return hash((self._prefix, self._cycle))

    def __repr__(self) -> str:
        u = "".join(map(str, self._prefix))
        v = "".join(map(str, self._cycle))
        return f"LassoWord({u!r}·({v!r})^ω)"


def _primitive_root(cycle: tuple) -> tuple:
    """The shortest ``w`` with ``cycle = w^k`` (failure-function method)."""
    n = len(cycle)
    fail = [0] * n
    k = 0
    for i in range(1, n):
        while k > 0 and cycle[i] != cycle[k]:
            k = fail[k - 1]
        if cycle[i] == cycle[k]:
            k += 1
        fail[i] = k
    period = n - fail[-1] if n else 0
    if period and n % period == 0:
        return cycle[:period]
    return cycle


def all_lassos(
    alphabet: Iterable[Symbol], max_prefix: int, max_cycle: int
) -> Iterator[LassoWord]:
    """Every lasso word with bounded spelling sizes (deduplicated after
    canonicalization).  Exhaustive ground truth for small-model tests."""
    alphabet = tuple(alphabet)
    seen: set[LassoWord] = set()
    for plen in range(max_prefix + 1):
        for clen in range(1, max_cycle + 1):
            for prefix in _tuples(alphabet, plen):
                for cycle in _tuples(alphabet, clen):
                    w = LassoWord(prefix, cycle)
                    if w not in seen:
                        seen.add(w)
                        yield w


def _tuples(alphabet: tuple, length: int) -> Iterator[tuple]:
    if length == 0:
        yield ()
        return
    for shorter in _tuples(alphabet, length - 1):
        for s in alphabet:
            yield shorter + (s,)
