"""The versioned wire schema: requests and replies as length-prefixed
JSON frames.

The sharded tier (:mod:`repro.service.sharded`) moves requests between
processes, so the in-process request/reply objects need an explicit,
*versioned* serialization.  Every frame is a JSON object carrying
``"v": WIRE_VERSION``; a peer that receives a version it does not speak
rejects the frame with :class:`WireError` instead of guessing — schema
evolution is an explicit version bump plus a documented migration, never
a silent reinterpretation (DESIGN.md §13 states the rules).

Injectivity follows the :func:`repro.canonical.stable_token` discipline,
transplanted to JSON: every payload is a *tagged* object (``{"t": ...}``
unions, never bare strings concatenated with separators) and every frame
is length-prefixed (a 4-byte big-endian size, netstring-style), so no
payload can forge another payload's encoding and no frame boundary can
be confused by content bytes.  Two distinct requests never share an
encoding; two distinct frames never share a byte stream.

Subject encodings are a tagged union, most-portable first:

* ``formula`` — LTL formulas serialize to their parseable text
  (``str(formula)`` round-trips through :func:`repro.ltl.parser.parse`);
* ``buchi`` — Büchi automata whose states and symbols are all
  ``str``/``int`` serialize structurally (alphabet, states, initial,
  accepting, full transition relation);
* ``pickle`` — everything else (lattice elements and closures, Rabin
  tree automata, sample trees, witnesses, reply values) rides as a
  base64 pickle.  This is the same trust model as
  :mod:`multiprocessing`: frames are only ever exchanged between a
  router and worker processes *it spawned itself from the same
  codebase* — the wire is an internal process boundary, not a public
  network protocol, and must never be fed frames from an untrusted
  peer.
"""

from __future__ import annotations

import base64
import json
import pickle
import struct

from repro.buchi.automaton import BuchiAutomaton
from repro.ltl.parser import parse as _parse_formula
from repro.ltl.syntax import Formula
from types import MappingProxyType

from .requests import (
    CheckRequest,
    ClassifyRequest,
    DecomposeRequest,
    MonitorRequest,
    Request,
    ServiceClosed,
    ServiceError,
    ServiceOverloaded,
    ServiceResult,
    ServiceTimeout,
)

__all__ = [
    "MAX_FRAME_BYTES",
    "WIRE_VERSION",
    "WireError",
    "decode_error",
    "decode_request",
    "decode_result",
    "encode_error",
    "encode_request",
    "encode_result",
    "pack_frame",
    "read_frame",
]

#: The one schema version this codebase speaks.  Bump on any change to
#: the frame or payload shapes and keep a decoder for the old version
#: for one release (DESIGN.md §13's versioning rules).
WIRE_VERSION = 1

#: Frame size guard: a corrupted length prefix must not allocate
#: gigabytes before the JSON parser ever sees a byte.
MAX_FRAME_BYTES = 64 * 1024 * 1024

_HEADER = struct.Struct(">I")


class WireError(ServiceError):
    """A frame or payload could not be encoded or decoded."""


# -- tagged atoms ------------------------------------------------------------


def _pickled(obj) -> dict:
    try:
        blob = pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL)
    except Exception as exc:
        raise WireError(
            f"cannot serialize {type(obj).__name__!r} for the wire: {exc}"
        ) from exc
    return {"t": "pickle", "b64": base64.b64encode(blob).decode("ascii")}


def _unpickled(payload: dict):
    try:
        return pickle.loads(base64.b64decode(payload["b64"]))
    except Exception as exc:
        raise WireError(f"cannot deserialize pickle payload: {exc}") from exc


def _encode_atom(value) -> list | None:
    """``str``/``int`` atoms as tagged pairs; ``None`` = not encodable."""
    if isinstance(value, bool):  # bool is an int; keep the tag honest
        return None
    if isinstance(value, str):
        return ["s", value]
    if isinstance(value, int):
        return ["i", value]
    return None


def _decode_atom(pair):
    if not (isinstance(pair, list) and len(pair) == 2 and pair[0] in ("s", "i")):
        raise WireError(f"malformed atom {pair!r}")
    return pair[1] if pair[0] == "s" else int(pair[1])


def _atom_sort_key(pair: list) -> str:
    return json.dumps(pair, separators=(",", ":"))


# -- subjects ----------------------------------------------------------------


def _encode_buchi(automaton: BuchiAutomaton) -> dict | None:
    """Structural encoding, or ``None`` when states/symbols are not
    plain ``str``/``int`` atoms (the pickle fallback takes over)."""
    atoms = {}
    for value in list(automaton.states) + list(automaton.alphabet):
        encoded = _encode_atom(value)
        if encoded is None:
            return None
        atoms[value] = encoded
    transitions = [
        [atoms[q], atoms[a], sorted((atoms[t] for t in targets),
                                    key=_atom_sort_key)]
        for (q, a), targets in automaton.transitions.items()
    ]
    transitions.sort(key=lambda row: (_atom_sort_key(row[0]),
                                      _atom_sort_key(row[1])))
    return {
        "t": "buchi",
        "name": automaton.name,
        "alphabet": sorted(
            (atoms[a] for a in automaton.alphabet), key=_atom_sort_key
        ),
        "states": sorted(
            (atoms[q] for q in automaton.states), key=_atom_sort_key
        ),
        "initial": atoms[automaton.initial],
        "accepting": sorted(
            (atoms[q] for q in automaton.accepting), key=_atom_sort_key
        ),
        "transitions": transitions,
    }


def _decode_buchi(payload: dict) -> BuchiAutomaton:
    try:
        return BuchiAutomaton.build(
            alphabet=[_decode_atom(a) for a in payload["alphabet"]],
            states=[_decode_atom(q) for q in payload["states"]],
            initial=_decode_atom(payload["initial"]),
            transitions={
                (_decode_atom(q), _decode_atom(a)):
                    [_decode_atom(t) for t in targets]
                for q, a, targets in payload["transitions"]
            },
            accepting=[_decode_atom(q) for q in payload["accepting"]],
            name=payload.get("name", "B"),
        )
    except WireError:
        raise
    except Exception as exc:
        raise WireError(f"malformed buchi payload: {exc}") from exc


def _encode_subject(subject) -> dict:
    if isinstance(subject, Formula):
        return {"t": "formula", "text": str(subject)}
    if isinstance(subject, BuchiAutomaton):
        structural = _encode_buchi(subject)
        if structural is not None:
            return structural
    return _pickled(subject)


def _decode_subject(payload: dict):
    tag = payload.get("t") if isinstance(payload, dict) else None
    if tag == "formula":
        try:
            return _parse_formula(payload["text"])
        except Exception as exc:
            raise WireError(
                f"cannot parse formula payload {payload.get('text')!r}: {exc}"
            ) from exc
    if tag == "buchi":
        return _decode_buchi(payload)
    if tag == "pickle":
        return _unpickled(payload)
    raise WireError(f"unknown subject tag {tag!r}")


# -- requests ----------------------------------------------------------------

#: Adding a union arm (the ``monitor`` kind, PR 10) is *not* a version
#: bump: old peers reject unknown kinds with :class:`WireError` either
#: way, and every previously-valid payload decodes unchanged
#: (DESIGN.md §13's additive-evolution rule).
_REQUEST_OF = MappingProxyType({
    "decompose": DecomposeRequest,
    "classify": ClassifyRequest,
    "check": CheckRequest,
    "monitor": MonitorRequest,
})


def _require_version(payload) -> dict:
    if not isinstance(payload, dict):
        raise WireError(f"wire payload must be an object, got {type(payload).__name__}")
    version = payload.get("v")
    if version != WIRE_VERSION:
        raise WireError(
            f"unsupported wire version {version!r} (this peer speaks "
            f"{WIRE_VERSION})"
        )
    return payload


def encode_request(request: Request) -> dict:
    """One request as a versioned, injectively-tagged JSON object.

    Subclasses of the three canonical request classes flatten to their
    canonical kind: the wire carries *what to analyze*, not the caller's
    type hierarchy."""
    if not isinstance(request, Request):
        raise WireError(
            f"encode_request() takes a Request, not {type(request).__name__!r}"
        )
    kind = request.kind
    if kind not in _REQUEST_OF:
        raise WireError(f"unknown request kind {kind!r}")
    payload: dict = {
        "v": WIRE_VERSION,
        "kind": kind,
        "subject": _encode_subject(request.subject),
    }
    if request.alphabet is not None:
        symbols = list(request.alphabet)
        if all(isinstance(s, str) for s in symbols):
            payload["alphabet"] = {"t": "symbols", "symbols": sorted(symbols)}
        else:
            payload["alphabet"] = _pickled(frozenset(symbols))
    if request.closure is not None:
        payload["closure"] = _pickled(request.closure)
    if isinstance(request, DecomposeRequest) and request.certify:
        payload["certify"] = True
    if isinstance(request, ClassifyRequest) and request.samples:
        payload["samples"] = _pickled(tuple(request.samples))
    if isinstance(request, CheckRequest) and request.witness is not None:
        payload["witness"] = _pickled(request.witness)
    if isinstance(request, MonitorRequest):
        if request.events:
            payload["events"] = _encode_trace(tuple(request.events))
        if request.horizon is not None:
            payload["horizon"] = int(request.horizon)
    return payload


def _decode_alphabet(payload: dict):
    if payload.get("t") == "symbols":
        return frozenset(payload["symbols"])
    if payload.get("t") == "pickle":
        return _unpickled(payload)
    raise WireError(f"unknown alphabet tag {payload.get('t')!r}")


def _encode_trace(events: tuple) -> dict:
    """An *ordered* event sequence (unlike alphabets, traces must not be
    sorted or deduplicated): tagged atoms when every event is one, else
    the pickle fallback."""
    atoms = [_encode_atom(e) for e in events]
    if all(encoded is not None for encoded in atoms):
        return {"t": "trace", "events": atoms}
    return _pickled(events)


def _decode_trace(payload: dict) -> tuple:
    if payload.get("t") == "trace":
        return tuple(_decode_atom(e) for e in payload["events"])
    if payload.get("t") == "pickle":
        return tuple(_unpickled(payload))
    raise WireError(f"unknown trace tag {payload.get('t')!r}")


def decode_request(payload: dict) -> Request:
    """The inverse of :func:`encode_request` (canonical classes only)."""
    _require_version(payload)
    kind = payload.get("kind")
    request_type = _REQUEST_OF.get(kind)
    if request_type is None:
        raise WireError(f"unknown request kind {kind!r}")
    if "subject" not in payload:
        raise WireError("request payload has no subject")
    kwargs: dict = {"subject": _decode_subject(payload["subject"])}
    if "alphabet" in payload:
        kwargs["alphabet"] = _decode_alphabet(payload["alphabet"])
    if "closure" in payload:
        kwargs["closure"] = _unpickled(payload["closure"])
    if request_type is DecomposeRequest and payload.get("certify"):
        kwargs["certify"] = True
    if request_type is ClassifyRequest and "samples" in payload:
        kwargs["samples"] = tuple(_unpickled(payload["samples"]))
    if request_type is CheckRequest and "witness" in payload:
        kwargs["witness"] = _unpickled(payload["witness"])
    if request_type is MonitorRequest:
        if "events" in payload:
            kwargs["events"] = _decode_trace(payload["events"])
        if "horizon" in payload:
            kwargs["horizon"] = int(payload["horizon"])
    return request_type(**kwargs)


# -- results and errors ------------------------------------------------------


def _encode_value(value) -> dict:
    if value is None or isinstance(value, (bool, int, float, str)):
        return {"t": "json", "v": value}
    return _pickled(value)


def _decode_value(payload: dict):
    tag = payload.get("t") if isinstance(payload, dict) else None
    if tag == "json":
        return payload.get("v")
    if tag == "pickle":
        return _unpickled(payload)
    raise WireError(f"unknown value tag {tag!r}")


def encode_result(result: ServiceResult) -> dict:
    """A reply's serving metadata plus its value.  The request itself is
    *not* echoed — the requesting side re-attaches its own object, so an
    in-process caller keeps identity (``reply.request is request``)."""
    return {
        "v": WIRE_VERSION,
        "value": _encode_value(result.value),
        "cached": bool(result.cached),
        "key": result.key,
        "elapsed_seconds": result.elapsed_seconds,
    }


def decode_result(payload: dict, request: Request) -> ServiceResult:
    _require_version(payload)
    return ServiceResult(
        request=request,
        value=_decode_value(payload["value"]),
        cached=bool(payload["cached"]),
        key=payload["key"],
        elapsed_seconds=float(payload["elapsed_seconds"]),
    )


#: Failure modes that cross the wire as themselves.  Anything else
#: arrives as a :class:`ServiceError` carrying the original type name —
#: a worker's stack never replays in the router.
_ERRORS_BY_NAME = MappingProxyType({
    "ServiceError": ServiceError,
    "ServiceOverloaded": ServiceOverloaded,
    "ServiceTimeout": ServiceTimeout,
    "ServiceClosed": ServiceClosed,
    "WireError": WireError,
    "TypeError": TypeError,
    "ValueError": ValueError,
    "KeyError": KeyError,
})


def encode_error(exc: BaseException) -> dict:
    return {"type": type(exc).__name__, "message": str(exc)}


def decode_error(payload: dict) -> BaseException:
    name = payload.get("type", "ServiceError")
    message = payload.get("message", "")
    exc_type = _ERRORS_BY_NAME.get(name)
    if exc_type is None:
        return ServiceError(f"{name}: {message}")
    return exc_type(message)


# -- frames ------------------------------------------------------------------


def pack_frame(payload: dict) -> bytes:
    """``len(body)`` big-endian + the canonical-JSON body."""
    body = json.dumps(
        payload, separators=(",", ":"), sort_keys=True
    ).encode("utf-8")
    if len(body) > MAX_FRAME_BYTES:
        raise WireError(f"frame of {len(body)} bytes exceeds {MAX_FRAME_BYTES}")
    return _HEADER.pack(len(body)) + body


def _read_exact(stream, count: int) -> bytes | None:
    """Read exactly ``count`` bytes from a (possibly pipe-backed) binary
    stream; ``None`` on clean EOF at a frame boundary."""
    chunks = []
    remaining = count
    while remaining:
        chunk = stream.read(remaining)
        if not chunk:
            if chunks:
                raise WireError(
                    f"stream closed mid-frame ({count - remaining} of "
                    f"{count} bytes)"
                )
            return None
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def read_frame(stream) -> dict | None:
    """One frame from a blocking binary stream; ``None`` on clean EOF."""
    header = _read_exact(stream, _HEADER.size)
    if header is None:
        return None
    (length,) = _HEADER.unpack(header)
    if length > MAX_FRAME_BYTES:
        raise WireError(f"frame length {length} exceeds {MAX_FRAME_BYTES}")
    body = _read_exact(stream, length)
    if body is None:
        raise WireError("stream closed between frame header and body")
    try:
        payload = json.loads(body.decode("utf-8"))
    except ValueError as exc:
        raise WireError(f"malformed frame body: {exc}") from exc
    if not isinstance(payload, dict):
        raise WireError("frame body must be a JSON object")
    return payload
