"""The concurrent, cache-backed analysis server.

Layering (each layer only knows the one below):

* :mod:`repro.service.requests` — the typed request/reply vocabulary
  (:class:`DecomposeRequest`, :class:`ClassifyRequest`,
  :class:`CheckRequest`, :class:`ServiceResult`), the failure modes
  (:class:`ServiceOverloaded`, :class:`ServiceTimeout`,
  :class:`ServiceClosed`), and the versioned wire form
  (``Request.to_wire()`` / ``Request.from_wire()``);
* :mod:`repro.service.handlers` — requests → canonical cache keys
  (via the ``canonical_key()`` methods and :mod:`repro.canonical`) and
  compute closures over :func:`repro.analysis.decompose`;
* :mod:`repro.service.cache` — the thread-safe memo LRU
  (:class:`ResultCache`);
* :mod:`repro.service.server` — admission control, worker-pool
  dispatch, deadlines, metrics and spans (:class:`AnalysisService`,
  :class:`PendingReply`);
* :mod:`repro.service.wire` — the length-prefixed JSON frame protocol
  the sharded tier speaks;
* :mod:`repro.service.sharded` — N worker processes behind a
  consistent-hash router (:class:`ShardedService`);
* :mod:`repro.service.client` — the transport-agnostic facade most
  callers should use (:class:`Client` over :class:`InProcessTransport`
  or :class:`ShardedTransport`);
* :mod:`repro.service.warmup` — workload-file cache pre-population
  (:func:`load_workload` / :func:`replay_workload`) and seeded
  automaton workloads (:func:`random_workload`).

Quick start::

    from repro.service import Client

    with Client.in_process(workers=4) as client:
        reply = client.decompose(automaton)
        reply.safety, reply.liveness, reply.cached

    with Client.sharded(shards=4) as client:   # same verbs, scaled out
        reply = client.decompose(automaton)

Embedding :class:`AnalysisService` directly remains supported — the
client facade is a veneer, not a wall.
"""

from .cache import ResultCache, ResultCacheInfo, ResultCacheStats
from .client import (
    CheckReply,
    ClassifyReply,
    Client,
    DecomposeReply,
    InProcessTransport,
    MonitorReply,
    Reply,
    ShardedTransport,
    Transport,
)
from .requests import (
    CheckRequest,
    ClassifyRequest,
    DecomposeRequest,
    MonitorRequest,
    Request,
    ServiceClosed,
    ServiceError,
    ServiceOverloaded,
    ServiceResult,
    ServiceTimeout,
)
from .server import AnalysisService, PendingReply
from .sharded import ShardedService
from .warmup import (
    WarmupError,
    load_workload,
    load_workload_data,
    parse_workload,
    random_workload,
    replay_workload,
)
from .wire import WIRE_VERSION, WireError

__all__ = [
    "Request",
    "DecomposeRequest",
    "ClassifyRequest",
    "CheckRequest",
    "MonitorRequest",
    "ServiceResult",
    "ServiceError",
    "ServiceOverloaded",
    "ServiceTimeout",
    "ServiceClosed",
    "ResultCache",
    "ResultCacheInfo",
    "ResultCacheStats",
    "AnalysisService",
    "PendingReply",
    "Client",
    "Reply",
    "DecomposeReply",
    "ClassifyReply",
    "CheckReply",
    "MonitorReply",
    "Transport",
    "InProcessTransport",
    "ShardedTransport",
    "ShardedService",
    "WireError",
    "WIRE_VERSION",
    "load_workload",
    "load_workload_data",
    "parse_workload",
    "replay_workload",
    "random_workload",
    "WarmupError",
]
