"""The concurrent, cache-backed analysis server.

Layering (each layer only knows the one below):

* :mod:`repro.service.requests` — the typed request/reply vocabulary
  (:class:`DecomposeRequest`, :class:`ClassifyRequest`,
  :class:`CheckRequest`, :class:`ServiceResult`) and the failure modes
  (:class:`ServiceOverloaded`, :class:`ServiceTimeout`,
  :class:`ServiceClosed`);
* :mod:`repro.service.handlers` — requests → canonical cache keys
  (via the ``canonical_key()`` methods and :mod:`repro.canonical`) and
  compute closures over :func:`repro.analysis.decompose`;
* :mod:`repro.service.cache` — the thread-safe memo LRU
  (:class:`ResultCache`);
* :mod:`repro.service.server` — admission control, worker-pool
  dispatch, deadlines, metrics and spans (:class:`AnalysisService`,
  :class:`PendingReply`);
* :mod:`repro.service.warmup` — workload-file cache pre-population
  (:func:`warm_start`) and seeded automaton workloads
  (:func:`random_workload`).

Quick start::

    from repro.service import AnalysisService, DecomposeRequest

    with AnalysisService(workers=4) as service:
        reply = service.submit(DecomposeRequest(automaton))
        result = reply.result(timeout=1.0)
        result.value.safety, result.value.liveness, result.cached
"""

from .cache import ResultCache, ResultCacheInfo
from .requests import (
    CheckRequest,
    ClassifyRequest,
    DecomposeRequest,
    Request,
    ServiceClosed,
    ServiceError,
    ServiceOverloaded,
    ServiceResult,
    ServiceTimeout,
)
from .server import AnalysisService, PendingReply
from .warmup import WarmupError, load_workload, random_workload, warm_start

__all__ = [
    "Request",
    "DecomposeRequest",
    "ClassifyRequest",
    "CheckRequest",
    "ServiceResult",
    "ServiceError",
    "ServiceOverloaded",
    "ServiceTimeout",
    "ServiceClosed",
    "ResultCache",
    "ResultCacheInfo",
    "AnalysisService",
    "PendingReply",
    "warm_start",
    "load_workload",
    "random_workload",
    "WarmupError",
]
