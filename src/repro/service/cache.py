"""The service's memo store: a thread-safe, size-bounded LRU.

Same locking discipline as :class:`repro.rv.compile.CompileCache`: hits
touch the lock once, misses *compute outside the lock* (decompositions
can take milliseconds — serializing them behind the cache lock would
turn the cache into a throttle) and re-check before inserting, so a
losing racer adopts the winner's value instead of double-inserting.
Keys are the canonical structural hashes of :mod:`repro.canonical` —
renaming-invariant, so isomorphic subjects share one cache line.

Introspection is first-class (the ops plane's ``/debug/cache`` feeds on
it): every line records its insertion time and hit count,
:meth:`ResultCache.stats` returns the typed full breakdown — hits,
misses, certificate-rejected evictions, LRU evictions, entry count and
a (shallow) bytes estimate — and :meth:`ResultCache.lines` lists the
per-line ages.  Evictions are reported to the event journal *after* the
lock is released, never from inside it.
"""

from __future__ import annotations

import sys
import threading
import time
from collections import OrderedDict
from collections.abc import Callable
from dataclasses import dataclass

from repro.ops.journal import INFO, JOURNAL, EventJournal

#: Distinguishes "no entry" from a legitimately-cached ``None`` value in
#: the post-compute race re-check.
_MISSING = object()


class _Line:
    """One cache entry plus its introspection record."""

    __slots__ = ("value", "created_at", "hits", "size")

    def __init__(self, value: object):
        self.value = value
        self.created_at = time.perf_counter()
        self.hits = 0
        # Shallow estimate (container/object header only, plus the key's
        # share added by the caller): an honest lower bound that costs
        # O(1), not a deep traversal of automata on the serving path.
        try:
            self.size = sys.getsizeof(value)
        except TypeError:
            self.size = 0


@dataclass(frozen=True)
class ResultCacheInfo:
    """A point-in-time snapshot of the hit/miss counters (the original
    PR-4 surface; :meth:`ResultCache.stats` is the full breakdown)."""

    hits: int
    misses: int
    size: int
    maxsize: int

    @property
    def hit_ratio(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


@dataclass(frozen=True)
class ResultCacheStats:
    """The typed per-cache breakdown served by ``/debug/cache``.

    ``rejected`` counts certificate-replay evictions
    (``verify_on_hit``); ``evictions`` counts LRU capacity evictions;
    ``bytes_estimate`` is a *shallow* sum (keys + top-level values) —
    a floor, not a census."""

    hits: int
    misses: int
    rejected: int
    evictions: int
    entries: int
    maxsize: int
    bytes_estimate: int

    @property
    def hit_ratio(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def to_dict(self) -> dict:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "rejected": self.rejected,
            "evictions": self.evictions,
            "entries": self.entries,
            "maxsize": self.maxsize,
            "bytes_estimate": self.bytes_estimate,
            "hit_ratio": self.hit_ratio,
        }


class ResultCache:
    """A bounded LRU mapping canonical keys to analysis results."""

    def __init__(self, maxsize: int = 512, *,
                 journal: EventJournal | None = JOURNAL):
        if maxsize < 1:
            raise ValueError("maxsize must be >= 1")
        self.maxsize = maxsize
        self._journal = journal
        self._lock = threading.Lock()
        self._entries: OrderedDict[str, _Line] = OrderedDict()
        self._hits = 0
        self._misses = 0
        self._rejected = 0
        self._evictions = 0

    def _note_evicted(self, keys: list[str]) -> None:
        if self._journal is not None:
            for key in keys:
                self._journal.emit("cache.evicted", INFO, key=key)

    def get_or_compute(self, key: str | None, compute: Callable[[], object]) -> tuple[object, bool]:
        """Return ``(value, was_hit)``; uncacheable keys (``None``)
        compute unconditionally and store nothing."""
        if key is None:
            return compute(), False
        with self._lock:
            line = self._entries.get(key)
            if line is not None:
                self._entries.move_to_end(key)
                self._hits += 1
                line.hits += 1
                return line.value, True
        value = compute()
        evicted: list[str] = []
        with self._lock:
            existing = self._entries.get(key)
            if existing is not None:
                # Raced with another miss on the same key: one compute
                # wins, everyone returns its value.
                self._entries.move_to_end(key)
                self._misses += 1
                return existing.value, False
            self._entries[key] = _Line(value)
            while len(self._entries) > self.maxsize:
                dropped, _ = self._entries.popitem(last=False)
                self._evictions += 1
                evicted.append(dropped)
            self._misses += 1
        self._note_evicted(evicted)
        return value, False

    def put(self, key: str, value: object) -> None:
        """Insert eagerly (warm start)."""
        evicted: list[str] = []
        with self._lock:
            self._entries[key] = _Line(value)
            self._entries.move_to_end(key)
            while len(self._entries) > self.maxsize:
                dropped, _ = self._entries.popitem(last=False)
                self._evictions += 1
                evicted.append(dropped)
        self._note_evicted(evicted)

    def invalidate(self, key: str, *, rejected: bool = False) -> bool:
        """Drop one entry; returns whether anything was evicted.
        ``rejected=True`` marks a certificate-replay failure (the
        ``verify_on_hit`` path), counted separately in :meth:`stats`."""
        with self._lock:
            dropped = self._entries.pop(key, _MISSING) is not _MISSING
            if dropped and rejected:
                self._rejected += 1
        return dropped

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, key: str) -> bool:
        with self._lock:
            return key in self._entries

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            self._hits = 0
            self._misses = 0
            self._rejected = 0
            self._evictions = 0

    def info(self) -> ResultCacheInfo:
        with self._lock:
            return ResultCacheInfo(
                hits=self._hits,
                misses=self._misses,
                size=len(self._entries),
                maxsize=self.maxsize,
            )

    def stats(self) -> ResultCacheStats:
        """The full typed breakdown (no metrics scraping required)."""
        with self._lock:
            bytes_estimate = sum(
                len(key) + line.size for key, line in self._entries.items()
            )
            return ResultCacheStats(
                hits=self._hits,
                misses=self._misses,
                rejected=self._rejected,
                evictions=self._evictions,
                entries=len(self._entries),
                maxsize=self.maxsize,
                bytes_estimate=bytes_estimate,
            )

    def lines(self) -> list[dict]:
        """Per-line introspection rows (LRU order, coldest first)."""
        now = time.perf_counter()
        with self._lock:
            snapshot = [
                (key, line.created_at, line.hits, line.size)
                for key, line in self._entries.items()
            ]
        return [
            {
                "key": key,
                "age_seconds": now - created_at,
                "hits": hits,
                "bytes_estimate": len(key) + size,
            }
            for key, created_at, hits, size in snapshot
        ]

    def __repr__(self) -> str:
        stats = self.stats()
        return (
            f"ResultCache(size={stats.entries}/{stats.maxsize}, "
            f"hits={stats.hits}, misses={stats.misses}, "
            f"rejected={stats.rejected}, evictions={stats.evictions})"
        )
