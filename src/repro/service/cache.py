"""The service's memo store: a thread-safe, size-bounded LRU.

Same locking discipline as :class:`repro.rv.compile.CompileCache`: hits
touch the lock once, misses *compute outside the lock* (decompositions
can take milliseconds — serializing them behind the cache lock would
turn the cache into a throttle) and re-check before inserting, so a
losing racer adopts the winner's value instead of double-inserting.
Keys are the canonical structural hashes of :mod:`repro.canonical` —
renaming-invariant, so isomorphic subjects share one cache line.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from collections.abc import Callable
from dataclasses import dataclass

#: Distinguishes "no entry" from a legitimately-cached ``None`` value in
#: the post-compute race re-check.
_MISSING = object()


@dataclass(frozen=True)
class ResultCacheInfo:
    """A point-in-time snapshot of the cache counters."""

    hits: int
    misses: int
    size: int
    maxsize: int

    @property
    def hit_ratio(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


class ResultCache:
    """A bounded LRU mapping canonical keys to analysis results."""

    def __init__(self, maxsize: int = 512):
        if maxsize < 1:
            raise ValueError("maxsize must be >= 1")
        self.maxsize = maxsize
        self._lock = threading.Lock()
        self._entries: OrderedDict[str, object] = OrderedDict()
        self._hits = 0
        self._misses = 0

    def get_or_compute(self, key: str | None, compute: Callable[[], object]) -> tuple[object, bool]:
        """Return ``(value, was_hit)``; uncacheable keys (``None``)
        compute unconditionally and store nothing."""
        if key is None:
            return compute(), False
        with self._lock:
            if key in self._entries:
                self._entries.move_to_end(key)
                self._hits += 1
                return self._entries[key], True
        value = compute()
        with self._lock:
            existing = self._entries.get(key, _MISSING)
            if existing is not _MISSING:
                # Raced with another miss on the same key: one compute
                # wins, everyone returns its value.
                self._entries.move_to_end(key)
                self._misses += 1
                return existing, False
            self._entries[key] = value
            while len(self._entries) > self.maxsize:
                self._entries.popitem(last=False)
            self._misses += 1
        return value, False

    def put(self, key: str, value: object) -> None:
        """Insert eagerly (warm start)."""
        with self._lock:
            self._entries[key] = value
            self._entries.move_to_end(key)
            while len(self._entries) > self.maxsize:
                self._entries.popitem(last=False)

    def invalidate(self, key: str) -> bool:
        """Drop one entry (certificate replay failed on a hit, say);
        returns whether anything was evicted."""
        with self._lock:
            return self._entries.pop(key, _MISSING) is not _MISSING

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, key: str) -> bool:
        with self._lock:
            return key in self._entries

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            self._hits = 0
            self._misses = 0

    def info(self) -> ResultCacheInfo:
        with self._lock:
            return ResultCacheInfo(
                hits=self._hits,
                misses=self._misses,
                size=len(self._entries),
                maxsize=self.maxsize,
            )

    def __repr__(self) -> str:
        info = self.info()
        return (
            f"ResultCache(size={info.size}/{info.maxsize}, "
            f"hits={info.hits}, misses={info.misses})"
        )
