"""One shard: an :class:`AnalysisService` speaking the wire protocol.

``python -m repro.service.sharded.worker`` runs today's in-process
service — worker pool, isomorphism-aware result cache, certificate
verify-on-hit — behind length-prefixed JSON frames on stdin/stdout
(:mod:`repro.service.wire`).  The router speaks to it in two planes:

* ``request`` frames carry analysis work.  The worker admits them
  through :meth:`AnalysisService.submit` (so admission control,
  deadlines, metrics, spans and the request context all apply
  unchanged) and streams each reply frame from a completion callback —
  requests multiplex freely over the one pipe, replies return in
  completion order, matched by id.  The router's trace id rides in as
  ``request_id``, so the shard-side in-flight table, slow-log and
  journal show the *same* id the client holds.
* control frames (``ping``/``readyz``/``cache_stats``/``inflight``/
  ``slowlog``/``snapshot``/``warm_start``/``shutdown``) serve the
  routing contract and the ops plane.

Frame writing is single-writer by construction: completion callbacks
and the dispatch loop enqueue encoded frames on a queue drained by one
writer thread, so frames never interleave and no lock is ever held
across a pipe write.

The process moves the frame channel off fd 1 at startup (``stdout`` is
re-pointed at ``stderr``), so a stray ``print`` anywhere in the
analysis code cannot corrupt the frame stream.
"""

from __future__ import annotations

import argparse
import os
import queue
import sys
import threading

from repro.service.cache import ResultCache
from repro.service.server import AnalysisService, PendingReply
from repro.service.warmup import parse_workload, replay_workload
from repro.service.wire import (
    WireError,
    decode_request,
    encode_error,
    encode_result,
    pack_frame,
    read_frame,
)

__all__ = ["ShardWorker", "main"]


class ShardWorker:
    """The frame dispatcher around one :class:`AnalysisService`.

    Takes binary ``inp``/``out`` streams so tests can drive the whole
    protocol in-process over pipes; :func:`main` wires real stdio.
    ``chaos_exit_after`` is a failure-injection hook for the shard-death
    chaos tests: after that many completed requests the process dies
    hard (``os._exit``) *without* sending the pending reply — exactly
    the mid-flight crash the router must survive."""

    def __init__(self, service: AnalysisService, inp, out, *,
                 shard_index: int = 0, chaos_exit_after: int | None = None):
        self.service = service
        self.shard_index = shard_index
        self._inp = inp
        self._out = out
        self._outq: queue.SimpleQueue = queue.SimpleQueue()
        self._chaos_lock = threading.Lock()
        self._chaos_remaining = chaos_exit_after

    # -- the write side ------------------------------------------------------

    def _writer(self) -> None:
        while True:
            frame = self._outq.get()
            if frame is None:
                return
            try:
                self._out.write(frame)
                self._out.flush()
            except (BrokenPipeError, ValueError, OSError):
                return  # router is gone; the read side will see EOF too

    def _send(self, payload: dict) -> None:
        self._outq.put(pack_frame(payload))

    # -- request completion --------------------------------------------------

    def _chaos_tick(self) -> bool:
        """True when failure injection says: die now, reply unsent."""
        with self._chaos_lock:
            if self._chaos_remaining is None:
                return False
            self._chaos_remaining -= 1
            return self._chaos_remaining <= 0

    def _finish(self, frame_id, reply: PendingReply) -> None:
        """Completion callback: one reply frame per finished request."""
        try:
            result = reply.result()
        except BaseException as exc:  # noqa: BLE001 — every failure crosses the wire typed
            self._send({"id": frame_id, "ok": False,
                        "error": encode_error(exc)})
            return
        if self._chaos_tick():
            os._exit(1)
        try:
            self._send({"id": frame_id, "ok": True,
                        "result": encode_result(result)})
        except WireError as exc:
            self._send({"id": frame_id, "ok": False,
                        "error": encode_error(exc)})

    # -- dispatch ------------------------------------------------------------

    def _handle_request(self, frame_id, payload: dict) -> None:
        request = decode_request(payload["request"])
        reply = self.service.submit(
            request,
            timeout=payload.get("timeout"),
            origin=payload.get("origin", "shard"),
            request_id=payload.get("trace_id"),
        )
        reply.add_done_callback(
            lambda finished: self._finish(frame_id, finished)
        )

    def _control_value(self, op: str, payload: dict):
        service = self.service
        if op == "ping":
            return {"pid": os.getpid(), "shard": self.shard_index}
        if op == "readyz":
            state = service.readiness()
            state["pid"] = os.getpid()
            state["shard"] = self.shard_index
            return state
        if op == "cache_stats":
            return {"stats": service.cache.stats().to_dict(),
                    "lines": service.cache.lines()}
        if op == "inflight":
            return service.inflight()
        if op == "slowlog":
            return service.slow_log()
        if op == "snapshot":
            return service.snapshot()
        if op == "warm_start":
            requests = parse_workload(payload["workload"])
            return replay_workload(service, requests)
        raise WireError(f"unknown op {op!r}")

    def _dispatch(self, payload: dict) -> bool:
        """Handle one frame; returns False when the loop should stop."""
        frame_id = payload.get("id")
        op = payload.get("op")
        try:
            if op == "request":
                self._handle_request(frame_id, payload)
                return True
            if op == "shutdown":
                self._send({"id": frame_id, "ok": True, "value": "bye"})
                return False
            value = self._control_value(op, payload)
        except BaseException as exc:  # noqa: BLE001 — every failure crosses the wire typed
            self._send({"id": frame_id, "ok": False,
                        "error": encode_error(exc)})
            return True
        self._send({"id": frame_id, "ok": True, "value": value})
        return True

    def serve(self) -> None:
        """Read frames until EOF or ``shutdown``, then drain and exit."""
        writer = threading.Thread(
            target=self._writer, name="shard-writer", daemon=True
        )
        writer.start()
        try:
            while True:
                payload = read_frame(self._inp)
                if payload is None or not self._dispatch(payload):
                    break
        finally:
            # Drain in-flight work so every admitted request gets its
            # reply frame out before the pipe closes.
            self.service.shutdown(wait=True)
            self._outq.put(None)
            writer.join(timeout=10.0)
            try:
                # A subprocess's exit would close this fd; an in-process
                # worker must close it itself so the peer sees EOF.
                self._out.close()
            except (BrokenPipeError, OSError, ValueError):
                pass


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="one analysis shard speaking the wire protocol on stdio"
    )
    parser.add_argument("--shard", type=int, default=0,
                        help="this shard's index (for readiness reporting)")
    parser.add_argument("--workers", type=int, default=2,
                        help="AnalysisService worker threads")
    parser.add_argument("--max-pending", type=int, default=64,
                        help="admission bound on in-flight requests")
    parser.add_argument("--cache-size", type=int, default=512,
                        help="result-cache capacity (lines)")
    parser.add_argument("--verify-on-hit", action="store_true",
                        help="replay certificates on cache hits")
    parser.add_argument("--chaos-exit-after", type=int, default=None,
                        help="test hook: die hard after N completed requests")
    args = parser.parse_args(argv)

    # Own the frame channel, then point fd 1 at stderr so stray prints
    # from analysis code cannot corrupt frames.
    inp = os.fdopen(os.dup(0), "rb", buffering=0)
    out = os.fdopen(os.dup(1), "wb")
    os.dup2(2, 1)
    sys.stdout = sys.stderr

    service = AnalysisService(
        workers=args.workers,
        max_pending=args.max_pending,
        cache=ResultCache(maxsize=args.cache_size),
        verify_on_hit=args.verify_on_hit,
    )
    ShardWorker(
        service, inp, out,
        shard_index=args.shard,
        chaos_exit_after=args.chaos_exit_after,
    ).serve()
    return 0


if __name__ == "__main__":
    sys.exit(main())
