"""The asyncio front-end: consistent-hash routing over worker shards.

:class:`ShardedService` spawns ``shards`` worker processes (each one
:mod:`repro.service.sharded.worker` — today's ``AnalysisService`` behind
the wire protocol) and routes every request by its canonical cache key
over a :class:`~repro.service.sharded.ring.HashRing`.  The design is
shared-nothing: no shard ever talks to another, each owns its slice of
the keyspace, and the router owns *only* routing, health and
aggregation.

Delivery semantics, stated precisely (DESIGN.md §13):

* **Idempotent requests** (everything except ``certify=True``
  decomposes) are delivered *at-least-once*: when a shard dies
  mid-request the router respawns it (warm-started from the recorded
  workload, if one was given) and redelivers the lost in-flight
  requests, at most ``max_deliveries`` times each.  Analyses are pure
  functions of their subject, so a duplicated compute is wasted work,
  never a wrong answer — and each caller still receives exactly one
  reply, because replies are matched by id to one future.
* **Certify requests** are *at-most-once*: certificate issuance is
  priced work a caller may bill or log externally, so a certify request
  caught in a shard death is failed with
  :class:`~repro.service.requests.ServiceClosed` rather than silently
  re-run; the caller decides whether to retry.

Threading model: all shard state (process handles, in-flight tables,
readiness) is touched only on the router's event-loop thread; callers
interact through thread-safe futures.  The one cross-thread flag,
``closed``, has its own lock.
"""

from __future__ import annotations

import asyncio
import itertools
import json
import os
import sys
import threading
import time
from concurrent.futures import Future
from concurrent.futures import TimeoutError as _FutureTimeout
from pathlib import Path

from repro.obs.context import RequestContext
from repro.obs.metrics import REGISTRY
from repro.ops.journal import INFO, JOURNAL, WARN, EventJournal

from repro.service.cache import ResultCacheStats
from repro.service.handlers import routing_key as _routing_key_of
from repro.service.requests import (
    Request,
    ServiceClosed,
    ServiceOverloaded,
    ServiceResult,
    ServiceTimeout,
)
from repro.service.warmup import load_workload_data, parse_workload
from repro.service.wire import (
    decode_error,
    decode_result,
    encode_request,
    pack_frame,
)

from .ring import HashRing

__all__ = ["ShardReply", "ShardedService"]

_REQUESTS = REGISTRY.counter(
    "repro_service_sharded_requests_total",
    "requests routed through the sharded tier, by shard and outcome",
    ("shard", "outcome"),
)
_DEATHS = REGISTRY.counter(
    "repro_service_sharded_deaths_total",
    "worker processes that exited while routable, by shard",
    ("shard",),
)
_REDELIVERED = REGISTRY.counter(
    "repro_service_sharded_redelivered_total",
    "idempotent in-flight requests redelivered after a shard death",
)

#: How long a dispatch waits for *any* shard to become routable before
#: giving up with ServiceOverloaded (covers the respawn window).
DISPATCH_GRACE_SECONDS = 5.0

#: Respawn attempts per shard death before its in-flight work is failed.
MAX_RESPAWNS = 3


class _Flight:
    """One routed request: its wire frame plus the caller's future."""

    __slots__ = ("request_id", "request", "wire", "future", "deadline",
                 "origin", "routing_key", "idempotent", "deliveries",
                 "shard")

    def __init__(self, request_id, request, wire, deadline, origin,
                 routing_key, idempotent):
        self.request_id = request_id
        self.request = request
        self.wire = wire
        self.future: Future = Future()
        self.deadline = deadline
        self.origin = origin
        self.routing_key = routing_key
        self.idempotent = idempotent
        self.deliveries = 0
        self.shard = None

    def frame(self) -> dict:
        payload = {
            "id": self.request_id,
            "op": "request",
            "request": self.wire,
            "origin": self.origin,
            "trace_id": self.request_id,
        }
        if self.deadline is not None:
            payload["timeout"] = max(0.0, self.deadline - time.perf_counter())
        return payload


class _Shard:
    """One worker process as the router sees it (loop-thread only)."""

    __slots__ = ("index", "generation", "proc", "reader", "inflight",
                 "control", "ready", "remote", "misses", "write_gate")

    def __init__(self, index: int, generation: int, proc):
        self.index = index
        self.generation = generation
        self.proc = proc
        self.reader = None
        self.inflight: dict[str, _Flight] = {}
        self.control: dict[str, asyncio.Future] = {}
        self.ready = False
        self.remote: dict = {}
        self.misses = 0
        self.write_gate = asyncio.Lock()


class ShardReply:
    """A routed request's reply slot (deadline semantics match
    :class:`~repro.service.server.PendingReply`); ``request_id`` is the
    trace id the request carries shard-side."""

    __slots__ = ("request", "request_id", "deadline", "_future")

    def __init__(self, request: Request, request_id: str,
                 deadline: float | None, future: Future):
        self.request = request
        self.request_id = request_id
        self.deadline = deadline
        self._future = future

    def done(self) -> bool:
        return self._future.done()

    def result(self, timeout: float | None = None) -> ServiceResult:
        """Wait for the reply — at most ``timeout`` seconds and never
        past the request's own deadline."""
        remaining = timeout
        if self.deadline is not None:
            until_deadline = self.deadline - time.perf_counter()
            remaining = (
                until_deadline if remaining is None
                else min(remaining, until_deadline)
            )
        if remaining is not None and remaining <= 0 and not self.done():
            raise ServiceTimeout(
                f"{self.request.kind} request deadline expired"
            )
        try:
            return self._future.result(remaining)
        except _FutureTimeout:
            raise ServiceTimeout(
                f"no {self.request.kind} reply within {remaining:.3f}s"
            ) from None


class _AggregateCacheView:
    """The router's ``/debug/cache`` surface: per-shard stats summed.

    Duck-compatible with :class:`~repro.service.cache.ResultCache` where
    the ops plane needs it (``stats()``/``lines()``), plus
    :meth:`stats_by_shard` so the endpoint can show the breakdown —
    without it, per-process counters silently under-report the tier's
    real hit rate."""

    __slots__ = ("_router",)

    def __init__(self, router: "ShardedService"):
        self._router = router

    def _fetch(self) -> dict[int, dict]:
        return self._router._broadcast("cache_stats")

    def stats_by_shard(self) -> dict[int, ResultCacheStats]:
        return {
            index: ResultCacheStats(**{
                key: value
                for key, value in payload["stats"].items()
                if key != "hit_ratio"
            })
            for index, payload in sorted(self._fetch().items())
        }

    def stats(self) -> ResultCacheStats:
        totals = dict.fromkeys(
            ("hits", "misses", "rejected", "evictions", "entries",
             "maxsize", "bytes_estimate"), 0,
        )
        for stats in self.stats_by_shard().values():
            for field in totals:
                totals[field] += getattr(stats, field)
        return ResultCacheStats(**totals)

    def lines(self) -> list[dict]:
        merged = []
        for index, payload in sorted(self._fetch().items()):
            for line in payload["lines"]:
                line["shard"] = index
                merged.append(line)
        return merged


class ShardedService:
    """N analysis shards behind one consistent-hash router.

    Parameters
    ----------
    shards:
        Worker process count (the ring size; fixed for the service's
        lifetime).
    workers_per_shard / max_pending_per_shard / cache_size /
    verify_on_hit:
        Forwarded to each shard's :class:`AnalysisService`.
    default_timeout:
        Deadline applied to requests submitted without ``timeout=``.
    warm_source:
        A recorded JSON workload (path, JSON string, or dict) replayed
        into *every* shard at spawn — including respawns after a shard
        death, so a replacement worker starts with a warm cache.
    max_deliveries:
        Delivery bound per idempotent request (first attempt included).
    health_interval:
        Seconds between ``readyz`` probes per shard; a shard that misses
        three consecutive probes is killed and respawned.
    journal:
        Lifecycle events (spawn/death/redelivery) go here.
    worker_args:
        Extra argv appended to each worker command (failure-injection
        hooks for the chaos tests).
    """

    def __init__(
        self,
        shards: int = 2,
        *,
        workers_per_shard: int = 2,
        max_pending_per_shard: int = 64,
        cache_size: int = 512,
        verify_on_hit: bool = False,
        default_timeout: float | None = None,
        warm_source=None,
        max_deliveries: int = 2,
        health_interval: float = 0.5,
        vnodes: int = 64,
        journal: EventJournal | None = JOURNAL,
        worker_args: tuple = (),
    ):
        if shards < 1:
            raise ValueError("shards must be >= 1")
        if max_deliveries < 1:
            raise ValueError("max_deliveries must be >= 1")
        self.n_shards = shards
        self.workers_per_shard = workers_per_shard
        self.max_pending_per_shard = max_pending_per_shard
        self.cache_size = cache_size
        self.verify_on_hit = verify_on_hit
        self.default_timeout = default_timeout
        self.max_deliveries = max_deliveries
        self.health_interval = health_interval
        self.journal = journal
        self.worker_args = tuple(worker_args)
        self.ring = HashRing(shards, vnodes=vnodes)
        self._warm_data = (
            None if warm_source is None else load_workload_data(warm_source)
        )
        self._ids = itertools.count(1)
        self._rr = itertools.count()
        self._state_lock = threading.Lock()
        self._closed = False
        self._closing = False
        self._shards: list[_Shard | None] = [None] * shards
        self._ready_event: asyncio.Event | None = None
        self._health_task: asyncio.Task | None = None
        self._loop = asyncio.new_event_loop()
        self._thread = threading.Thread(
            target=self._loop.run_forever,
            name="repro-shard-router", daemon=True,
        )
        self._thread.start()
        try:
            self._call(self._start_all(), timeout=120.0)
        except BaseException:
            self.shutdown(wait=False)
            raise

    # -- journal plumbing ----------------------------------------------------

    def _emit(self, name: str, level: int = INFO, **fields) -> None:
        if self.journal is not None:
            self.journal.emit(name, level, **fields)

    # -- sync/async bridge ---------------------------------------------------

    def _call(self, coro, timeout: float):
        return asyncio.run_coroutine_threadsafe(coro, self._loop).result(timeout)

    # -- spawning ------------------------------------------------------------

    def _worker_command(self, index: int) -> list[str]:
        command = [
            sys.executable, "-m", "repro.service.sharded.worker",
            "--shard", str(index),
            "--workers", str(self.workers_per_shard),
            "--max-pending", str(self.max_pending_per_shard),
            "--cache-size", str(self.cache_size),
        ]
        if self.verify_on_hit:
            command.append("--verify-on-hit")
        command.extend(self.worker_args)
        return command

    def _worker_env(self) -> dict:
        import repro

        env = dict(os.environ)
        package_root = str(Path(repro.__file__).resolve().parent.parent)
        existing = env.get("PYTHONPATH")
        env["PYTHONPATH"] = (
            package_root if not existing
            else package_root + os.pathsep + existing
        )
        return env

    async def _start_all(self) -> None:
        self._ready_event = asyncio.Event()
        await asyncio.gather(
            *(self._spawn(index) for index in range(self.n_shards))
        )
        self._health_task = asyncio.get_running_loop().create_task(
            self._health()
        )

    async def _spawn(self, index: int) -> None:
        previous = self._shards[index]
        generation = previous.generation + 1 if previous is not None else 1
        proc = await asyncio.create_subprocess_exec(
            *self._worker_command(index),
            stdin=asyncio.subprocess.PIPE,
            stdout=asyncio.subprocess.PIPE,
            env=self._worker_env(),
        )
        shard = _Shard(index, generation, proc)
        self._shards[index] = shard
        shard.reader = asyncio.get_running_loop().create_task(
            self._serve_shard(shard)
        )
        if self._warm_data is not None:
            count = await self._control(
                shard, "warm_start", {"workload": self._warm_data},
                timeout=120.0,
            )
            self._emit("shard.warm_start", shard=index, replayed=count)
        shard.ready = True
        self._ready_event.set()
        self._emit("shard.spawn", shard=index, pid=proc.pid,
                   generation=generation)

    # -- the wire ------------------------------------------------------------

    async def _write(self, shard: _Shard, payload: dict) -> None:
        frame = pack_frame(payload)
        async with shard.write_gate:
            shard.proc.stdin.write(frame)
            await shard.proc.stdin.drain()

    async def _control(self, shard: _Shard, op: str, extra: dict | None = None,
                       timeout: float = 5.0):
        frame_id = f"c-{next(self._ids)}"
        future = asyncio.get_running_loop().create_future()
        shard.control[frame_id] = future
        payload = {"id": frame_id, "op": op}
        if extra:
            payload.update(extra)
        try:
            await self._write(shard, payload)
            return await asyncio.wait_for(future, timeout)
        finally:
            shard.control.pop(frame_id, None)

    async def _serve_shard(self, shard: _Shard) -> None:
        stdout = shard.proc.stdout
        try:
            while True:
                header = await stdout.readexactly(4)
                length = int.from_bytes(header, "big")
                body = await stdout.readexactly(length)
                self._on_frame(shard, json.loads(body.decode("utf-8")))
        except (asyncio.IncompleteReadError, ConnectionResetError,
                BrokenPipeError):
            pass
        await shard.proc.wait()
        await self._on_shard_exit(shard)

    def _on_frame(self, shard: _Shard, payload: dict) -> None:
        frame_id = payload.get("id")
        control = shard.control.get(frame_id)
        if control is not None:
            if not control.done():
                if payload.get("ok"):
                    control.set_result(payload.get("value"))
                else:
                    control.set_exception(decode_error(payload.get("error", {})))
            return
        flight = shard.inflight.pop(frame_id, None)
        if flight is None or flight.future.done():
            return
        if payload.get("ok"):
            try:
                result = decode_result(payload["result"], flight.request)
            except BaseException as exc:  # noqa: BLE001 — surfaced on the caller's future
                _REQUESTS.labels(shard=str(shard.index), outcome="error").add()
                flight.future.set_exception(exc)
                return
            _REQUESTS.labels(shard=str(shard.index), outcome="ok").add()
            flight.future.set_result(result)
        else:
            _REQUESTS.labels(shard=str(shard.index), outcome="error").add()
            flight.future.set_exception(decode_error(payload.get("error", {})))

    # -- death, respawn, redelivery -----------------------------------------

    async def _on_shard_exit(self, shard: _Shard) -> None:
        if self._shards[shard.index] is not shard:
            return  # a newer generation already took over
        shard.ready = False
        for future in list(shard.control.values()):
            if not future.done():
                future.set_exception(
                    ServiceClosed(f"shard {shard.index} exited")
                )
        shard.control.clear()
        orphans = list(shard.inflight.values())
        shard.inflight.clear()
        if self._closing:
            self._fail_flights(orphans, ServiceClosed(
                "sharded service is shutting down"
            ))
            return
        _DEATHS.labels(shard=str(shard.index)).add()
        self._emit("shard.exit", WARN, shard=shard.index, pid=shard.proc.pid,
                   returncode=shard.proc.returncode, orphaned=len(orphans))
        redeliverable, dropped = [], []
        for flight in orphans:
            if flight.idempotent and flight.deliveries < self.max_deliveries:
                redeliverable.append(flight)
            else:
                dropped.append(flight)
        self._fail_flights(dropped, ServiceClosed(
            f"shard {shard.index} died mid-request; not redelivering "
            "(at-most-once for certify requests, delivery bound otherwise)"
        ))
        for attempt in range(MAX_RESPAWNS):
            try:
                await self._spawn(shard.index)
                break
            except Exception:
                await asyncio.sleep(0.2 * (attempt + 1))
        else:
            self._emit("shard.respawn_failed", WARN, shard=shard.index)
            self._fail_flights(redeliverable, ServiceClosed(
                f"shard {shard.index} died and could not be respawned"
            ))
            return
        replacement = self._shards[shard.index]
        for flight in redeliverable:
            if flight.deadline is not None and (
                flight.deadline <= time.perf_counter()
            ):
                if not flight.future.done():
                    flight.future.set_exception(ServiceTimeout(
                        f"{flight.request.kind} request deadline expired "
                        "during shard respawn"
                    ))
                continue
            _REDELIVERED.add()
            self._emit("shard.redeliver", WARN, shard=shard.index,
                       request_id=flight.request_id,
                       delivery=flight.deliveries + 1)
            flight.deliveries += 1
            replacement.inflight[flight.request_id] = flight
            try:
                await self._write(replacement, flight.frame())
            except Exception as exc:
                replacement.inflight.pop(flight.request_id, None)
                if not flight.future.done():
                    flight.future.set_exception(ServiceClosed(
                        f"redelivery to respawned shard failed: {exc}"
                    ))

    def _fail_flights(self, flights, error: BaseException) -> None:
        for flight in flights:
            if not flight.future.done():
                _REQUESTS.labels(
                    shard=str(flight.shard if flight.shard is not None else -1),
                    outcome="error",
                ).add()
                flight.future.set_exception(error)

    async def _health(self) -> None:
        while not self._closing:
            await asyncio.sleep(self.health_interval)
            for shard in list(self._shards):
                if shard is None or not shard.ready:
                    continue
                try:
                    state = await self._control(
                        shard, "readyz",
                        timeout=self.health_interval * 2 + 0.5,
                    )
                except Exception:
                    shard.misses += 1
                    if shard.misses >= 3 and shard.proc.returncode is None:
                        self._emit("shard.unresponsive", WARN, shard=shard.index,
                                   pid=shard.proc.pid, misses=shard.misses)
                        shard.proc.kill()
                else:
                    shard.remote = state
                    shard.misses = 0

    # -- routing -------------------------------------------------------------

    async def _pick(self, flight: _Flight) -> _Shard | None:
        grace_end = time.perf_counter() + DISPATCH_GRACE_SECONDS
        if flight.deadline is not None:
            grace_end = min(grace_end, flight.deadline)
        preference = (
            None if flight.routing_key is None
            else self.ring.preference(flight.routing_key)
        )
        while True:
            if self._closing:
                raise ServiceClosed("sharded service is shut down")
            if preference is None:
                ready = [s for s in self._shards if s is not None and s.ready]
                if ready:
                    return ready[next(self._rr) % len(ready)]
            else:
                for index in preference:
                    shard = self._shards[index]
                    if shard is not None and shard.ready:
                        return shard
            remaining = grace_end - time.perf_counter()
            if remaining <= 0:
                return None
            self._ready_event.clear()
            try:
                await asyncio.wait_for(self._ready_event.wait(), remaining)
            except asyncio.TimeoutError:
                return None

    async def _dispatch(self, flight: _Flight) -> None:
        try:
            shard = await self._pick(flight)
            if shard is None:
                raise ServiceOverloaded(
                    "no shard became routable within the dispatch grace "
                    f"window ({DISPATCH_GRACE_SECONDS:g}s)"
                )
            flight.shard = shard.index
            flight.deliveries += 1
            shard.inflight[flight.request_id] = flight
            await self._write(shard, flight.frame())
        except BaseException as exc:  # noqa: BLE001 — surfaced on the caller's future
            if flight.shard is not None:
                shard = self._shards[flight.shard]
                if shard is not None:
                    shard.inflight.pop(flight.request_id, None)
            if not flight.future.done():
                flight.future.set_exception(exc)

    # -- the client-facing request path --------------------------------------

    def submit(self, request: Request, *, timeout: float | None = None,
               origin: str = "client") -> ShardReply:
        """Route one request; returns its :class:`ShardReply`.

        Serialization happens here, client-side — a subject the wire
        cannot carry raises :class:`~repro.service.wire.WireError` at
        submit time, before anything is queued."""
        if not isinstance(request, Request):
            raise TypeError(
                f"submit() takes a Request, not {type(request).__name__!r}"
            )
        if self.closed:
            raise ServiceClosed("sharded service is shut down")
        if timeout is None:
            timeout = self.default_timeout
        deadline = (
            None if timeout is None else time.perf_counter() + timeout
        )
        wire_request = encode_request(request)
        try:
            routing_key = _routing_key_of(request)
        except Exception:
            # Key construction can reject a malformed request (e.g. a
            # subject outside its lattice); route it anyway and let the
            # shard raise the real, helpful error on compute.
            routing_key = None
        context = RequestContext(
            kind=request.kind, origin=origin, deadline=deadline
        )
        flight = _Flight(
            request_id=context.request_id,
            request=request,
            wire=wire_request,
            deadline=deadline,
            origin=origin,
            routing_key=routing_key,
            idempotent=not getattr(request, "certify", False),
        )
        try:
            asyncio.run_coroutine_threadsafe(
                self._dispatch(flight), self._loop
            )
        except RuntimeError as exc:
            raise ServiceClosed(
                "sharded service shut down while the request was being "
                "admitted"
            ) from exc
        return ShardReply(request, flight.request_id, deadline, flight.future)

    def request(self, request: Request, *, timeout: float | None = None,
                origin: str = "client") -> ServiceResult:
        """Submit and wait: ``submit(...).result()`` in one call."""
        return self.submit(request, timeout=timeout, origin=origin).result()

    def warm_start(self, source) -> int:
        """Fan-out replication: replay a recorded workload into *every*
        shard (shared-nothing caches warm independently), and remember
        it so respawned shards warm-start too.  Returns the number of
        workload requests (each shard replayed all of them)."""
        data = load_workload_data(source)
        requests = parse_workload(data)  # validate before shipping
        self._warm_data = data
        self._broadcast("warm_start", {"workload": data},
                        timeout=120.0, strict=True)
        return len(requests)

    # -- aggregation (the ops surface) ---------------------------------------

    def _broadcast(self, op: str, extra: dict | None = None,
                   timeout: float = 5.0, strict: bool = False) -> dict[int, object]:
        """One control op to every routable shard → ``{index: value}``.
        Unreachable shards are skipped unless ``strict``."""
        async def run():
            shards = [s for s in self._shards if s is not None and s.ready]
            values = await asyncio.gather(
                *(self._control(shard, op, extra, timeout) for shard in shards),
                return_exceptions=True,
            )
            results: dict[int, object] = {}
            for shard, value in zip(shards, values):
                if isinstance(value, BaseException):
                    if strict:
                        raise value
                    continue
                results[shard.index] = value
            return results

        return self._call(run(), timeout=timeout * max(1, self.n_shards) + 5.0)

    @property
    def closed(self) -> bool:
        with self._state_lock:
            return self._closed

    @property
    def cache(self) -> _AggregateCacheView:
        """The tier-wide cache view (``/debug/cache`` aggregates shards
        here instead of under-reporting one process's counters)."""
        return _AggregateCacheView(self)

    def readiness(self) -> dict:
        """The ``/readyz`` routing contract, tier-wide: routable iff the
        service is open and *every* shard is up (a request may hash to
        any of them)."""
        rows = []
        for shard in list(self._shards):
            if shard is None:
                continue
            row = {"shard": shard.index, "ready": shard.ready,
                   "pid": shard.proc.pid, "generation": shard.generation,
                   "pending": len(shard.inflight)}
            for key in ("pending", "max_pending", "saturation", "workers"):
                if key in shard.remote:
                    row[key] = shard.remote[key]
            rows.append(row)
        ready_shards = sum(1 for row in rows if row["ready"])
        closed = self.closed
        return {
            "ready": not closed and ready_shards == self.n_shards,
            "closed": closed,
            "n_shards": self.n_shards,
            "ready_shards": ready_shards,
            "pending": sum(
                len(shard.inflight)
                for shard in self._shards if shard is not None
            ),
            "max_pending": self.max_pending_per_shard * self.n_shards,
            "shards": rows,
        }

    def inflight(self) -> list[dict]:
        """The tier-wide live request table, each row tagged with its
        shard, oldest first."""
        rows = []
        for index, shard_rows in sorted(self._broadcast("inflight").items()):
            for row in shard_rows:
                row["shard"] = index
                rows.append(row)
        rows.sort(key=lambda row: row.get("age_seconds", 0.0), reverse=True)
        return rows

    def slow_log(self) -> list[dict]:
        """Every shard's retained slow-request entries, shard-tagged."""
        rows = []
        for index, shard_rows in sorted(self._broadcast("slowlog").items()):
            for row in shard_rows:
                row["shard"] = index
                rows.append(row)
        return rows

    def snapshot(self) -> dict:
        """The tier dashboard: per-shard snapshots plus summed totals."""
        per_shard = {
            index: value
            for index, value in sorted(self._broadcast("snapshot").items())
        }
        totals: dict[str, float] = {}
        for snap in per_shard.values():
            for key, value in snap.items():
                if isinstance(value, (int, float)):
                    totals[key] = totals.get(key, 0) + value
        totals["n_shards"] = self.n_shards
        totals["shards"] = per_shard
        return totals

    def shard_pids(self) -> list[int]:
        """Current worker pids by shard index (chaos-test surface)."""
        return [
            shard.proc.pid for shard in self._shards if shard is not None
        ]

    # -- lifecycle ----------------------------------------------------------

    async def _shutdown_async(self, wait: bool) -> None:
        self._closing = True
        if self._health_task is not None:
            self._health_task.cancel()
        shards = [s for s in self._shards if s is not None]
        for shard in shards:
            shard.ready = False
            try:
                await self._control(shard, "shutdown", timeout=0.5)
            except Exception:
                pass
        for shard in shards:
            try:
                await asyncio.wait_for(
                    shard.proc.wait(), 5.0 if wait else 0.5
                )
            except asyncio.TimeoutError:
                shard.proc.kill()
                await shard.proc.wait()
            leftovers = list(shard.inflight.values())
            shard.inflight.clear()
            self._fail_flights(leftovers, ServiceClosed(
                "sharded service is shut down"
            ))

    def shutdown(self, wait: bool = True) -> None:
        """Refuse new requests, stop every shard, then stop the loop."""
        with self._state_lock:
            already = self._closed
            self._closed = True
        if already:
            return
        self._emit("router.shutdown", wait=wait)
        try:
            self._call(self._shutdown_async(wait), timeout=60.0)
        finally:
            self._loop.call_soon_threadsafe(self._loop.stop)
            self._thread.join(timeout=10.0)
            if not self._thread.is_alive():
                self._loop.close()

    def __enter__(self) -> "ShardedService":
        return self

    def __exit__(self, *exc) -> None:
        self.shutdown()

    def __repr__(self) -> str:
        state = "closed" if self.closed else "open"
        return f"ShardedService(shards={self.n_shards}, {state})"
