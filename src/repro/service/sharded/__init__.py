"""The sharded analysis tier: N worker processes behind one router.

Python threads cannot parallelize the dense decomposition kernels (the
GIL), so one :class:`~repro.service.server.AnalysisService` caps out at
roughly one core.  This package scales *out* instead of up:

* :mod:`repro.service.sharded.ring` — consistent hashing from canonical
  cache keys to shard indices.  Shard affinity is the point: every
  isomorphism class of subjects always lands on the same shard, so each
  shard's isomorphism-aware :class:`~repro.service.cache.ResultCache`
  stays naturally hot, and N shards hold N× the aggregate working set
  with zero cross-shard coordination (shared-nothing).
* :mod:`repro.service.sharded.worker` — one worker process: today's
  ``AnalysisService`` (worker pool, result cache, certificate
  verify-on-hit) behind the length-prefixed JSON wire protocol of
  :mod:`repro.service.wire`, frames on stdin/stdout.
* :mod:`repro.service.sharded.router` — the asyncio front-end:
  :class:`ShardedService` spawns the workers, routes by
  ``canonical_key()``, health-checks and respawns dead shards (with
  warm-start replication and bounded at-least-once redelivery for
  idempotent requests; at-most-once for ``certify=True``), and
  aggregates readiness, cache stats, in-flight tables and slow logs for
  the ops plane.

Most callers should not import this package directly — construct a
:class:`repro.service.client.Client` over a ``ShardedTransport`` and
speak the one client API regardless of deployment shape.
"""

from .ring import HashRing
from .router import ShardedService, ShardReply

__all__ = [
    "HashRing",
    "ShardReply",
    "ShardedService",
]
