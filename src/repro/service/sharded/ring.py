"""Consistent hashing: canonical cache keys → shard indices.

The router must send every subject of one isomorphism class to the same
shard — that is what keeps each shard's isomorphism-aware cache hot —
and must keep doing so when a shard dies and respawns.  A consistent
hash ring gives both: shard assignment depends only on the key and the
ring shape (``n_shards``, ``vnodes``), never on process identities or
request order, and :meth:`HashRing.preference` yields a *stable
fallback order* (walk the ring clockwise) for routing around a shard
that is briefly down without reshuffling everything else.

Hashing is SHA-256 (the same primitive :func:`repro.canonical.digest`
uses), truncated to 64 bits per point — seed-independent and identical
across processes and runs, unlike built-in ``hash``.
"""

from __future__ import annotations

import bisect
import hashlib

__all__ = ["HashRing"]

#: Virtual nodes per shard: enough to keep the keyspace split within a
#: few percent of even at single-digit shard counts.
DEFAULT_VNODES = 64


def _point(token: str) -> int:
    return int.from_bytes(
        hashlib.sha256(token.encode("utf-8")).digest()[:8], "big"
    )


class HashRing:
    """An immutable consistent-hash ring over ``n_shards`` shards."""

    __slots__ = ("n_shards", "vnodes", "_points", "_owners")

    def __init__(self, n_shards: int, *, vnodes: int = DEFAULT_VNODES):
        if n_shards < 1:
            raise ValueError("n_shards must be >= 1")
        if vnodes < 1:
            raise ValueError("vnodes must be >= 1")
        self.n_shards = n_shards
        self.vnodes = vnodes
        labeled = sorted(
            (_point(f"shard:{shard}:vnode:{vnode}"), shard)
            for shard in range(n_shards)
            for vnode in range(vnodes)
        )
        self._points = [point for point, _ in labeled]
        self._owners = [shard for _, shard in labeled]

    def shard_for(self, key: str) -> int:
        """The shard owning ``key`` — deterministic across processes,
        runs, and ring instances of the same shape."""
        index = bisect.bisect_right(self._points, _point(key))
        if index == len(self._points):
            index = 0
        return self._owners[index]

    def preference(self, key: str) -> list[int]:
        """All shards in stable fallback order for ``key``: the owner
        first, then each remaining shard in ring-walk order.  A router
        that takes the first *available* entry keeps perfect affinity
        while every shard is up and degrades deterministically when one
        is down."""
        start = bisect.bisect_right(self._points, _point(key))
        seen: list[int] = []
        for offset in range(len(self._owners)):
            owner = self._owners[(start + offset) % len(self._owners)]
            if owner not in seen:
                seen.append(owner)
                if len(seen) == self.n_shards:
                    break
        return seen

    def __repr__(self) -> str:
        return f"HashRing(n_shards={self.n_shards}, vnodes={self.vnodes})"
