"""The one client API for the analysis service, transport-agnostic.

The service grew two deployment shapes — a single in-process
:class:`~repro.service.server.AnalysisService` and the sharded tier of
:mod:`repro.service.sharded` — and callers should not care which one
answers.  :class:`Client` is that indifference made concrete::

    from repro.service.client import Client

    with Client.in_process(workers=4) as client:        # embedded
        reply = client.decompose(automaton)
        reply.safety, reply.liveness, reply.cached

    with Client.sharded(shards=4) as client:            # scaled out
        reply = client.decompose(automaton)             # same code

Three layers:

* :class:`Client` — the verbs.  :meth:`~Client.decompose`,
  :meth:`~Client.classify` and :meth:`~Client.check` take a subject plus
  the same keyword context as :func:`repro.analysis.decompose` and
  return **typed replies** (:class:`DecomposeReply`,
  :class:`ClassifyReply`, :class:`CheckReply`) instead of a bare
  ``ServiceResult`` — the answer's shape is in the type, not in
  ``result.value`` duck-typing.
* :class:`Transport` — the seam.  A transport turns a
  :class:`~repro.service.requests.Request` into a pending reply handle;
  everything else (warm start, readiness, shutdown) rides the same
  interface.
* The two implementations: :class:`InProcessTransport` hands request
  objects straight to an ``AnalysisService`` (zero-copy — subjects are
  never serialized), :class:`ShardedTransport` routes them through a
  :class:`~repro.service.sharded.ShardedService` over the versioned wire
  schema of :mod:`repro.service.wire`.

Both transports speak identical semantics: same request vocabulary,
same failure types (:class:`~repro.service.requests.ServiceOverloaded` /
``ServiceTimeout`` / ``ServiceClosed``), same reply fields.  The test
suite runs the PR-4 cache-soundness regressions against both to keep
that true.

``AnalysisService`` itself stays public — embedding it directly remains
supported — but new code should construct a ``Client`` and let the
deployment shape be a constructor argument.
"""

from __future__ import annotations

from dataclasses import dataclass
from types import MappingProxyType

from .requests import (
    CheckRequest,
    ClassifyRequest,
    DecomposeRequest,
    MonitorRequest,
    Request,
    ServiceResult,
)

__all__ = [
    "CheckReply",
    "ClassifyReply",
    "Client",
    "DecomposeReply",
    "InProcessTransport",
    "MonitorReply",
    "Reply",
    "ShardedTransport",
    "Transport",
]


# -- typed replies -----------------------------------------------------------


@dataclass(frozen=True)
class Reply:
    """A completed analysis, typed by verb (see subclasses).

    ``cached`` tells whether a result cache answered; ``key`` is the
    canonical cache key (``None`` for uncacheable subjects);
    ``elapsed_seconds`` is the service-side wall time;
    ``request_id`` is the trace id the request carried through the
    service (and, for the sharded transport, across the wire — the same
    id appears in shard-side in-flight tables and journals)."""

    request: Request
    value: object
    cached: bool
    key: str | None
    elapsed_seconds: float
    request_id: str | None


@dataclass(frozen=True)
class DecomposeReply(Reply):
    """The safety/liveness decomposition of the subject."""

    @property
    def safety(self):
        """The safety part (closure, safety automaton, or formula)."""
        return self.value.safety

    @property
    def liveness(self):
        """The liveness part of the decomposition."""
        return self.value.liveness

    @property
    def certificate(self):
        """The machine-checkable certificate, when ``certify=True`` was
        requested (``None`` otherwise)."""
        return getattr(self.value, "certificate", None)


@dataclass(frozen=True)
class ClassifyReply(Reply):
    """The subject's property class (safety / liveness / both / neither)."""

    @property
    def property_class(self):
        """The :class:`~repro.ltl.classify.PropertyClass` verdict —
        handlers return either the enum itself or a richer object
        carrying it as ``.kind``."""
        return getattr(self.value, "kind", self.value)

    @property
    def is_safety(self) -> bool:
        return getattr(self.property_class, "name", None) in ("SAFETY", "BOTH")

    @property
    def is_liveness(self) -> bool:
        return getattr(self.property_class, "name", None) in ("LIVENESS", "BOTH")


@dataclass(frozen=True)
class CheckReply(Reply):
    """The boolean verdict of re-verifying the decomposition identity."""

    @property
    def holds(self) -> bool:
        return bool(self.value)

    def __bool__(self) -> bool:
        return self.holds


@dataclass(frozen=True)
class MonitorReply(Reply):
    """The four-valued verdict of monitoring a finite trace against a
    policy (``value`` is a :class:`~repro.rv.verdicts.MonitorOutcome`)."""

    @property
    def verdict(self):
        """The :class:`~repro.rv.verdicts.Verdict4` after the trace."""
        return self.value.verdict

    @property
    def verdict3(self):
        """The reference three-valued projection."""
        return self.value.verdict3

    @property
    def max_wait(self) -> int:
        """Longest wait for the liveness conjunct's good event."""
        return self.value.max_wait

    @property
    def horizon(self):
        """The finitary bound the request ran under (``None`` = unbounded)."""
        return self.value.horizon

    @property
    def falsified(self) -> bool:
        return self.value.falsified

    @property
    def bound_exceeded(self) -> bool:
        return self.value.bound_exceeded


_REPLY_OF = MappingProxyType({
    "decompose": DecomposeReply,
    "classify": ClassifyReply,
    "check": CheckReply,
    "monitor": MonitorReply,
})


def _typed_reply(result: ServiceResult, request_id: str | None) -> Reply:
    reply_type = _REPLY_OF.get(result.request.kind, Reply)
    return reply_type(
        request=result.request,
        value=result.value,
        cached=result.cached,
        key=result.key,
        elapsed_seconds=result.elapsed_seconds,
        request_id=request_id,
    )


# -- the transport seam ------------------------------------------------------


class Transport:
    """What a :class:`Client` needs from a deployment shape.

    A transport owns its service's lifecycle iff it constructed it
    (``owns_service``): a client over a borrowed service will not shut
    it down on :meth:`Client.close`."""

    owns_service = True

    def submit(self, request: Request, *, timeout: float | None = None):
        """Dispatch; returns a pending handle with ``result(timeout)``
        and a ``request_id`` attribute."""
        raise NotImplementedError

    def warm_start(self, source) -> int:
        """Replay a recorded workload into the deployment's cache(s);
        returns the number of workload requests replayed."""
        raise NotImplementedError

    def readiness(self) -> dict:
        raise NotImplementedError

    def snapshot(self) -> dict:
        raise NotImplementedError

    def close(self) -> None:
        raise NotImplementedError


class InProcessTransport(Transport):
    """Zero-copy dispatch to an :class:`AnalysisService` in this
    process: request and reply objects cross no serialization boundary.

    Pass an existing service to wrap it (borrowed — the transport will
    not shut it down), or constructor keywords to own a fresh one."""

    def __init__(self, service=None, **service_kwargs):
        from .server import AnalysisService

        if service is not None and service_kwargs:
            raise TypeError(
                "pass either an existing service or constructor "
                "keywords, not both"
            )
        self.owns_service = service is None
        self.service = (
            service if service is not None
            else AnalysisService(**service_kwargs)
        )

    def submit(self, request: Request, *, timeout: float | None = None):
        return self.service.submit(request, timeout=timeout, origin="client")

    def warm_start(self, source) -> int:
        from .warmup import load_workload, replay_workload

        return replay_workload(self.service, load_workload(source))

    def readiness(self) -> dict:
        return self.service.readiness()

    def snapshot(self) -> dict:
        return self.service.snapshot()

    def close(self) -> None:
        if self.owns_service:
            self.service.shutdown(wait=True)


class ShardedTransport(Transport):
    """Dispatch through a :class:`~repro.service.sharded.ShardedService`
    router: requests travel the versioned wire schema to shard-affine
    worker processes.

    Pass an existing router to wrap it (borrowed), or constructor
    keywords (``shards=``, ``workers_per_shard=``, ``warm_source=``, …)
    to own a fresh one."""

    def __init__(self, service=None, **service_kwargs):
        from .sharded import ShardedService

        if service is not None and service_kwargs:
            raise TypeError(
                "pass either an existing sharded service or constructor "
                "keywords, not both"
            )
        self.owns_service = service is None
        self.service = (
            service if service is not None
            else ShardedService(**service_kwargs)
        )

    def submit(self, request: Request, *, timeout: float | None = None):
        return self.service.submit(request, timeout=timeout, origin="client")

    def warm_start(self, source) -> int:
        return self.service.warm_start(source)

    def readiness(self) -> dict:
        return self.service.readiness()

    def snapshot(self) -> dict:
        return self.service.snapshot()

    def close(self) -> None:
        if self.owns_service:
            self.service.shutdown(wait=True)


# -- the client --------------------------------------------------------------


class Client:
    """The transport-agnostic analysis client.

    Construct over any :class:`Transport`, or use the conveniences:
    :meth:`in_process` and :meth:`sharded`.  ``default_timeout`` applies
    to every verb call that does not pass its own ``timeout=``.
    """

    def __init__(self, transport: Transport, *,
                 default_timeout: float | None = None):
        self.transport = transport
        self.default_timeout = default_timeout

    # -- constructors --------------------------------------------------------

    @classmethod
    def in_process(cls, *, default_timeout: float | None = None,
                   **service_kwargs) -> "Client":
        """A client over a fresh embedded :class:`AnalysisService`
        (``workers=``, ``max_pending=``, ``cache=``, ``verify_on_hit=``
        pass through)."""
        return cls(InProcessTransport(**service_kwargs),
                   default_timeout=default_timeout)

    @classmethod
    def sharded(cls, *, default_timeout: float | None = None,
                **service_kwargs) -> "Client":
        """A client over a fresh sharded tier (``shards=``,
        ``workers_per_shard=``, ``warm_source=``, … pass through to
        :class:`~repro.service.sharded.ShardedService`)."""
        return cls(ShardedTransport(**service_kwargs),
                   default_timeout=default_timeout)

    # -- the verbs -----------------------------------------------------------

    def _run(self, request: Request, timeout: float | None) -> Reply:
        if timeout is None:
            timeout = self.default_timeout
        pending = self.transport.submit(request, timeout=timeout)
        result = pending.result()
        request_id = getattr(pending, "request_id", None)
        if request_id is None:
            # in-process replies carry the id on their RequestContext
            request_id = getattr(
                getattr(pending, "context", None), "request_id", None
            )
        return _typed_reply(result, request_id)

    def decompose(self, subject, *, closure=None, alphabet=None,
                  certify: bool = False,
                  timeout: float | None = None) -> DecomposeReply:
        """Decompose ``subject`` into safety ∧ liveness; with
        ``certify=True`` the reply carries a machine-checkable
        certificate (and is **not idempotent** for redelivery purposes
        on the sharded transport — see :mod:`repro.service.sharded`)."""
        return self._run(
            DecomposeRequest(subject=subject, closure=closure,
                             alphabet=alphabet, certify=certify),
            timeout,
        )

    def classify(self, subject, *, closure=None, alphabet=None,
                 samples: tuple = (),
                 timeout: float | None = None) -> ClassifyReply:
        """Classify ``subject`` as safety / liveness / both / neither."""
        return self._run(
            ClassifyRequest(subject=subject, closure=closure,
                            alphabet=alphabet, samples=tuple(samples)),
            timeout,
        )

    def check(self, subject, *, closure=None, alphabet=None, witness=None,
              timeout: float | None = None) -> CheckReply:
        """Verify the decomposition identity for ``subject``."""
        return self._run(
            CheckRequest(subject=subject, closure=closure,
                         alphabet=alphabet, witness=witness),
            timeout,
        )

    def monitor(self, subject, *, alphabet=None, events=(),
                horizon: int | None = None,
                timeout: float | None = None) -> MonitorReply:
        """Monitor a finite trace of ``events`` against the LTL policy
        ``subject`` over ``alphabet``, under a finitary liveness
        ``horizon`` (``None`` = unbounded waits).  On the sharded
        transport all traces of one policy route to one shard (by the
        policy's canonical key), so its compiled monitor is built once
        fleet-wide."""
        return self._run(
            MonitorRequest(subject=subject, alphabet=alphabet,
                           events=tuple(events), horizon=horizon),
            timeout,
        )

    def submit(self, request: Request, *, timeout: float | None = None):
        """Escape hatch: dispatch a pre-built request, returning the
        transport's pending handle (for callers that overlap waits)."""
        if timeout is None:
            timeout = self.default_timeout
        return self.transport.submit(request, timeout=timeout)

    # -- operations ----------------------------------------------------------

    def warm_start(self, source) -> int:
        """Replay a recorded JSON workload (path, JSON string, or dict)
        into the deployment's cache — every shard's, on the sharded
        transport.  Returns the number of workload requests."""
        return self.transport.warm_start(source)

    def readiness(self) -> dict:
        """The deployment's ``/readyz`` state."""
        return self.transport.readiness()

    def snapshot(self) -> dict:
        """The deployment's metrics snapshot (shard-aggregated when
        sharded)."""
        return self.transport.snapshot()

    def close(self) -> None:
        """Shut down the underlying service iff this client's transport
        owns it (borrowed services are left running)."""
        self.transport.close()

    def __enter__(self) -> "Client":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __repr__(self) -> str:
        return f"Client({type(self.transport).__name__})"
