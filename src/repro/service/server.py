"""The concurrent analysis server.

:class:`AnalysisService` is the serving-shaped front of the whole
reproduction: clients submit typed requests (:mod:`.requests`), a
bounded admission gate keeps the in-flight set finite (full ⇒
:class:`~repro.service.requests.ServiceOverloaded` at submit time,
never a silent block), the shared :class:`~repro.rv.pool.WorkerPool`
runs the analyses, and a canonical-key LRU (:mod:`.cache`) answers
repeats — including repeats up to state renaming — without recomputing.

Graceful degradation, in order of preference:

* **overload** — the queue bound rejects new work at the door;
* **timeout** — a per-request deadline bounds how long a caller waits:
  expired-before-compute requests are never computed, and
  :meth:`PendingReply.result` stops waiting at the deadline (the
  computation itself is not preempted — Python threads can't be — so a
  late result still lands in the cache for the next asker);
* **uncacheable** — subjects the canonicalizer gives up on are computed
  uncached rather than risking a collision.

Instrumented throughout via :mod:`repro.obs`: request/outcome counters,
cache hit/miss counters, an in-flight gauge, per-kind latency
histograms, and ``service.enqueue → service.compute → service.reply``
spans (explicit cross-thread parenting, as in the rv engine).
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import Future
from concurrent.futures import TimeoutError as _FutureTimeout

from repro.obs.metrics import REGISTRY
from repro.obs.trace import NULL_SPAN, NULL_TRACER

from repro.rv.pool import WorkerPool

from . import handlers
from .cache import ResultCache
from .requests import (
    Request,
    ServiceClosed,
    ServiceError,
    ServiceOverloaded,
    ServiceResult,
    ServiceTimeout,
)

#: Serving observability (naming per DESIGN.md: repro_<pkg>_<name>_<unit>).
_REQUESTS = REGISTRY.counter(
    "repro_service_requests_total",
    "requests completed, by kind and outcome (ok/error/timeout)",
    ("kind", "outcome"),
)
_REJECTED = REGISTRY.counter(
    "repro_service_rejected_total",
    "requests refused at admission, by kind and cause (overload/closed)",
    ("kind", "cause"),
)
_CACHE_EVENTS = REGISTRY.counter(
    "repro_service_cache_events_total",
    "memo-LRU outcomes per computed request "
    "(hit/miss/uncacheable/rejected)",
    ("kind", "event"),
)
_TIMEOUTS = REGISTRY.counter(
    "repro_service_timeouts_total", "request deadlines seen expired", ("kind",)
)
_QUEUE_DEPTH = REGISTRY.gauge(
    "repro_service_queue_depth_count", "requests admitted but not yet finished"
)
_LATENCY = REGISTRY.histogram(
    "repro_service_request_seconds",
    "submit→compute-done wall time per request",
    ("kind",),
)


class PendingReply:
    """One submitted request's reply slot (a future with deadline
    semantics and a ``service.reply`` span on retrieval)."""

    __slots__ = ("request", "deadline", "_tracer", "_enqueue_span",
                 "_compute_span", "_future")

    def __init__(self, request: Request, deadline: float | None, tracer, enqueue_span):
        self.request = request
        self.deadline = deadline
        self._tracer = tracer
        self._enqueue_span = enqueue_span
        self._compute_span = NULL_SPAN
        self._future: Future | None = None

    def done(self) -> bool:
        return self._future is not None and self._future.done()

    def result(self, timeout: float | None = None) -> ServiceResult:
        """Wait for the reply.

        Waits at most ``timeout`` seconds and never past the request's
        own deadline; raises :class:`ServiceTimeout` if neither yields a
        reply in time.  Compute errors re-raise here unchanged."""
        remaining = timeout
        if self.deadline is not None:
            until_deadline = self.deadline - time.perf_counter()
            remaining = (
                until_deadline
                if remaining is None
                else min(remaining, until_deadline)
            )
        if remaining is not None and remaining <= 0 and not self.done():
            _TIMEOUTS.labels(kind=self.request.kind).add()
            raise ServiceTimeout(
                f"{self.request.kind} request deadline expired"
            )
        try:
            result = self._future.result(remaining)
        except _FutureTimeout:
            _TIMEOUTS.labels(kind=self.request.kind).add()
            raise ServiceTimeout(
                f"no {self.request.kind} reply within "
                f"{remaining:.3f}s"
            ) from None
        parent = (
            self._compute_span
            if self._compute_span.recording
            else self._enqueue_span
        )
        if self._tracer.enabled and parent.recording:
            with self._tracer.span(
                "service.reply", parent=parent, kind=self.request.kind
            ) as span:
                span.set(cached=result.cached)
        return result


class AnalysisService:
    """A shared, thread-safe analysis server (in-process).

    Parameters
    ----------
    workers:
        Pool size for request dispatch (``<= 1`` computes inline inside
        :meth:`submit` — same results, no concurrency).
    max_pending:
        Admission bound on requests in flight; the ``max_pending+1``-th
        concurrent submit raises :class:`ServiceOverloaded`.
    cache:
        The shared :class:`ResultCache` (own instance by default).
    tracer:
        Optional :class:`repro.obs.trace.Tracer`; default off.
    default_timeout:
        Deadline in seconds applied to requests submitted without an
        explicit ``timeout=``; ``None`` means wait forever.
    verify_on_hit:
        When true, a cache hit whose value carries a certificate
        (``DecomposeRequest(certify=True)`` results) is *replayed*
        through the independent :mod:`repro.certs` verifier before being
        returned.  A rejected certificate evicts the poisoned line,
        recomputes fresh, and records a ``rejected`` cache event —
        "why trust a cached result?" answered with a proof, not a hash.
    """

    def __init__(
        self,
        *,
        workers: int = 4,
        max_pending: int = 64,
        cache: ResultCache | None = None,
        tracer=None,
        default_timeout: float | None = None,
        verify_on_hit: bool = False,
    ):
        if max_pending < 1:
            raise ValueError("max_pending must be >= 1")
        self.pool = WorkerPool(workers, thread_name_prefix="svc-worker")
        self.max_pending = max_pending
        self.cache = cache if cache is not None else ResultCache()
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.default_timeout = default_timeout
        self.verify_on_hit = verify_on_hit
        self._lock = threading.Lock()
        self._pending = 0
        self._closed = False

    # -- the request path ---------------------------------------------------

    def submit(self, request: Request, *, timeout: float | None = None) -> PendingReply:
        """Admit one request, returning its :class:`PendingReply`.

        Raises :class:`ServiceOverloaded` when ``max_pending`` requests
        are already in flight and :class:`ServiceClosed` after
        :meth:`shutdown` — both *before* any work is queued."""
        if not isinstance(request, Request):
            raise TypeError(
                f"submit() takes a Request, not {type(request).__name__!r}"
            )
        with self._lock:
            if self._closed:
                _REJECTED.labels(kind=request.kind, cause="closed").add()
                raise ServiceClosed("service is shut down")
            if self._pending >= self.max_pending:
                _REJECTED.labels(kind=request.kind, cause="overload").add()
                raise ServiceOverloaded(
                    f"{self._pending} requests already in flight "
                    f"(max_pending={self.max_pending})"
                )
            self._pending += 1
            depth = self._pending
        _QUEUE_DEPTH.add(1)
        submitted_at = time.perf_counter()
        if timeout is None:
            timeout = self.default_timeout
        deadline = None if timeout is None else submitted_at + timeout
        enqueue_span = NULL_SPAN
        if self.tracer.enabled:
            with self.tracer.span(
                "service.enqueue", kind=request.kind
            ) as enqueue_span:
                enqueue_span.set(pending=depth)
        reply = PendingReply(request, deadline, self.tracer, enqueue_span)
        try:
            reply._future = self.pool.submit(
                self._process, request, deadline, submitted_at, reply
            )
        except BaseException as exc:
            # submit() can race shutdown(): _closed is checked under the
            # lock, but the executor may be shut down before this call
            # lands.  Roll back admission so neither the pending count
            # nor the depth gauge leaks, and surface the service's own
            # closed error instead of a raw executor RuntimeError.
            with self._lock:
                self._pending -= 1
            _QUEUE_DEPTH.sub(1)
            _REJECTED.labels(kind=request.kind, cause="closed").add()
            raise ServiceClosed(
                "service shut down while the request was being admitted"
            ) from exc
        return reply

    def request(self, request: Request, *, timeout: float | None = None) -> ServiceResult:
        """Submit and wait: ``submit(...).result()`` in one call."""
        return self.submit(request, timeout=timeout).result()

    def _process(
        self, request: Request, deadline: float | None,
        submitted_at: float, reply: PendingReply,
    ) -> ServiceResult:
        kind = request.kind
        span = NULL_SPAN
        if self.tracer.enabled:
            span = self.tracer.span(
                "service.compute", parent=reply._enqueue_span, kind=kind
            )
        try:
            with span:
                reply._compute_span = span
                if deadline is not None and time.perf_counter() >= deadline:
                    # Shed expired work instead of computing a reply
                    # nobody is waiting for.
                    _TIMEOUTS.labels(kind=kind).add()
                    _REQUESTS.labels(kind=kind, outcome="timeout").add()
                    span.set(outcome="expired")
                    raise ServiceTimeout(
                        f"{kind} request deadline expired before compute"
                    )
                try:
                    key = handlers.cache_key(request)
                    value, hit = self.cache.get_or_compute(
                        key, lambda: handlers.compute(request)
                    )
                    event = "hit" if hit else ("miss" if key else "uncacheable")
                    if hit and self.verify_on_hit:
                        value, hit, event = self._replay_hit(request, key, value)
                except ServiceError:
                    raise
                except BaseException:
                    _REQUESTS.labels(kind=kind, outcome="error").add()
                    span.set(outcome="error")
                    raise
                _CACHE_EVENTS.labels(kind=kind, event=event).add()
                elapsed = time.perf_counter() - submitted_at
                _LATENCY.labels(kind=kind).record(elapsed)
                _REQUESTS.labels(kind=kind, outcome="ok").add()
                span.set(outcome="ok", cache=event)
                return ServiceResult(
                    request=request,
                    value=value,
                    cached=hit,
                    key=key,
                    elapsed_seconds=elapsed,
                )
        finally:
            with self._lock:
                self._pending -= 1
            _QUEUE_DEPTH.sub(1)

    def _replay_hit(self, request: Request, key: str | None, value):
        """Re-verify a certificate-bearing cache hit before serving it.

        Values without a certificate pass through untouched (there is
        nothing to replay).  A certificate the independent verifier
        rejects means the cache line cannot be trusted — evict it,
        recompute fresh, and re-insert the new value."""
        certificate = getattr(value, "certificate", None)
        if certificate is None:
            return value, True, "hit"
        from repro.certs import verify_certificate

        if verify_certificate(certificate).ok:
            return value, True, "hit"
        self.cache.invalidate(key)
        value = handlers.compute(request)
        if key is not None:
            self.cache.put(key, value)
        return value, False, "rejected"

    # -- queries ------------------------------------------------------------

    @property
    def pending(self) -> int:
        """Requests admitted but not yet finished."""
        with self._lock:
            return self._pending

    def snapshot(self) -> dict:
        """A stats dashboard: cache counters + in-flight depth."""
        info = self.cache.info()
        return {
            "pending": self.pending,
            "max_pending": self.max_pending,
            "workers": self.pool.workers,
            "cache_hits": info.hits,
            "cache_misses": info.misses,
            "cache_size": info.size,
            "cache_maxsize": info.maxsize,
            "cache_hit_ratio": info.hit_ratio,
        }

    # -- lifecycle ----------------------------------------------------------

    def shutdown(self, wait: bool = True) -> None:
        """Refuse new requests, then (by default) drain in-flight ones."""
        with self._lock:
            self._closed = True
        self.pool.shutdown(wait=wait)

    def __enter__(self) -> "AnalysisService":
        return self

    def __exit__(self, *exc) -> None:
        self.shutdown()
