"""The concurrent analysis server.

:class:`AnalysisService` is the serving-shaped front of the whole
reproduction: clients submit typed requests (:mod:`.requests`), a
bounded admission gate keeps the in-flight set finite (full ⇒
:class:`~repro.service.requests.ServiceOverloaded` at submit time,
never a silent block), the shared :class:`~repro.rv.pool.WorkerPool`
runs the analyses, and a canonical-key LRU (:mod:`.cache`) answers
repeats — including repeats up to state renaming — without recomputing.

Graceful degradation, in order of preference:

* **overload** — the queue bound rejects new work at the door;
* **timeout** — a per-request deadline bounds how long a caller waits:
  expired-before-compute requests are never computed, and
  :meth:`PendingReply.result` stops waiting at the deadline (the
  computation itself is not preempted — Python threads can't be — so a
  late result still lands in the cache for the next asker);
* **uncacheable** — subjects the canonicalizer gives up on are computed
  uncached rather than risking a collision.

Observability is two-plane.  Metrics and spans (:mod:`repro.obs`) as
before: request/outcome counters, cache hit/miss counters, an in-flight
gauge, per-kind latency histograms, ``service.enqueue →
service.compute → service.reply`` spans.  New in the ops plane
(:mod:`repro.ops`): every admitted request gets a
:class:`~repro.obs.context.RequestContext` — a trace id, deadline and
origin carried through the worker pool into handler compute, so kernel
:class:`~repro.obs.profile.PhaseTimer` samples attribute to *this
request* — the live in-flight table (:meth:`AnalysisService.inflight`)
shows each request's phase breakdown mid-flight, requests slower than
``slow_threshold`` land in a retained slow-log with their full phase
accounting, and every lifecycle edge (admitted / shed / timed out /
done, cache outcome, certificate verdict) is journaled with the
request id as correlation key.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from concurrent.futures import Future
from concurrent.futures import TimeoutError as _FutureTimeout

from repro.obs.context import RequestContext, use_context
from repro.obs.metrics import REGISTRY
from repro.obs.trace import NULL_SPAN, NULL_TRACER

from repro.ops.journal import DEBUG, INFO, JOURNAL, WARN, EventJournal
from repro.rv.pool import WorkerPool

from . import handlers
from .cache import ResultCache
from .requests import (
    Request,
    ServiceClosed,
    ServiceError,
    ServiceOverloaded,
    ServiceResult,
    ServiceTimeout,
)

#: Serving observability (naming per DESIGN.md: repro_<pkg>_<name>_<unit>).
_REQUESTS = REGISTRY.counter(
    "repro_service_requests_total",
    "requests completed, by kind and outcome (ok/error/timeout)",
    ("kind", "outcome"),
)
_REJECTED = REGISTRY.counter(
    "repro_service_rejected_total",
    "requests refused at admission, by kind and cause (overload/closed)",
    ("kind", "cause"),
)
_CACHE_EVENTS = REGISTRY.counter(
    "repro_service_cache_events_total",
    "memo-LRU outcomes per computed request "
    "(hit/miss/uncacheable/rejected)",
    ("kind", "event"),
)
_TIMEOUTS = REGISTRY.counter(
    "repro_service_timeouts_total", "request deadlines seen expired", ("kind",)
)
_QUEUE_DEPTH = REGISTRY.gauge(
    "repro_service_queue_depth_count", "requests admitted but not yet finished"
)
_LATENCY = REGISTRY.histogram(
    "repro_service_request_seconds",
    "submit→compute-done wall time per request",
    ("kind",),
)
_SLOW = REGISTRY.counter(
    "repro_service_slow_requests_total",
    "requests that exceeded the slow-log threshold",
    ("kind",),
)

#: Retained slow-log entries (oldest evicted first).
SLOW_LOG_SIZE = 128


class PendingReply:
    """One submitted request's reply slot (a future with deadline
    semantics and a ``service.reply`` span on retrieval).

    ``context`` is the request's :class:`RequestContext` (``None`` when
    the service runs with ``track_inflight=False``) — poll
    ``reply.context.phases()`` mid-flight for the same breakdown
    ``/debug/inflight`` serves."""

    __slots__ = ("request", "deadline", "context", "_tracer",
                 "_enqueue_span", "_compute_span", "_future", "_journal")

    def __init__(self, request: Request, deadline: float | None, tracer,
                 enqueue_span, context: RequestContext | None = None,
                 journal: EventJournal | None = None):
        self.request = request
        self.deadline = deadline
        self.context = context
        self._tracer = tracer
        self._enqueue_span = enqueue_span
        self._compute_span = NULL_SPAN
        self._future: Future | None = None
        self._journal = journal

    def done(self) -> bool:
        return self._future is not None and self._future.done()

    def add_done_callback(self, fn) -> None:
        """Call ``fn(self)`` once the reply resolves — from whichever
        thread finished the computation, or immediately when it already
        has.  This is the push-style completion hook the sharded tier's
        worker dispatcher uses to stream reply frames without parking a
        thread per request; exceptions from ``fn`` are swallowed by the
        underlying future protocol, so callbacks must not raise."""
        self._future.add_done_callback(lambda _future: fn(self))

    def _note_timeout(self, detail: str) -> None:
        _TIMEOUTS.labels(kind=self.request.kind).add()
        if self._journal is not None:
            self._journal.emit(
                "service.request_timeout", WARN,
                request_id=self.context.request_id if self.context else None,
                kind=self.request.kind, where="result", detail=detail,
            )

    def result(self, timeout: float | None = None) -> ServiceResult:
        """Wait for the reply.

        Waits at most ``timeout`` seconds and never past the request's
        own deadline; raises :class:`ServiceTimeout` if neither yields a
        reply in time.  Compute errors re-raise here unchanged."""
        remaining = timeout
        if self.deadline is not None:
            until_deadline = self.deadline - time.perf_counter()
            remaining = (
                until_deadline
                if remaining is None
                else min(remaining, until_deadline)
            )
        if remaining is not None and remaining <= 0 and not self.done():
            self._note_timeout("deadline expired before wait")
            raise ServiceTimeout(
                f"{self.request.kind} request deadline expired"
            )
        try:
            result = self._future.result(remaining)
        except _FutureTimeout:
            self._note_timeout("no reply within wait budget")
            raise ServiceTimeout(
                f"no {self.request.kind} reply within "
                f"{remaining:.3f}s"
            ) from None
        parent = (
            self._compute_span
            if self._compute_span.recording
            else self._enqueue_span
        )
        if self._tracer.enabled and parent.recording:
            with self._tracer.span(
                "service.reply", parent=parent, kind=self.request.kind
            ) as span:
                span.set(cached=result.cached)
        return result


class AnalysisService:
    """A shared, thread-safe analysis server (in-process).

    Parameters
    ----------
    workers:
        Pool size for request dispatch (``<= 1`` computes inline inside
        :meth:`submit` — same results, no concurrency).
    max_pending:
        Admission bound on requests in flight; the ``max_pending+1``-th
        concurrent submit raises :class:`ServiceOverloaded`.
    cache:
        The shared :class:`ResultCache` (own instance by default).
    tracer:
        Optional :class:`repro.obs.trace.Tracer`; default off.
    default_timeout:
        Deadline in seconds applied to requests submitted without an
        explicit ``timeout=``; ``None`` means wait forever.
    verify_on_hit:
        When true, a cache hit whose value carries a certificate
        (``DecomposeRequest(certify=True)`` results) is *replayed*
        through the independent :mod:`repro.certs` verifier before being
        returned.  A rejected certificate evicts the poisoned line,
        recomputes fresh, and records a ``rejected`` cache event —
        "why trust a cached result?" answered with a proof, not a hash.
    journal:
        The :class:`~repro.ops.journal.EventJournal` lifecycle events go
        to (the process-wide :data:`~repro.ops.journal.JOURNAL` by
        default; ``None`` disables journaling entirely).
    slow_threshold:
        Requests whose submit→done wall time meets or exceeds this many
        seconds are recorded in :meth:`slow_log` with their phase
        breakdown and journaled at ``warn``.  ``None`` (default)
        disables the slow-log.
    track_inflight:
        When true (default), every admitted request carries a
        :class:`RequestContext` — the id/deadline/phase record behind
        :meth:`inflight`, the slow-log and kernel-phase attribution.
        ``False`` turns the whole context plane off (the
        ``BENCH_obs_overhead.json`` baseline configuration).
    """

    def __init__(
        self,
        *,
        workers: int = 4,
        max_pending: int = 64,
        cache: ResultCache | None = None,
        tracer=None,
        default_timeout: float | None = None,
        verify_on_hit: bool = False,
        journal: EventJournal | None = JOURNAL,
        slow_threshold: float | None = None,
        track_inflight: bool = True,
    ):
        if max_pending < 1:
            raise ValueError("max_pending must be >= 1")
        if slow_threshold is not None and slow_threshold < 0:
            raise ValueError("slow_threshold must be >= 0")
        self.pool = WorkerPool(
            workers, thread_name_prefix="svc-worker", journal=journal
        )
        self.max_pending = max_pending
        self.cache = cache if cache is not None else ResultCache(journal=journal)
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.default_timeout = default_timeout
        self.verify_on_hit = verify_on_hit
        self.journal = journal
        self.slow_threshold = slow_threshold
        self.track_inflight = track_inflight
        self._lock = threading.Lock()
        self._pending = 0
        self._closed = False
        self._inflight: dict[str, RequestContext] = {}
        self._slow: deque[dict] = deque(maxlen=SLOW_LOG_SIZE)

    # -- journal plumbing ----------------------------------------------------

    def _emit(self, name: str, level: int = INFO,
              request_id: str | None = None, **fields) -> None:
        if self.journal is not None:
            self.journal.emit(name, level, request_id=request_id, **fields)

    # -- the request path ---------------------------------------------------

    def submit(self, request: Request, *, timeout: float | None = None,
               origin: str = "local",
               request_id: str | None = None) -> PendingReply:
        """Admit one request, returning its :class:`PendingReply`.

        Raises :class:`ServiceOverloaded` when ``max_pending`` requests
        are already in flight and :class:`ServiceClosed` after
        :meth:`shutdown` — both *before* any work is queued.  ``origin``
        tags the request's context (e.g. ``"http"`` for a fronting
        gateway) for the in-flight table and slow-log.  ``request_id``
        adopts a caller-minted trace id instead of minting a fresh one —
        the sharded router passes its client-side id here, so a request
        is traceable shard-side under the same id it carries in the
        router (ignored when ``track_inflight=False``: there is no
        context to carry it)."""
        if not isinstance(request, Request):
            raise TypeError(
                f"submit() takes a Request, not {type(request).__name__!r}"
            )
        submitted_at = time.perf_counter()
        if timeout is None:
            timeout = self.default_timeout
        deadline = None if timeout is None else submitted_at + timeout
        context = None
        journal = self.journal
        if self.track_inflight:
            # created before the admission lock (wasted work only on the
            # rare reject) so registration shares the lock acquisition
            context = RequestContext(
                kind=request.kind, origin=origin, deadline=deadline,
                request_id=request_id,
            )
        rejected_cause = None
        with self._lock:
            if self._closed:
                rejected_cause = "closed"
            elif self._pending >= self.max_pending:
                rejected_cause = "overload"
                depth = self._pending
            else:
                self._pending += 1
                depth = self._pending
                if context is not None:
                    self._inflight[context.request_id] = context
        if rejected_cause == "closed":
            _REJECTED.labels(kind=request.kind, cause="closed").add()
            self._emit("service.request_shed", WARN,
                       kind=request.kind, cause="closed")
            raise ServiceClosed("service is shut down")
        if rejected_cause == "overload":
            _REJECTED.labels(kind=request.kind, cause="overload").add()
            self._emit("service.request_shed", WARN,
                       kind=request.kind, cause="overload", pending=depth)
            raise ServiceOverloaded(
                f"{depth} requests already in flight "
                f"(max_pending={self.max_pending})"
            )
        _QUEUE_DEPTH.add(1)
        # admission is per-request chatter → debug; the level check
        # here keeps the production posture to one compare
        if (context is not None and journal is not None
                and journal.min_level <= DEBUG):
            journal.emit("service.request_admitted", DEBUG,
                         request_id=context.request_id,
                         kind=request.kind, origin=origin, pending=depth)
        enqueue_span = NULL_SPAN
        if self.tracer.enabled:
            with self.tracer.span(
                "service.enqueue", kind=request.kind
            ) as enqueue_span:
                enqueue_span.set(pending=depth)
        reply = PendingReply(request, deadline, self.tracer, enqueue_span,
                             context, self.journal)
        try:
            reply._future = self.pool.submit(
                self._process, request, deadline, submitted_at, reply
            )
        except BaseException as exc:
            # submit() can race shutdown(): _closed is checked under the
            # lock, but the executor may be shut down before this call
            # lands.  Roll back admission so neither the pending count
            # nor the depth gauge leaks, and surface the service's own
            # closed error instead of a raw executor RuntimeError.
            with self._lock:
                self._pending -= 1
                if context is not None:
                    self._inflight.pop(context.request_id, None)
            _QUEUE_DEPTH.sub(1)
            _REJECTED.labels(kind=request.kind, cause="closed").add()
            self._emit("service.request_shed", WARN,
                       request_id=context.request_id if context else None,
                       kind=request.kind, cause="closed")
            raise ServiceClosed(
                "service shut down while the request was being admitted"
            ) from exc
        return reply

    def request(self, request: Request, *, timeout: float | None = None,
                origin: str = "local") -> ServiceResult:
        """Submit and wait: ``submit(...).result()`` in one call."""
        return self.submit(request, timeout=timeout, origin=origin).result()

    def _process(
        self, request: Request, deadline: float | None,
        submitted_at: float, reply: PendingReply,
    ) -> ServiceResult:
        kind = request.kind
        context = reply.context
        request_id = context.request_id if context is not None else None
        span = NULL_SPAN
        if self.tracer.enabled:
            span = self.tracer.span(
                "service.compute", parent=reply._enqueue_span, kind=kind
            )
        picked_up = time.perf_counter()
        if context is not None:
            # Phase 1 of the wall-time partition: submit → worker pickup.
            context.note_phase("queue", picked_up - submitted_at)
        try:
            with span, use_context(context):
                reply._compute_span = span
                if deadline is not None and picked_up >= deadline:
                    # Shed expired work instead of computing a reply
                    # nobody is waiting for.
                    _TIMEOUTS.labels(kind=kind).add()
                    _REQUESTS.labels(kind=kind, outcome="timeout").add()
                    span.set(outcome="expired")
                    self._emit("service.request_timeout", WARN,
                               request_id=request_id, kind=kind,
                               where="worker",
                               detail="deadline expired before compute")
                    raise ServiceTimeout(
                        f"{kind} request deadline expired before compute"
                    )
                try:
                    key = handlers.cache_key(request)
                    compute_started = time.perf_counter()
                    try:
                        value, hit = self.cache.get_or_compute(
                            key, lambda: handlers.compute(request)
                        )
                    finally:
                        if context is not None:
                            # Phase 2: cache lookup + (on miss) handler
                            # compute.
                            context.note_phase(
                                "compute",
                                time.perf_counter() - compute_started,
                            )
                    event = "hit" if hit else ("miss" if key else "uncacheable")
                    if hit and self.verify_on_hit:
                        verify_started = time.perf_counter()
                        try:
                            value, hit, event = self._replay_hit(
                                request, key, value, request_id
                            )
                        finally:
                            if context is not None:
                                # Phase 3: certificate replay on hits.
                                context.note_phase(
                                    "verify",
                                    time.perf_counter() - verify_started,
                                )
                except ServiceError:
                    raise
                except BaseException as exc:
                    _REQUESTS.labels(kind=kind, outcome="error").add()
                    span.set(outcome="error")
                    self._emit("service.request_done", WARN,
                               request_id=request_id, kind=kind,
                               outcome="error", error=type(exc).__name__)
                    raise
                _CACHE_EVENTS.labels(kind=kind, event=event).add()
                journal = self.journal
                if journal is not None:
                    # routine cache outcomes are chatter (debug); a
                    # rejected certificate is an anomaly (warn)
                    if event == "rejected":
                        journal.emit("cache.rejected", WARN,
                                     request_id=request_id, kind=kind, key=key)
                    elif journal.min_level <= DEBUG:
                        journal.emit("cache." + event, DEBUG,
                                     request_id=request_id, kind=kind, key=key)
                elapsed = time.perf_counter() - submitted_at
                _LATENCY.labels(kind=kind).record(elapsed)
                _REQUESTS.labels(kind=kind, outcome="ok").add()
                span.set(outcome="ok", cache=event)
                # a healthy completion is chatter too (errors above are
                # warn) — the production posture journals anomalies only
                if journal is not None and journal.min_level <= DEBUG:
                    journal.emit("service.request_done", DEBUG,
                                 request_id=request_id, kind=kind,
                                 outcome="ok", cache=event, elapsed=elapsed)
                if self.slow_threshold is not None:
                    self._note_if_slow(context, kind, elapsed)
                return ServiceResult(
                    request=request,
                    value=value,
                    cached=hit,
                    key=key,
                    elapsed_seconds=elapsed,
                )
        finally:
            with self._lock:
                self._pending -= 1
                if context is not None:
                    self._inflight.pop(context.request_id, None)
            _QUEUE_DEPTH.sub(1)

    def _note_if_slow(self, context: RequestContext | None, kind: str,
                      elapsed: float) -> None:
        """Retain + journal a slow request with its phase evidence."""
        if self.slow_threshold is None or elapsed < self.slow_threshold:
            return
        _SLOW.labels(kind=kind).add()
        entry = {
            "kind": kind,
            "elapsed_seconds": elapsed,
            "threshold_seconds": self.slow_threshold,
        }
        if context is not None:
            entry.update(context.to_dict())
            entry["elapsed_seconds"] = elapsed
        with self._lock:
            self._slow.append(entry)
        self._emit(
            "service.slow_request", WARN,
            request_id=context.request_id if context else None,
            kind=kind, elapsed=round(elapsed, 6),
            threshold=self.slow_threshold,
            phases={k: round(v, 6)
                    for k, v in (context.phases() if context else {}).items()},
        )

    def _replay_hit(self, request: Request, key: str | None, value,
                    request_id: str | None = None):
        """Re-verify a certificate-bearing cache hit before serving it.

        Values without a certificate pass through untouched (there is
        nothing to replay).  A certificate the independent verifier
        rejects means the cache line cannot be trusted — evict it,
        recompute fresh, and re-insert the new value."""
        certificate = getattr(value, "certificate", None)
        if certificate is None:
            return value, True, "hit"
        from repro.certs import verify_certificate

        if verify_certificate(certificate).ok:
            self._emit("cert.verify_pass", request_id=request_id, key=key)
            return value, True, "hit"
        self._emit("cert.verify_fail", WARN, request_id=request_id, key=key)
        self.cache.invalidate(key, rejected=True)
        # _process journals the summary "cache.rejected" outcome event
        value = handlers.compute(request)
        if key is not None:
            self.cache.put(key, value)
        return value, False, "rejected"

    # -- queries ------------------------------------------------------------

    @property
    def pending(self) -> int:
        """Requests admitted but not yet finished."""
        with self._lock:
            return self._pending

    @property
    def closed(self) -> bool:
        """Whether :meth:`shutdown` has been called (liveness probe)."""
        with self._lock:
            return self._closed

    def readiness(self) -> dict:
        """The ``/readyz`` contract: is this instance routable?

        ``ready`` is true iff the service is open *and* the admission
        gate has headroom — a saturated instance reports unready so a
        fronting balancer (or the future sharded tier) steers new work
        elsewhere instead of queuing into guaranteed
        :class:`ServiceOverloaded` rejections."""
        with self._lock:
            pending, closed = self._pending, self._closed
        saturation = pending / self.max_pending
        return {
            "ready": not closed and pending < self.max_pending,
            "closed": closed,
            "pending": pending,
            "max_pending": self.max_pending,
            "saturation": saturation,
            "workers": self.pool.workers,
        }

    def inflight(self) -> list[dict]:
        """The live request table (``/debug/inflight``): one row per
        admitted-but-unfinished request — id, kind, origin, age,
        deadline remaining, and the phase breakdown recorded so far —
        oldest first."""
        with self._lock:
            contexts = list(self._inflight.values())
        rows = [context.to_dict() for context in contexts]
        rows.sort(key=lambda row: row["age_seconds"], reverse=True)
        return rows

    def slow_log(self) -> list[dict]:
        """Retained slow-request entries, oldest first (bounded at
        :data:`SLOW_LOG_SIZE`)."""
        with self._lock:
            return list(self._slow)

    def snapshot(self) -> dict:
        """A stats dashboard: cache counters + in-flight depth."""
        info = self.cache.info()
        return {
            "pending": self.pending,
            "max_pending": self.max_pending,
            "workers": self.pool.workers,
            "cache_hits": info.hits,
            "cache_misses": info.misses,
            "cache_size": info.size,
            "cache_maxsize": info.maxsize,
            "cache_hit_ratio": info.hit_ratio,
        }

    # -- lifecycle ----------------------------------------------------------

    def shutdown(self, wait: bool = True) -> None:
        """Refuse new requests, then (by default) drain in-flight ones."""
        with self._lock:
            already = self._closed
            self._closed = True
        if not already:
            self._emit("service.shutdown", wait=wait)
        self.pool.shutdown(wait=wait)

    def __enter__(self) -> "AnalysisService":
        return self

    def __exit__(self, *exc) -> None:
        self.shutdown()
