"""Typed requests, replies, and failure modes of the analysis service.

A request names *what* to analyze (``subject``) plus the same keyword
context the :func:`repro.analysis.decompose` facade takes (``closure=``
for lattice elements, ``alphabet=`` for LTL formulas, ``samples=`` for
the sampled Rabin classification).  Requests are frozen dataclasses so
they can ride queues and appear in logs safely; none of them is
interpreted until a worker picks it up.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from types import MappingProxyType


class ServiceError(RuntimeError):
    """Base class for analysis-service failures."""


class ServiceOverloaded(ServiceError):
    """The bounded request queue is full — the request was *rejected at
    submission*, never enqueued, so the caller can shed load or retry."""


class ServiceTimeout(ServiceError):
    """The per-request deadline passed before a reply was available."""


class ServiceClosed(ServiceError):
    """The service has been shut down; no further requests are taken."""


@dataclass(frozen=True)
class Request:
    """Common shape of all service requests (see subclasses)."""

    subject: object
    closure: object = None
    alphabet: object = None

    @property
    def kind(self) -> str:
        return KIND_OF[type(self)]

    def to_wire(self) -> dict:
        """This request as a versioned JSON-shaped wire payload
        (:mod:`repro.service.wire` documents the schema and its
        injectivity discipline)."""
        from .wire import encode_request

        return encode_request(self)

    @staticmethod
    def from_wire(payload: dict) -> "Request":
        """Rebuild a request from :meth:`to_wire` output; raises
        :class:`~repro.service.wire.WireError` on version or shape
        mismatches."""
        from .wire import decode_request

        return decode_request(payload)


@dataclass(frozen=True)
class DecomposeRequest(Request):
    """Decompose ``subject`` into safety ∧ liveness
    (:func:`repro.analysis.decompose` dispatch rules).

    ``certify=True`` asks for a machine-checkable
    :class:`repro.certs.Certificate` on the result's ``.certificate``
    attribute; certified and plain answers live on *separate* cache
    lines (``decompose+cert:`` vs ``decompose:``), so a caller who paid
    for a certificate never receives a bare cached answer, and vice
    versa."""

    certify: bool = False


@dataclass(frozen=True)
class ClassifyRequest(Request):
    """Classify ``subject`` as safety / liveness / both / neither.

    ``samples`` (regular trees) are required for Rabin subjects, whose
    exact classification is out of reach (DESIGN.md §4.4)."""

    samples: tuple = field(default=())


@dataclass(frozen=True)
class CheckRequest(Request):
    """Decompose ``subject``, then re-verify the decomposition identity
    — exactly, or against ``witness`` where exactness is unavailable.
    The reply value is the boolean verdict."""

    witness: object = None


@dataclass(frozen=True)
class MonitorRequest(Request):
    """Run the decomposition-driven monitor of ``subject`` (an LTL
    formula over ``alphabet``) over a finite trace of ``events``,
    returning a :class:`~repro.rv.verdicts.MonitorOutcome` — the
    four-valued verdict plus wait statistics.

    ``horizon`` is the finitary-liveness bound (Chatterjee–Fijalkow):
    a wait for the liveness conjunct's good event exceeding it yields
    ``LIVENESS_BOUND_EXCEEDED``; ``None`` leaves waits unbounded.  The
    compiled monitor is cached policy-side (one table per canonical
    formula + alphabet, every horizon shares it); the *answer* cache
    line additionally keys on the trace and horizon."""

    events: tuple = field(default=())
    horizon: int | None = None


KIND_OF = MappingProxyType({
    DecomposeRequest: "decompose",
    ClassifyRequest: "classify",
    CheckRequest: "check",
    MonitorRequest: "monitor",
})


@dataclass(frozen=True)
class ServiceResult:
    """A completed reply: the computed ``value`` plus serving metadata
    (``cached`` tells whether the memo LRU answered, ``key`` is the
    canonical cache key or ``None`` for uncacheable subjects)."""

    request: Request
    value: object
    cached: bool
    key: str | None
    elapsed_seconds: float
