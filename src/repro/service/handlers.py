"""Request interpretation: canonical cache keys and compute functions.

Every request kind maps to (a) a *cache key* — a renaming-invariant
structural hash of everything the answer depends on — and (b) a
*compute* closure over the unified :func:`repro.analysis.decompose`
facade and the :mod:`repro.analysis.classify` functions.

Key-building rules (documented for users in DESIGN.md §8):

* Büchi / Rabin subjects: the automaton's ``canonical_key()`` — the
  alphabet, initial/accepting structure, and full transition relation
  up to state renaming.  For Büchi subjects both the key and the
  compute path run over one memoized dense core
  (``BuchiAutomaton.to_dense()``): the canonical key hashes the dense
  int graph, and the decomposition kernels reuse the same core plus its
  cached reachable/live masks, so a cache miss never re-interns.
* Formulas: the formula's structural ``canonical_key()`` plus the
  sorted alphabet (the same formula over different alphabets denotes
  different languages).
* Lattice elements: a *concrete* (identity-preserving) hash of the
  whole context — element tokens, Hasse diagram, both closure tables,
  and the subject.  Deliberately NOT canonicalized up to renaming: the
  answer is made of concrete elements of the caller's lattice, and in a
  lattice with a nontrivial automorphism fixing bottom/top and
  commuting with the closures (atom-swap on a Boolean algebra under a
  symmetric closure, say), an invariant key would alias two distinct
  subjects onto one line and hand one caller the other's elements.
  Renaming-invariant keys are sound only when the answer is itself
  invariant (languages, classifications) — element-valued answers need
  concrete keys.
* Anything the canonicalizer gives up on (budget exhaustion) — and any
  request carrying sample trees or witnesses — is *uncacheable*: the
  key is ``None`` and the service computes without memoizing.  A cache
  miss, never a wrong answer.
"""

from __future__ import annotations

from repro.analysis.classify import (
    classify_automaton,
    classify_element,
    classify_formula,
    classify_rabin_on_samples,
)
from repro.analysis.decompose import _closure_pair, decompose
from repro.buchi.automaton import BuchiAutomaton
from repro.canonical import CanonicalizationError, digest, stable_token
from repro.ltl.syntax import Formula

from .requests import (
    CheckRequest,
    ClassifyRequest,
    DecomposeRequest,
    MonitorRequest,
    Request,
)


def _is_rabin(subject) -> bool:
    from repro.rabin.automaton import RabinTreeAutomaton

    return isinstance(subject, RabinTreeAutomaton)


def _lattice_context_key(cl1, cl2, subject) -> str:
    """A concrete hash of (lattice, cl1, cl2, subject).

    Identity-preserving on purpose: the decomposition's ``.element`` /
    ``.safety`` / ``.liveness`` are elements *of this lattice*, so two
    contexts may only share a cache line when they are equal on the
    nose.  (A canonical-graph key would conflate subjects swapped by a
    lattice automorphism that fixes bottom/top and commutes with the
    closures, returning one subject's decomposition for the other.)"""
    lattice = cl1.lattice
    if subject not in lattice:
        raise KeyError(f"{subject!r} not in lattice")
    elements = sorted(lattice.elements, key=stable_token)
    context = (
        tuple(stable_token(x) for x in elements),
        tuple(sorted(
            stable_token((lo, hi)) for lo, hi in lattice.poset.hasse_edges()
        )),
        tuple(stable_token((x, cl1(x))) for x in elements),
        tuple(stable_token((x, cl2(x))) for x in elements),
        stable_token(subject),
    )
    return "latctx:" + digest(stable_token(context))


def _subject_key(request: Request) -> str | None:
    """The canonical key of the request's subject + context, or ``None``
    when the request is uncacheable."""
    subject = request.subject
    if isinstance(subject, BuchiAutomaton):
        return subject.canonical_key()
    if isinstance(subject, Formula):
        if request.alphabet is None:
            # Let compute() raise the facade's helpful TypeError.
            return None
        alphabet_token = ",".join(
            sorted(stable_token(a) for a in request.alphabet)
        )
        return subject.canonical_key() + "@" + digest(alphabet_token)
    if _is_rabin(subject):
        return subject.canonical_key()
    if request.closure is not None:
        cl1, cl2 = _closure_pair(request.closure)
        return _lattice_context_key(cl1, cl2, subject)
    return None


def cache_key(request: Request) -> str | None:
    """The full cache key: request kind + subject/context hash.

    Requests carrying unhashable extras (Rabin sample trees, check
    witnesses) are uncacheable — their answers depend on data we do not
    canonicalize."""
    if isinstance(request, ClassifyRequest) and request.samples:
        return None
    if isinstance(request, CheckRequest) and request.witness is not None:
        return None
    try:
        subject_key = _subject_key(request)
    except CanonicalizationError:
        return None
    if subject_key is None:
        return None
    kind = request.kind
    if isinstance(request, MonitorRequest):
        # The answer depends on the trace and the horizon too; the
        # compiled monitor itself is shared across both (the rv compile
        # cache keys on formula + alphabet only).
        try:
            trace_token = stable_token(tuple(request.events))
        except CanonicalizationError:
            return None
        horizon = "none" if request.horizon is None else str(request.horizon)
        return f"{kind}:{subject_key}@h={horizon}@{digest(trace_token)}"
    if getattr(request, "certify", False):
        # Certified results carry a sealed proof payload the plain ones
        # lack; give them their own cache line so the two never alias.
        kind += "+cert"
    return f"{kind}:{subject_key}"


def routing_key(request: Request) -> str | None:
    """The sharded tier's *placement* key — what consistent hashing
    spreads across shards.

    For most requests this is just :func:`cache_key` (answers live on
    the shard that caches them).  Monitor requests route by *policy* —
    the formula + alphabet, ignoring trace and horizon — so every trace
    monitored against one policy lands on the shard whose compile cache
    already holds its tables, instead of scattering one policy's
    monitor across the fleet."""
    if isinstance(request, MonitorRequest):
        try:
            subject_key = _subject_key(request)
        except CanonicalizationError:
            return None
        if subject_key is None:
            return None
        return f"monitor:{subject_key}"
    return cache_key(request)


def compute(request: Request):
    """Actually run the analysis a request names (no caching here)."""
    subject = request.subject
    if isinstance(request, DecomposeRequest):
        return _facade_decompose(request)
    if isinstance(request, MonitorRequest):
        # Imported here, not at module top: repro.rv sits *above* the
        # analysis facade this module otherwise serves, and only the
        # monitor verb needs it.
        from repro.rv.compile import compile_formula

        if not isinstance(subject, Formula):
            raise TypeError(
                "MonitorRequest needs an LTL formula subject (monitors "
                f"compile from formulas, not {type(subject).__name__!r})"
            )
        if request.alphabet is None:
            raise TypeError("MonitorRequest(formula) needs alphabet=")
        alphabet = frozenset(request.alphabet)
        for event in request.events:
            if event not in alphabet:
                raise ValueError(f"event {event!r} outside the alphabet")
        monitor = compile_formula(subject, alphabet)
        return monitor.run_finitary(request.events, horizon=request.horizon)
    if isinstance(request, ClassifyRequest):
        if isinstance(subject, BuchiAutomaton):
            return classify_automaton(subject)
        if isinstance(subject, Formula):
            if request.alphabet is None:
                raise TypeError("ClassifyRequest(formula) needs alphabet=")
            return classify_formula(subject, request.alphabet)
        if _is_rabin(subject):
            if not request.samples:
                raise TypeError(
                    "ClassifyRequest(rabin automaton) needs samples= — "
                    "exact Rabin classification is not available"
                )
            return classify_rabin_on_samples(subject, request.samples)
        if request.closure is None:
            raise TypeError(
                f"don't know how to classify {type(subject).__name__!r}: "
                f"lattice elements need closure="
            )
        cl1, cl2 = _closure_pair(request.closure)
        if cl1 is not cl2:
            raise TypeError(
                "ClassifyRequest takes a single closure; classification "
                "has no two-closure variant"
            )
        return classify_element(cl1.lattice, cl1, subject)
    if isinstance(request, CheckRequest):
        decomposition = _facade_decompose(request)
        if _is_rabin(subject):
            return decomposition.verify(request.witness)
        if request.witness is None:
            return decomposition.verify()
        return decomposition.verify(request.witness)
    raise TypeError(f"unknown request type {type(request).__name__!r}")


def _facade_decompose(request: Request):
    kwargs = {}
    if request.closure is not None:
        kwargs["closure"] = request.closure
    if request.alphabet is not None:
        kwargs["alphabet"] = request.alphabet
    if getattr(request, "certify", False):
        kwargs["certify"] = True
    return decompose(request.subject, **kwargs)
