"""Warm start: pre-populate the service cache from a workload file.

A deployment that restarts cold recomputes its whole working set on the
first wave of traffic.  The fix is the same one ``ncl``-style closure
tables use — replay a recorded workload before serving:

.. code-block:: json

    {"version": 1,
     "requests": [
       {"kind": "decompose", "formula": "G a", "alphabet": ["a", "b"]},
       {"kind": "classify",  "formula": "F a", "alphabet": ["a", "b"]},
       {"kind": "check",     "formula": "a U b", "alphabet": ["a", "b"]}
     ]}

Entries are LTL-based (the one request family with a portable text
serialization — automata and lattices are constructed in code, so their
warm-up happens naturally by submitting them).  Formulas are parsed with
:func:`repro.ltl.parser.parse`; unknown kinds or unparseable formulas
raise :class:`WarmupError` with the offending entry's index, rather than
silently warming a partial cache.
"""

from __future__ import annotations

import json
import warnings
from pathlib import Path
from types import MappingProxyType

from repro.ltl.parser import parse

from .requests import (
    CheckRequest,
    ClassifyRequest,
    DecomposeRequest,
    MonitorRequest,
    Request,
)

_REQUEST_OF = MappingProxyType({
    "decompose": DecomposeRequest,
    "classify": ClassifyRequest,
    "check": CheckRequest,
    "monitor": MonitorRequest,
})


class WarmupError(ValueError):
    """A workload file entry could not be replayed."""


def load_workload_data(source) -> dict:
    """Coerce ``source`` — a path to a JSON file, a JSON string, or an
    already-decoded dict — into the raw workload dict.

    This is the form the sharded router replicates to its workers: raw
    JSON-shaped data travels over the wire, and each shard parses it
    locally with :func:`parse_workload`."""
    if isinstance(source, (str, Path)) and not str(source).lstrip().startswith("{"):
        with open(source, encoding="utf-8") as handle:
            data = json.load(handle)
    elif isinstance(source, str):
        data = json.loads(source)
    else:
        data = source
    if not isinstance(data, dict) or "requests" not in data:
        raise WarmupError("workload must be a dict with a 'requests' list")
    return data


def parse_workload(data: dict) -> list[Request]:
    """Decode a raw workload dict into request objects."""
    if not isinstance(data, dict) or "requests" not in data:
        raise WarmupError("workload must be a dict with a 'requests' list")
    requests = []
    for index, entry in enumerate(data["requests"]):
        kind = entry.get("kind")
        request_type = _REQUEST_OF.get(kind)
        if request_type is None:
            raise WarmupError(
                f"requests[{index}]: unknown kind {kind!r} "
                f"(expected one of {sorted(_REQUEST_OF)})"
            )
        if "formula" not in entry or "alphabet" not in entry:
            raise WarmupError(
                f"requests[{index}]: workload entries need 'formula' and "
                f"'alphabet'"
            )
        try:
            formula = parse(entry["formula"])
        except Exception as exc:
            raise WarmupError(
                f"requests[{index}]: cannot parse formula "
                f"{entry['formula']!r}: {exc}"
            ) from exc
        kwargs: dict = {}
        if request_type is MonitorRequest:
            # Monitor entries may carry a trace and a horizon; a bare
            # entry (no events) still warms the shard's compiled-monitor
            # cache for the policy, which is the expensive part.
            kwargs["events"] = tuple(entry.get("events", ()))
            if entry.get("horizon") is not None:
                kwargs["horizon"] = int(entry["horizon"])
        requests.append(
            request_type(
                subject=formula, alphabet=frozenset(entry["alphabet"]),
                **kwargs,
            )
        )
    return requests


def load_workload(source) -> list[Request]:
    """Parse a workload into request objects.

    ``source`` may be a path to a JSON file, a JSON string, or an
    already-decoded dict of the documented shape."""
    return parse_workload(load_workload_data(source))


def replay_workload(service, requests) -> int:
    """Replay parsed requests through ``service`` synchronously,
    populating its cache; returns the number of requests replayed.
    Deadlines are deliberately not applied — a warm start wants every
    answer."""
    count = 0
    for request in requests:
        service.submit(request).result()
        count += 1
    return count


def warm_start(service, source) -> int:
    """Deprecated spelling of the warm start.

    .. deprecated:: PR 9
        Use :meth:`repro.service.client.Client.warm_start` — the one
        warm-start entry point that works for both in-process and
        sharded deployments (the sharded transport fan-out-replicates
        the workload to every shard; this function can only reach one
        in-process service)."""
    warnings.warn(
        "warm_start(service, source) is deprecated; use "
        "Client.warm_start(source) on a repro.service.client.Client",
        DeprecationWarning,
        stacklevel=2,
    )
    return replay_workload(service, load_workload(source))


def random_workload(
    seed: int,
    count: int = 8,
    n_states: int = 5,
    alphabet=("a", "b"),
) -> list[Request]:
    """A reproducible automaton workload: ``count`` decompose requests
    over seeded random Büchi automata (:mod:`repro.buchi.random_automata`).

    Automata have no portable text serialization, so they cannot live in
    a JSON workload file; this builder fills that gap for benchmarks and
    warm-start tests — the same ``seed`` yields byte-identical requests
    on every run."""
    import random

    from repro.buchi.random_automata import random_automaton

    rng = random.Random(seed)
    return [
        DecomposeRequest(
            subject=random_automaton(rng, n_states, alphabet, name=f"W{i}")
        )
        for i in range(count)
    ]
