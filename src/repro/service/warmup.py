"""Warm start: pre-populate the service cache from a workload file.

A deployment that restarts cold recomputes its whole working set on the
first wave of traffic.  The fix is the same one ``ncl``-style closure
tables use — replay a recorded workload before serving:

.. code-block:: json

    {"version": 1,
     "requests": [
       {"kind": "decompose", "formula": "G a", "alphabet": ["a", "b"]},
       {"kind": "classify",  "formula": "F a", "alphabet": ["a", "b"]},
       {"kind": "check",     "formula": "a U b", "alphabet": ["a", "b"]}
     ]}

Entries are LTL-based (the one request family with a portable text
serialization — automata and lattices are constructed in code, so their
warm-up happens naturally by submitting them).  Formulas are parsed with
:func:`repro.ltl.parser.parse`; unknown kinds or unparseable formulas
raise :class:`WarmupError` with the offending entry's index, rather than
silently warming a partial cache.
"""

from __future__ import annotations

import json
from pathlib import Path
from types import MappingProxyType

from repro.ltl.parser import parse

from .requests import CheckRequest, ClassifyRequest, DecomposeRequest, Request

_REQUEST_OF = MappingProxyType({
    "decompose": DecomposeRequest,
    "classify": ClassifyRequest,
    "check": CheckRequest,
})


class WarmupError(ValueError):
    """A workload file entry could not be replayed."""


def load_workload(source) -> list[Request]:
    """Parse a workload into request objects.

    ``source`` may be a path to a JSON file, a JSON string, or an
    already-decoded dict of the documented shape."""
    if isinstance(source, (str, Path)) and not str(source).lstrip().startswith("{"):
        with open(source, encoding="utf-8") as handle:
            data = json.load(handle)
    elif isinstance(source, str):
        data = json.loads(source)
    else:
        data = source
    if not isinstance(data, dict) or "requests" not in data:
        raise WarmupError("workload must be a dict with a 'requests' list")
    requests = []
    for index, entry in enumerate(data["requests"]):
        kind = entry.get("kind")
        request_type = _REQUEST_OF.get(kind)
        if request_type is None:
            raise WarmupError(
                f"requests[{index}]: unknown kind {kind!r} "
                f"(expected one of {sorted(_REQUEST_OF)})"
            )
        if "formula" not in entry or "alphabet" not in entry:
            raise WarmupError(
                f"requests[{index}]: workload entries need 'formula' and "
                f"'alphabet'"
            )
        try:
            formula = parse(entry["formula"])
        except Exception as exc:
            raise WarmupError(
                f"requests[{index}]: cannot parse formula "
                f"{entry['formula']!r}: {exc}"
            ) from exc
        requests.append(
            request_type(
                subject=formula, alphabet=frozenset(entry["alphabet"])
            )
        )
    return requests


def warm_start(service, source) -> int:
    """Replay a workload through ``service`` synchronously, populating
    its cache; returns the number of requests replayed.  Deadlines are
    deliberately not applied — a warm start wants every answer."""
    requests = load_workload(source)
    for request in requests:
        service.submit(request).result()
    return len(requests)


def random_workload(
    seed: int,
    count: int = 8,
    n_states: int = 5,
    alphabet=("a", "b"),
) -> list[Request]:
    """A reproducible automaton workload: ``count`` decompose requests
    over seeded random Büchi automata (:mod:`repro.buchi.random_automata`).

    Automata have no portable text serialization, so they cannot live in
    a JSON workload file; this builder fills that gap for benchmarks and
    warm-start tests — the same ``seed`` yields byte-identical requests
    on every run."""
    import random

    from repro.buchi.random_automata import random_automaton

    rng = random.Random(seed)
    return [
        DecomposeRequest(
            subject=random_automaton(rng, n_states, alphabet, name=f"W{i}")
        )
        for i in range(count)
    ]
