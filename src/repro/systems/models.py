"""Reactive-system models — the paper's motivating application domain.

Section 1 opens with reactive systems: "network protocols, operating
systems, on-board controllers, cache coherence protocols, distributed
databases".  This module builds Kripke models of that zoo:

* :func:`peterson` — Peterson's two-process mutual exclusion;
* :func:`alternating_bit` — the alternating-bit protocol over lossy
  channels;
* :func:`dining_philosophers` — n philosophers (with a reachable
  deadlock, kept as a labeled stutter state);
* :func:`msi_cache` — a two-cache MSI snooping-coherence model;
* :func:`traffic_light` — a two-road junction controller.

States are labeled with frozensets of atomic propositions; specs over
them live in :mod:`repro.systems.specs`.
"""

from __future__ import annotations

from itertools import product

from repro.ctl.kripke import KripkeStructure


def _label(*props: str) -> frozenset:
    return frozenset(props)


def peterson() -> KripkeStructure:
    """Peterson's mutual-exclusion algorithm, fully interleaved.

    Process state: ``idle → want (set flag, yield turn) → wait
    (until other's flag is down or turn is ours) → crit → idle``.
    The label records each process's section, plus ``sched<i>`` for the
    process that moved last (so fairness is expressible in LTL).
    """
    pcs = ("idle", "want", "wait", "crit")
    states = []
    for pc0, pc1, flag0, flag1, turn, last in product(
        pcs, pcs, (False, True), (False, True), (0, 1), (0, 1)
    ):
        states.append((pc0, pc1, flag0, flag1, turn, last))

    def moves(state, i):
        pc0, pc1, flag0, flag1, turn, _last = state
        pc = (pc0, pc1)[i]
        flags = [flag0, flag1]
        out = []
        if pc == "idle":
            out.append(("idle", flags[i], turn))  # keep thinking
            out.append(("want", flags[i], turn))
        elif pc == "want":
            out.append(("wait", True, 1 - i))
        elif pc == "wait":
            other_flag = flags[1 - i]
            if not other_flag or turn == i:
                out.append(("crit", flags[i], turn))
            else:
                out.append(("wait", flags[i], turn))
        else:  # crit
            out.append(("idle", False, turn))
        results = []
        for new_pc, new_flag, new_turn in out:
            new = list(state)
            new[i] = new_pc
            new[2 + i] = new_flag
            new[4] = new_turn
            new[5] = i
            results.append(tuple(new))
        return results

    transitions = {
        s: moves(s, 0) + moves(s, 1) for s in states
    }

    def label(state):
        pc0, pc1, _f0, _f1, _turn, last = state
        props = set()
        if pc0 in ("want", "wait"):
            props.add("want0")
        if pc1 in ("want", "wait"):
            props.add("want1")
        if pc0 == "crit":
            props.add("crit0")
        if pc1 == "crit":
            props.add("crit1")
        props.add(f"sched{last}")
        return frozenset(props)

    initial = ("idle", "idle", False, False, 0, 0)
    reachable = _reach(initial, transitions)
    return KripkeStructure(
        states=reachable,
        initial=initial,
        transitions={s: [t for t in transitions[s] if t in reachable] for s in reachable},
        labels={s: label(s) for s in reachable},
    )


def alternating_bit() -> KripkeStructure:
    """The alternating-bit protocol with lossy message and ack channels.

    State: (sender bit, receiver bit, message channel, ack channel);
    channels hold ``None`` or a bit.  Props: ``send``, ``deliver``,
    ``acked`` (sender advanced to the next payload).
    """
    states = []
    for sbit, rbit, msg, ack in product(
        (0, 1), (0, 1), (None, 0, 1), (None, 0, 1)
    ):
        states.append((sbit, rbit, msg, ack))

    def successors(state):
        sbit, rbit, msg, ack = state
        out = []
        # sender (re)transmits its current bit
        out.append((sbit, rbit, sbit, ack, "send"))
        # message channel loses the message
        if msg is not None:
            out.append((sbit, rbit, None, ack, "lose"))
        # receiver consumes a message
        if msg is not None:
            if msg == rbit:
                # new payload: deliver, flip expected bit, send ack
                out.append((sbit, 1 - rbit, None, msg, "deliver"))
            else:
                # duplicate: re-ack
                out.append((sbit, rbit, None, msg, "dup"))
        # ack channel loses the ack
        if ack is not None:
            out.append((sbit, rbit, msg, None, "lose"))
        # sender consumes an ack
        if ack is not None:
            if ack == sbit:
                out.append((1 - sbit, rbit, msg, None, "acked"))
            else:
                out.append((sbit, rbit, msg, None, "stale"))
        return out

    # fold the action tag into the *target* state so labels can speak
    # about events; the state space becomes (config, last_action)
    tagged_states = set()
    transitions: dict = {}
    initial = ((0, 0, None, None), "start")
    frontier = [initial]
    tagged_states.add(initial)
    while frontier:
        node = frontier.pop()
        config, _tag = node
        succ = []
        for *new_config, tag in successors(config):
            nxt = (tuple(new_config), tag)
            succ.append(nxt)
            if nxt not in tagged_states:
                tagged_states.add(nxt)
                frontier.append(nxt)
        transitions[node] = succ

    def label(node):
        (sbit, _rbit, _msg, _ack), tag = node
        props = {f"bit{sbit}"}
        if tag in ("send",):
            props.add("send")
        if tag == "deliver":
            props.add("deliver")
        if tag == "acked":
            props.add("acked")
        if tag == "lose":
            props.add("loss")
        return frozenset(props)

    return KripkeStructure(
        states=tagged_states,
        initial=initial,
        transitions=transitions,
        labels={s: label(s) for s in tagged_states},
    )


def dining_philosophers(n: int = 3) -> KripkeStructure:
    """``n`` philosophers, each grabbing the left fork then the right.

    The classic deadlock (everyone holds their left fork) is reachable;
    deadlocked states carry the ``deadlock`` prop and stutter (Kripke
    structures are total).  Props: ``eat<i>``, ``hungry<i>``,
    ``deadlock``.
    """
    if n < 2:
        raise ValueError("need at least two philosophers")
    # philosopher phases: t(hink), l(eft fork held), e(ating)
    initial = ("t",) * n

    def fork_holders(state):
        """fork i sits between philosopher i and i+1 (mod n): held by i
        when i is in phase l/e (left fork of i is fork i), held by i-1's
        right when i-1 eats (right fork of j is fork j-1... choose:
        left(i) = fork i, right(i) = fork (i-1) mod n)."""
        held = set()
        for i, phase in enumerate(state):
            if phase in ("l", "e"):
                held.add(i)  # left fork
            if phase == "e":
                held.add((i - 1) % n)  # right fork
        return held

    def successors(state):
        held = fork_holders(state)
        out = []
        for i, phase in enumerate(state):
            left, right = i, (i - 1) % n
            if phase == "t":
                out.append(state[:i] + ("t",) + state[i + 1 :])  # keep thinking
                if left not in held:
                    out.append(state[:i] + ("l",) + state[i + 1 :])
            elif phase == "l":
                if right not in held:
                    out.append(state[:i] + ("e",) + state[i + 1 :])
            else:  # eating -> put both forks down
                out.append(state[:i] + ("t",) + state[i + 1 :])
        deduped = []
        for s in out:
            if s != state and s not in deduped:
                deduped.append(s)
        return deduped

    transitions: dict = {}
    states = set()
    frontier = [initial]
    states.add(initial)
    while frontier:
        s = frontier.pop()
        succ = successors(s)
        if not succ:
            succ = [s]  # deadlock: stutter
        transitions[s] = succ
        for t in succ:
            if t not in states:
                states.add(t)
                frontier.append(t)

    def label(state):
        props = set()
        for i, phase in enumerate(state):
            if phase == "e":
                props.add(f"eat{i}")
            if phase == "l":
                props.add(f"hungry{i}")
        if transitions[state] == [state] and all(p == "l" for p in state):
            props.add("deadlock")
        return frozenset(props)

    return KripkeStructure(
        states=states,
        initial=initial,
        transitions=transitions,
        labels={s: label(s) for s in states},
    )


def msi_cache() -> KripkeStructure:
    """Two caches with MSI snooping coherence over one memory line.

    Per-cache state M(odified)/S(hared)/I(nvalid); events: a cache reads
    (I→S, siblings M→S), writes (→M, siblings →I), or evicts (→I).
    Props: ``m0``, ``m1``, ``s0``, ``s1``, plus the violation marker is
    left to the spec (G ¬(m0 ∧ m1), and no M alongside S).
    """
    states = [(c0, c1) for c0 in "MSI" for c1 in "MSI"]

    def successors(state):
        out = []
        for i in (0, 1):
            mine, other = state[i], state[1 - i]

            def build(new_mine, new_other):
                pair = [None, None]
                pair[i] = new_mine
                pair[1 - i] = new_other
                return (pair[0], pair[1])

            # read
            if mine == "I":
                out.append(build("S", "S" if other == "M" else other))
            # write (upgrade or claim)
            out.append(build("M", "I"))
            # evict
            if mine != "I":
                out.append(build("I", other))
        deduped = []
        for s in out:
            if s not in deduped:
                deduped.append(s)
        return deduped

    def label(state):
        props = set()
        for i in (0, 1):
            if state[i] == "M":
                props.add(f"m{i}")
            if state[i] == "S":
                props.add(f"s{i}")
        return frozenset(props)

    return KripkeStructure(
        states=states,
        initial=("I", "I"),
        transitions={s: successors(s) for s in states},
        labels={s: label(s) for s in states},
    )


def traffic_light() -> KripkeStructure:
    """A two-road junction: the controller alternates green between
    north-south and east-west with an all-red clearance phase."""
    # phases: ns-green, ns-yellow, all-red-1, ew-green, ew-yellow, all-red-2
    order = ["ns_g", "ns_y", "red1", "ew_g", "ew_y", "red2"]
    transitions = {}
    for i, phase in enumerate(order):
        nxt = order[(i + 1) % len(order)]
        targets = [nxt]
        if phase in ("ns_g", "ew_g"):
            targets.append(phase)  # green may persist
        transitions[phase] = targets

    labels = {
        "ns_g": _label("green_ns"),
        "ns_y": _label("yellow_ns"),
        "red1": _label("all_red"),
        "ew_g": _label("green_ew"),
        "ew_y": _label("yellow_ew"),
        "red2": _label("all_red"),
    }
    return KripkeStructure(
        states=order, initial="ns_g", transitions=transitions, labels=labels
    )


def bakery(max_ticket: int = 2) -> KripkeStructure:
    """Lamport's bakery algorithm for two processes, tickets bounded by
    ``max_ticket`` (re-entry is blocked while the counter is saturated,
    keeping the state space finite without changing the safety story).

    Process phases: ``idle → take (draw ticket = max+1) → wait (until
    the other's ticket is 0 or larger/tied-with-higher-id) → crit →
    idle (ticket back to 0)``.  Props: ``want<i>``, ``crit<i>``,
    ``sched<i>``.
    """
    if max_ticket < 1:
        raise ValueError("max_ticket must be >= 1")
    phases = ("idle", "wait", "crit")
    states = [
        (p0, t0, p1, t1, last)
        for p0 in phases
        for t0 in range(max_ticket + 1)
        for p1 in phases
        for t1 in range(max_ticket + 1)
        for last in (0, 1)
    ]

    def moves(state, i):
        p = state[0] if i == 0 else state[2]
        my_ticket = state[1] if i == 0 else state[3]
        other_ticket = state[3] if i == 0 else state[1]
        out = []
        if p == "idle":
            out.append(("idle", 0))
            if other_ticket < max_ticket:  # a fresh larger ticket exists
                out.append(("wait", min(max_ticket, other_ticket + 1)))
        elif p == "wait":
            may_enter = other_ticket == 0 or (
                (my_ticket, i) < (other_ticket, 1 - i)
            )
            out.append(("crit", my_ticket) if may_enter else ("wait", my_ticket))
        else:  # crit
            out.append(("idle", 0))
        results = []
        for new_phase, new_ticket in out:
            new = list(state)
            new[0 if i == 0 else 2] = new_phase
            new[1 if i == 0 else 3] = new_ticket
            new[4] = i
            results.append(tuple(new))
        return results

    transitions = {s: moves(s, 0) + moves(s, 1) for s in states}

    def label(state):
        p0, _t0, p1, _t1, last = state
        props = set()
        if p0 == "wait":
            props.add("want0")
        if p1 == "wait":
            props.add("want1")
        if p0 == "crit":
            props.add("crit0")
        if p1 == "crit":
            props.add("crit1")
        props.add(f"sched{last}")
        return frozenset(props)

    initial = ("idle", 0, "idle", 0, 0)
    reachable = _reach(initial, transitions)
    return KripkeStructure(
        states=reachable,
        initial=initial,
        transitions={
            s: [t for t in transitions[s] if t in reachable] for s in reachable
        },
        labels={s: label(s) for s in reachable},
    )


def token_ring(n: int = 3) -> KripkeStructure:
    """Token-ring leader election / mutual exclusion.

    A single token circulates among ``n`` stations; the holder may work
    in its critical section or pass the token on.  Props: ``token<i>``,
    ``crit<i>``.  Structurally deadlock-free; progress for a fixed
    station is (as always) a fairness question.
    """
    if n < 2:
        raise ValueError("need at least two stations")
    # state: (holder, in_crit)
    states = [(h, c) for h in range(n) for c in (False, True)]

    def successors(state):
        holder, in_crit = state
        out = []
        if in_crit:
            out.append((holder, False))  # leave the critical section
        else:
            out.append((holder, True))  # enter it
            out.append(((holder + 1) % n, False))  # pass the token
        return out

    def label(state):
        holder, in_crit = state
        props = {f"token{holder}"}
        if in_crit:
            props.add(f"crit{holder}")
        return frozenset(props)

    return KripkeStructure(
        states=states,
        initial=(0, False),
        transitions={s: successors(s) for s in states},
        labels={s: label(s) for s in states},
    )


def _reach(initial, transitions) -> set:
    seen = {initial}
    frontier = [initial]
    while frontier:
        s = frontier.pop()
        for t in transitions[s]:
            if t not in seen:
                seen.add(t)
                frontier.append(t)
    return seen
