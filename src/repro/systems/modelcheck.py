"""Automata-theoretic LTL model checking, monolithic and *decomposed*.

The paper's Section 1 motivation: *"the proof methods employed to check
safety properties differ from those used to check liveness
properties"*.  This module makes that concrete:

* :func:`check` — the monolithic check: ``K ⊨ φ`` iff
  ``L(paths(K)) ∩ L(¬φ) = ∅``;
* :func:`check_safety_part` — the safety conjunct of φ's decomposition,
  checked by *reachability*: a violation is a finite **bad prefix**
  (the subset run of the closure automaton dies);
* :func:`check_liveness_part` — the liveness conjunct, checked by
  *lasso search*: a violation is an infinite fair cycle that respects
  every safety obligation yet avoids the good event forever.

Completeness of the split (every monolithic counterexample is caught by
exactly one of the two part-checks) is the Theorem 2 identity
``L(φ) = L(φ_S) ∩ L(φ_L)`` in action, and is asserted by the tests.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.buchi.automaton import BuchiAutomaton
from repro.buchi.closure import closure
from repro.buchi.complement import complement_safety
from repro.buchi.emptiness import find_accepted_word
from repro.buchi.operations import intersection
from repro.ctl.kripke import KripkeStructure
from repro.ltl.syntax import Formula, Not
from repro.ltl.translate import translate
from repro.omega.word import LassoWord


@dataclass(frozen=True)
class VerificationResult:
    """Outcome of a model-checking run."""

    holds: bool
    counterexample: LassoWord | None = None
    bad_prefix: tuple | None = None

    def __bool__(self) -> bool:
        return self.holds


def check(kripke: KripkeStructure, formula: Formula) -> VerificationResult:
    """``K ⊨ φ`` with a lasso counterexample on failure."""
    alphabet = kripke.alphabet()
    negated = translate(Not(formula), alphabet)
    product = intersection(kripke.paths_automaton(), negated)
    witness = find_accepted_word(product)
    if witness is None:
        return VerificationResult(holds=True)
    return VerificationResult(holds=False, counterexample=witness)


def safety_automaton_of(formula: Formula, alphabet) -> BuchiAutomaton:
    """``φ_S`` — the closure automaton of φ (its strongest safety
    consequence, per Theorem 6)."""
    return closure(translate(formula, alphabet))


def check_safety_part(kripke: KripkeStructure, formula: Formula) -> VerificationResult:
    """Check only the safety conjunct ``φ_S``; a violation comes with a
    finite bad prefix (no liveness reasoning involved)."""
    alphabet = kripke.alphabet()
    safety = safety_automaton_of(formula, alphabet)
    bad = complement_safety(safety)
    product = intersection(kripke.paths_automaton(), bad)
    witness = find_accepted_word(product)
    if witness is None:
        return VerificationResult(holds=True)
    prefix = _minimal_bad_prefix(safety, witness)
    return VerificationResult(
        holds=False, counterexample=witness, bad_prefix=prefix
    )


def check_liveness_part(kripke: KripkeStructure, formula: Formula) -> VerificationResult:
    """Check only the liveness conjunct ``φ_L = φ ∪ ¬φ_S``; a violation
    is a lasso that satisfies every safety obligation of φ yet violates
    φ itself — the genuinely "liveness" counterexamples."""
    alphabet = kripke.alphabet()
    negated = translate(Not(formula), alphabet)
    safety = safety_automaton_of(formula, alphabet)
    # ¬φ_L = ¬φ ∩ φ_S — both factors cheap (no general complementation)
    product = intersection(
        kripke.paths_automaton(), intersection(negated, safety)
    )
    witness = find_accepted_word(product)
    if witness is None:
        return VerificationResult(holds=True)
    return VerificationResult(holds=False, counterexample=witness)


@dataclass(frozen=True)
class DecomposedResult:
    """Both part-checks, plus the monolithic verdict they must imply."""

    safety: VerificationResult
    liveness: VerificationResult

    @property
    def holds(self) -> bool:
        return self.safety.holds and self.liveness.holds

    def __bool__(self) -> bool:
        return self.holds


def check_decomposed(kripke: KripkeStructure, formula: Formula) -> DecomposedResult:
    """Run the safety part by reachability and the liveness part by
    lasso search; ``holds`` iff both pass — equivalent to :func:`check`
    by Theorem 2's identity."""
    return DecomposedResult(
        safety=check_safety_part(kripke, formula),
        liveness=check_liveness_part(kripke, formula),
    )


def replay(kripke: KripkeStructure, word: LassoWord) -> tuple[list, list]:
    """A concrete state path of ``kripke`` whose labels spell ``word``.

    Counterexamples come back from the automata layer as label words;
    this maps one back onto model states: returns ``(stem, loop)`` so
    that the infinite path ``stem · loop^ω`` has label word ``word``.
    Raises ``ValueError`` when the word is not a path of the model
    (never the case for checker output).
    """
    from repro.buchi.automaton import _is_cyclic_component, _tarjan

    spine = word.spine_length
    loop_back = len(word.prefix)

    def advance(i: int) -> int:
        return i + 1 if i + 1 < spine else loop_back

    if kripke.label(kripke.initial) != word[0]:
        raise ValueError("word does not start at the initial label")
    start = (kripke.initial, 0)

    # reachable product nodes and their edges
    adjacency: dict = {}
    frontier = [start]
    seen = {start}
    while frontier:
        node = frontier.pop()
        state, position = node
        nxt = advance(position)
        targets = [
            (succ, nxt)
            for succ in kripke.successors(state)
            if kripke.label(succ) == word[nxt]
        ]
        adjacency[node] = targets
        for child in targets:
            if child not in seen:
                seen.add(child)
                frontier.append(child)

    cyclic_nodes: set = set()
    for component in _tarjan(seen, adjacency):
        if _is_cyclic_component(component, adjacency):
            cyclic_nodes |= component
    if not cyclic_nodes:
        raise ValueError("word is not a path of the model")

    anchor = _bfs_path(start, lambda n: n in cyclic_nodes, adjacency)
    loop_nodes = _bfs_cycle(anchor[-1], adjacency)
    stem = [s for s, _i in anchor[:-1]]
    loop = [s for s, _i in loop_nodes]
    return stem, loop


def _bfs_path(start, goal_test, adjacency) -> list:
    if goal_test(start):
        return [start]
    parent = {start: None}
    queue = [start]
    while queue:
        node = queue.pop(0)
        for child in adjacency.get(node, ()):
            if child in parent:
                continue
            parent[child] = node
            if goal_test(child):
                path = [child]
                while parent[path[-1]] is not None:
                    path.append(parent[path[-1]])
                path.reverse()
                return path
            queue.append(child)
    raise ValueError("goal unreachable")


def _bfs_cycle(node, adjacency) -> list:
    """A shortest non-empty cycle through ``node`` (which lies on one)."""
    parent: dict = {}
    queue = []
    for child in adjacency.get(node, ()):
        if child == node:
            return [node]
        if child not in parent:
            parent[child] = None
            queue.append(child)
    while queue:
        current = queue.pop(0)
        for child in adjacency.get(current, ()):
            if child == node:
                path = [current]
                while parent[path[-1]] is not None:
                    path.append(parent[path[-1]])
                path.reverse()
                return [node] + path
            if child not in parent:
                parent[child] = current
                queue.append(child)
    raise ValueError("no cycle through node")


def _minimal_bad_prefix(safety: BuchiAutomaton, word: LassoWord) -> tuple:
    """The shortest prefix of ``word`` that kills every run of the
    safety automaton — the finite refutation safety checking is about."""
    from repro.buchi.emptiness import live_states

    live = live_states(safety)
    prefix: list = []
    position = 0
    current = frozenset({safety.initial})
    while current & live:
        symbol = word[position]
        prefix.append(symbol)
        current = safety.post(current, symbol)
        position += 1
        if position > word.spine_length * (2 ** len(safety.states) + 1):
            raise AssertionError(
                "word claimed bad for the safety automaton never dies"
            )
    return tuple(prefix)
