"""Reactive-system models and automata-theoretic LTL model checking —
the paper's Section 1 motivation made executable."""

from .modelcheck import (
    DecomposedResult,
    VerificationResult,
    check,
    check_decomposed,
    check_liveness_part,
    check_safety_part,
    replay,
    safety_automaton_of,
)
from .models import (
    alternating_bit,
    bakery,
    dining_philosophers,
    msi_cache,
    peterson,
    token_ring,
    traffic_light,
)
from .specs import (
    Spec,
    alternating_bit_specs,
    bakery_specs,
    msi_specs,
    peterson_specs,
    philosophers_specs,
    token_ring_specs,
    traffic_specs,
)

__all__ = [
    "check",
    "check_decomposed",
    "check_safety_part",
    "check_liveness_part",
    "safety_automaton_of",
    "VerificationResult",
    "DecomposedResult",
    "replay",
    "peterson",
    "alternating_bit",
    "dining_philosophers",
    "msi_cache",
    "traffic_light",
    "token_ring",
    "token_ring_specs",
    "bakery",
    "bakery_specs",
    "Spec",
    "peterson_specs",
    "alternating_bit_specs",
    "philosophers_specs",
    "msi_specs",
    "traffic_specs",
]
