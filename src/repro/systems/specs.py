"""Specifications for the system models, with expected verdicts.

Each spec records the property class the paper's framework assigns it
(safety / liveness / neither) and whether the model satisfies it —
ground truth for the tests and the APP1 benchmark rows.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.ctl.kripke import KripkeStructure, prop
from repro.ltl.syntax import And, F, Formula, G, Not, Or, implies


@dataclass(frozen=True)
class Spec:
    """One verification obligation."""

    name: str
    formula: Formula
    kind: str  # "safety" | "liveness" | "neither" (informal expectation)
    should_hold: bool
    comment: str = ""


def peterson_specs(kripke: KripkeStructure) -> list[Spec]:
    alphabet = kripke.alphabet()
    crit0, crit1 = prop("crit0", alphabet), prop("crit1", alphabet)
    want0 = prop("want0", alphabet)
    sched0, sched1 = prop("sched0", alphabet), prop("sched1", alphabet)
    mutex = G(Not(And(crit0, crit1)))
    starvation_free = G(implies(want0, F(crit0)))
    fair = And(G(F(sched0)), G(F(sched1)))
    return [
        Spec("mutual-exclusion", mutex, "safety", True,
             "never both in the critical section"),
        Spec("no-starvation-unfair", starvation_free, "liveness", False,
             "fails: the scheduler may ignore process 0 forever"),
        Spec("no-starvation-fair", implies(fair, starvation_free), "liveness", True,
             "holds under fair scheduling — Peterson's point"),
        Spec("eventual-entry", F(Or(crit0, crit1)), "liveness", False,
             "fails: both processes may think forever"),
    ]


def alternating_bit_specs(kripke: KripkeStructure) -> list[Spec]:
    alphabet = kripke.alphabet()
    deliver = prop("deliver", alphabet)
    acked = prop("acked", alphabet)
    send = prop("send", alphabet)
    loss = prop("loss", alphabet)
    return [
        Spec("delivery-order", G(implies(acked, Not(deliver))), "safety", True,
             "an ack-advance step is never itself a delivery"),
        Spec("eventual-delivery-unfair", G(implies(send, F(deliver))),
             "liveness", False,
             "fails: the channel may drop every message"),
        Spec(
            "eventual-delivery-fair",
            implies(G(F(Not(loss))), G(implies(send, F(Or(deliver, acked))))),
            "liveness",
            False,
            "even excluding pure-loss suffixes the sender may retransmit "
            "while the receiver never runs — scheduling fairness is also "
            "needed",
        ),
    ]


def philosophers_specs(kripke: KripkeStructure) -> list[Spec]:
    alphabet = kripke.alphabet()
    deadlock = prop("deadlock", alphabet)
    eat0 = prop("eat0", alphabet)
    hungry0 = prop("hungry0", alphabet)
    return [
        Spec("deadlock-freedom", G(Not(deadlock)), "safety", False,
             "fails: all-grab-left is reachable — bad prefix exists"),
        Spec("no-concurrent-neighbours", G(Not(And(eat0, prop("eat1", alphabet)))),
             "safety", True, "neighbours share a fork"),
        Spec("phil0-progress", G(implies(hungry0, F(eat0))), "liveness", False,
             "fails without fairness"),
    ]


def msi_specs(kripke: KripkeStructure) -> list[Spec]:
    alphabet = kripke.alphabet()
    m0, m1 = prop("m0", alphabet), prop("m1", alphabet)
    s0, s1 = prop("s0", alphabet), prop("s1", alphabet)
    return [
        Spec("single-writer", G(Not(And(m0, m1))), "safety", True,
             "coherence: never two modified copies"),
        Spec("no-stale-share", G(Not(Or(And(m0, s1), And(m1, s0)))),
             "safety", True, "a modified line is never shared"),
        Spec("write-availability", G(F(Or(m0, m1))), "liveness", False,
             "fails: caches may trade S/I forever"),
    ]


def bakery_specs(kripke: KripkeStructure) -> list[Spec]:
    alphabet = kripke.alphabet()
    crit0, crit1 = prop("crit0", alphabet), prop("crit1", alphabet)
    want0 = prop("want0", alphabet)
    sched0, sched1 = prop("sched0", alphabet), prop("sched1", alphabet)
    fair = And(G(F(sched0)), G(F(sched1)))
    progress = G(implies(want0, F(crit0)))
    return [
        Spec("bakery-mutex", G(Not(And(crit0, crit1))), "safety", True,
             "tickets impose a total order on entry"),
        Spec("bakery-progress-unfair", progress, "liveness", False,
             "fails without fair scheduling"),
        Spec("bakery-progress-fair", implies(fair, progress), "liveness", True,
             "bounded-ticket bakery is starvation-free under fairness"),
    ]


def token_ring_specs(kripke: KripkeStructure, n: int = 3) -> list[Spec]:
    alphabet = kripke.alphabet()
    crit = [prop(f"crit{i}", alphabet) for i in range(n)]
    token0 = prop("token0", alphabet)
    mutex_pairs = [
        G(Not(And(crit[i], crit[j])))
        for i in range(n)
        for j in range(i + 1, n)
    ]
    mutex = mutex_pairs[0]
    for f in mutex_pairs[1:]:
        mutex = And(mutex, f)
    return [
        Spec("token-mutex", mutex, "safety", True,
             "only the token holder can be critical"),
        Spec("single-token", G(_exactly_one_token(alphabet, n)), "safety", True,
             "exactly one station holds the token"),
        Spec("token-returns", G(implies(token0, F(prop("token1", alphabet)))),
             "liveness", False,
             "fails: the holder may hog the token forever"),
    ]


def _exactly_one_token(alphabet, n: int) -> Formula:
    from repro.ltl.syntax import Letter

    good_symbols = [
        s
        for s in alphabet
        if sum(1 for i in range(n) if f"token{i}" in s) == 1
    ]
    return Letter(good_symbols)


def traffic_specs(kripke: KripkeStructure) -> list[Spec]:
    alphabet = kripke.alphabet()
    green_ns = prop("green_ns", alphabet)
    green_ew = prop("green_ew", alphabet)
    return [
        Spec("no-crash", G(Not(And(green_ns, green_ew))), "safety", True,
             "perpendicular roads are never green together"),
        Spec("ns-recurrence", G(F(green_ns)), "liveness", False,
             "fails: a green phase may persist forever"),
        Spec("ew-eventually", F(green_ew), "liveness", False,
             "fails for the same reason"),
    ]
