"""The incremental analysis cache: replay unchanged files' results.

The map step of the runner (:func:`repro.checks.core.analyze_file`) is
a pure function of one file's bytes and the checker's own source — so
its :class:`~repro.checks.core.FileResult` can be stored and replayed.
The cache is a single pickle file holding one entry per analyzed path:

``rel → ((mtime_ns, size, sha256), FileResult)``

Lookup is two-tier:

* **fast path** — if the file's ``mtime_ns`` *and* ``size`` match the
  stored signature, the entry is reused without reading the file;
* **content path** — otherwise the file is hashed; an unchanged sha256
  (e.g. after ``git checkout`` touched the mtime) still hits, and the
  stored stat signature is refreshed so the next run takes the fast
  path again.

The whole cache is invalidated wholesale when the *checker itself*
changes: the pickle carries a token hashing every ``repro/checks/*.py``
source, so editing a rule can never replay stale findings.  Corrupt or
version-skewed cache files are treated as empty, never as errors — the
cache is an accelerator, not a correctness dependency.
"""

from __future__ import annotations

import hashlib
import os
import pickle
from pathlib import Path

CACHE_VERSION = 1

#: Default cache location when ``--cache`` is given without a path.
DEFAULT_CACHE_PATH = ".checks-cache"

_package_token: str | None = None


def package_token() -> str:
    """A hash of the checks package's own sources — the wholesale
    invalidation key (computed once per process)."""
    global _package_token
    if _package_token is None:
        digest = hashlib.sha256()
        package_dir = Path(__file__).parent
        for source in sorted(package_dir.glob("*.py")):
            digest.update(source.name.encode())
            digest.update(source.read_bytes())
        _package_token = digest.hexdigest()
    return _package_token


def _content_hash(path: Path) -> str:
    return hashlib.sha256(path.read_bytes()).hexdigest()


class IncrementalCache:
    """mtime/content-hash keyed store of :class:`FileResult` pickles."""

    def __init__(self, path: str | Path):
        self.path = Path(path)
        self._entries: dict = {}
        self._dirty = False
        self.hits = 0
        self.misses = 0
        self._load()

    def _load(self) -> None:
        try:
            payload = pickle.loads(self.path.read_bytes())
        except (OSError, pickle.UnpicklingError, EOFError, AttributeError,
                ImportError, IndexError):
            return
        if (
            not isinstance(payload, dict)
            or payload.get("version") != CACHE_VERSION
            or payload.get("token") != package_token()
        ):
            return
        self._entries = payload.get("entries", {})

    def _signature(self, path: Path):
        stat = path.stat()
        return stat.st_mtime_ns, stat.st_size

    def get(self, path: Path, rel: str):
        """The cached :class:`FileResult` for ``path``, or ``None``."""
        entry = self._entries.get(rel)
        if entry is None:
            self.misses += 1
            return None
        (mtime_ns, size, digest), result = entry
        try:
            cur_mtime, cur_size = self._signature(path)
        except OSError:
            self.misses += 1
            return None
        if (cur_mtime, cur_size) == (mtime_ns, size):
            self.hits += 1
            return result
        if cur_size == size and _content_hash(path) == digest:
            # content unchanged, stat churned (checkout/copy): refresh
            # the stat signature so the next run takes the fast path
            self._entries[rel] = ((cur_mtime, cur_size, digest), result)
            self._dirty = True
            self.hits += 1
            return result
        self.misses += 1
        return None

    def put(self, path: Path, rel: str, result) -> None:
        try:
            mtime_ns, size = self._signature(path)
        except OSError:
            return
        self._entries[rel] = ((mtime_ns, size, _content_hash(path)), result)
        self._dirty = True

    def save(self) -> None:
        """Atomically persist (write-then-rename); no-op when clean."""
        if not self._dirty:
            return
        payload = {
            "version": CACHE_VERSION,
            "token": package_token(),
            "entries": self._entries,
        }
        tmp = self.path.with_name(self.path.name + ".tmp")
        tmp.write_bytes(pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL))
        os.replace(tmp, self.path)
        self._dirty = False

    def __len__(self) -> int:
        return len(self._entries)
