"""RC010–RC012 — the flow-sensitive concurrency rules.

All three are clients of the same machinery: per function, build the
CFG (:mod:`repro.checks.cfg`), run the lock-set fixpoint
(:mod:`repro.checks.dataflow`), and read findings off the solution;
across functions, resolve call sites through the project call graph
(:mod:`repro.checks.callgraph`).

**RC010 — lock-order deadlock.**  Every acquisition site contributes
edges *held-lock → acquired-lock* to a global lock-order graph
(directly from the lock-set at the site, and interprocedurally when a
call made under a lock reaches a function that acquires another one).
A cycle in that graph is two code paths that take the same locks in
opposite orders — the classic ABBA deadlock — and the finding names a
witness site for **every** edge of the cycle.

**RC011 — blocking call under a lock.**  A call that can block for an
unbounded time (socket/HTTP writes, ``sleep``, pool submission, queue
and future waits, ``serve_forever``) must not run while a lock is
held: whoever else wants that lock now waits on the slow peer too.
Beyond the syntactic matchers, the call graph closes the loop: calling
any function that *transitively* acquires a different lock is also
blocking (it may wait for that lock's holder).  This supersedes
RC009's purely syntactic response-write check with a path-sensitive
one — the lock-set knows whether a lock is actually held at the call,
not just whether the call sits lexically inside a ``with``.

**RC012 — exception-unsafe lock release.**  A lock token still in the
lock-set on the function's *exceptional* exit is a lock that leaks
when an exception escapes: some path acquires it with a bare
``.acquire()`` that no ``with``/``try-finally`` covers.  (``with``
acquisitions cannot leak — the CFG places a release node on the
exception path — and a ``.release()``'s own exception edge drops the
token, so the canonical ``acquire(); try: ... finally: release()``
pattern verifies clean.)

Lock tokens are canonicalized so sites in different functions agree:
``self._lock`` inside ``CompileCache`` (module ``repro.rv.compile``)
becomes ``repro.rv.compile.CompileCache._lock``; a receiver with a
one-hop-known class is qualified by that class; bare names fall back
to module qualification.  Lock-*likeness* is RC001's notion — the
final attribute or name contains ``lock``.
"""

from __future__ import annotations

import ast
from types import MappingProxyType

from .callgraph import (
    CallGraph,
    ModuleIndex,
    SELF_NAMES,
    describe_call,
    index_module,
    local_types,
    module_name,
)
from .cfg import build_cfg, iter_functions
from .core import Finding, ModuleFile, Rule
from .dataflow import LockSetAnalysis, iter_calls, solve_forward
from .rules_imports import _find_cycles

#: Methods that put bytes on an HTTP response (stdlib handler surface
#: plus this repo's ``_respond`` helper) — blocking on a slow client.
_RESPONSE_WRITERS = frozenset({
    "send_response", "send_header", "end_headers", "_respond",
})

#: Method/function names that block regardless of receiver.
_ALWAYS_BLOCKING = frozenset({
    "sleep", "serve_forever", "urlopen", "sendall", "recv", "accept",
    "connect", "select", "wait",
})

#: ``receiver-substring → method names`` that block on that kind of
#: receiver (``pool.submit`` blocks on a full queue; ``thread.join``
#: and ``future.result`` wait for someone else's progress).
_RECEIVER_BLOCKING = MappingProxyType({
    "pool": frozenset({"submit", "join", "map"}),
    "executor": frozenset({"submit", "map", "shutdown"}),
    "thread": frozenset({"join"}),
    "proc": frozenset({"join"}),
    "worker": frozenset({"join"}),
    "queue": frozenset({"get", "put", "join"}),
    "future": frozenset({"result", "exception"}),
    "sock": frozenset({"send", "sendto", "makefile"}),
})

#: Lock-protocol methods: RC010/RC012 territory, never "blocking calls"
#: (every ``with lock:`` would otherwise flag itself).
_LOCK_PROTOCOL = frozenset({"acquire", "release", "locked", "__enter__", "__exit__"})


def _lockish(name: str) -> bool:
    return "lock" in name.lower()


def _receiver_text(expr) -> str:
    try:
        return ast.unparse(expr)
    except Exception:  # pragma: no cover — unparse is total on ast exprs
        return "<expr>"


def _blocking_label(call: ast.Call):
    """``"time.sleep"``-style label when the call matches a blocking
    pattern, else ``None``."""
    func = call.func
    if isinstance(func, ast.Name):
        name = func.id
        if name in _ALWAYS_BLOCKING and name != "wait":
            return name
        return None
    if not isinstance(func, ast.Attribute):
        return None
    method = func.attr
    if method in _LOCK_PROTOCOL:
        return None
    receiver = _receiver_text(func.value)
    label = f"{receiver}.{method}"
    if method in _RESPONSE_WRITERS:
        return label
    if method == "write" and receiver.endswith("wfile"):
        return label
    if method in _ALWAYS_BLOCKING:
        # `.wait()` on a lock-like receiver is a Condition wait —
        # blocking, but waiting *on this lock's condition* is the
        # point; the caller knowingly parks. Everything else flags.
        if method == "wait" and _lockish(receiver):
            return None
        return label
    lowered = receiver.lower()
    for substring, methods in _RECEIVER_BLOCKING.items():
        if substring in lowered and method in methods:
            return label
    return None


# -- lock token canonicalization ---------------------------------------------

def _make_resolver(index: ModuleIndex, class_qual, func_qual: str,
                   types: dict, params: frozenset):
    """A :class:`LockSetAnalysis` resolver closed over one function's
    naming context."""
    mod = index.module

    def resolve_local_type(type_str: str) -> str:
        head = type_str.split(".")[0]
        if type_str in index.class_methods:
            return f"{mod}.{type_str}"
        target = index.imports.get(head)
        if target is not None:
            rest = type_str[len(head):]
            return f"{target}{rest}"
        return type_str

    def owner_of_self() -> str:
        if class_qual is not None:
            return f"{mod}.{class_qual}"
        return f"{mod}.{func_qual}"

    def resolve(expr):
        if isinstance(expr, ast.Name):
            name = expr.id
            if not _lockish(name):
                return None
            if name in types or name in params:
                return f"{mod}.{func_qual}.{name}"
            imported = index.imports.get(name)
            if imported is not None:
                # an imported lock keeps its defining module's token, so
                # sites on both sides of the import agree
                return imported
            return f"{mod}.{name}"
        if isinstance(expr, ast.Attribute):
            attr = expr.attr
            if not _lockish(attr):
                return None
            receiver = expr.value
            if isinstance(receiver, ast.Name):
                if receiver.id in SELF_NAMES:
                    return f"{owner_of_self()}.{attr}"
                type_str = types.get(receiver.id)
                if type_str is not None:
                    return f"{resolve_local_type(type_str)}.{attr}"
                if receiver.id in index.var_types:
                    return (
                        f"{resolve_local_type(index.var_types[receiver.id])}.{attr}"
                    )
                return f"{mod}.{receiver.id}.{attr}"
            if (
                isinstance(receiver, ast.Attribute)
                and isinstance(receiver.value, ast.Name)
                and receiver.value.id in SELF_NAMES
            ):
                attrs = index.class_attrs.get(class_qual or "", {})
                type_str = attrs.get(receiver.attr)
                if type_str is not None:
                    return f"{resolve_local_type(type_str)}.{attr}"
                return f"{owner_of_self()}.{receiver.attr}.{attr}"
            return f"{mod}.{_receiver_text(expr)}"
        return None

    return resolve


# -- the shared per-file pass -------------------------------------------------

class FunctionFlow:
    """One function's flow facts, as the rules consume them."""

    __slots__ = (
        "qual", "global_qual", "class_qual", "rel", "line",
        "direct_acquires", "acquire_sites", "locked_calls",
        "blocking", "raise_leaks",
    )

    def __init__(self, qual, global_qual, class_qual, rel, line):
        self.qual = qual
        self.global_qual = global_qual
        self.class_qual = class_qual
        self.rel = rel
        self.line = line
        #: every token this function may acquire directly
        self.direct_acquires: frozenset = frozenset()
        #: ``(line, token, held-before frozenset, bare)`` per acquisition
        self.acquire_sites: list = []
        #: ``(line, held frozenset, descriptor)`` per call made under a lock
        self.locked_calls: list = []
        #: ``(line, held frozenset, label)`` syntactic blocking hits
        self.blocking: list = []
        #: ``(token, acquire line)`` still held on the exceptional exit
        self.raise_leaks: list = []


class FileFlow:
    """The whole-file condensate: one :class:`ModuleIndex` plus one
    :class:`FunctionFlow` per function.  Computed once per file and
    cached on the :class:`ModuleFile` so RC010/RC011/RC012 share it."""

    __slots__ = ("module", "rel", "index", "functions")

    def __init__(self, module: str, rel: str, index: ModuleIndex, functions: list):
        self.module = module
        self.rel = rel
        self.index = index
        self.functions = functions


def flow_of(module: ModuleFile) -> FileFlow:
    cached = getattr(module, "_flow_cache", None)
    if cached is not None:
        return cached
    flow = _compute_flow(module)
    module._flow_cache = flow
    return flow


def _compute_flow(module: ModuleFile) -> FileFlow:
    index = index_module(module)
    mod = index.module
    functions: list[FunctionFlow] = []
    for qual, class_stack, func in iter_functions(module.tree):
        class_qual = None
        if class_stack:
            # the innermost enclosing class is the longest qual prefix
            # that names a class (handles functions nested in methods)
            parts = qual.split(".")
            for i in range(len(parts) - 1, 0, -1):
                candidate = ".".join(parts[:i])
                if candidate in index.class_methods:
                    class_qual = candidate
                    break
        params = frozenset(
            arg.arg
            for arg in (
                *func.args.posonlyargs, *func.args.args, *func.args.kwonlyargs
            )
        )
        types = local_types(func)
        resolver = _make_resolver(index, class_qual, qual, types, params)
        analysis = LockSetAnalysis(resolver)
        cfg = build_cfg(func, qual)
        solution = solve_forward(cfg, analysis)
        info = FunctionFlow(
            qual=qual,
            global_qual=f"{mod}.{qual}",
            class_qual=class_qual,
            rel=module.rel,
            line=func.lineno,
        )
        acquired_all: set = set()
        bare_acquire_lines: dict = {}
        for node in cfg.nodes:
            stmt = node.stmt
            if stmt is None:
                continue
            fact = solution.input_at(node.id)
            if fact is None:
                continue  # statically dead
            acquired = analysis.acquired_by(stmt)
            bare = not isinstance(stmt, (ast.With, ast.AsyncWith))
            running = set(fact)
            for token in acquired:
                acquired_all.add(token)
                if bare:
                    bare_acquire_lines.setdefault(token, stmt.lineno)
                if token not in running:
                    info.acquire_sites.append(
                        (stmt.lineno, token, frozenset(running), bare)
                    )
                    running.add(token)
            if not fact:
                continue
            for call in iter_calls(stmt):
                label = _blocking_label(call)
                if label is not None:
                    info.blocking.append((call.lineno, fact, label))
                if isinstance(call.func, ast.Attribute) and (
                    call.func.attr in _LOCK_PROTOCOL
                ):
                    continue
                desc = describe_call(call, types=types)
                if desc is not None:
                    info.locked_calls.append((call.lineno, fact, desc))
        info.direct_acquires = frozenset(acquired_all)
        leaked = solution.input_at(cfg.raise_exit)
        if leaked:
            for token in sorted(leaked):
                info.raise_leaks.append(
                    (token, bare_acquire_lines.get(token, func.lineno))
                )
        functions.append(info)
    return FileFlow(module=mod, rel=module.rel, index=index, functions=functions)


def _short(token: str) -> str:
    """``repro.rv.compile.CompileCache._lock`` → ``CompileCache._lock``
    (findings stay readable; the full token is unambiguous but long)."""
    parts = token.split(".")
    return ".".join(parts[-2:]) if len(parts) > 1 else token


# -- RC010 --------------------------------------------------------------------

class LockOrderRule(Rule):
    rule_id = "RC010"
    title = "lock-order deadlock: two paths acquire the same locks in opposite order"
    scope = "src"
    cross_file = True

    def reset(self) -> None:
        #: ``(held, acquired) → (rel, line, qual, how)`` first witness
        self._edges: dict = {}
        self._indexes: list = []
        self._flows: list = []

    def merge(self, other: "LockOrderRule") -> None:
        for edge, where in other._edges.items():
            self._edges.setdefault(edge, where)
        self._indexes.extend(other._indexes)
        self._flows.extend(other._flows)

    def check(self, module: ModuleFile) -> list[Finding]:
        flow = flow_of(module)
        self._indexes.append(flow.index)
        self._flows.append(flow)
        for info in flow.functions:
            for line, token, held, _bare in info.acquire_sites:
                for prior in held:
                    if prior != token:
                        self._edges.setdefault(
                            (prior, token),
                            (info.rel, line, info.global_qual, "acquires"),
                        )
        return []

    def finalize(self) -> list[Finding]:
        graph = CallGraph.build(self._indexes)
        transitive = _transitive_acquires(graph, self._flows)
        for flow in self._flows:
            for info in flow.functions:
                for line, held, desc in info.locked_calls:
                    callee = graph.resolve(flow.module, info.class_qual, desc)
                    if callee is None:
                        continue
                    for token in transitive.get(callee, ()):
                        for prior in held:
                            if prior != token:
                                self._edges.setdefault(
                                    (prior, token),
                                    (
                                        info.rel, line, info.global_qual,
                                        f"calls {callee} which acquires",
                                    ),
                                )
        order: dict[str, set] = {}
        for held, acquired in self._edges:
            order.setdefault(held, set()).add(acquired)
            order.setdefault(acquired, set())
        findings = []
        for scc in _find_cycles(order):
            cycle = _witness_cycle(scc, order)
            if cycle is None:
                continue
            legs = []
            for i, token in enumerate(cycle):
                succ = cycle[(i + 1) % len(cycle)]
                rel, line, qual, how = self._edges[(token, succ)]
                legs.append(
                    f"{_short(token)} -> {_short(succ)} "
                    f"({qual} {how} {_short(succ)} at {rel}:{line})"
                )
            rel, line, _, _ = self._edges[(cycle[0], cycle[1 % len(cycle)])]
            findings.append(Finding(
                path=rel,
                line=line,
                rule=self.rule_id,
                message=(
                    "lock-order cycle (potential deadlock): "
                    + "; ".join(legs)
                ),
            ))
        return findings


def _witness_cycle(scc, graph):
    """An actual directed cycle inside one SCC, as an ordered token
    list (shortest through the first node, BFS)."""
    scc_set = set(scc)
    start = scc[0]
    if len(scc) == 1:
        return [start] if start in graph.get(start, ()) else None
    prev: dict = {}
    frontier = [
        succ for succ in sorted(graph.get(start, ())) if succ in scc_set
    ]
    for succ in frontier:
        prev.setdefault(succ, start)
    while frontier:
        next_frontier = []
        for current in frontier:
            if current == start:
                continue
            for succ in sorted(graph.get(current, ())):
                if succ == start:
                    # close the cycle: walk prev back to start
                    path = [current]
                    while path[-1] != start:
                        path.append(prev[path[-1]])
                    path.reverse()
                    return path
                if succ in scc_set and succ not in prev:
                    prev[succ] = current
                    next_frontier.append(succ)
        frontier = next_frontier
    return None


def _transitive_acquires(graph: CallGraph, flows) -> dict:
    """``global qual → frozenset of tokens`` the function may acquire
    itself or through any callee (call-graph closure over the per-
    function direct sets)."""
    direct: dict[str, frozenset] = {}
    for flow in flows:
        for info in flow.functions:
            if info.direct_acquires:
                direct[info.global_qual] = info.direct_acquires
    out: dict[str, frozenset] = {}
    for qual in graph.functions:
        tokens = set(direct.get(qual, ()))
        for callee in graph.reachable(qual):
            tokens |= direct.get(callee, frozenset())
        if tokens:
            out[qual] = frozenset(tokens)
    return out


# -- RC011 --------------------------------------------------------------------

class BlockingUnderLockRule(Rule):
    rule_id = "RC011"
    title = "blocking call while holding a lock"
    scope = "src"
    cross_file = True

    def reset(self) -> None:
        self._indexes: list = []
        self._flows: list = []

    def merge(self, other: "BlockingUnderLockRule") -> None:
        self._indexes.extend(other._indexes)
        self._flows.extend(other._flows)

    def check(self, module: ModuleFile) -> list[Finding]:
        flow = flow_of(module)
        self._indexes.append(flow.index)
        self._flows.append(flow)
        findings = []
        for info in flow.functions:
            for line, held, label in info.blocking:
                locks = ", ".join(sorted(_short(t) for t in held))
                findings.append(self.finding(
                    module,
                    line,
                    f"blocking call {label}() while holding {locks}: "
                    "a slow peer would stall every thread waiting on the "
                    "lock — move the call outside the locked region",
                ))
        return findings

    def finalize(self) -> list[Finding]:
        graph = CallGraph.build(self._indexes)
        transitive = _transitive_acquires(graph, self._flows)
        findings = []
        seen = set()
        for flow in self._flows:
            for info in flow.functions:
                for line, held, desc in info.locked_calls:
                    callee = graph.resolve(flow.module, info.class_qual, desc)
                    if callee is None:
                        continue
                    foreign = transitive.get(callee, frozenset()) - held
                    if not foreign:
                        continue
                    key = (info.rel, line, callee)
                    if key in seen:
                        continue
                    seen.add(key)
                    locks = ", ".join(sorted(_short(t) for t in held))
                    others = ", ".join(sorted(_short(t) for t in foreign))
                    findings.append(Finding(
                        path=info.rel,
                        line=line,
                        rule=self.rule_id,
                        message=(
                            f"call into {callee} while holding {locks}: the "
                            f"callee may acquire {others} and block on its "
                            "holder — restructure so the outer lock is "
                            "released first"
                        ),
                    ))
        return findings


# -- RC012 --------------------------------------------------------------------

class ExceptionUnsafeLockRule(Rule):
    rule_id = "RC012"
    title = "lock may leak on an exception path (bare acquire without with/finally)"
    scope = "src"

    def check(self, module: ModuleFile) -> list[Finding]:
        flow = flow_of(module)
        findings = []
        for info in flow.functions:
            for token, line in info.raise_leaks:
                findings.append(self.finding(
                    module,
                    line,
                    f"{_short(token)} may still be held when an exception "
                    f"escapes {info.qual}: acquire it with `with` or pair "
                    "the acquire with a try/finally release",
                ))
        return findings
