"""RC009 — ops-plane discipline: journal event names are catalogued.

One invariant from DESIGN.md §11 ("Operations plane"): every string
literal passed to an ``emit``/``_emit`` call or listed in an
``EVENT_CATALOG`` tuple must match
:data:`repro.ops.journal.EVENT_NAME_RE` (``^[a-z][a-z0-9_.]*$``), and
every *emitted* literal must be registered — present in an
``EVENT_CATALOG`` seen during the run or passed to a
``register("...")`` call somewhere.  A typo'd event name would
otherwise emit fine and silently match no query ever; the journal
enforces this at runtime, this rule enforces it before the code runs.
(Cross-file: emit sites are collected per file, resolved in
:meth:`finalize` once the catalog has been seen.  Dynamic, non-literal
names are out of scope — the runtime check owns those.)

This rule's original second half — no response writes under a lock —
grew into the flow-sensitive RC011 (:mod:`repro.checks.rules_flow`),
which tracks the *actual* lock-set along every path instead of lexical
``with`` nesting.
"""

from __future__ import annotations

import ast
import re

from .core import Finding, ModuleFile, Rule

#: Mirrors repro.ops.journal.EVENT_NAME_RE (restated here because
#: repro.checks is a dependency leaf and must not import repro.ops).
EVENT_NAME_RE = re.compile(r"^[a-z][a-z0-9_.]*$")


def _is_journal_emit(func: ast.expr) -> bool:
    """Journal emission sites: ``<something journal-ish>.emit(...)``
    (``journal.emit``, ``JOURNAL.emit``, ``self._journal.emit``) or a
    ``_emit`` call/method (the service's forwarding wrapper idiom).
    Plain ``emit(...)`` functions (e.g. the benchmark reporter) are
    unrelated APIs and not matched."""
    if isinstance(func, ast.Name):
        return func.id == "_emit"
    if not isinstance(func, ast.Attribute):
        return False
    if func.attr == "_emit":
        return True
    if func.attr != "emit":
        return False
    receiver = func.value
    if isinstance(receiver, ast.Name):
        return "journal" in receiver.id.lower()
    if isinstance(receiver, ast.Attribute):
        return "journal" in receiver.attr.lower()
    return False


def _called_name(func: ast.expr) -> str | None:
    if isinstance(func, ast.Attribute):
        return func.attr
    if isinstance(func, ast.Name):
        return func.id
    return None


class _OpsScanner(ast.NodeVisitor):
    """One file's pass: event-name emission/registration sites."""

    def __init__(self):
        #: (line, name) of every literal event name passed to emit/_emit
        self.emits: list[tuple[int, str]] = []
        #: literal names registered via register("...") calls
        self.registered: set[str] = set()
        #: (line, name) literals in EVENT_CATALOG tuples
        self.catalog: list[tuple[int, str]] = []

    def visit_Call(self, node: ast.Call) -> None:
        name = _called_name(node.func)
        if _is_journal_emit(node.func) and node.args:
            first = node.args[0]
            if isinstance(first, ast.Constant) and isinstance(first.value, str):
                self.emits.append((first.lineno, first.value))
        if name == "register" and node.args:
            first = node.args[0]
            if isinstance(first, ast.Constant) and isinstance(first.value, str):
                self.registered.add(first.value)
        self.generic_visit(node)

    def visit_Assign(self, node: ast.Assign) -> None:
        for target in node.targets:
            if isinstance(target, ast.Name) and target.id == "EVENT_CATALOG":
                value = node.value
                if isinstance(value, (ast.Tuple, ast.List)):
                    for element in value.elts:
                        if isinstance(element, ast.Constant) and isinstance(
                            element.value, str
                        ):
                            self.catalog.append((element.lineno, element.value))
        self.generic_visit(node)


class OpsDisciplineRule(Rule):
    rule_id = "RC009"
    title = "ops discipline: catalogued, well-formed journal event names"
    scope = "all"
    cross_file = True

    def reset(self) -> None:
        self._known: set[str] = set()
        self._pending_emits: list[tuple[str, int, str]] = []
        self._saw_catalog = False

    def merge(self, other: "OpsDisciplineRule") -> None:
        self._known |= other._known
        self._pending_emits.extend(other._pending_emits)
        self._saw_catalog = self._saw_catalog or other._saw_catalog

    def check(self, module: ModuleFile) -> list[Finding]:
        scanner = _OpsScanner()
        scanner.visit(module.tree)
        findings: list[Finding] = []
        for line, name in scanner.catalog:
            self._saw_catalog = True
            self._known.add(name)
            if not EVENT_NAME_RE.match(name):
                findings.append(self.finding(
                    module,
                    line,
                    f"EVENT_CATALOG name {name!r} does not match "
                    f"{EVENT_NAME_RE.pattern}",
                ))
        for name in scanner.registered:
            self._known.add(name)
        for line, name in scanner.emits:
            if not EVENT_NAME_RE.match(name):
                findings.append(self.finding(
                    module,
                    line,
                    f"journal event name {name!r} does not match "
                    f"{EVENT_NAME_RE.pattern}",
                ))
            else:
                self._pending_emits.append((module.rel, line, name))
        return findings

    def finalize(self) -> list[Finding]:
        if not self._saw_catalog:
            # No EVENT_CATALOG in the scanned tree (e.g. a partial run
            # over a single non-ops file): registration can't be judged.
            return []
        return [
            Finding(
                path=rel,
                line=line,
                rule=self.rule_id,
                message=(
                    f"journal event {name!r} is not in EVENT_CATALOG and "
                    "never register()-ed: a typo'd name matches no query"
                ),
            )
            for rel, line, name in self._pending_emits
            if name not in self._known
        ]
